#!/usr/bin/env python3
"""TPC-C end to end: load, phased execution, consistency audit.

The classic order-processing benchmark at a reduced-but-proportional
population, driven through a read-heavy then write-heavy phase sequence.
Finishes with the spec's consistency conditions and the trace analyzer's
latency report — everything a tuning session needs.

Run:  python examples/tpcc_workload.py
"""

from repro.benchmarks import create_benchmark
from repro.clock import SimClock
from repro.core import (Phase, SimulatedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.engine import Database
from repro.monitor import EngineMonitor
from repro.trace import TraceAnalyzer

READ_MIX = {"NewOrder": 10, "Payment": 10, "OrderStatus": 40,
            "Delivery": 0.5, "StockLevel": 39.5}
SPEC_MIX = {"NewOrder": 45, "Payment": 43, "OrderStatus": 4,
            "Delivery": 4, "StockLevel": 4}


def main() -> None:
    db = Database("tpcc-demo")
    benchmark = create_benchmark(
        "tpcc", db, scale_factor=2, seed=99,
        districts=4, customers_per_district=100, items=500,
        initial_orders=60)
    benchmark.load()
    counts = benchmark.table_counts()
    print("population:",
          {t: counts[t] for t in ("warehouse", "district", "customer",
                                  "item", "stock", "oorder")})

    config = WorkloadConfiguration(
        benchmark="tpcc", workers=8, seed=4,
        phases=[
            Phase(duration=20, rate=120, weights=READ_MIX,
                  name="browse-heavy"),
            Phase(duration=20, rate=120, weights=SPEC_MIX,
                  name="spec-mixture"),
        ])
    clock = SimClock()
    manager = WorkloadManager(benchmark, config, clock=clock)
    executor = SimulatedExecutor(db, "postgres", clock)
    executor.add_workload(manager)
    monitor = EngineMonitor(db)
    monitor.schedule_on(executor, interval=5.0, until=40.0)
    executor.run()

    results = manager.results
    print(f"\ncommitted {results.committed()}, aborted "
          f"{results.aborted()} "
          f"(TPC-C intends ~1% NewOrder rollbacks)")
    print("\nlatency by transaction type (ms):")
    for txn_name in results.txn_names():
        stats = results.latency_percentiles(txn_name)
        if stats:
            print(f"  {txn_name:12s} avg={stats['avg'] * 1000:8.3f} "
                  f"p95={stats['p95'] * 1000:8.3f}")

    analyzer = TraceAnalyzer(results)
    print(f"\nthroughput jitter (CoV): {analyzer.jitter():.4f}")
    print("server activity per 5s monitor sample "
          "(rows read / rows written):")
    for sample in monitor.samples:
        print(f"  t={sample.time:5.1f}s  {sample.rows_read:7d} / "
              f"{sample.rows_written:6d}")

    print(f"\nconsistency audit: {benchmark.check_consistency()}")


if __name__ == "__main__":
    main()
