#!/usr/bin/env python3
"""Quickstart: load a benchmark, run a rate-controlled workload, report.

This is the 60-second tour of the testbed:

1. create an in-memory DBMS instance (`repro.engine.Database`);
2. load a built-in benchmark (YCSB here — any of the 15 works);
3. describe the workload as phases (rate, mixture, duration);
4. run it on the simulated executor (deterministic, faster than real
   time) and print the numbers OLTP-Bench reports.

Run:  python examples/quickstart.py
"""

from repro.benchmarks import create_benchmark
from repro.clock import SimClock
from repro.core import (Phase, SimulatedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.engine import Database
from repro.trace import TraceAnalyzer


def main() -> None:
    # 1. A fresh simulated DBMS instance.
    db = Database("quickstart")

    # 2. Load YCSB at scale factor 1 (1,000 records).
    benchmark = create_benchmark("ycsb", db, scale_factor=1.0, seed=42)
    benchmark.load()
    print(f"loaded {benchmark.name}: {benchmark.table_counts()}")

    # 3. Two phases: a 30s warm-up at 200 tps, then 30s at 800 tps with
    #    exponential (Poisson-like) arrival interleaving.
    config = WorkloadConfiguration(
        benchmark="ycsb", workers=16, seed=7,
        phases=[
            Phase(duration=30, rate=200, name="warmup"),
            Phase(duration=30, rate=800, arrival="exponential",
                  name="measure"),
        ])

    # 4. Run on the simulated executor with the "mysql" personality.
    clock = SimClock()
    manager = WorkloadManager(benchmark, config, clock=clock)
    executor = SimulatedExecutor(db, "mysql", clock)
    executor.add_workload(manager)
    executor.run()

    # Report: throughput, per-transaction latency, rate-cap compliance.
    results = manager.results
    analyzer = TraceAnalyzer(results)
    print(f"\ncommitted {results.committed()} transactions "
          f"({results.aborted()} aborted)")
    print(f"overall throughput: {results.throughput():.1f} tps")
    print(f"rate-cap violations: "
          f"{analyzer.rate_cap_violations(cap=800)} seconds")
    print("\nper-transaction latency (ms):")
    for txn_name in results.txn_names():
        stats = results.latency_percentiles(txn_name)
        print(f"  {txn_name:24s} avg={stats['avg'] * 1000:7.3f}  "
              f"p99={stats['p99'] * 1000:7.3f}  "
              f"n={results.count('ok', txn_name)}")
    print("\nper-second throughput (middle of each phase):")
    series = dict(results.per_second_throughput())
    for second in (10, 15, 20, 40, 45, 50):
        print(f"  t={second:3d}s  {series.get(second, 0):5d} tps")


if __name__ == "__main__":
    main()
