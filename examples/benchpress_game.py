#!/usr/bin/env python3
"""Play BenchPress headlessly: the paper's §4 demonstration.

Builds the four challenge shapes (Steps, Sinusoidal, Peak, Tunnel) into a
course, runs a perfect pilot and a greedy pilot through it on the Oracle
stage, and renders ASCII frames of the side-scroller as the character
flies.  The character's altitude is the *measured* throughput of the
benchmark the game controls.

Run:  python examples/benchpress_game.py
"""

from repro.api import ControlApi
from repro.benchmarks import create_benchmark
from repro.benchpress import (Character, Course, GameSession, GreedyPilot,
                              PerfectPilot, peak, render_frame, sinusoidal,
                              steps, tunnel)
from repro.clock import SimClock
from repro.core import (Phase, SimulatedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.engine import Database


def build_course() -> Course:
    return Course.build([
        steps(base=80, step=60, count=4, width=10),
        sinusoidal(center=200, amplitude=100, period=24, duration=48),
        peak(low=120, high=400, lead=10, burst=6, tail=10),
        tunnel(level=180, duration=20),
    ], gap=6, start=8)


def play(pilot, pilot_name: str, frames: bool = False) -> dict:
    db = Database()
    benchmark = create_benchmark("voter", db, scale_factor=1.0, seed=5)
    benchmark.load()
    course = build_course()
    clock = SimClock()
    config = WorkloadConfiguration(
        benchmark="voter", workers=16, seed=2, tenant="player",
        phases=[Phase(duration=course.end + 20, rate=80)])
    manager = WorkloadManager(benchmark, config, clock=clock)
    executor = SimulatedExecutor(db, "oracle", clock)
    executor.add_workload(manager)
    control = ControlApi()
    control.register(manager)
    session = GameSession(
        control, "player", course, pilot=pilot,
        character=Character(requested_rate=80, jump_boost=40,
                            max_rate=100_000))
    session.run_on(executor)
    if frames:
        for when in range(10, int(course.end), 25):
            executor.at(float(when), lambda w=when: print(
                f"\n--- {pilot_name} at t={w}s "
                f"({session.course.challenge_at(w).shape if session.course.challenge_at(w) else 'gap'}) ---\n"
                + render_frame(session, float(w))))
    executor.run(until=course.end + 10)
    return session.summary()


def main() -> None:
    course = build_course()
    print("course layout:")
    for challenge in course.challenges:
        print(f"  {challenge.shape:12s} t={challenge.start:6.1f}s "
              f"to {challenge.end:6.1f}s"
              f"{'  (autopilot)' if challenge.autopilot else ''}")

    print("\n=== perfect pilot (tracks every corridor) ===")
    summary = play(PerfectPilot(lookahead=2), "perfect", frames=True)
    print(f"\nresult: {summary['state']} — score {summary['score']:.0f}, "
          f"{summary['obstacles_passed']} obstacles passed")

    print("\n=== greedy pilot (always demands 2x the corridor) ===")
    summary = play(GreedyPilot(factor=2.0), "greedy")
    print(f"result: {summary['state']} — score {summary['score']:.0f}, "
          f"{summary['obstacles_passed']} obstacles passed, "
          f"{summary['crashes']} crash(es)")
    print("\nthe greedy player crashes: the character follows the "
          "throughput the DBMS actually delivers, not what was requested.")


if __name__ == "__main__":
    main()
