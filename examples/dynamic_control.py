#!/usr/bin/env python3
"""Dynamic workload control over the REST API — the paper's §2.2.4 demo.

Runs a *live* threaded workload (real worker threads, wall-clock time),
starts the HTTP control server, and drives it exactly the way BenchPress's
game client does: throttle the rate, flip the mixture to read-only, poll
instantaneous throughput/latency feedback.

Run:  python examples/dynamic_control.py        (~12 seconds wall time)
"""

import threading
import time

from repro.api import ApiClient, ApiServer, ControlApi
from repro.benchmarks import create_benchmark
from repro.core import (Phase, ThreadedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.engine import Database


def main() -> None:
    db = Database("live-demo")
    benchmark = create_benchmark("smallbank", db, scale_factor=0.5, seed=1)
    benchmark.load()

    config = WorkloadConfiguration(
        benchmark="smallbank", workers=8, seed=3, tenant="demo",
        phases=[Phase(duration=12, rate=300)])
    manager = WorkloadManager(benchmark, config)
    executor = ThreadedExecutor(db)
    executor.add_workload(manager)

    control = ControlApi()
    control.register(manager)

    with ApiServer(control, port=0) as server:
        print(f"control API listening on {server.url}")
        client = ApiClient(server.url)

        def director() -> None:
            """The 'player': a scripted sequence of control commands."""
            time.sleep(3)
            print("\n[t=3s] throttling demo tenant to 60 tps")
            client.set_rate("demo", 60)
            time.sleep(3)
            print("[t=6s] switching mixture to the read-only preset")
            client.set_preset("demo", "read-only")
            time.sleep(2)
            print("[t=8s] opening the throttle back to 300 tps")
            client.set_rate("demo", 300)

        def reporter() -> None:
            for _ in range(11):
                time.sleep(1)
                status = client.status("demo")
                txns = ", ".join(
                    f"{name}={m['throughput']:.0f}tps"
                    for name, m in sorted(status["per_txn"].items()))
                print(f"  status: {status['throughput']:6.1f} tps, "
                      f"avg latency {status['avg_latency'] * 1000:6.2f} ms"
                      f"  [{txns}]")

        threading.Thread(target=director, daemon=True).start()
        reporter_thread = threading.Thread(target=reporter, daemon=True)
        reporter_thread.start()
        executor.run(timeout=30)
        reporter_thread.join(timeout=2)

    summary = manager.results.summary()
    print(f"\nrun finished: {summary['committed']} committed, "
          f"{summary['aborted']} aborted, "
          f"{summary['throughput']:.1f} tps overall")


if __name__ == "__main__":
    main()
