#!/usr/bin/env python3
"""Multi-tenancy (paper §2.2.3): two benchmarks sharing one instance.

TPC-C and Twitter run side by side against the same simulated server.
Twitter ramps to a saturating burst in the middle of the run; the report
shows TPC-C's latency inflating while its reserved throughput holds —
the interference signature the two-player game teaches.

Run:  python examples/multi_tenant.py
"""

from repro.benchmarks import create_benchmark
from repro.core import (MultiTenantCoordinator, Phase,
                        WorkloadConfiguration)
from repro.engine import Database


def main() -> None:
    db = Database("shared-instance")

    tpcc = create_benchmark("tpcc", db, scale_factor=1, seed=11,
                            districts=4, customers_per_district=60,
                            items=200, initial_orders=40)
    tpcc.load()
    twitter = create_benchmark("twitter", db, scale_factor=0.5, seed=12)
    twitter.load()
    print("loaded tenants:", sorted(db.table_names()))

    coordinator = MultiTenantCoordinator(db, personality="derby",
                                         simulated=True)
    coordinator.add_tenant(tpcc, WorkloadConfiguration(
        benchmark="tpcc", workers=8, seed=1, tenant="tpcc",
        phases=[Phase(duration=45, rate=60)]))
    coordinator.add_tenant(twitter, WorkloadConfiguration(
        benchmark="twitter", workers=24, seed=2, tenant="twitter",
        phases=[
            Phase(duration=15, rate=20),
            Phase(duration=15, rate=2500),  # the noisy-neighbour burst
            Phase(duration=15, rate=20),
        ]))
    coordinator.run()

    print(f"\n{'window':22s}{'tpcc tps':>10s}{'tpcc p50 ms':>13s}"
          f"{'twitter tps':>13s}")
    results = coordinator.per_tenant_results()
    for label, window in [("Twitter idle", (2, 15)),
                          ("Twitter bursting", (17, 30)),
                          ("Twitter idle again", (32, 45))]:
        tpcc_tput = results["tpcc"].throughput(window)
        samples = sorted(
            s.latency for s in results["tpcc"].samples()
            if window[0] <= s.end < window[1] and s.status == "ok")
        p50 = samples[len(samples) // 2] * 1000 if samples else 0.0
        tw_tput = results["twitter"].throughput(window)
        print(f"{label:22s}{tpcc_tput:10.1f}{p50:13.3f}{tw_tput:13.1f}")

    print("\nTPC-C keeps its reserved 60 tps (the centralized queue "
          "protects it) but pays the burst in latency — the shared "
          "server has only so much capacity.")
    consistency = tpcc.check_consistency()
    print(f"TPC-C consistency after the shared run: {consistency}")


if __name__ == "__main__":
    main()
