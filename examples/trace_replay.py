#!/usr/bin/env python3
"""Trace-driven workloads: record a day, replay it harder.

The paper's intro motivates "complex execution targets that recreate real
system loads".  This example:

1. runs a synthetic "production day" (a morning ramp, lunch dip, evening
   peak) against Twitter;
2. extracts the delivered-rate profile from the results;
3. replays the same profile at 1.5x against a second, slower server
   personality — the classic capacity-planning what-if.

Run:  python examples/trace_replay.py
"""

from repro.benchmarks import create_benchmark
from repro.clock import SimClock
from repro.core import (Phase, SimulatedExecutor, WorkloadConfiguration,
                        WorkloadManager, phases_from_results,
                        phases_from_series)
from repro.engine import Database
from repro.trace import TraceAnalyzer

PRODUCTION_DAY = [  # (seconds, tps) — a compressed 24h rate profile
    (10, 400),    # night
    (10, 1600),   # morning ramp
    (10, 900),    # lunch dip
    (15, 2400),   # evening peak
    (10, 600),    # wind-down
]


def run(profile_phases, personality, label):
    db = Database(label)
    bench = create_benchmark("twitter", db, scale_factor=0.3, seed=21)
    bench.load()
    clock = SimClock()
    config = WorkloadConfiguration(
        benchmark="twitter", workers=16, seed=3, phases=profile_phases)
    manager = WorkloadManager(bench, config, clock=clock)
    executor = SimulatedExecutor(db, personality, clock)
    executor.add_workload(manager)
    executor.run()
    return manager.results


def describe(results, label):
    analyzer = TraceAnalyzer(results)
    print(f"\n{label}:")
    print(f"  committed {results.committed()} txns, "
          f"mean {results.throughput():.1f} tps, "
          f"jitter {analyzer.jitter():.3f}")
    series = dict(results.per_second_throughput())
    peak_second = max(series, key=series.get)
    print(f"  peak {series[peak_second]} tps at t={peak_second}s; "
          f"p99 latency {results.latency_percentiles()['p99'] * 1000:.2f} ms")


def main() -> None:
    print("recording the production day on the 'oracle' stage...")
    original = run(phases_from_series(PRODUCTION_DAY), "oracle",
                   "production")
    describe(original, "production day (oracle)")

    profile = phases_from_results(original, bucket_seconds=5, scale=1.5)
    print(f"\nextracted {len(profile)} replay phases; replaying at 1.5x "
          "on the slower 'derby' stage...")
    replayed = run(profile, "derby", "what-if")
    describe(replayed, "1.5x replay (derby)")

    shortfall = (1.5 * original.committed() - replayed.committed()) \
        / (1.5 * original.committed())
    print(f"\ncapacity verdict: derby misses {shortfall:.1%} of the "
          "1.5x-scaled demand"
          + (" — it would not survive this growth."
             if shortfall > 0.05 else " — headroom is fine."))


if __name__ == "__main__":
    main()
