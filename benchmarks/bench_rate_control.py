"""Experiment §2.2.1 — rate control precision.

"The exact number of requests configured is added to the queue each second,
and each arrival is interleaved with a uniform or exponential arrival time.
When the workers cannot keep up with all requests, the remainder is
postponed in such a way that the framework never exceeds the target rate."

The bench drives YCSB at several target rates under both interleavings and
reports per-second delivered throughput statistics: the delivered rate must
match the target exactly while under capacity and must never exceed it.
"""

import pytest

from repro.core import ARRIVAL_EXPONENTIAL, ARRIVAL_UNIFORM, Phase

from conftest import analyzer, build_sim, once, report

RATES = (25, 100, 400, 1600)
DURATION = 30


def run_rate_grid():
    rows = []
    for arrival in (ARRIVAL_UNIFORM, ARRIVAL_EXPONENTIAL):
        for rate in RATES:
            executor, manager, _bench = build_sim(
                "ycsb", [Phase(duration=DURATION, rate=rate,
                               arrival=arrival)],
                workers=16, personality="postgres")
            executor.run()
            a = analyzer(manager)
            series = [c for _s, c in a.throughput_series(0, DURATION)]
            # The control guarantee is on *admissions*: count per-second
            # arrival buckets over the cap (completion-time buckets can
            # spill by a few sub-ms transactions at second boundaries).
            admissions: dict[int, int] = {}
            for sample in manager.results.samples():
                second = int(sample.start)
                admissions[second] = admissions.get(second, 0) + 1
            admission_violations = sum(
                1 for count in admissions.values() if count > rate)
            rows.append((
                arrival, rate,
                sum(series) / len(series),
                min(series), max(series),
                admission_violations,
                a.jitter((0, DURATION)),
                round(a.queue_delay_percentile(99) * 1000, 3),
            ))
    return rows


def test_rate_control_precision(benchmark):
    rows = once(benchmark, run_rate_grid)
    report(
        "Rate control precision (per-second delivered vs target)",
        ["Arrival", "Target tps", "Mean tps", "Min", "Max",
         "Cap violations", "Jitter (CoV)", "p99 queue delay ms"],
        rows,
        notes="paper claim: exact per-second counts; never exceeds target")
    for arrival, rate, mean, low, high, violations, jitter, _p99 in rows:
        assert violations == 0, f"{arrival}@{rate} exceeded the target"
        assert mean == pytest.approx(rate, rel=0.02)
        if arrival == ARRIVAL_UNIFORM:
            assert jitter < 0.05  # uniform interleaving: rock steady
