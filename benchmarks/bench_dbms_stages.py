"""Experiment F2a/F2b — the DBMS selection screen: stages differ.

Fig. 2b lets the player pick PostgreSQL / Apache Derby / Oracle / MySQL;
each DBMS is a different stage because each saturates at a different
throughput and responds differently.  The bench pushes YCSB open-loop on
every personality and reports the saturation throughput and latency: the
ordering (oracle > postgres ~ mysql >> derby) is the shape under test.
"""

import pytest

from repro.core import Phase, RATE_DISABLED

from conftest import build_sim, once, report

PERSONALITIES = ("oracle", "postgres", "mysql", "derby")
WORKERS = 8
DURATION = 8


def run_stages():
    rows = {}
    for personality in PERSONALITIES:
        executor, manager, _bench = build_sim(
            "ycsb", [Phase(duration=DURATION, rate=RATE_DISABLED)],
            workers=WORKERS, personality=personality)
        executor.run()
        results = manager.results
        latency = results.latency_percentiles()
        rows[personality] = (
            personality,
            round(results.throughput(), 1),
            round(latency["avg"] * 1000, 3),
            round(latency["p99"] * 1000, 3),
            results.aborted(),
        )
    return rows


def test_dbms_stages_differ(benchmark):
    rows = once(benchmark, run_stages)
    report(
        "Fig 2b: DBMS stages (closed-loop saturation, YCSB, 8 workers)",
        ["DBMS", "Saturation tps", "Avg latency ms", "p99 ms", "Aborts"],
        list(rows.values()),
        notes="shape: oracle fastest, derby slowest by >4x, "
              "derby latency noisiest")
    tps = {name: row[1] for name, row in rows.items()}
    assert tps["oracle"] > tps["postgres"]
    assert tps["oracle"] > tps["mysql"]
    assert tps["postgres"] > tps["derby"] * 3
    assert tps["mysql"] > tps["derby"] * 3
    # Derby pays more than 3x oracle's average latency.
    assert rows["derby"][2] > rows["oracle"][2] * 3
