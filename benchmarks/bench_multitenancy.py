"""Experiment §2.2.3 — multi-tenancy on one instance.

"OLTP-Bench can be configured to run multiple workloads and benchmarks in
parallel... to perform multi-tenancy tests that isolate different
workloads within the same instance."

Two tenants (YCSB + SmallBank) share one simulated server.  Tenant B ramps
from idle to saturating in the middle third of the run; the bench reports
tenant A's throughput and latency per third.  Shape: A's *throughput* holds
(its rate is reserved via the queue) while its *latency* degrades during
B's assault — the interference signature of shared infrastructure.
"""

import pytest

from repro.core import Phase

from conftest import build_sim, once, report

THIRD = 15
A_RATE = 150


def run_tenants():
    executor, manager_a, _bench_a = build_sim(
        "ycsb", [Phase(duration=3 * THIRD, rate=A_RATE)],
        workers=8, personality="derby", tenant="tenant-A")
    _executor, manager_b, _bench_b = build_sim(
        "smallbank",
        [Phase(duration=THIRD, rate=1),
         Phase(duration=THIRD, rate=2500),
         Phase(duration=THIRD, rate=1)],
        workers=24, personality="derby", tenant="tenant-B",
        executor=executor)
    executor.run()

    rows = []
    for i, label in enumerate(("B idle", "B saturating", "B idle again")):
        window = (i * THIRD + 2, (i + 1) * THIRD)
        samples = [s for s in manager_a.results.samples()
                   if window[0] <= s.end < window[1] and s.status == "ok"]
        latency = (sum(s.latency for s in samples) / len(samples)
                   if samples else 0.0)
        rows.append((
            label,
            round(manager_a.results.throughput(window), 1),
            round(latency * 1000, 3),
            round(manager_b.results.throughput(window), 1),
        ))
    return rows


def test_multitenant_interference(benchmark):
    rows = once(benchmark, run_tenants)
    report(
        "Multi-tenancy: tenant A (YCSB 150tps) vs tenant B ramp (derby)",
        ["Window", "A tps", "A avg latency ms", "B tps"],
        rows,
        notes="A's latency inflates while B saturates the shared server")
    idle, busy, recovered = rows
    # A's reserved rate survives (the centralized queue still feeds it)...
    assert busy[1] == pytest.approx(A_RATE, rel=0.1)
    # ...but its latency degrades >1.5x while B hammers the instance,
    # and recovers afterwards.
    assert busy[2] > idle[2] * 1.5
    assert recovered[2] < busy[2] * 0.7
    # B actually ramped.
    assert busy[3] > idle[3] * 10
