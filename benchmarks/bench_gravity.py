"""Experiment §4.1 — gravity: linear decay of throughput without input.

"A fall makes the game character go down following some simulated gravity,
in the sense that the throughput automatically decreases linearly until
reaching 0 transactions per second, at which point the character falls on
the floor."

The bench starts a session at 200 tps with no pilot and reports the
requested/delivered trajectory: requested must decay linearly at the
configured gravity until 0, and delivered must follow it down to the floor.
"""

import pytest

from repro.api import ControlApi
from repro.benchpress import Character, Course, GameSession, NoInputPilot, \
    steps
from repro.core import Phase

from conftest import build_sim, once, report

START_RATE = 200.0
GRAVITY = 10.0


def run_gravity():
    # A far-away course so nothing collides during the fall.
    course = Course.build(
        [steps(base=50, step=0, count=1, width=5)], start=500)
    executor, manager, _bench = build_sim(
        "ycsb", [Phase(duration=60, rate=START_RATE)],
        workers=8, personality="oracle")
    control = ControlApi()
    control.register(manager)
    session = GameSession(
        control, "tenant-0", course, pilot=NoInputPilot(),
        character=Character(requested_rate=START_RATE, gravity=GRAVITY))
    session.run_on(executor)
    executor.run(until=45)
    return session


def test_gravity_decays_linearly_to_zero(benchmark):
    session = once(benchmark, run_gravity)
    rows = [(round(t, 1), round(requested, 1), round(delivered, 1))
            for t, requested, delivered in session.altitude_history
            if t % 5 == 0]
    report(
        f"Gravity: no input from {START_RATE:.0f} tps "
        f"(gravity {GRAVITY:.0f} tps/s)",
        ["t (s)", "Requested tps", "Delivered tps"],
        rows,
        notes="requested decays linearly; delivered follows to the floor")
    trajectory = {round(t): requested
                  for t, requested, _d in session.altitude_history}
    # Linear decay: after k seconds, requested = start - k * gravity.
    for k in (5, 10, 15):
        assert trajectory[k] == pytest.approx(
            START_RATE - k * GRAVITY, abs=GRAVITY)
    # The floor is reached and held: character grounded, workload paused.
    floor_time = START_RATE / GRAVITY
    late = [req for t, req, _d in session.altitude_history
            if t > floor_time + 2]
    assert late and all(req == 0 for req in late)
    assert session.character.grounded
    # Delivered throughput also hit zero (workload paused on the floor).
    late_delivered = [d for t, _r, d in session.altitude_history
                      if t > floor_time + 6]
    assert late_delivered and max(late_delivered) < START_RATE * 0.05
