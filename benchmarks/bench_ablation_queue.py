"""Ablation — centralized queue vs. per-worker rate limiting.

Paper §2.2.1: "Using a centralized queue allows us to control the
throughput from one location without needing to coordinate the multiple
threads."  The alternative splits the target across N independent
per-worker limiters (modelled as N single-worker workloads at rate/N).

With uniform workers both schemes hit the target.  The difference appears
under *heterogeneous worker speed* (half the clients carry a 0.5s think
time): the centralized queue lets fast workers absorb the slowed workers'
share, while per-worker limiting strands it.
"""

import pytest

from repro.clock import SimClock
from repro.core import (Phase, SimulatedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.benchmarks import create_benchmark
from repro.engine import Database

from conftest import once, report

RATE = 200
WORKERS = 8
DURATION = 30
SLOW_THINK = 0.5


def _fresh(executor=None):
    db = executor.database if executor else Database()
    bench = create_benchmark("ycsb", db, scale_factor=0.3, seed=7)
    bench.load()
    if executor is None:
        executor = SimulatedExecutor(db, "oracle", SimClock())
    return executor, bench


def run_centralized(slow_half: bool):
    executor, bench = _fresh()
    cfg = WorkloadConfiguration(
        benchmark="ycsb", workers=WORKERS, seed=1,
        phases=[Phase(duration=DURATION, rate=RATE)])
    manager = WorkloadManager(bench, cfg, clock=executor.clock)
    think = ((lambda wid: SLOW_THINK if wid % 2 == 0 else 0.0)
             if slow_half else None)
    executor.add_workload(manager, worker_think=think)
    executor.run()
    return manager.results.throughput((2, DURATION))


def run_per_worker(slow_half: bool):
    executor, bench = _fresh()
    managers = []
    for worker_id in range(WORKERS):
        think = (SLOW_THINK if (slow_half and worker_id % 2 == 0)
                 else 0.0)
        cfg = WorkloadConfiguration(
            benchmark="ycsb", workers=1, seed=1,
            tenant=f"worker-{worker_id}",
            phases=[Phase(duration=DURATION, rate=RATE / WORKERS)])
        manager = WorkloadManager(bench, cfg, clock=executor.clock)
        executor.add_workload(
            manager, worker_think=(lambda _wid, t=think: t))
        managers.append(manager)
    executor.run()
    return sum(m.results.throughput((2, DURATION)) for m in managers)


def run_all():
    return {
        "centralized, uniform workers": run_centralized(slow_half=False),
        "per-worker, uniform workers": run_per_worker(slow_half=False),
        "centralized, half slowed": run_centralized(slow_half=True),
        "per-worker, half slowed": run_per_worker(slow_half=True),
    }


def test_centralized_queue_tolerates_heterogeneity(benchmark):
    outcome = once(benchmark, run_all)
    rows = [(name, RATE, round(tps, 1), round(tps / RATE, 3))
            for name, tps in outcome.items()]
    report(
        "Ablation: centralized queue vs per-worker rate limiting "
        f"({WORKERS} workers, {RATE} tps total, half with "
        f"{SLOW_THINK}s think)",
        ["Scheme", "Target tps", "Delivered tps", "Fraction of target"],
        rows,
        notes="per-worker limiting strands the slowed workers' share; "
              "the centralized queue redistributes it (paper §2.2.1)")
    assert outcome["centralized, uniform workers"] == \
        pytest.approx(RATE, rel=0.05)
    assert outcome["per-worker, uniform workers"] == \
        pytest.approx(RATE, rel=0.05)
    assert outcome["centralized, half slowed"] == \
        pytest.approx(RATE, rel=0.05)
    assert outcome["per-worker, half slowed"] < RATE * 0.75
