"""Experiment T1 — paper Table 1: the 15-benchmark inventory.

Loads every built-in benchmark, runs each for 20 simulated seconds at a
modest rate, and prints Table 1's rows (class / benchmark / application
domain) augmented with the measured load size and delivered throughput.

Shape checks: all 15 benchmarks load and execute; class labels match the
paper exactly.
"""

import pytest

from repro.benchmarks import REGISTRY, table1
from repro.core import Phase

from conftest import SMALL_SIZES, build_sim, once, report

RUN_SECONDS = 20
RATE = 40


def run_inventory():
    rows = []
    for entry in table1():
        name = entry["benchmark"]
        executor, manager, bench = build_sim(
            name, [Phase(duration=RUN_SECONDS, rate=RATE)],
            scale_factor=0.2, workers=4)
        executor.run()
        results = manager.results
        rows.append((
            entry["class"], name, entry["domain"],
            sum(bench.table_counts().values()),
            len(bench.procedures),
            round(results.throughput(), 1),
            results.aborted(),
        ))
    return rows


def test_table1_inventory(benchmark):
    rows = once(benchmark, run_inventory)
    report(
        "Table 1: benchmarks supported (class, workload, measured)",
        ["Class", "Benchmark", "Application Domain", "Rows loaded",
         "Txn types", "Delivered tps", "Aborts"],
        rows,
        notes=f"target rate {RATE} tps for {RUN_SECONDS}s "
              "(simulated, mysql personality)")
    assert len(rows) == 15
    classes = {row[0] for row in rows}
    assert classes == {"Transactional", "Web-Oriented", "Feature Testing"}
    for row in rows:
        delivered = row[5]
        # Every benchmark must sustain the modest 40 tps target.
        assert delivered == pytest.approx(RATE, rel=0.25), row
