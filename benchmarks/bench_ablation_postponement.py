"""Ablation — postponement (cap) vs. naive backlog catch-up.

DESIGN.md §5: the paper's queue postpones unserved requests "in such a way
that the framework never exceeds the target rate".  The obvious
alternative — keep a backlog and let workers catch up — bursts above the
target after a stall.  The bench pauses the workload for five seconds
mid-run under both policies and compares post-stall per-second delivery.
"""

import pytest

from repro.core import Phase

from conftest import analyzer, build_sim, once, report

RATE = 300
DURATION = 30
PAUSE_AT, RESUME_AT = 10.0, 15.0


def run_policy(policy):
    executor, manager, _bench = build_sim(
        "ycsb", [Phase(duration=DURATION, rate=RATE)],
        workers=32, personality="oracle", queue_policy=policy)
    executor.at(PAUSE_AT, manager.pause)
    executor.at(RESUME_AT, manager.resume)
    executor.run()
    a = analyzer(manager)
    recovery = [count for _s, count in a.throughput_series(
        int(RESUME_AT), int(RESUME_AT) + 8)]
    return {
        "peak_after_resume": max(recovery),
        "violations": a.rate_cap_violations(cap=RATE),
        "postponed": manager.results.postponed,
        "delivered_total": manager.results.committed(),
    }


def run_both():
    return {"cap (paper)": run_policy("cap"),
            "backlog (naive)": run_policy("backlog")}


def test_postponement_prevents_catchup_bursts(benchmark):
    outcome = once(benchmark, run_both)
    rows = [(name, RATE, m["peak_after_resume"], m["violations"],
             m["postponed"], m["delivered_total"])
            for name, m in outcome.items()]
    report(
        "Ablation: queue policy during a 5s stall at 300 tps",
        ["Policy", "Target tps", "Peak tps after resume",
         "Cap violations", "Postponed", "Total delivered"],
        rows,
        notes="the paper's cap policy sheds the stalled requests; the "
              "naive backlog bursts far above the target on resume")
    cap = outcome["cap (paper)"]
    backlog = outcome["backlog (naive)"]
    assert cap["violations"] == 0
    assert cap["peak_after_resume"] <= RATE
    assert cap["postponed"] > 0
    assert backlog["violations"] > 0
    assert backlog["peak_after_resume"] > RATE * 1.5
