"""Experiment F2c — the character follows *delivered*, not requested.

"The character, however, only responds to the actual throughput delivered
by the DBMS as measured by OLTP-Bench."  The bench ramps the requested rate
in steps far past Derby's capacity and reports requested vs delivered per
step: below saturation they coincide; above it delivered plateaus at the
engine's capacity while requested keeps climbing.
"""

import pytest

from repro.core import Phase

from conftest import build_sim, once, report

STEP_SECONDS = 12
REQUESTED = (500, 1500, 2500, 3500, 4500, 5500)


def run_ramp():
    phases = [Phase(duration=STEP_SECONDS, rate=rate) for rate in REQUESTED]
    executor, manager, _bench = build_sim(
        "ycsb", phases, workers=8, personality="derby")
    executor.run()
    rows = []
    for i, requested in enumerate(REQUESTED):
        window = (i * STEP_SECONDS + 2, (i + 1) * STEP_SECONDS)
        delivered = manager.results.throughput(window)
        rows.append((requested, round(delivered, 1),
                     round(delivered / requested, 3)))
    return rows, manager.results.postponed


def test_requested_vs_delivered_gap(benchmark):
    rows, postponed = once(benchmark, lambda: run_ramp())
    report(
        "Fig 2c: requested vs delivered throughput (derby, 8 workers)",
        ["Requested tps", "Delivered tps", "Delivered/Requested"],
        rows,
        notes=f"postponed requests while saturated: {postponed}")
    # Below saturation the DBMS keeps up...
    assert rows[0][2] > 0.97
    assert rows[1][2] > 0.97
    # ...above it the delivered curve flattens (a plateau, not a climb).
    plateau = [delivered for _req, delivered, _ratio in rows[-3:]]
    assert max(plateau) - min(plateau) < 0.15 * max(plateau)
    assert rows[-1][2] < 0.7  # large requested/delivered gap at the top
    assert postponed > 0  # the queue shed load to hold the cap
