"""Experiment F2d — preset mixtures: default / read-only / super-writes.

Fig. 2d's dialog offers preset mixtures; §4.1.1 explains why they matter:
"switching the workload mixture to a read-heavy workload will boost the
DBMS's throughput due to reduced lock contention."  The bench runs
SmallBank closed-loop under each preset and reports throughput: read-only
must win, super-writes must lose.
"""

import pytest

from repro.core import Phase, RATE_DISABLED

from conftest import build_sim, once, report

DURATION = 20
PRESETS = ("default", "read-only", "super-writes")


def run_presets():
    rows = {}
    for preset in PRESETS:
        executor, manager, bench = build_sim(
            "smallbank", [Phase(duration=DURATION, rate=RATE_DISABLED)],
            workers=16, personality="mysql")
        weights = bench.preset_mixtures()[preset]
        manager.config.phases[0] = manager.config.phases[0].with_weights(
            weights)
        executor.run()
        results = manager.results
        rows[preset] = (
            preset,
            ", ".join(sorted(weights)),
            round(results.throughput(), 1),
            round(results.latency_percentiles()["avg"] * 1000, 3),
            results.aborted(),
        )
    return rows


def test_preset_mixtures_change_throughput(benchmark):
    rows = once(benchmark, run_presets)
    report(
        "Fig 2d: preset mixtures (SmallBank, closed loop, mysql)",
        ["Preset", "Transactions", "Throughput tps", "Avg latency ms",
         "Aborts"],
        list(rows.values()),
        notes="paper: read-heavy boosts throughput via reduced "
              "lock contention")
    tps = {preset: row[2] for preset, row in rows.items()}
    assert tps["read-only"] > tps["default"]
    assert tps["default"] > tps["super-writes"]
    assert tps["read-only"] > tps["super-writes"] * 1.1
