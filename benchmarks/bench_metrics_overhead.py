"""Streaming vs. batch metrics query cost (the ISSUE 2 tentpole claim).

The control API's feedback path used to recompute every aggregate by
copying and rescanning the full sample list under a lock — O(n·types)
per poll, quadratic over a polled run.  ``repro.metrics`` folds each
sample in once at record time, so a feedback query touches O(bins)
state.  This bench records 100k synthetic samples into one ``Results``
container, then times a polling loop (windowed throughput + per-type
quantiles, the altitude query the game issues every tick) through both
paths and asserts the streaming side wins by ≥10×, while agreeing with
the batch numbers: windowed throughput exactly, quantiles within the
documented bin tolerance.
"""

from time import perf_counter

from repro.core.results import LatencySample, Results

from conftest import once, report

N_SAMPLES = 100_000
N_QUERIES = 50
TXN_TYPES = ("NewOrder", "Payment", "OrderStatus", "Delivery")
WINDOW = 5.0


def build_results(n: int = N_SAMPLES) -> Results:
    """Deterministic synthetic run: ~1k tps for ~100s, skewed latencies."""
    results = Results()
    for i in range(n):
        start = i / 1000.0  # 1 kHz arrival grid
        # Latency pattern spanning ~3 decades, fully deterministic.
        latency = 0.0005 + ((i * 7919) % 997) / 997.0 * 0.05
        if i % 97 == 0:
            latency *= 20.0  # a heavy tail for the p99s to find
        status = "aborted" if i % 53 == 0 else "ok"
        results.record(LatencySample(
            txn_name=TXN_TYPES[i % len(TXN_TYPES)], start=start,
            queue_delay=0.0001, latency=latency, status=status))
    return results


def batch_poll(results: Results, now: float) -> dict:
    """The old feedback path: full rescans of the sample list."""
    return {
        "throughput": results.throughput((now - WINDOW, now)),
        "latency": {name: results.latency_percentiles(name)
                    for name in results.txn_names()},
    }


def streaming_poll(results: Results, now: float) -> dict:
    """The new feedback path: O(bins) snapshot, no sample copies."""
    snapshot = results.metrics.snapshot(now, WINDOW)
    return {
        "throughput": snapshot["window"]["throughput"],
        "latency": snapshot["latency"],
    }


def run_overhead():
    results = build_results()
    now = float(int(N_SAMPLES / 1000.0))  # integer-second aligned poll

    started = perf_counter()
    for _ in range(N_QUERIES):
        batch = batch_poll(results, now)
    batch_elapsed = perf_counter() - started

    started = perf_counter()
    for _ in range(N_QUERIES):
        streaming = streaming_poll(results, now)
    streaming_elapsed = perf_counter() - started

    speedup = batch_elapsed / streaming_elapsed if streaming_elapsed else \
        float("inf")
    tolerance = results.metrics.snapshot(now)["bins"]["relative_error"]
    max_rel_err = 0.0
    for name in TXN_TYPES:
        exact = batch["latency"][name]
        binned = streaming["latency"][name]
        for key in ("p50", "p95", "p99"):
            max_rel_err = max(
                max_rel_err, abs(binned[key] - exact[key]) / exact[key])
    return (batch, streaming, batch_elapsed, streaming_elapsed, speedup,
            tolerance, max_rel_err)


def test_streaming_feedback_is_10x_cheaper_than_batch(benchmark):
    (batch, streaming, batch_elapsed, streaming_elapsed, speedup,
     tolerance, max_rel_err) = once(benchmark, run_overhead)
    report(
        "Feedback query cost, batch rescan vs streaming (100k samples)",
        ["path", "50 polls (s)", "per poll (ms)", "5s-window tps"],
        [("batch rescan", round(batch_elapsed, 4),
          round(batch_elapsed / N_QUERIES * 1000, 3),
          round(batch["throughput"], 1)),
         ("streaming", round(streaming_elapsed, 4),
          round(streaming_elapsed / N_QUERIES * 1000, 3),
          round(streaming["throughput"], 1))],
        notes=(f"speedup = {speedup:.1f}x; quantile max rel err = "
               f"{max_rel_err:.4f} (bin tolerance {tolerance:.4f})"))
    # The acceptance criterion: >=10x on a 100k-sample run.
    assert speedup >= 10.0, f"streaming only {speedup:.1f}x faster"
    # Windowed throughput is exact (same per-second flooring).
    assert streaming["throughput"] == batch["throughput"]
    # Quantiles agree within the documented log-bin tolerance.
    assert max_rel_err <= tolerance
    # The streaming totals match the batch counts exactly.
    totals = streaming["latency"]["total"]
    assert totals["count"] == batch_totals_committed()
    assert totals["min"] > 0


def batch_totals_committed() -> int:
    return sum(1 for i in range(N_SAMPLES) if i % 53 != 0)
