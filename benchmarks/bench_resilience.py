"""Experiment — resilience under injected faults.

The acceptance claim of the fault-injection + retry subsystem: with a 5%
injected transient-abort rate, per-procedure retry with exponential
backoff recovers at least 99% of the faulted requests and holds goodput
within 5% of the fault-free run, while the no-retry baseline surfaces
every injected fault as a lost transaction.  The queue accounting
invariant (``offered == taken + postponed + depth``) must survive every
scenario, and the metrics payload's resilience counters must match the
injector's ground-truth log exactly.
"""

from repro.core import Phase

from conftest import build_sim, once, report

DURATION = 30
RATE = 200
FAULTS = {"abort_probability": 0.05}
RETRIES = {"max_attempts": 4, "backoff_base": 0.001, "backoff_max": 0.01}


def _run(faults=None, retries=None):
    executor, manager, _bench = build_sim(
        "ycsb", [Phase(duration=DURATION, rate=RATE)], workers=16,
        personality="postgres")
    if faults:
        manager.set_fault_profile(faults)
    if retries:
        manager.set_resilience(retries)
    executor.run()
    return manager


def run_scenarios():
    clean = _run()
    no_retry = _run(faults=FAULTS)
    with_retry = _run(faults=FAULTS, retries=RETRIES)
    rows = []
    for label, manager in (("fault-free", clean),
                           ("5% aborts, no retry", no_retry),
                           ("5% aborts, retry x4", with_retry)):
        stats = manager.resilience.stats.snapshot()
        faulted = stats["recovered"] + stats["exhausted"]
        rows.append((
            label,
            manager.results.committed(),
            manager.results.aborted(),
            manager.faults.counters()["total"],
            stats["recovered"],
            round(stats["recovered"] / faulted, 4) if faulted else "-",
            round(manager.results.committed()
                  / clean.results.committed(), 4),
        ))
    return rows, clean, no_retry, with_retry


def test_retry_recovers_injected_aborts(benchmark):
    rows, clean, no_retry, with_retry = once(benchmark, run_scenarios)
    report(
        "Resilience under a 5% injected abort rate",
        ["Scenario", "Committed", "Aborted", "Injected", "Recovered",
         "Recovery rate", "Goodput vs clean"],
        rows,
        notes="claim: retry recovers >=99% of faulted requests; goodput "
              "within 5% of fault-free; no-retry loses every fault")

    # The injector actually fired, and at roughly the configured rate.
    injected = no_retry.faults.counters()["abort"]
    offered = no_retry.queue.counters()["offered"]
    assert injected > 0
    assert 0.03 <= injected / offered <= 0.07

    # No-retry baseline: every injected abort is a lost transaction.
    assert no_retry.resilience.stats.snapshot()["recovered"] == 0
    assert no_retry.results.aborted() >= injected
    assert no_retry.results.committed() < 0.98 * clean.results.committed()

    # Retry: >=99% of faulted requests recover and goodput is within 5%.
    stats = with_retry.resilience.stats.snapshot()
    faulted = stats["recovered"] + stats["exhausted"]
    assert faulted > 0
    assert stats["recovered"] >= 0.99 * faulted
    assert with_retry.results.committed() >= \
        0.95 * clean.results.committed()

    for manager in (clean, no_retry, with_retry):
        # Queue accounting survives fault injection and shedding.
        counters = manager.queue.counters()
        assert counters["offered"] == (counters["taken"]
                                       + counters["postponed"]
                                       + counters["depth"])
        # Metrics counters are the injector's ground truth, exactly.
        payload = manager.metrics()
        assert payload["resilience"]["faults"]["injected"] == \
            manager.faults.counters()
        assert payload["resilience"]["faults"]["injected"]["total"] == \
            len(manager.faults.log())
