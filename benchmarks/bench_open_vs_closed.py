"""Experiment §2.2.1b — open vs. closed loop (Schroeder et al. [6]).

The paper cites "Open versus closed: a cautionary tale" when motivating
the two execution modes.  The classic result: at the same delivered
throughput, an *open* system's response time explodes near saturation
(queueing grows unboundedly), while a *closed* system self-throttles — its
latency stays near the service time because only N requests exist.

The bench drives Derby near capacity in both modes at a matched delivered
throughput and compares response times (queue delay + execution).
"""

import pytest

from repro.core import Phase, RATE_DISABLED

from conftest import build_sim, once, report

WORKERS = 8
DURATION = 30


def run_closed():
    executor, manager, _bench = build_sim(
        "ycsb", [Phase(duration=DURATION, rate=RATE_DISABLED)],
        workers=WORKERS, personality="derby")
    executor.run()
    return manager


def run_open(rate):
    executor, manager, _bench = build_sim(
        "ycsb", [Phase(duration=DURATION, rate=rate)],
        workers=WORKERS, personality="derby")
    executor.run()
    return manager


def response_stats(manager):
    samples = [s for s in manager.results.samples() if s.status == "ok"]
    response_times = sorted(s.response_time for s in samples)
    mid = response_times[len(response_times) // 2]
    p99 = response_times[int(0.99 * (len(response_times) - 1))]
    return manager.results.throughput(), mid, p99


def run_comparison():
    closed = run_closed()
    closed_tps, closed_p50, closed_p99 = response_stats(closed)
    # Offer the closed loop's delivered throughput as an open arrival rate
    # (the crossover point), plus a clearly overloaded 120% variant.
    open_matched = run_open(closed_tps * 0.98)
    open_over = run_open(closed_tps * 1.2)
    return {
        "closed": (closed_tps, closed_p50, closed_p99),
        "open@match": response_stats(open_matched),
        "open@120%": response_stats(open_over),
    }


def test_open_vs_closed_latency(benchmark):
    outcome = once(benchmark, run_comparison)
    rows = [(name, round(tps, 1), round(p50 * 1000, 3),
             round(p99 * 1000, 3))
            for name, (tps, p50, p99) in outcome.items()]
    report(
        "Open vs closed loop at matched throughput (derby, 8 workers)",
        ["Mode", "Delivered tps", "p50 response ms", "p99 response ms"],
        rows,
        notes="Schroeder et al.: open-loop response time explodes near "
              "saturation; closed loop self-throttles")
    closed = outcome["closed"]
    matched = outcome["open@match"]
    overloaded = outcome["open@120%"]
    # Near saturation, the open system's tail dwarfs the closed system's.
    assert matched[2] > closed[2] * 3
    assert overloaded[2] > closed[2] * 3
    # Yet delivered throughputs are comparable at the matched point.
    assert matched[0] == pytest.approx(closed[0], rel=0.15)
