"""Experiment §2.2.4 — API feedback fidelity.

"this API also provides instantaneous feedback about the current execution
throughput and average latency per transaction type."

The bench polls ``ControlApi.status`` once per simulated second during a
two-rate run and compares the reported instantaneous throughput against the
ground truth recomputed from the raw samples afterwards.
"""

import pytest

from repro.api import ControlApi
from repro.core import Phase

from conftest import build_sim, once, report


def run_polling():
    executor, manager, _bench = build_sim(
        "ycsb", [Phase(duration=15, rate=120), Phase(duration=15, rate=40)],
        workers=8, personality="postgres")
    control = ControlApi()
    control.register(manager)
    polls = []

    def poll(second):
        status = control.status("tenant-0", now=float(second), window=5.0)
        polls.append((second, status["throughput"], status["avg_latency"],
                      dict(status["per_txn"])))

    for second in range(6, 30, 3):
        executor.at(float(second), lambda s=second: poll(s))
    executor.run()

    rows = []
    max_err = 0.0
    for second, reported_tps, avg_latency, per_txn in polls:
        truth = manager.results.throughput((second - 5, second))
        err = abs(reported_tps - truth)
        max_err = max(max_err, err)
        rows.append((second, round(reported_tps, 1), round(truth, 1),
                     round(avg_latency * 1000, 3), len(per_txn)))
    return rows, max_err


def test_api_feedback_matches_ground_truth(benchmark):
    rows, max_err = once(benchmark, run_polling)
    report(
        "API instantaneous feedback vs recomputed ground truth",
        ["t (s)", "API tps", "True tps", "API avg latency ms",
         "Txn types reported"],
        rows,
        notes=f"max |API - truth| = {max_err:.2f} tps over 5s windows")
    assert max_err < 2.0
    # Rates of both phases are visible through the API's eyes.
    reported = [row[1] for row in rows]
    assert max(reported) == pytest.approx(120, rel=0.05)
    assert min(reported) == pytest.approx(40, rel=0.15)
    # Per-type latency feedback is present.
    assert all(row[4] >= 1 for row in rows)
