"""Experiment §4.1.2-Tunnels — the autopilot constant-throughput corridor.

"The auto pilot zones are long tunnels where the target execution is fixed
to a constant range of high (or low) target throughput.  This challenge
expects the DBMS to deliver a constant tight throughput for a long period
of time."  And §4.3: "certain DBMSs (and tuning combinations) cannot pass
the tunnel tests, since they produce oscillating throughputs."

Every personality enters the same tight tunnel pinned near Derby's
capacity.  Shape: the fast, low-jitter engines pass; Derby oscillates out
of the corridor and crashes.
"""

import pytest

from repro.api import ControlApi
from repro.benchpress import Character, Course, GameSession, tunnel
from repro.core import Phase
from conftest import analyzer, build_sim, once, report

TUNNEL_SECONDS = 25
CORRIDOR = 0.06


class _Hold:
    """Keep the requested rate pinned until the tunnel entrance."""

    def __init__(self, level, until):
        self.level = level
        self.until = until

    def act(self, session, now):
        if now < self.until:
            session.character.set_requested(self.level)


def run_tunnel(personality, level):
    course = Course.build(
        [tunnel(level=level, duration=TUNNEL_SECONDS, corridor=CORRIDOR)],
        start=10)
    executor, manager, _bench = build_sim(
        "ycsb", [Phase(duration=course.end + 20, rate=100)],
        workers=8, personality=personality)
    control = ControlApi()
    control.register(manager)
    session = GameSession(
        control, "tenant-0", course, pilot=_Hold(level, 10),
        character=Character(requested_rate=100, max_rate=1e9))
    session.run_on(executor)
    executor.run(until=course.end + 10)
    a = analyzer(manager)
    return {
        "state": session.summary()["state"],
        "delivered": manager.results.throughput((12, 12 + TUNNEL_SECONDS)),
        "jitter": a.jitter((12, 12 + TUNNEL_SECONDS)),
    }


def measure_derby_capacity() -> float:
    """Short closed-loop calibration run: Derby's actual ceiling here."""
    from repro.core import RATE_DISABLED
    executor, manager, _bench = build_sim(
        "ycsb", [Phase(duration=6, rate=RATE_DISABLED)],
        workers=8, personality="derby")
    executor.run()
    return manager.results.throughput((2, 6))


def run_all():
    # Pin the corridor just above Derby's measured capacity: it cannot
    # hold the low edge, while the faster stages clear it trivially.
    level = measure_derby_capacity() * 1.05
    return level, {p: run_tunnel(p, level)
                   for p in ("oracle", "postgres", "mysql", "derby")}


def test_tunnel_pass_fail_by_personality(benchmark):
    level, outcome = once(benchmark, run_all)
    rows = [(name, m["state"], round(m["delivered"], 1),
             round(m["jitter"], 4))
            for name, m in outcome.items()]
    report(
        f"Tunnel challenge: hold {level:.0f}±{CORRIDOR * 50:.0f}% tps "
        f"for {TUNNEL_SECONDS}s (autopilot)",
        ["DBMS", "Game state", "Delivered tps", "Jitter (CoV)"],
        rows,
        notes="paper §4.3: oscillating engines cannot pass the tunnel")
    for name in ("oracle", "postgres", "mysql"):
        assert outcome[name]["state"] == "completed", name
    assert outcome["derby"]["state"] == "crashed"
    # Derby's shortfall, not merely noise, is what kills it.
    assert outcome["derby"]["delivered"] < level * (1 - CORRIDOR / 2)
