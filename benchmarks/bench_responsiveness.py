"""Experiment §4.1 (jumps) — perceiving system responsiveness.

"This measures the ability of the DBMS to [react to] changes in the
OLTP-Bench's requested load, thereby allowing the user to easily perceive
the different system responsiveness."

The bench issues a jump (200 -> 2800 tps) on every personality and
measures the rise time: seconds until delivered throughput settles within
10% of the new target.  Fast stages settle within a second; Derby — for
which 3600 tps exceeds capacity — takes visibly longer, which is what
the player feels through the character.
"""

import pytest

from repro.core import Phase

from conftest import analyzer, build_sim, once, report

LOW, HIGH = 200, 3600
JUMP_AT = 10.0


def run_jump(personality):
    executor, manager, _bench = build_sim(
        "ycsb", [Phase(duration=10, rate=LOW), Phase(duration=15,
                                                     rate=HIGH)],
        workers=8, personality=personality)
    executor.run()
    a = analyzer(manager)
    rise = a.rise_time(change_at=JUMP_AT, target=HIGH, tolerance=0.10)
    settled = manager.results.throughput((JUMP_AT + 5, 25))
    return rise, settled


def run_all():
    return {p: run_jump(p)
            for p in ("oracle", "postgres", "mysql", "derby")}


def test_jump_responsiveness(benchmark):
    outcome = once(benchmark, run_all)
    rows = [(name, "never" if rise is None else round(rise, 1),
             round(settled, 1))
            for name, (rise, settled) in outcome.items()]
    report(
        f"Responsiveness: jump {LOW} -> {HIGH} tps at t={JUMP_AT:.0f}s",
        ["DBMS", "Rise time s (within 10%)", "Settled tps"],
        rows,
        notes="the character's jump responds at the speed of the stage")
    for name in ("oracle", "postgres", "mysql"):
        rise, settled = outcome[name]
        assert rise is not None and rise <= 2.0, name
        assert settled == pytest.approx(HIGH, rel=0.05), name
    derby_rise, derby_settled = outcome["derby"]
    # Derby is pushed near its ceiling: it either never settles within
    # 10% or takes far longer than the fast stages.
    assert derby_rise is None or derby_rise > 2.0 or \
        derby_settled < HIGH * 0.97
