"""Experiment §4.1.1 — read-heavy mixtures reduce lock contention.

"switching the workload mixture to a read-heavy workload will boost the
DBMS's throughput due to reduced lock contention."

This is the one bench that must run on *real threads*, because lock waits
only materialise with true concurrency: SmallBank's hotspot accounts are
hammered by 8 workers under a write-heavy and then a read-heavy mixture.
The engine's lock-manager counters provide the mechanism evidence: the
read-heavy run shows dramatically fewer lock waits, and higher throughput.
"""

import pytest

from repro.benchmarks import create_benchmark
from repro.core import (Phase, RATE_DISABLED, ThreadedExecutor,
                        WorkloadConfiguration, WorkloadManager)
from repro.engine import Database

from conftest import once, report

DURATION = 3  # wall seconds per mixture
WORKERS = 8

WRITE_HEAVY = {"SendPayment": 50, "Amalgamate": 25, "WriteCheck": 25}
READ_HEAVY = {"Balance": 100}


def run_mixture(weights):
    db = Database()
    bench = create_benchmark("smallbank", db, scale_factor=0.2, seed=3,
                             hotspot_probability=0.95)
    bench.load()
    cfg = WorkloadConfiguration(
        benchmark="smallbank", workers=WORKERS, seed=1,
        phases=[Phase(duration=DURATION, rate=RATE_DISABLED,
                      weights=weights)])
    manager = WorkloadManager(bench, cfg)
    executor = ThreadedExecutor(db)
    executor.add_workload(manager)
    executor.run(timeout=DURATION + 10)
    lock_stats = db.lock_manager.stats
    results = manager.results
    committed = results.committed()
    return {
        "throughput": results.throughput(),
        "lock_waits_per_txn": lock_stats.waits / max(1, committed),
        "wait_time": lock_stats.wait_time,
        "deadlocks": lock_stats.deadlocks,
        "aborted": results.aborted(),
    }


def run_both():
    return {"write-heavy": run_mixture(WRITE_HEAVY),
            "read-heavy": run_mixture(READ_HEAVY)}


def test_read_heavy_reduces_lock_contention(benchmark):
    outcome = once(benchmark, run_both)
    rows = [
        (name, round(m["throughput"], 1),
         round(m["lock_waits_per_txn"], 4), round(m["wait_time"], 3),
         m["deadlocks"], m["aborted"])
        for name, m in outcome.items()
    ]
    report(
        "Lock contention: write-heavy vs read-heavy "
        "(SmallBank hotspot, 8 real threads)",
        ["Mixture", "Throughput tps", "Lock waits / txn",
         "Total wait time s", "Deadlocks", "Aborts"],
        rows,
        notes="paper: read-heavy boosts throughput due to reduced "
              "lock contention")
    write_heavy = outcome["write-heavy"]
    read_heavy = outcome["read-heavy"]
    assert read_heavy["throughput"] > write_heavy["throughput"] * 1.3
    assert write_heavy["lock_waits_per_txn"] > \
        read_heavy["lock_waits_per_txn"] * 2
