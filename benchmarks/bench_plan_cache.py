"""Compiled query plans vs. the interpreted executor (ISSUE 3 tentpole).

``Database.prepare_exec`` compiles every SELECT/INSERT/UPDATE/DELETE into
a :class:`~repro.engine.plan.CompiledPlan` — column references resolved
to tuple indexes, predicates and projections fused into closures, the
access path chosen once — and caches it keyed by ``(sql,
catalog_version)``.  The interpreted executor walks the AST again for
every row of every statement.

This bench builds *twin* databases — identical schema, identical seeded
load, one with ``use_compiled_plans=True`` and one with ``False`` — and
drives each TPC-C and Twitter procedure through both with identical RNG
streams, so every pair of runs issues byte-identical statements against
byte-identical data.  It reports per-transaction time and asserts the
compiled path wins by >=2x on the scan/filter-heavy procedures (the ones
whose statements touch many rows per execution), and that both paths
returned exactly the same results row for row.
"""

from __future__ import annotations

from time import perf_counter

from repro.benchmarks import create_benchmark
from repro.core.procedure import UserAbort
from repro.engine import Database
from repro.engine.dbapi import connect
from repro.rand import make_rng

from conftest import SMALL_SIZES, once, report

SEED = 1337
WARMUP = 3

#: (benchmark, sizes, scale_factor, [(procedure, timed iterations)])
WORKLOADS = [
    ("tpcc", SMALL_SIZES["tpcc"], 0.3,
     [("NewOrder", 30), ("Payment", 40), ("OrderStatus", 40),
      ("Delivery", 15), ("StockLevel", 25)]),
    ("twitter", {}, 1.0,
     [("GetTweet", 120), ("GetTweetsFromFollowing", 60),
      ("GetFollowers", 60), ("GetUserTweets", 120), ("InsertTweet", 120)]),
]

#: Procedures whose statements evaluate predicates over many rows per
#: call — the population the >=2x acceptance floor applies to.  The
#: PK-point lookups (GetTweet) win less: most of their time is locking
#: and versioning, which both paths share.
SCAN_HEAVY = {
    ("tpcc", "OrderStatus"),       # customer-by-last-name scan + order scan
    ("tpcc", "StockLevel"),        # order_line x stock join over 20 orders
    ("tpcc", "Delivery"),          # per-district order_line scans
    ("twitter", "GetTweetsFromFollowing"),  # follows x tweets join
    ("twitter", "GetUserTweets"),  # timeline filter + ORDER BY ... LIMIT
}

SPEEDUP_FLOOR = 2.0


def build_twin(name: str, sizes: dict, scale: float):
    """Identically-seeded (compiled, interpreted) database/bench pairs."""
    pair = {}
    for key, compiled in (("compiled", True), ("interpreted", False)):
        db = Database(use_compiled_plans=compiled)
        bench = create_benchmark(name, db, scale_factor=scale, seed=SEED,
                                 **sizes)
        bench.load()
        pair[key] = (db, bench)
    return pair


def drive(db, bench, txn_name: str, iters: int):
    """Run one procedure ``iters`` times; returns (elapsed, results).

    The RNG is seeded from (SEED, benchmark, procedure) only, so the
    compiled and interpreted twins see the same argument stream and
    apply the same mutations — the databases stay in lockstep.
    """
    proc = bench.make_procedure(txn_name)
    conn = connect(db)
    warm_rng = make_rng(SEED, bench.name, txn_name, "warm")
    for _ in range(WARMUP):
        _run_once(proc, conn, warm_rng)
    rng = make_rng(SEED, bench.name, txn_name, "timed")
    outputs = []
    started = perf_counter()
    for _ in range(iters):
        outputs.append(_run_once(proc, conn, rng))
    elapsed = perf_counter() - started
    conn.close()
    return elapsed, outputs


def _run_once(proc, conn, rng):
    try:
        return proc.run(conn, rng)
    except UserAbort:
        conn.rollback()
        return "<user-abort>"


def run_bench():
    rows = []
    mismatches = []
    cache_notes = []
    for name, sizes, scale, procedures in WORKLOADS:
        pair = build_twin(name, sizes, scale)
        for txn_name, iters in procedures:
            interp_s, interp_out = drive(*pair["interpreted"],
                                         txn_name, iters)
            compiled_s, compiled_out = drive(*pair["compiled"],
                                             txn_name, iters)
            if compiled_out != interp_out:
                mismatches.append((name, txn_name))
            speedup = interp_s / compiled_s if compiled_s else float("inf")
            rows.append((
                f"{name}.{txn_name}",
                "yes" if (name, txn_name) in SCAN_HEAVY else "",
                iters,
                round(interp_s / iters * 1000, 3),
                round(compiled_s / iters * 1000, 3),
                round(speedup, 2),
            ))
        compiled_db = pair["compiled"][0]
        stats = compiled_db.cache_stats()["plan_cache"]
        counters = compiled_db.counters
        cache_notes.append(
            f"{name}: plan cache {stats['hits']} hits / "
            f"{stats['misses']} misses; "
            f"{counters.plan_executions} plan execs, "
            f"{counters.interpreted_executions} interpreted")
    return rows, mismatches, cache_notes


def test_compiled_plans_speed_up_scan_heavy_procedures(benchmark):
    rows, mismatches, cache_notes = once(benchmark, run_bench)
    report(
        "Per-transaction cost, interpreted vs compiled plans (warm cache)",
        ["procedure", "scan-heavy", "iters", "interp ms/txn",
         "compiled ms/txn", "speedup"],
        rows,
        notes="; ".join(cache_notes))
    # Equivalence oracle: identical RNG streams against identical data
    # must produce identical procedure outputs on both paths.
    assert not mismatches, f"result divergence in {mismatches}"
    # The acceptance floor: >=2x per-transaction speedup on every
    # scan/filter-heavy procedure.
    floors = {row[0]: row[5] for row in rows if row[1] == "yes"}
    slow = {k: v for k, v in floors.items() if v < SPEEDUP_FLOOR}
    assert not slow, f"scan-heavy procedures under {SPEEDUP_FLOOR}x: {slow}"
    # And nothing regresses: even point lookups must not get slower.
    assert all(row[5] >= 1.0 for row in rows), rows
