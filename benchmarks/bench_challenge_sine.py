"""Experiment §4.1.2-Sinusoidal — fluctuating load tracking.

"The character has to move up and down in a recurring pattern.  This
demonstrates a fluctuating load and tests the ability of the DBMS to
gracefully respond without much jitter."

A perfect pilot rides a sine wave on every personality; the bench reports
tracking error and jitter.  Shape: all personalities track well below
saturation, and the noisy personality (derby) shows the worst jitter.
"""

import math

import pytest

from repro.api import ControlApi
from repro.benchpress import Character, Course, GameSession, PerfectPilot, \
    sinusoidal
from repro.core import Phase

from conftest import analyzer, build_sim, once, report

CENTER = 250
AMPLITUDE = 120
PERIOD = 24
DURATION = 48


def run_sine(personality):
    course = Course.build([
        sinusoidal(center=CENTER, amplitude=AMPLITUDE, period=PERIOD,
                   duration=DURATION, corridor=0.5)], start=8)
    executor, manager, _bench = build_sim(
        "ycsb", [Phase(duration=course.end + 20, rate=CENTER)],
        workers=16, personality=personality)
    control = ControlApi()
    control.register(manager)
    session = GameSession(
        control, "tenant-0", course, pilot=PerfectPilot(lookahead=1),
        character=Character(requested_rate=CENTER, max_rate=1e9))
    session.run_on(executor)
    executor.run(until=course.end + 10)

    a = analyzer(manager)
    course_fn = course.target_fn(default=CENTER)
    tracking = a.tracking(lambda t: course_fn(t + 0.5), 12,
                          int(course.end) - 2, tolerance=0.25)
    return {
        "state": session.summary()["state"],
        "mean_rel_error": tracking.mean_rel_error,
        "within": tracking.within_tolerance_fraction,
        "jitter": a.jitter((12, int(course.end) - 2)),
    }


def run_all():
    return {p: run_sine(p) for p in ("oracle", "postgres", "mysql",
                                     "derby")}


def test_sinusoidal_tracking(benchmark):
    outcome = once(benchmark, run_all)
    rows = [(name, m["state"], round(m["mean_rel_error"], 3),
             round(m["within"], 2), round(m["jitter"], 3))
            for name, m in outcome.items()]
    report(
        "Sinusoidal challenge: tracking a fluctuating target "
        f"({CENTER}±{AMPLITUDE} tps, period {PERIOD}s)",
        ["DBMS", "Game state", "Mean rel error", "Within ±25%",
         "Jitter (CoV)"],
        rows,
        notes="all personalities are below saturation here; the shape "
              "under test is graceful tracking")
    for name, metrics in outcome.items():
        assert metrics["state"] == "completed", name
        assert metrics["mean_rel_error"] < 0.2, name
        assert metrics["within"] > 0.85, name
