"""Experiment — driver scaling: sharded queue + process-parallel tenants.

Three acceptance claims for the scaled driver (DESIGN.md §11):

* **Equivalence oracle** — the sharded request queue is *physically*
  partitioned but *logically* identical to the single-deque layout: on
  the same seeded arrival schedule with the same drain capacity, every
  shard count sheds exactly the same number of requests (identical
  ``postponed`` counters), preserves ``offered == taken + postponed +
  depth``, and the deterministic ``poll`` drain pops requests in exactly
  the same global order.
* **Capacity** — at 4 tenants under a saturating offered rate, the
  process-per-tenant driver (sharded queue, batched take, buffered
  samples) delivers at least 2x the throughput of the seed-configuration
  driver (single-process, single shard, ``take_batch=1``, per-sample
  recording).
* **Fidelity** — at the paper-style reference rate the scaled driver is
  not *trading* accuracy for speed: it still delivers >= 98% of the
  requested transactions, and the queue invariant holds in every tenant
  process.

The workload is a deliberate no-op benchmark: the engine does no work,
so every observed difference is driver overhead — queue locking, the
per-transaction hot path, and sample recording — which is exactly the
subsystem under test.
"""

import random

from repro.clock import SimClock
from repro.core import (Phase, ProcessExecutor, RequestQueue, TenantSpec,
                        ThreadedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.core.benchmark import BenchmarkModule
from repro.core.procedure import Procedure
from repro.engine import Database

from conftest import once, report

# -- oracle schedule ---------------------------------------------------------

SHARD_COUNTS = (1, 2, 4, 8)
ORACLE_SECONDS = 20
ORACLE_RATE = 300      # offered requests per second (upper bound)
ORACLE_CAPACITY = 180  # drained per second (slower than offered -> shedding)
ORACLE_SEED = 1337

# -- capacity / fidelity runs ------------------------------------------------

TENANTS = 4
SEED_WORKERS = 8        # per tenant, the seed driver's default pool
PROC_WORKERS = 2        # per tenant process; this host has one CPU
PROC_TAKE_BATCH = 128
PROC_SHARDS = 4
CAPACITY_RATE = 60_000  # per tenant per second: saturates the driver
CAPACITY_DURATION = 5.0
REFERENCE_RATE = 10_000  # per tenant per second: the fidelity check
REFERENCE_DURATION = 3.0

CAPACITY_FLOOR = 2.0   # process driver must deliver >= 2x the seed driver
FIDELITY_FLOOR = 0.98  # delivered/requested at the reference rate


class NoOp(Procedure):
    """A transaction that costs nothing: isolates driver overhead."""

    name = "NoOp"
    read_only = True
    default_weight = 100.0

    def run(self, conn, rng):
        return None


class NoOpBench(BenchmarkModule):
    name = "noop"
    domain = "Driver calibration"
    procedures = (NoOp,)

    def ddl(self):
        return ["CREATE TABLE noop_t (k INT PRIMARY KEY)"]

    def load_data(self, rng):
        self.database.bulk_insert("noop_t", [(0,)])


def _noop_factory(spec: TenantSpec) -> NoOpBench:
    """Module-level (picklable) tenant benchmark factory."""
    bench = NoOpBench(Database(), seed=spec.config.seed)
    bench.load()
    return bench


# -- part 1: sharded-vs-single equivalence oracle ----------------------------

def make_schedule(seed: int) -> list[tuple[list[float], int]]:
    """Seeded (arrivals, drain capacity) pairs, one per second.

    Both the offered count and the drain capacity jitter around their
    means so the backlog oscillates: some seconds shed, some drain dry —
    the shedding edge cases are where a sharding bug would hide.
    """
    rng = random.Random(seed)
    schedule = []
    for second in range(ORACLE_SECONDS):
        count = rng.randint(ORACLE_RATE // 2, ORACLE_RATE)
        arrivals = sorted(second + rng.random() for _ in range(count))
        capacity = rng.randint(ORACLE_CAPACITY // 2, ORACLE_CAPACITY)
        schedule.append((arrivals, capacity))
    return schedule


def replay_poll(schedule, shards: int):
    """Replay via ``poll`` (globally earliest pop: fully deterministic)."""
    queue = RequestQueue(clock=SimClock(), shards=shards)
    order = []
    for second, (arrivals, capacity) in enumerate(schedule):
        queue.offer_batch(arrivals)
        now = second + 1.0
        for _ in range(capacity):
            request = queue.poll(now)
            if request is None:
                break
            order.append((request.arrival_time, request.seq))
    return queue.counters(), order


def replay_take_batch(schedule, shards: int):
    """Replay via the batched consumer path (``take_batch``)."""
    clock = SimClock()
    queue = RequestQueue(clock=clock, shards=shards)
    taken = 0
    for second, (arrivals, capacity) in enumerate(schedule):
        queue.offer_batch(arrivals)
        clock.run_until(second + 1.0)
        taken += len(queue.take_batch(capacity, timeout=0.0))
    return queue.counters(), taken


def run_oracle():
    schedule = make_schedule(ORACLE_SEED)
    rows = []
    results = {}
    for shards in SHARD_COUNTS:
        counters, order = replay_poll(schedule, shards)
        batch_counters, batch_taken = replay_take_batch(schedule, shards)
        results[shards] = (counters, order, batch_counters, batch_taken)
        rows.append((f"{shards} shard(s)",
                     counters["offered"], counters["taken"],
                     counters["postponed"], counters["depth"],
                     batch_counters["postponed"]))
    return schedule, rows, results


# -- parts 2+3: capacity ratio and reference-rate fidelity -------------------

def _config(tenant: str, workers: int, seed: int, rate: float,
            duration: float) -> WorkloadConfiguration:
    return WorkloadConfiguration(
        benchmark="noop", workers=workers, seed=seed, tenant=tenant,
        phases=[Phase(duration=duration, rate=rate)])


def run_seed_driver(rate: float, duration: float):
    """The seed-configuration driver: one process, unsharded, unbatched."""
    executor = ThreadedExecutor(Database(), take_batch=1,
                                buffer_samples=False)
    managers = []
    for index in range(TENANTS):
        bench = NoOpBench(Database(), seed=1)
        bench.load()
        config = _config(f"tenant-{index}", SEED_WORKERS, 42 + index,
                         rate, duration)
        manager = WorkloadManager(bench, config, clock=executor.clock,
                                  queue_shards=1)
        executor.add_workload(manager)
        managers.append(manager)
    executor.run(timeout=duration + 30)
    delivered = sum(len(m.results) for m in managers)
    counters = [m.queue.counters() for m in managers]
    return delivered, counters


def run_process_driver(rate: float, duration: float):
    """The scaled driver: process per tenant, sharded + batched queue."""
    executor = ProcessExecutor(stats_interval=5.0)
    for index in range(TENANTS):
        config = _config(f"tenant-{index}", PROC_WORKERS, 42 + index,
                         rate, duration)
        executor.add_tenant(TenantSpec(
            config=config, benchmark_factory=_noop_factory,
            queue_shards=PROC_SHARDS, take_batch=PROC_TAKE_BATCH))
    run_report = executor.run(timeout=duration + 30)
    assert run_report["ok"], run_report.get("error")
    delivered = sum(len(results) for results
                    in executor.per_tenant_results().values())
    counters = [tenant_report["queue"] for tenant_report
                in run_report["per_tenant"].values()]
    return delivered, counters


def run_scaling():
    seed_delivered, seed_counters = run_seed_driver(
        CAPACITY_RATE, CAPACITY_DURATION)
    proc_delivered, proc_counters = run_process_driver(
        CAPACITY_RATE, CAPACITY_DURATION)
    ref_delivered, ref_counters = run_process_driver(
        REFERENCE_RATE, REFERENCE_DURATION)
    return (seed_delivered, seed_counters, proc_delivered, proc_counters,
            ref_delivered, ref_counters)


def _check_invariant(counters):
    for queue_counters in counters:
        assert queue_counters["offered"] == (queue_counters["taken"]
                                             + queue_counters["postponed"]
                                             + queue_counters["depth"])


def test_sharded_queue_equivalence_oracle(benchmark):
    schedule, rows, results = once(benchmark, run_oracle)
    report(
        "Sharded queue equivalence oracle",
        ["Layout", "Offered", "Taken", "Postponed", "Depth",
         "Postponed (batched)"],
        rows,
        notes="claim: identical postponed counts for every shard count, "
              "on both the poll and the take_batch drain")

    offered = sum(len(arrivals) for arrivals, _capacity in schedule)
    base_counters, base_order, base_batch, base_taken = \
        results[SHARD_COUNTS[0]]
    assert base_counters["offered"] == offered
    assert base_counters["postponed"] > 0  # the schedule actually sheds
    for shards in SHARD_COUNTS:
        counters, order, batch_counters, batch_taken = results[shards]
        # Identical accounting in every layout...
        assert counters == base_counters
        # ...request-for-request identical pop order on the poll drain...
        assert order == base_order
        # ...and identical shedding on the batched consumer path too.
        assert batch_counters["postponed"] == base_batch["postponed"]
        assert batch_taken == base_taken
        _check_invariant([counters, batch_counters])


def test_process_driver_capacity_and_fidelity(benchmark):
    (seed_delivered, seed_counters, proc_delivered, proc_counters,
     ref_delivered, ref_counters) = once(benchmark, run_scaling)

    requested = int(TENANTS * REFERENCE_RATE * REFERENCE_DURATION)
    ratio = proc_delivered / seed_delivered
    fidelity = ref_delivered / requested
    report(
        "Driver scale-out at 4 tenants",
        ["Driver", "Rate/tenant", "Duration", "Delivered", "Delivered/s",
         "vs seed"],
        [("seed: 1 process, shards=1, take=1, unbuffered", CAPACITY_RATE,
          CAPACITY_DURATION, seed_delivered,
          round(seed_delivered / CAPACITY_DURATION), 1.0),
         (f"scaled: {TENANTS} processes, shards={PROC_SHARDS}, "
          f"take={PROC_TAKE_BATCH}, buffered", CAPACITY_RATE,
          CAPACITY_DURATION, proc_delivered,
          round(proc_delivered / CAPACITY_DURATION), round(ratio, 2)),
         ("scaled @ reference rate", REFERENCE_RATE, REFERENCE_DURATION,
          ref_delivered, round(ref_delivered / REFERENCE_DURATION),
          "-")],
        notes=f"claims: scaled/seed >= {CAPACITY_FLOOR}x at the "
              f"saturating rate; delivered/requested >= {FIDELITY_FLOOR} "
              f"at the reference rate (got {fidelity:.4f})")

    # Both drivers actually ran all four tenants.
    assert len(seed_counters) == TENANTS
    assert len(proc_counters) == TENANTS
    assert seed_delivered > 0

    # Capacity: the scaled driver clears the 2x floor.
    assert ratio >= CAPACITY_FLOOR, (
        f"process driver delivered only {ratio:.2f}x the seed driver "
        f"({proc_delivered} vs {seed_delivered})")

    # Fidelity: at the reference rate nothing is silently dropped.
    assert fidelity >= FIDELITY_FLOOR, (
        f"delivered/requested {fidelity:.4f} below {FIDELITY_FLOOR} "
        f"({ref_delivered}/{requested})")

    # Queue accounting survives every configuration.
    _check_invariant(seed_counters)
    _check_invariant(proc_counters)
    _check_invariant(ref_counters)
