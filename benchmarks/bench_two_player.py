"""Experiment §4.3 — two-player mode: one player affects the other.

"the two-player version of the game allows the players to experience in
real-time the effects of multi-tenancy, with one player affecting the
other."

Player 1 holds a tunnel at 60% of Derby's capacity.  Solo (player 2 idle)
that is easy; when player 2 floods the shared server, player 1's delivered
throughput sags out of the corridor and the run crashes.
"""

import pytest

from repro.benchpress import (Character, Course, PerfectPilot, PlayerSpec,
                              TwoPlayerGame, steps, tunnel)
from repro.core import Phase, WorkloadConfiguration
from repro.engine import Database
from repro.engine.service import get_personality

from conftest import build_sim, once, report


class _Hold:
    def __init__(self, level, until):
        self.level = level
        self.until = until

    def act(self, session, now):
        if now < self.until:
            session.character.set_requested(self.level)


def _player(bench, tenant, course, pilot, workers=8):
    return PlayerSpec(
        benchmark=bench,
        config=WorkloadConfiguration(
            benchmark="ycsb", workers=workers, seed=1, tenant=tenant,
            phases=[Phase(duration=course.end + 15, rate=40)]),
        course=course,
        pilot=pilot,
        character=Character(requested_rate=40, max_rate=1e9),
    )


def run_scenario(rival_rate, rival_workers):
    from repro.benchmarks import create_benchmark
    level = get_personality("derby").saturation_tps(1.5, 0.3) * 0.6
    tunnel_course = Course.build(
        [tunnel(level=level, duration=25, corridor=0.12)], start=10)
    rival_course = Course.build(
        [steps(base=rival_rate, step=0, count=1, width=40,
               corridor=1.9)], start=8)

    db = Database()
    bench = create_benchmark("ycsb", db, scale_factor=0.3, seed=7)
    bench.load()
    game = TwoPlayerGame(db, personality="derby")
    game.add_player(_player(bench, "player-1", tunnel_course,
                            _Hold(level, 10)))
    game.add_player(_player(bench, "player-2", rival_course,
                            _Hold(rival_rate, 1e9),
                            workers=rival_workers))
    game.run()
    p1, p2 = game.summaries()
    results = game.sessions[0].control.status  # noqa: F841 (debug hook)
    return level, p1, p2


def run_both():
    level, solo_p1, _ = run_scenario(rival_rate=5, rival_workers=2)
    _, contended_p1, rival = run_scenario(rival_rate=8000, rival_workers=32)
    return level, solo_p1, contended_p1, rival


def test_two_player_interference(benchmark):
    level, solo, contended, rival = once(benchmark, run_both)
    report(
        f"Two-player: player 1 holds a tunnel at {level:.0f} tps on "
        "shared derby",
        ["Scenario", "Player 1 state", "P1 obstacles", "Rival state"],
        [
            ("rival idle (5 tps)", solo["state"],
             solo["obstacles_passed"], "-"),
            ("rival flooding (8000 tps)", contended["state"],
             contended["obstacles_passed"], rival["state"]),
        ],
        notes="the same corridor passes solo and crashes under "
              "a flooding neighbour")
    assert solo["state"] == "completed"
    assert contended["state"] == "crashed"
