"""Shared harness for the experiment benches.

Every ``bench_*.py`` reproduces one exhibit or quantitative claim of the
paper (see DESIGN.md §4).  Benches run on the simulated executor unless the
experiment is specifically about real thread/lock behaviour, print the
rows/series the paper describes, and assert the *shape* of the result
(who wins, by roughly what factor, where crossovers fall).

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Optional, Sequence

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from repro.api import ControlApi
from repro.benchmarks import create_benchmark
from repro.clock import SimClock
from repro.core import (Phase, SimulatedExecutor, ThreadedExecutor,
                        WorkloadConfiguration, WorkloadManager)
from repro.engine import Database
from repro.trace import TraceAnalyzer

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Small population overrides so Python-speed loads stay sub-second.
SMALL_SIZES = {
    "tpcc": dict(districts=2, customers_per_district=40, items=100,
                 initial_orders=25),
    "chbenchmark": dict(districts=2, customers_per_district=40, items=100,
                        initial_orders=25),
}


def build_sim(benchmark_name: str, phases: Sequence[Phase], *,
              workers: int = 8, personality: str = "mysql",
              scale_factor: float = 0.3, seed: int = 7,
              tenant: str = "tenant-0", db: Optional[Database] = None,
              executor: Optional[SimulatedExecutor] = None,
              bench=None, queue_policy: str = "cap"):
    """Wire one simulated workload; returns (executor, manager, bench)."""
    if db is None:
        db = executor.database if executor else Database()
    if bench is None:
        bench = create_benchmark(
            benchmark_name, db, scale_factor=scale_factor, seed=seed,
            **SMALL_SIZES.get(benchmark_name, {}))
        bench.load()
    if executor is None:
        executor = SimulatedExecutor(db, personality, SimClock())
    cfg = WorkloadConfiguration(
        benchmark=benchmark_name, workers=workers, seed=seed, tenant=tenant,
        phases=list(phases))
    manager = WorkloadManager(bench, cfg, clock=executor.clock,
                              queue_policy=queue_policy)
    executor.add_workload(manager)
    return executor, manager, bench


def analyzer(manager) -> TraceAnalyzer:
    return TraceAnalyzer(manager.results)


def report(name: str, headers: Sequence[str], rows: Sequence[Sequence],
           notes: str = "") -> str:
    """Format, print, and persist one experiment table."""
    widths = [max(len(str(h)), *(len(_fmt(r[i])) for r in rows), 4)
              for i, h in enumerate(headers)] if rows else \
             [len(str(h)) for h in headers]
    lines = [f"== {name} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(v).ljust(w)
                               for v, w in zip(row, widths)))
    if notes:
        lines.append(notes)
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    safe = name.lower().replace(" ", "_").replace("/", "-")
    (RESULTS_DIR / f"{safe}.txt").write_text(text + "\n")
    return text


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
