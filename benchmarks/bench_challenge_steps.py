"""Experiment §4.1.2-Steps — the Steps challenge: load ladder to saturation.

"The character has to go through a set of increasing or decreasing
throughput levels.  This simulates an increasing load on the database; at
some point the DBMS will become saturated and be unable to process any
more transactions."

A perfect pilot climbs a steps course on Derby; the bench reports per-step
target vs delivered throughput and finds the saturation knee: steps below
capacity are tracked exactly, steps above it plateau (and the game crashes
there, exactly as the demo intends).
"""

import pytest

from repro.api import ControlApi
from repro.benchpress import (Character, Course, GameSession, PerfectPilot,
                              steps)
from repro.core import Phase

from conftest import build_sim, once, report

STEP_WIDTH = 12
LEVELS = (400, 1200, 2000, 2800, 3600, 4400)


def run_steps():
    course = Course.build([
        steps(base=LEVELS[0], step=LEVELS[1] - LEVELS[0],
              count=len(LEVELS), width=STEP_WIDTH, corridor=0.3)],
        start=8)
    executor, manager, _bench = build_sim(
        "ycsb", [Phase(duration=course.end + 20, rate=100)],
        workers=8, personality="derby")
    control = ControlApi()
    control.register(manager)
    session = GameSession(
        control, "tenant-0", course, pilot=PerfectPilot(lookahead=2),
        character=Character(requested_rate=100, max_rate=1e9),
        halt_on_crash=False)  # keep measuring the full ladder post-crash
    session.run_on(executor)
    executor.run(until=course.end + 10)

    rows = []
    for i, level in enumerate(LEVELS):
        lo = 8 + i * STEP_WIDTH + 3
        hi = 8 + (i + 1) * STEP_WIDTH
        delivered = manager.results.throughput((lo, hi))
        rows.append((i + 1, level, round(delivered, 1),
                     round(delivered / level, 3)))
    return rows, session.summary()


def test_steps_challenge_saturates(benchmark):
    rows, summary = once(benchmark, lambda: run_steps())
    report(
        "Steps challenge (derby, 8 workers): ladder into saturation",
        ["Step", "Target tps", "Delivered tps", "Delivered/Target"],
        rows,
        notes=f"game outcome: {summary['state']} after "
              f"{summary['obstacles_passed']} obstacles "
              f"(crash at the saturation step is the expected shape)")
    # Early steps track the target; late steps plateau at capacity.
    assert rows[0][3] > 0.9
    assert rows[1][3] > 0.9
    assert rows[-1][3] < 0.75
    deliveries = [r[2] for r in rows]
    assert max(deliveries[-2:]) - min(deliveries[-2:]) < \
        0.2 * max(deliveries)  # plateau
    # The character crashed into the unreachable step.
    assert summary["state"] == "crashed"
    assert summary["obstacles_passed"] >= 2
