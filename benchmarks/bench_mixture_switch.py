"""Experiment §2.2.2 — on-demand mixture change via the control API.

"We added the ability to change the mixture of transactions used in a given
benchmark in every phase, or on demand via the new control API... for
example by transitioning from read-heavy to write-heavy workloads."

The bench runs YCSB at a fixed rate, flips the mixture read-heavy ->
write-heavy mid-run through the ControlApi, and reports per-type
throughput in the windows before and after the switch.
"""

import pytest

from repro.api import ControlApi
from repro.core import Phase

from conftest import build_sim, once, report

DURATION = 40
SWITCH_AT = 20.0
RATE = 200

READ_HEAVY = {"ReadRecord": 90, "UpdateRecord": 10}
WRITE_HEAVY = {"ReadRecord": 10, "UpdateRecord": 90}


def run_switch():
    executor, manager, _bench = build_sim(
        "ycsb", [Phase(duration=DURATION, rate=RATE, weights=READ_HEAVY)],
        workers=16, personality="postgres")
    control = ControlApi()
    control.register(manager)
    executor.at(SWITCH_AT,
                lambda: control.set_weights("tenant-0", WRITE_HEAVY))
    executor.run()

    def window_counts(lo, hi):
        counts = {"ReadRecord": 0, "UpdateRecord": 0}
        for sample in manager.results.samples():
            if lo <= sample.end < hi and sample.txn_name in counts:
                counts[sample.txn_name] += 1
        span = hi - lo
        return {name: count / span for name, count in counts.items()}

    before = window_counts(2, SWITCH_AT - 1)
    after = window_counts(SWITCH_AT + 2, DURATION - 1)
    return before, after


def test_mixture_switch_on_demand(benchmark):
    before, after = once(benchmark, run_switch)
    report(
        "Mixture switch read-heavy -> write-heavy (YCSB, 200 tps)",
        ["Window", "ReadRecord tps", "UpdateRecord tps", "Write share"],
        [
            ("before switch", round(before["ReadRecord"], 1),
             round(before["UpdateRecord"], 1),
             round(before["UpdateRecord"]
                   / max(1e-9, sum(before.values())), 2)),
            ("after switch", round(after["ReadRecord"], 1),
             round(after["UpdateRecord"], 1),
             round(after["UpdateRecord"]
                   / max(1e-9, sum(after.values())), 2)),
        ],
        notes="mixture flipped at t=20s via the control API; "
              "total rate stays at 200 tps")
    # Before: reads dominate 9:1.  After: writes dominate 9:1.
    assert before["ReadRecord"] > before["UpdateRecord"] * 5
    assert after["UpdateRecord"] > after["ReadRecord"] * 5
    # Total throughput is unaffected by the flip (rate control holds).
    assert sum(before.values()) == pytest.approx(RATE, rel=0.05)
    assert sum(after.values()) == pytest.approx(RATE, rel=0.05)
