"""Experiment §4.1.2-Peak — sporadic burst response.

"After a period of low throughput simulating some steady-state workload, a
peak in throughput is created for a short period before going back to
normal.  Again, this will show the ability of a DBMS to respond to some
sporadic and sudden increase in load."

The bench fires a 6-second burst at every personality.  Shape: fast
engines absorb the burst (delivered tracks the peak); Derby — whose peak
target exceeds its capacity — cannot, and the delivered curve clips.
"""

import pytest

from repro.core import Phase

from conftest import build_sim, once, report

LOW = 300
PEAK = 4200  # below oracle/postgres/mysql capacity, above derby's (~3200)
LEAD, BURST, TAIL = 15, 6, 15


def run_peak(personality):
    executor, manager, _bench = build_sim(
        "ycsb",
        [Phase(duration=LEAD, rate=LOW),
         Phase(duration=BURST, rate=PEAK),
         Phase(duration=TAIL, rate=LOW)],
        workers=16, personality=personality)
    executor.run()
    results = manager.results
    steady = results.throughput((2, LEAD))
    burst = results.throughput((LEAD + 1, LEAD + BURST))
    recovery = results.throughput((LEAD + BURST + 2, LEAD + BURST + TAIL))
    return steady, burst, recovery


def run_all():
    return {p: run_peak(p)
            for p in ("oracle", "postgres", "mysql", "derby")}


def test_peak_burst_response(benchmark):
    outcome = once(benchmark, run_all)
    rows = [(name, round(s, 1), round(b, 1), round(b / PEAK, 3),
             round(r, 1))
            for name, (s, b, r) in outcome.items()]
    report(
        f"Peak challenge: {LOW} tps steady, {PEAK} tps burst for {BURST}s",
        ["DBMS", "Steady tps", "Burst tps", "Burst/Target",
         "Recovery tps"],
        rows,
        notes="fast engines absorb the burst; derby clips at capacity")
    for name, (steady, burst, recovery) in outcome.items():
        assert steady == pytest.approx(LOW, rel=0.05), name
        assert recovery == pytest.approx(LOW, rel=0.05), name
    # The capable engines deliver the burst nearly in full.
    for name in ("oracle", "postgres", "mysql"):
        assert outcome[name][1] / PEAK > 0.9, name
    # Derby falls visibly short of the requested peak.
    assert outcome["derby"][1] / PEAK < 0.9
    assert outcome["derby"][1] < outcome["oracle"][1]
