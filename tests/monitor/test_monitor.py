"""Engine and host monitors."""

import pytest

from repro.clock import SimClock
from repro.core import (Phase, SimulatedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.engine import Database, connect
from repro.monitor import EngineMonitor, HostMonitor

from ..conftest import MiniBenchmark


def test_first_sample_returns_none(db):
    monitor = EngineMonitor(db)
    assert monitor.sample(0.0) is None
    assert monitor.samples == []


def test_deltas_between_samples(db):
    conn = connect(db)
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (a INT PRIMARY KEY)")
    monitor = EngineMonitor(db)
    monitor.sample(0.0)
    for i in range(10):
        cur.execute("INSERT INTO t VALUES (?)", (i,))
    conn.commit()
    sample = monitor.sample(1.0)
    assert sample.rows_written == 10
    assert sample.commits == 1
    assert sample.interval == 1.0
    # A second idle interval shows zero deltas.
    idle = monitor.sample(2.0)
    assert idle.rows_written == 0
    assert idle.commits == 0
    conn.close()


def test_sample_rates(db):
    conn = connect(db)
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (a INT PRIMARY KEY)")
    monitor = EngineMonitor(db)
    monitor.sample(0.0)
    for i in range(20):
        cur.execute("INSERT INTO t VALUES (?)", (i,))
        conn.commit()
    sample = monitor.sample(2.0)
    assert sample.commits_per_sec == pytest.approx(10.0)
    assert sample.as_row()["commits"] == 20
    conn.close()


def test_monitor_scheduled_on_simulated_run(db):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    clock = SimClock()
    cfg = WorkloadConfiguration(
        benchmark="mini", workers=4, seed=1,
        phases=[Phase(duration=10, rate=50)])
    manager = WorkloadManager(bench, cfg, clock=clock)
    executor = SimulatedExecutor(db, "inmem", clock)
    executor.add_workload(manager)
    monitor = EngineMonitor(db)
    monitor.schedule_on(executor, interval=1.0, until=10.0)
    executor.run()
    assert len(monitor.samples) >= 8
    commits = sum(s.commits for s in monitor.samples)
    assert commits == pytest.approx(500, abs=60)


def test_plan_cache_deltas_in_samples(db):
    conn = connect(db)
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (a INT PRIMARY KEY)")
    monitor = EngineMonitor(db)
    monitor.sample(0.0)
    for i in range(5):
        cur.execute("INSERT INTO t VALUES (?)", (i,))
    conn.commit()
    sample = monitor.sample(1.0)
    # One plan compiled (miss), then four cache hits.
    assert sample.plan_cache_misses == 1
    assert sample.plan_cache_hits == 4
    assert sample.plan_cache_invalidations == 0
    assert sample.as_row()["plan_cache_hits"] == 4
    # DDL invalidates the cache; the next interval shows the delta.
    cur.execute("CREATE TABLE u (b INT PRIMARY KEY)")
    after_ddl = monitor.sample(2.0)
    assert after_ddl.plan_cache_invalidations >= 1
    conn.close()


def test_saturation_signal_rises_with_lock_waits(db):
    monitor = EngineMonitor(db)
    monitor.sample(0.0)
    assert monitor.saturation_signal() == 0.0
    db.lock_manager.stats.wait_time += 2.5
    monitor.sample(1.0)
    assert monitor.saturation_signal() > 0


def test_host_monitor_samples_without_crashing():
    monitor = HostMonitor()
    first = monitor.sample(0.0)
    second = monitor.sample(1.0)
    assert first.time == 0.0
    # On Linux the second sample should carry a CPU fraction in [0, 1].
    if monitor.available:
        assert second.cpu_busy_fraction is None or \
            0.0 <= second.cpu_busy_fraction <= 1.0
        assert second.mem_used_kb is None or second.mem_used_kb > 0
