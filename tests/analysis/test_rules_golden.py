"""Golden-file tests: every rule fires exactly where the fixtures say.

Fixture lines carry ``# !RPnnn`` markers; the test lints each fixture
with only that rule selected and requires the (line, rule) sets to match
exactly — extra diagnostics are as much a failure as missing ones.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import Linter, lint_paths
from repro.analysis.diagnostics import SuppressionIndex, Diagnostic

GOLDEN = Path(__file__).parent / "golden"
_MARKER = re.compile(r"#\s*!(RP\d{3})")

FIXTURES = {
    "RP001": GOLDEN / "rp001_bad.py",
    "RP002": GOLDEN / "rp002_bad.py",
    "RP003": GOLDEN / "rp003_bad.py",
    "RP004": GOLDEN / "benchmarks" / "fake" / "procedures.py",
    "RP005": GOLDEN / "rp005_bad.py",
    "RP006": GOLDEN / "hot" / "executors.py",
    "RP007": GOLDEN / "metrics" / "stream_bad.py",
    "RP008": GOLDEN / "faults" / "injector.py",
    "RP009": GOLDEN / "core" / "worker_loops.py",
}


def expected_markers(path: Path, rule: str) -> set[tuple[int, str]]:
    expected = set()
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        for match in _MARKER.finditer(text):
            if match.group(1) == rule:
                expected.add((lineno, rule))
    return expected


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_rule_fires_on_golden_fixture(rule):
    fixture = FIXTURES[rule]
    expected = expected_markers(fixture, rule)
    assert expected, f"fixture {fixture} has no {rule} markers"
    linter = Linter(root=GOLDEN, select=[rule])
    actual = {(d.line, d.rule) for d in linter.lint_file(fixture)}
    assert actual == expected


def test_registry_fixture_fires():
    fixture = GOLDEN / "benchmarks" / "__init__.py"
    expected = expected_markers(fixture, "RP005")
    linter = Linter(root=GOLDEN, select=["RP005"])
    actual = {(d.line, d.rule) for d in linter.lint_file(fixture)}
    assert actual == expected


def test_whole_golden_tree_only_fires_marked_rules():
    """Linting the full fixture tree finds markers and nothing else."""
    diagnostics = lint_paths([GOLDEN], root=GOLDEN)
    actual = {(Path(d.path).name, d.line, d.rule) for d in diagnostics}
    expected = set()
    for path in GOLDEN.rglob("*.py"):
        for lineno, text in enumerate(path.read_text().splitlines(), 1):
            for match in _MARKER.finditer(text):
                expected.add((path.name, lineno, match.group(1)))
    assert actual == expected


# -- framework mechanics -------------------------------------------------


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="RP999"):
        Linter(select=["RP999"])


def test_select_and_ignore_compose():
    linter = Linter(select=["RP001", "RP003"], ignore=["RP003"])
    assert [r.rule_id for r in linter.rules] == ["RP001"]


def test_syntax_error_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    (diag,) = Linter(root=tmp_path).lint_file(bad)
    assert diag.rule == "RP000"
    assert "syntax error" in diag.message


def test_line_suppression_all_rules():
    index = SuppressionIndex.from_source(
        ["x = time.time()  # repro: noqa"])
    diag = Diagnostic(path="f.py", line=1, col=1, rule="RP001", message="m")
    assert index.suppresses(diag)


def test_line_suppression_specific_rule_only():
    index = SuppressionIndex.from_source(
        ["x = time.time()  # repro: noqa[RP003]"])
    diag = Diagnostic(path="f.py", line=1, col=1, rule="RP001", message="m")
    assert not index.suppresses(diag)


def test_file_wide_suppression(tmp_path):
    source = (
        "# repro: noqa-file[RP001] generated fixture\n"
        "import time\n"
        "t = time.time()\n")
    diags = Linter(root=tmp_path).lint_source(
        source, tmp_path / "gen.py")
    assert [d for d in diags if d.rule == "RP001"] == []


def test_json_reporter_round_trips():
    import json

    from repro.analysis import render_json
    diag = Diagnostic(path="f.py", line=3, col=7, rule="RP002", message="m")
    payload = json.loads(render_json([diag]))
    assert payload["count"] == 1
    assert payload["diagnostics"][0]["rule"] == "RP002"
    assert payload["diagnostics"][0]["line"] == 3
