"""The merged tree itself must lint clean — the rules gate CI."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_src_tree_is_lint_clean():
    diagnostics = lint_paths([SRC], root=REPO_ROOT)
    assert diagnostics == [], "\n".join(d.format() for d in diagnostics)


def test_cli_lint_exits_zero_on_clean_tree(capsys):
    assert main(["lint", str(SRC)]) == 0


def test_cli_lint_exits_one_on_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RP001" in out


def test_cli_lint_json_format(tmp_path, capsys):
    import json

    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.sleep(1)\n")
    assert main(["lint", str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["diagnostics"][0]["rule"] == "RP001"


def test_cli_lint_explain_lists_all_rules(capsys):
    assert main(["lint", "--explain"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RP001", "RP002", "RP003", "RP004", "RP005", "RP006",
                    "RP007"):
        assert rule_id in out


def test_cli_lint_select_filters(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert main(["lint", str(bad), "--select", "RP002"]) == 0
