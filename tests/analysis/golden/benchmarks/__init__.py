"""RP005 registry fixture: ghost/ exists but is never imported."""  # !RP005
from .fake import FakeBenchmark  # !RP005

REGISTRY = {"other": object}
