"""Package deliberately missing from the registry fixture's imports."""
