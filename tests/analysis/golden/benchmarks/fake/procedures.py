"""RP004 golden fixture: SQL literals that must parse under the engine."""

COLS = "a, b"


def bad(conn) -> None:
    cur = conn.cursor()
    cur.execute("SELEC a FROM t")  # !RP004
    cur.execute(f"SELECT {COLS} FROM")  # !RP004
    cur.execute("INSERT INTO t (a) VALUE (?)", (1,))  # !RP004


def skipped_runtime_interpolation(conn, column: str) -> None:
    # Not statically checkable: interpolates a runtime value.
    conn.cursor().execute(f"SELECT {column} FROM t")


def fine(conn) -> None:
    cur = conn.cursor()
    cur.execute("SELECT a FROM t WHERE a = ?", (1,))
    cur.execute(f"SELECT {COLS} FROM t ORDER BY a")
