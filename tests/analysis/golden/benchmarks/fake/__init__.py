"""Sibling package referenced by the RP005 registry fixture."""

FakeBenchmark = None
