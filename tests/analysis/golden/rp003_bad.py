"""RP003 golden fixture: module-level random usage outside rand.py."""

import random
from random import randint  # !RP003


def sample() -> float:
    return random.random()  # !RP003


def make_unseeded() -> random.Random:
    return random.Random()  # !RP003


def suppressed() -> float:
    return random.random()  # repro: noqa[RP003] golden: suppression works


def fine(rng: random.Random) -> int:
    return rng.randrange(10)
