"""RP005 golden fixture: benchmark registration consistency."""


class BenchmarkModule:
    """Stand-in base class so the fixture is self-contained."""


class ReadA:
    default_weight = 10


class NegativeWeight:  # !RP005
    default_weight = -5


class EmptyBenchmark(BenchmarkModule):
    name = "empty"
    procedures = ()  # !RP005


class NoProcsBenchmark(BenchmarkModule):  # !RP005
    name = "noprocs"


class DuplicateBenchmark(BenchmarkModule):
    name = "dup"
    procedures = (ReadA, ReadA)  # !RP005


class UnresolvedBenchmark(BenchmarkModule):
    name = "unresolved"
    procedures = (ReadA, MissingProcedure)  # !RP005


class NegativeBenchmark(BenchmarkModule):
    name = "negative"
    procedures = (ReadA, NegativeWeight)


class FineBenchmark(BenchmarkModule):
    name = "fine"
    procedures = (ReadA,)
