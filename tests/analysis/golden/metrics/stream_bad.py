"""RP007 fixture: a streaming-metrics module that rescans samples."""


class LeakyStreamingMetrics:
    def __init__(self, results):
        self.results = results

    def throughput(self, window):
        rows = self.results.samples()  # !RP007
        return len([s for s in rows if s.status == "ok"]) / window

    def p95(self, results):
        values = sorted(results.latencies())  # !RP007
        return values[int(len(values) * 0.95)]

    def raw_peek(self, results):
        return results._samples[-1]  # !RP007
