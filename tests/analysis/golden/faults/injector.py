"""Golden fixture for RP008: exception discipline in retry/fault paths.

Lives under a ``faults/`` directory so the rule's scope heuristic
applies.  Lines expected to fire carry markers; the bare except also
trips RP006, which fires on bare excepts everywhere.
"""


class Injector:
    def attempt(self, run):
        try:
            return run()
        except:  # !RP006 # !RP008
            return None

    def attempt_broad(self, run):
        try:
            return run()
        except Exception:  # !RP008
            return None

    def attempt_broad_tuple(self, run):
        try:
            return run()
        except (ValueError, BaseException):  # !RP008
            return None

    def attempt_named_is_fine(self, run):
        try:
            return run()
        except (ValueError, ConnectionError):
            return None

    def cleanup_reraise_is_fine(self, run):
        try:
            return run()
        except Exception:
            run.rollback()
            raise
