"""RP002 golden fixture: acquire() without with/try-finally."""

import threading


def do_work() -> None:
    pass


class Holder:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.mutex = threading.Lock()
        self._cond = threading.Condition()

    def bad(self) -> None:
        self._lock.acquire()  # !RP002
        do_work()
        self._lock.release()

    def bad_condition(self) -> None:
        self._cond.acquire()  # !RP002
        do_work()
        self._cond.release()

    def good_with(self) -> None:
        with self._lock:
            do_work()

    def good_try_finally(self) -> None:
        self.mutex.acquire()
        try:
            do_work()
        finally:
            self.mutex.release()

    def good_lock_manager(self, txn) -> None:
        # The engine's 2PL manager releases via release_all, not here.
        self.lock_manager.acquire(txn, ("row", "t", 1), "X")

    def good_checked(self) -> bool:
        # Assigned results are presumed checked (non-blocking pattern).
        got = self._lock.acquire(blocking=False)
        return got
