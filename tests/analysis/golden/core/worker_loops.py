"""RP009 fixture: worker loops that take shared locks per sample."""


class SeedStyleExecutor:
    def _worker_loop(self, manager, worker_id):
        while manager.running:
            request = manager.queue.take(timeout=0.2)
            if request is None:
                continue
            sample = self._run(manager, request)
            manager.record(sample)  # !RP009

    def _execute(self, manager, worker_id, sample):
        manager.results.record(sample)  # !RP009
        manager.results.metrics.observe(  # !RP009
            sample.end, sample.txn_name, sample.latency, sample.status)

    def worker_flush(self, metrics, samples):
        for sample in samples:
            metrics.observe(sample.end, sample.txn_name,  # !RP009
                            sample.latency, sample.status)

    def _run(self, manager, request):
        return request


class BatchedExecutor:
    """The sanctioned shape: worker-local buffer, epoch flushes."""

    def _worker_loop(self, manager, worker_id):
        recorder = manager.results.buffered()
        while manager.running:
            batch = manager.queue.take_batch(16, timeout=0.2)
            if not batch:
                recorder.flush()
                continue
            for request in batch:
                recorder.add(self._run(manager, request))

    def _complete(self, manager, sample):
        # Orchestration callbacks (per event, not per worker iteration)
        # are out of RP009's scope.
        manager.record(sample)

    def _run(self, manager, request):
        return request
