"""RP006 golden fixture: swallowed errors (filename marks it hot-path)."""


def worker_loop(queue) -> None:
    while True:
        try:
            queue.take()
        except:  # noqa: E722  # !RP006
            pass


def hot_path_swallow(conn) -> None:
    try:
        conn.commit()
    except Exception:  # !RP006
        pass


def hot_path_tuple(conn) -> None:
    try:
        conn.commit()
    except (ValueError, BaseException):  # !RP006
        conn.log()


def fine_reraise(conn) -> None:
    try:
        conn.commit()
    except Exception:
        conn.rollback()
        raise


def fine_narrow(conn) -> None:
    try:
        conn.commit()
    except ValueError:
        pass
