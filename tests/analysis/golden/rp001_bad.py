"""RP001 golden fixture: wall-clock calls outside clock.py.

Lines carrying a ``!RP001`` trailing marker must produce one RP001
diagnostic; unmarked lines must stay silent.
"""

import time
from time import sleep  # !RP001


def deadline() -> float:
    return time.time() + 5.0  # !RP001


def nap() -> None:
    time.sleep(0.1)  # !RP001


def tick() -> float:
    return time.monotonic()  # !RP001


def suppressed() -> float:
    return time.monotonic()  # repro: noqa[RP001] golden: suppression works


def fine(clock) -> float:
    return clock.now()
