"""Runtime watchdog tests: inversions, guards, Condition interplay.

Everything here builds its own :class:`LockWatch`, so the module is
marked ``lockwatch_exempt`` — the global ``--lockwatch`` instrumentation
must not double-wrap the deliberately misbehaving locks.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.lockwatch import GuardedMapping, LockWatch
from repro.engine.locks import EXCLUSIVE, LockManager

pytestmark = pytest.mark.lockwatch_exempt


def run_thread(target) -> None:
    thread = threading.Thread(target=target)
    thread.start()
    thread.join(timeout=5.0)
    assert not thread.is_alive()


# -- lock-order inversions ----------------------------------------------


def test_detects_ab_ba_inversion():
    watch = LockWatch()
    lock_a = watch.wrap_lock(name="A")
    lock_b = watch.wrap_lock(name="B")

    with lock_a:
        with lock_b:
            pass

    def reversed_order():
        with lock_b:
            with lock_a:
                pass

    run_thread(reversed_order)
    assert len(watch.violations) == 1
    violation = watch.violations[0]
    assert violation.first == "B"
    assert violation.second == "A"
    with pytest.raises(AssertionError, match="lock-order inversion"):
        watch.assert_clean()


def test_detects_inversion_through_intermediate_lock():
    """A→B and B→C imply A before C; C→A closes the cycle."""
    watch = LockWatch()
    lock_a = watch.wrap_lock(name="A")
    lock_b = watch.wrap_lock(name="B")
    lock_c = watch.wrap_lock(name="C")

    with lock_a, lock_b:
        pass
    with lock_b, lock_c:
        pass

    def close_cycle():
        with lock_c, lock_a:
            pass

    run_thread(close_cycle)
    assert [v.second for v in watch.violations] == ["A"]


def test_consistent_order_is_clean():
    watch = LockWatch()
    lock_a = watch.wrap_lock(name="A")
    lock_b = watch.wrap_lock(name="B")
    for _ in range(3):
        with lock_a, lock_b:
            pass

    def same_order():
        with lock_a, lock_b:
            pass

    run_thread(same_order)
    watch.assert_clean()
    assert watch.order_graph() == {"A": {"B": 4}}


def test_reentrant_rlock_adds_no_self_edge():
    watch = LockWatch()
    rlock = watch.wrap_lock(threading.RLock(), name="R", kind="RLock")
    with rlock:
        with rlock:
            pass
    watch.assert_clean()
    assert watch.order_graph() == {}


def test_installed_patches_threading_factories():
    watch = LockWatch()
    with watch.installed():
        first = threading.Lock()
        second = threading.Lock()
        with first:
            with second:
                pass

        def reversed_order():
            with second:
                with first:
                    pass

        run_thread(reversed_order)
    # Factories restored on exit.
    assert type(threading.Lock()).__name__ != "_WatchedLock"
    assert len(watch.violations) == 1


def test_condition_wait_releases_held_state():
    """While waiting on a Condition the underlying lock is not 'held'."""
    watch = LockWatch()
    with watch.installed():
        condition = threading.Condition()
        other = threading.Lock()
        started = threading.Event()
        woken = []

        def waiter():
            with condition:
                started.set()
                condition.wait(timeout=5.0)
                woken.append(True)

        thread = threading.Thread(target=waiter)
        thread.start()
        assert started.wait(timeout=5.0)
        # The waiter holds nothing while blocked in wait(); taking the
        # condition here must not record condition-after-other edges from
        # the waiter's thread.
        with condition:
            with other:
                condition.notify_all()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
    assert woken == [True]
    watch.assert_clean()


# -- guarded fields ------------------------------------------------------


def test_guarded_mapping_flags_unlocked_access():
    watch = LockWatch()
    guard = watch.wrap_lock(name="guard")
    shared = GuardedMapping(watch, {}, guard, "shared")

    with guard:
        shared["k"] = 1  # guarded: fine
    assert not watch.guard_violations

    shared["k"] = 2  # unguarded write
    _ = shared["k"]  # unguarded read
    assert [v.operation for v in watch.guard_violations] == ["write", "read"]
    with pytest.raises(AssertionError, match="guarded-field"):
        watch.assert_clean()


def test_guard_lockmanager_accepts_clean_usage():
    watch = LockWatch()
    with watch.installed():
        manager = LockManager(timeout=0.5)
        watch.guard_lockmanager(manager)
        manager.acquire("txn1", ("row", "t", 1), EXCLUSIVE)
        assert manager.holds("txn1", ("row", "t", 1), EXCLUSIVE)
        manager.release_all("txn1")
    watch.assert_clean()


def test_guard_lockmanager_flags_direct_poke():
    watch = LockWatch()
    with watch.installed():
        manager = LockManager(timeout=0.5)
        watch.guard_lockmanager(manager)
        manager._entries.get(("row", "t", 1))  # race: no mutex held
    assert watch.guard_violations
    assert watch.guard_violations[0].target == "LockManager._entries"


def test_guard_lockmanager_requires_instrumented_mutex():
    watch = LockWatch()
    manager = LockManager()  # built outside installed(): raw mutex
    with pytest.raises(TypeError, match="not instrumented"):
        watch.guard_lockmanager(manager)


# -- LockManager resource-order recording --------------------------------


def test_resource_order_graph_and_inversions():
    watch = LockWatch()
    manager = LockManager(timeout=0.5)
    watch.watch_lockmanager(manager)

    row1, row2 = ("row", "t", 1), ("row", "t", 2)
    manager.acquire("txn1", row1, EXCLUSIVE)
    manager.acquire("txn1", row2, EXCLUSIVE)
    manager.release_all("txn1")

    graph = watch.resource_order_graph()
    assert graph == {row1: {row2: 1}}
    assert watch.resource_inversions() == []

    manager.acquire("txn2", row2, EXCLUSIVE)
    manager.acquire("txn2", row1, EXCLUSIVE)
    manager.release_all("txn2")

    pairs = watch.resource_inversions()
    assert pairs == [(row1, row2)] or pairs == [(row2, row1)]


# -- pytest fixture ------------------------------------------------------


def test_explicit_fixture_passes_clean_test(lockwatch):
    lock_a = lockwatch.wrap_lock(name="A")
    lock_b = lockwatch.wrap_lock(name="B")
    with lock_a, lock_b:
        pass
    assert lockwatch.order_graph() == {"A": {"B": 1}}
