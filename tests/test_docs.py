"""Documentation drift protection.

Keeps DESIGN.md / EXPERIMENTS.md / README.md honest: every bench they name
exists, and every bench that exists is documented.
"""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def bench_files() -> set[str]:
    return {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}


def test_every_bench_documented_in_experiments():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    missing = {name for name in bench_files() if name not in text}
    assert not missing, f"benches missing from EXPERIMENTS.md: {missing}"


def test_every_design_bench_target_exists():
    text = (ROOT / "DESIGN.md").read_text()
    referenced = set(re.findall(r"benchmarks/(bench_\w+\.py)", text))
    assert referenced, "DESIGN.md experiment index references no benches"
    ghosts = referenced - bench_files()
    assert not ghosts, f"DESIGN.md references missing benches: {ghosts}"


def test_every_bench_in_design_index():
    text = (ROOT / "DESIGN.md").read_text()
    missing = {name for name in bench_files() if name not in text}
    assert not missing, f"benches missing from DESIGN.md: {missing}"


def test_readme_examples_exist():
    text = (ROOT / "README.md").read_text()
    referenced = set(re.findall(r"examples/(\w+\.py)", text))
    assert referenced
    for name in referenced:
        assert (ROOT / "examples" / name).exists(), name


def test_readme_modules_exist():
    text = (ROOT / "README.md").read_text()
    for module_path in re.findall(r"`repro/([\w/]+\.py)`", text):
        assert (ROOT / "src" / "repro" / module_path).exists(), module_path


def test_deliverable_files_present():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "pyproject.toml"):
        assert (ROOT / name).exists(), name
    examples = list((ROOT / "examples").glob("*.py"))
    assert len(examples) >= 3
    assert (ROOT / "examples" / "quickstart.py").exists()
