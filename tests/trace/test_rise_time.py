"""Responsiveness metric: rise time after a rate change."""

import pytest

from repro.clock import SimClock
from repro.core import (Phase, SimulatedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.core.results import LatencySample, Results
from repro.engine import Database
from repro.trace import TraceAnalyzer

from ..conftest import MiniBenchmark


def test_rise_time_on_synthetic_step():
    results = Results()
    for second in range(20):
        rate = 10 if second < 10 else 50
        for i in range(rate):
            results.record(LatencySample("T", second + i / rate, 0.0, 0.001))
    analyzer = TraceAnalyzer(results)
    rise = analyzer.rise_time(change_at=10.0, target=50)
    assert rise == pytest.approx(1.0)


def test_rise_time_never_settles_returns_none():
    results = Results()
    for second in range(10):
        for i in range(10):
            results.record(LatencySample("T", second + i / 10, 0.0, 0.001))
    analyzer = TraceAnalyzer(results)
    assert analyzer.rise_time(change_at=0.0, target=100, horizon=8) is None


def test_rise_time_to_zero_target():
    results = Results()
    for i in range(10):
        results.record(LatencySample("T", i / 10, 0.0, 0.001))
    for i in range(3):  # trailing stragglers in second 1
        results.record(LatencySample("T", 1 + i / 10, 0.0, 0.001))
    analyzer = TraceAnalyzer(results)
    rise = analyzer.rise_time(change_at=1.0, target=0, horizon=5)
    assert rise == pytest.approx(2.0)


def test_rise_time_measured_on_simulated_run(db):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    clock = SimClock()
    cfg = WorkloadConfiguration(
        benchmark="mini", workers=8, seed=1,
        phases=[Phase(duration=10, rate=20), Phase(duration=10, rate=200)])
    manager = WorkloadManager(bench, cfg, clock=clock)
    executor = SimulatedExecutor(db, "oracle", clock)
    executor.add_workload(manager)
    executor.run()
    analyzer = TraceAnalyzer(manager.results)
    rise = analyzer.rise_time(change_at=10.0, target=200)
    # The queue-based design reaches the new target within the first
    # full second — the responsiveness the game's jumps rely on.
    assert rise is not None
    assert rise <= 2.0
