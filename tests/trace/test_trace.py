"""Trace writer round trips and analyzer metrics."""

import math

import pytest

from repro.core.results import LatencySample, Results, STATUS_ABORTED
from repro.trace import TraceAnalyzer, TraceWriter, read_trace


def make_results(per_second, seconds=10, txn="T", latency=0.01):
    results = Results()
    for second in range(seconds):
        for i in range(per_second(second)):
            results.record(LatencySample(
                txn, second + i / max(1, per_second(second)), 0.0, latency))
    return results


def test_trace_round_trip(tmp_path):
    results = make_results(lambda s: 5)
    results.record(LatencySample("X", 3.0, 0.5, 0.2, STATUS_ABORTED,
                                 worker_id=7, tenant="t9"))
    path = tmp_path / "trace.txt"
    with TraceWriter(path) as writer:
        count = writer.write_results(results)
    assert count == 51
    loaded = read_trace(path)
    assert len(loaded) == 51
    reloaded = [s for s in loaded.samples() if s.tenant == "t9"][0]
    assert reloaded.worker_id == 7
    assert reloaded.status == STATUS_ABORTED
    assert reloaded.queue_delay == pytest.approx(0.5)


def test_throughput_series_fills_gaps():
    results = Results()
    results.record(LatencySample("T", 0.5, 0.0, 0.01))
    results.record(LatencySample("T", 3.5, 0.0, 0.01))
    analyzer = TraceAnalyzer(results)
    assert analyzer.throughput_series() == [(0, 1), (1, 0), (2, 0), (3, 1)]
    assert analyzer.throughput_series(start=1, end=3) == [(1, 0), (2, 0)]


def test_per_txn_series():
    results = Results()
    results.record(LatencySample("A", 0.5, 0.0, 0.01))
    results.record(LatencySample("B", 0.6, 0.0, 0.01))
    analyzer = TraceAnalyzer(results)
    assert analyzer.per_txn_series("A") == [(0, 1)]


def test_jitter_zero_for_constant_series():
    analyzer = TraceAnalyzer(make_results(lambda s: 10))
    assert analyzer.jitter() == pytest.approx(0.0)


def test_jitter_positive_for_oscillating_series():
    analyzer = TraceAnalyzer(make_results(
        lambda s: 5 if s % 2 == 0 else 15))
    assert analyzer.jitter() > 0.3


def test_tracking_perfect_delivery():
    analyzer = TraceAnalyzer(make_results(lambda s: 50))
    report = analyzer.tracking(lambda t: 50.0, 0, 10)
    assert report.mean_abs_error == 0
    assert report.within_tolerance_fraction == 1.0
    assert report.passed()


def test_tracking_reports_shortfall():
    analyzer = TraceAnalyzer(make_results(lambda s: 30))
    report = analyzer.tracking(lambda t: 60.0, 0, 10)
    assert report.mean_delivered == pytest.approx(30.0)
    assert report.mean_rel_error == pytest.approx(0.5)
    assert not report.passed()
    assert report.max_overshoot == -30.0


def test_tracking_moving_target():
    analyzer = TraceAnalyzer(make_results(lambda s: 10 * (s + 1)))
    report = analyzer.tracking(lambda t: 10.0 * (int(t) + 1), 0, 10)
    assert report.within_tolerance_fraction == 1.0


def test_tracking_empty_window_raises():
    with pytest.raises(ValueError):
        TraceAnalyzer(Results()).tracking(lambda t: 1.0, 0, 10)


def test_rate_cap_violations():
    analyzer = TraceAnalyzer(make_results(
        lambda s: 110 if s == 4 else 90))
    assert analyzer.rate_cap_violations(cap=100) == 1
    assert analyzer.rate_cap_violations(cap=100, slack=15) == 0


def test_queue_delay_percentile():
    results = Results()
    for i in range(100):
        results.record(LatencySample("T", 0.0, i / 100.0, 0.01))
    analyzer = TraceAnalyzer(results)
    assert analyzer.queue_delay_percentile(50) == pytest.approx(0.5,
                                                                abs=0.02)
    assert TraceAnalyzer(Results()).queue_delay_percentile(50) == 0.0


def test_report_shape():
    analyzer = TraceAnalyzer(make_results(lambda s: 5))
    report = analyzer.report()
    assert set(report) == {"summary", "jitter", "series"}
