"""Shared fixtures: a fresh engine database and a miniature benchmark.

Also wires the lock-order/race watchdog (``repro.analysis.lockwatch``)
into pytest: run with ``--lockwatch`` to instrument every
``threading.Lock``/``RLock``/``Condition`` created during each test and
fail the test on lock-order inversions or guarded-field races.  Tests
that deliberately provoke violations opt out with the
``lockwatch_exempt`` marker.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.lockwatch import LockWatch
from repro.core.benchmark import BenchmarkModule
from repro.core.procedure import Procedure
from repro.engine import Database, connect


def pytest_addoption(parser):
    parser.addoption(
        "--lockwatch", action="store_true", default=False,
        help="instrument threading primitives with the lock-order "
             "watchdog and fail tests on inversions")


@pytest.fixture(autouse=True)
def _lockwatch_auto(request):
    """Test-wide watchdog, active only under ``--lockwatch``."""
    if not request.config.getoption("--lockwatch") or \
            request.node.get_closest_marker("lockwatch_exempt"):
        yield None
        return
    watch = LockWatch()
    with watch.installed():
        yield watch
    watch.assert_clean()


@pytest.fixture
def lockwatch():
    """Explicit watchdog for tests asserting on the order graph."""
    watch = LockWatch()
    with watch.installed():
        yield watch
    watch.assert_clean()


class ReadKv(Procedure):
    """Point-read one row of the kv table."""

    name = "Read"
    read_only = True
    default_weight = 70

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute("SELECT v FROM kv WHERE k = ?",
                    (rng.randrange(int(self.params["rows"])),))
        cur.fetchall()
        conn.commit()


class WriteKv(Procedure):
    """Increment one row of the kv table."""

    name = "Write"
    default_weight = 30

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute("UPDATE kv SET v = v + 1 WHERE k = ?",
                    (rng.randrange(int(self.params["rows"])),))
        conn.commit()


class MiniBenchmark(BenchmarkModule):
    """A two-transaction benchmark for driver-core and game tests."""

    name = "mini"
    domain = "Testing"
    procedures = (ReadKv, WriteKv)

    ROWS = 64

    def ddl(self):
        return ["CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL)"]

    def load_data(self, rng: random.Random) -> None:
        rows = max(1, int(self.ROWS * self.scale_factor))
        self.database.bulk_insert("kv", [(i, 0) for i in range(rows)])
        self.params["rows"] = rows


@pytest.fixture
def db() -> Database:
    return Database()


@pytest.fixture
def conn(db):
    connection = connect(db)
    yield connection
    connection.close()


@pytest.fixture
def mini_benchmark(db) -> MiniBenchmark:
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    return bench


def execute(conn, sql, params=()):
    """Run one statement and return the cursor."""
    cur = conn.cursor()
    cur.execute(sql, params)
    return cur
