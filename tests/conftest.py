"""Shared fixtures: a fresh engine database and a miniature benchmark."""

from __future__ import annotations

import random

import pytest

from repro.core.benchmark import BenchmarkModule
from repro.core.procedure import Procedure
from repro.engine import Database, connect


class ReadKv(Procedure):
    """Point-read one row of the kv table."""

    name = "Read"
    read_only = True
    default_weight = 70

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute("SELECT v FROM kv WHERE k = ?",
                    (rng.randrange(int(self.params["rows"])),))
        cur.fetchall()
        conn.commit()


class WriteKv(Procedure):
    """Increment one row of the kv table."""

    name = "Write"
    default_weight = 30

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute("UPDATE kv SET v = v + 1 WHERE k = ?",
                    (rng.randrange(int(self.params["rows"])),))
        conn.commit()


class MiniBenchmark(BenchmarkModule):
    """A two-transaction benchmark for driver-core and game tests."""

    name = "mini"
    domain = "Testing"
    procedures = (ReadKv, WriteKv)

    ROWS = 64

    def ddl(self):
        return ["CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL)"]

    def load_data(self, rng: random.Random) -> None:
        rows = max(1, int(self.ROWS * self.scale_factor))
        self.database.bulk_insert("kv", [(i, 0) for i in range(rows)])
        self.params["rows"] = rows


@pytest.fixture
def db() -> Database:
    return Database()


@pytest.fixture
def conn(db):
    connection = connect(db)
    yield connection
    connection.close()


@pytest.fixture
def mini_benchmark(db) -> MiniBenchmark:
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    return bench


def execute(conn, sql, params=()):
    """Run one statement and return the cursor."""
    cur = conn.cursor()
    cur.execute(sql, params)
    return cur
