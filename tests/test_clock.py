"""Clock abstractions: real, simulated, and the interruptible sleeper."""

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.clock import RealClock, SimClock, StoppableSleeper


def test_real_clock_monotonic():
    clock = RealClock()
    a = clock.now()
    clock.sleep(0.01)
    assert clock.now() > a
    assert not clock.is_virtual
    clock.sleep(-1)  # negative sleeps are no-ops


def test_sim_clock_starts_at_given_time():
    assert SimClock(5.0).now() == 5.0
    assert SimClock().is_virtual


def test_sim_clock_rejects_sleep():
    with pytest.raises(RuntimeError):
        SimClock().sleep(1)


def test_events_run_in_time_order():
    clock = SimClock()
    log = []
    clock.call_at(3.0, lambda: log.append("c"))
    clock.call_at(1.0, lambda: log.append("a"))
    clock.call_at(2.0, lambda: log.append("b"))
    clock.run()
    assert log == ["a", "b", "c"]
    assert clock.now() == 3.0


def test_same_time_events_fifo():
    clock = SimClock()
    log = []
    for i in range(5):
        clock.call_at(1.0, lambda i=i: log.append(i))
    clock.run()
    assert log == [0, 1, 2, 3, 4]


def test_past_events_clamped_to_now():
    clock = SimClock(10.0)
    fired = []
    clock.call_at(5.0, lambda: fired.append(clock.now()))
    clock.run()
    assert fired == [10.0]


def test_call_later():
    clock = SimClock(2.0)
    fired = []
    clock.call_later(3.0, lambda: fired.append(clock.now()))
    clock.run()
    assert fired == [5.0]


def test_events_scheduled_by_events():
    clock = SimClock()
    log = []

    def cascade(depth):
        log.append((clock.now(), depth))
        if depth < 3:
            clock.call_later(1.0, lambda: cascade(depth + 1))

    clock.call_at(0.0, lambda: cascade(0))
    clock.run()
    assert log == [(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 3)]


def test_run_until_leaves_future_events():
    clock = SimClock()
    fired = []
    clock.call_at(1.0, lambda: fired.append(1))
    clock.call_at(10.0, lambda: fired.append(10))
    clock.run_until(5.0)
    assert fired == [1]
    assert clock.now() == 5.0
    assert clock.pending() == 1
    clock.run()
    assert fired == [1, 10]


def test_step_returns_false_when_empty():
    clock = SimClock()
    assert clock.step() is False
    clock.call_at(1.0, lambda: None)
    assert clock.step() is True
    assert clock.step() is False


def test_sleeper_interruptible():
    sleeper = StoppableSleeper()
    woke = []

    def sleep_long():
        woke.append(sleeper.sleep(5.0))

    thread = threading.Thread(target=sleep_long, daemon=True)
    started = time.monotonic()
    thread.start()
    time.sleep(0.05)
    sleeper.wake()
    thread.join(2.0)
    assert woke == [True]
    assert time.monotonic() - started < 2.0


def test_sleeper_timeout_returns_false():
    sleeper = StoppableSleeper()
    assert sleeper.sleep(0.01) is False
    assert sleeper.sleep(0) is False


@given(times=st.lists(st.floats(min_value=0, max_value=1000,
                                allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_property_events_fire_in_nondecreasing_time_order(times):
    clock = SimClock()
    fired = []
    for when in times:
        clock.call_at(when, lambda: fired.append(clock.now()))
    clock.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)
