"""SQL dialect management: catalogs, overrides, DDL translation."""

import pytest

from repro.dialects import (StatementCatalog, dialect_names, translate_ddl)
from repro.errors import ConfigurationError


def test_known_dialects():
    names = dialect_names()
    for dbms in ("mysql", "postgres", "oracle", "derby", "inmem"):
        assert dbms in names


def test_translate_ddl_postgres_tinyint():
    sql = "CREATE TABLE t (a TINYINT, b DATETIME, c DOUBLE)"
    translated = translate_ddl(sql, "postgres")
    assert "SMALLINT" in translated
    assert "TIMESTAMP" in translated
    assert "DOUBLE PRECISION" in translated
    assert "TINYINT" not in translated


def test_translate_ddl_oracle_varchar():
    sql = "CREATE TABLE t (a VARCHAR(10), b BIGINT)"
    translated = translate_ddl(sql, "oracle")
    assert "VARCHAR2(10)" in translated
    assert "NUMBER(19)" in translated


def test_translate_ddl_case_insensitive():
    assert "SMALLINT" in translate_ddl("a tinyint", "postgres")


def test_translate_ddl_word_boundaries():
    # Column names containing type substrings must survive.
    sql = "CREATE TABLE t (mytinyintcol INT)"
    assert translate_ddl(sql, "postgres") == sql


def test_translate_ddl_inmem_is_identity():
    sql = "CREATE TABLE t (a TINYINT)"
    assert translate_ddl(sql, "inmem") == sql


def test_translate_ddl_unknown_dialect():
    with pytest.raises(ConfigurationError):
        translate_ddl("SELECT 1", "sqlserver")


def test_statement_catalog_canonical_and_override():
    catalog = StatementCatalog("tpcc")
    catalog.define("GetWarehouse",
                   "SELECT w_tax FROM warehouse WHERE w_id = ?")
    catalog.override("oracle", "GetWarehouse",
                     "SELECT /*+ INDEX(warehouse) */ w_tax "
                     "FROM warehouse WHERE w_id = ?")
    assert "/*+" not in catalog.resolve("GetWarehouse")
    assert "/*+" not in catalog.resolve("GetWarehouse", "mysql")
    assert "/*+" in catalog.resolve("GetWarehouse", "oracle")
    assert catalog.dialects_overridden("GetWarehouse") == ["oracle"]


def test_statement_catalog_rejects_duplicates_and_unknowns():
    catalog = StatementCatalog("x")
    catalog.define("A", "SELECT 1")
    with pytest.raises(ConfigurationError):
        catalog.define("A", "SELECT 2")
    with pytest.raises(ConfigurationError):
        catalog.override("mysql", "B", "SELECT 2")
    with pytest.raises(ConfigurationError):
        catalog.override("sqlserver", "A", "SELECT 2")
    with pytest.raises(ConfigurationError):
        catalog.resolve("missing")


def test_statement_names_sorted():
    catalog = StatementCatalog("x")
    catalog.define("B", "SELECT 2")
    catalog.define("A", "SELECT 1")
    assert catalog.statement_names() == ["A", "B"]


def test_translated_ddl_still_parses_in_engine():
    """Dialect output for the engine's own dialect must stay executable."""
    from repro.engine import Database
    db = Database()
    sql = translate_ddl(
        "CREATE TABLE t (a TINYINT NOT NULL, b DATETIME)", "derby")
    db.execute(None, sql)
    assert db.catalog.has("t")
