"""Rolling statistics collector: instantaneous feedback windows."""

import pytest

from repro.core.collector import StatisticsCollector


def test_instantaneous_throughput():
    collector = StatisticsCollector()
    for i in range(10):  # 2 txns per second for 5 seconds
        collector.record(float(i // 2), "A", 0.01, "ok")
    stats = collector.instantaneous(now=5.0, window=5.0)
    assert stats["throughput"] == pytest.approx(2.0)
    assert stats["avg_latency"] == pytest.approx(0.01)


def test_per_txn_breakdown():
    collector = StatisticsCollector()
    collector.record(1.0, "A", 0.010, "ok")
    collector.record(1.1, "A", 0.030, "ok")
    collector.record(1.2, "B", 0.100, "ok")
    stats = collector.instantaneous(now=2.0, window=2.0)
    assert stats["per_txn"]["A"]["avg_latency"] == pytest.approx(0.020)
    assert stats["per_txn"]["B"]["throughput"] == pytest.approx(0.5)


def test_aborts_tracked_separately():
    collector = StatisticsCollector()
    collector.record(1.0, "A", 0.0, "aborted")
    collector.record(1.0, "A", 0.01, "ok")
    stats = collector.instantaneous(now=2.0, window=2.0)
    assert stats["aborts_per_sec"] == pytest.approx(0.5)
    assert stats["throughput"] == pytest.approx(0.5)


def test_current_incomplete_second_excluded():
    collector = StatisticsCollector()
    collector.record(4.99, "A", 0.01, "ok")
    collector.record(5.01, "A", 0.01, "ok")  # second 5 is still open
    stats = collector.instantaneous(now=5.5, window=5.0)
    assert stats["throughput"] == pytest.approx(1 / 5)


def test_window_excludes_older_buckets():
    collector = StatisticsCollector()
    collector.record(0.5, "A", 0.01, "ok")
    collector.record(8.5, "A", 0.01, "ok")
    stats = collector.instantaneous(now=10.0, window=3.0)
    assert stats["throughput"] == pytest.approx(1 / 3)


def test_history_eviction():
    collector = StatisticsCollector(history_seconds=10)
    collector.record(0.0, "A", 0.01, "ok")
    collector.record(100.0, "A", 0.01, "ok")
    series = collector.throughput_series()
    assert [s for s, _ in series] == [100]


def test_throughput_series_bounds():
    collector = StatisticsCollector()
    for second in range(5):
        collector.record(second + 0.5, "A", 0.01, "ok")
    assert collector.throughput_series(start=1, end=3) == [(1, 1), (2, 1)]


def test_empty_collector():
    stats = StatisticsCollector().instantaneous(now=10.0)
    assert stats["throughput"] == 0.0
    assert stats["avg_latency"] == 0.0
    assert stats["per_txn"] == {}


def test_reset():
    collector = StatisticsCollector()
    collector.record(1.0, "A", 0.01, "ok")
    collector.reset()
    assert collector.throughput_series() == []
