"""Centralized request queue: arrival gating, postponement, pausing."""

import threading
import time

import pytest

from repro.clock import SimClock
from repro.core.requestqueue import (POLICY_BACKLOG, POLICY_CAP, Request,
                                     RequestQueue)
from repro.errors import ConfigurationError


def test_poll_respects_arrival_time():
    clock = SimClock()
    queue = RequestQueue(clock=clock)
    queue.offer_batch([0.5, 0.7])
    assert queue.poll(0.4) is None
    request = queue.poll(0.5)
    assert request is not None and request.arrival_time == 0.5
    assert queue.poll(0.6) is None
    assert queue.poll(0.7) is not None


def test_fifo_order_and_seq():
    queue = RequestQueue(clock=SimClock())
    queue.offer_batch([0.1, 0.2, 0.3])
    takes = [queue.poll(1.0) for _ in range(3)]
    assert [t.arrival_time for t in takes] == [0.1, 0.2, 0.3]
    assert takes[0].seq < takes[1].seq < takes[2].seq


def test_cap_policy_sheds_stale_requests():
    """Unserved requests are postponed when the next batch arrives."""
    queue = RequestQueue(clock=SimClock(), policy=POLICY_CAP)
    queue.offer_batch([0.0, 0.5])  # never served
    shed = queue.offer_batch([1.0, 1.5])
    assert shed == 2
    assert queue.postponed == 2
    assert len(queue) == 2
    assert queue.poll(2.0).arrival_time == 1.0


def test_backlog_policy_keeps_everything():
    queue = RequestQueue(clock=SimClock(), policy=POLICY_BACKLOG)
    queue.offer_batch([0.0, 0.5])
    shed = queue.offer_batch([1.0, 1.5])
    assert shed == 0
    assert len(queue) == 4


def test_unknown_policy_rejected():
    with pytest.raises(ConfigurationError):
        RequestQueue(policy="magic")


def test_pause_blocks_poll():
    queue = RequestQueue(clock=SimClock())
    queue.offer_batch([0.0])
    queue.pause()
    assert queue.poll(1.0) is None
    queue.resume()
    assert queue.poll(1.0) is not None


def test_clear_drops_pending():
    queue = RequestQueue(clock=SimClock())
    queue.offer_batch([0.0, 0.1, 0.2])
    assert queue.clear() == 3
    assert len(queue) == 0


def test_shutdown_unblocks_take():
    queue = RequestQueue()  # real clock
    result = {}

    def taker():
        result["request"] = queue.take(timeout=5.0)

    thread = threading.Thread(target=taker, daemon=True)
    thread.start()
    time.sleep(0.05)
    queue.shutdown()
    thread.join(2.0)
    assert result["request"] is None


def test_take_blocks_until_arrival_time():
    queue = RequestQueue()  # real clock
    now = queue.clock.now()
    queue.offer_batch([now + 0.15])
    started = time.monotonic()
    request = queue.take(timeout=2.0)
    waited = time.monotonic() - started
    assert request is not None
    assert waited >= 0.10


def test_take_timeout_returns_none():
    queue = RequestQueue()
    started = time.monotonic()
    assert queue.take(timeout=0.1) is None
    assert time.monotonic() - started < 1.0


def test_take_wakes_on_offer():
    queue = RequestQueue()
    result = {}

    def taker():
        result["request"] = queue.take(timeout=5.0)

    thread = threading.Thread(target=taker, daemon=True)
    thread.start()
    time.sleep(0.05)
    queue.offer_batch([queue.clock.now()])
    thread.join(2.0)
    assert result["request"] is not None


def test_counters():
    queue = RequestQueue(clock=SimClock())
    queue.offer_batch([0.0, 0.1])
    queue.poll(1.0)
    assert queue.offered == 2
    assert queue.taken == 1


def test_next_arrival():
    queue = RequestQueue(clock=SimClock())
    assert queue.next_arrival() is None
    queue.offer_batch([3.5])
    assert queue.next_arrival() == 3.5


def test_clear_counts_dropped_as_postponed():
    """Cleared requests were offered but never delivered: postponed."""
    queue = RequestQueue(clock=SimClock())
    queue.offer_batch([0.0, 0.1, 0.2])
    assert queue.clear() == 3
    assert queue.postponed == 3
    assert queue.clear() == 0  # idempotent, no double counting
    assert queue.postponed == 3


def test_counters_invariant_across_mid_run_clear():
    """offered == taken + postponed + depth survives a clear()."""
    queue = RequestQueue(clock=SimClock(), policy=POLICY_CAP)
    queue.offer_batch([0.0, 0.1, 0.2, 0.3])
    queue.poll(1.0)
    queue.poll(1.0)
    queue.clear()  # rate-changing phase transition
    queue.offer_batch([1.0, 1.1])
    queue.poll(2.0)
    counters = queue.counters()
    assert counters == {"offered": 6, "taken": 3, "postponed": 2,
                        "depth": 1}
    assert counters["offered"] == counters["taken"] \
        + counters["postponed"] + counters["depth"]


def test_counters_invariant_with_cap_shedding():
    queue = RequestQueue(clock=SimClock(), policy=POLICY_CAP)
    queue.offer_batch([0.0, 0.5])
    queue.offer_batch([1.0, 1.5])  # sheds the stale pair
    queue.poll(2.0)
    counters = queue.counters()
    assert counters["offered"] == counters["taken"] \
        + counters["postponed"] + counters["depth"]


def test_clear_wakes_blocked_take():
    """A taker sleeping until a cleared request's arrival re-checks.

    White-box: record the condition waits.  The taker first waits for
    the (far-future) head arrival; after clear() it must wake and fall
    back to an indefinite wait instead of sleeping out the stale
    arrival, then exit promptly on shutdown.
    """
    queue = RequestQueue()  # real clock
    waits = []
    original_wait = queue._not_empty.wait

    def recording_wait(timeout=None):
        waits.append(timeout)
        return original_wait(timeout)

    queue._not_empty.wait = recording_wait
    queue.offer_batch([queue.clock.now() + 30.0])
    result = {}

    def taker():
        result["request"] = queue.take()

    thread = threading.Thread(target=taker, daemon=True)
    thread.start()
    time.sleep(0.1)
    assert waits and waits[0] > 1.0  # parked until the stale arrival
    assert queue.clear() == 1
    time.sleep(0.1)
    assert waits[-1] is None  # re-checked: no arrival left to wait for
    queue.shutdown()
    thread.join(2.0)
    assert not thread.is_alive()
    assert result["request"] is None
