"""Executor features: per-worker heterogeneity, isolation, policies."""

import pytest

from repro.clock import SimClock
from repro.core import (Phase, POLICY_BACKLOG, RATE_DISABLED,
                        SimulatedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.engine import Database

from ..conftest import MiniBenchmark


def build(db, phases, workers=4, worker_think=None, isolation=None,
          queue_policy="cap"):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    clock = SimClock()
    kwargs = {"isolation": isolation} if isolation else {}
    cfg = WorkloadConfiguration(benchmark="mini", workers=workers, seed=1,
                                phases=phases, **kwargs)
    manager = WorkloadManager(bench, cfg, clock=clock,
                              queue_policy=queue_policy)
    executor = SimulatedExecutor(db, "oracle", clock)
    executor.add_workload(manager, worker_think=worker_think)
    return executor, manager


def test_worker_think_slows_specific_workers(db):
    executor, manager = build(
        db, [Phase(duration=10, rate=RATE_DISABLED)], workers=2,
        worker_think=lambda wid: 1.0 if wid == 0 else 0.0)
    executor.run()
    by_worker = {}
    for sample in manager.results.samples():
        by_worker[sample.worker_id] = by_worker.get(sample.worker_id, 0) + 1
    # Worker 0 does ~1 txn/s; worker 1 runs flat out.
    assert by_worker[0] <= 12
    assert by_worker[1] > by_worker[0] * 20


def test_snapshot_isolation_workload_runs(db):
    executor, manager = build(
        db, [Phase(duration=5, rate=100)], isolation="snapshot")
    executor.run()
    assert manager.results.committed() + manager.results.aborted() == 500
    # SI may abort on write-write conflicts but most commits succeed.
    assert manager.results.committed() > 450


def test_backlog_policy_catches_up_after_pause(db):
    executor, manager = build(
        db, [Phase(duration=12, rate=100)], workers=16,
        queue_policy=POLICY_BACKLOG)
    executor.at(4.0, manager.pause)
    executor.at(7.0, manager.resume)
    executor.run()
    # Nothing postponed: the backlog policy retains all requests...
    assert manager.results.postponed == 0
    # ...and delivers them in a catch-up burst above the nominal rate.
    series = dict(manager.results.per_second_throughput())
    assert max(series.values()) > 150


def test_cap_policy_sheds_during_pause(db):
    executor, manager = build(
        db, [Phase(duration=12, rate=100)], workers=16,
        queue_policy="cap")
    executor.at(4.0, manager.pause)
    executor.at(7.0, manager.resume)
    executor.run()
    assert manager.results.postponed >= 200  # ~3 paused seconds shed
    series = dict(manager.results.per_second_throughput())
    assert max(series.values()) <= 101
