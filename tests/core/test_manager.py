"""WorkloadManager: phases, dynamic control, status reporting."""

import random

import pytest

from repro.clock import SimClock
from repro.core import (Phase, RATE_DISABLED, WorkloadConfiguration,
                        WorkloadManager)
from repro.errors import ConfigurationError


def make_manager(mini_benchmark, phases=None, **kwargs):
    cfg = WorkloadConfiguration(
        benchmark="mini", workers=2, seed=1,
        phases=phases or [
            Phase(duration=10, rate=100, weights={"Read": 70, "Write": 30}),
            Phase(duration=10, rate=50, weights={"Read": 100}),
        ], **kwargs)
    return WorkloadManager(mini_benchmark, cfg, clock=SimClock())


def test_requires_phases(mini_benchmark):
    with pytest.raises(ConfigurationError):
        WorkloadManager(mini_benchmark, WorkloadConfiguration(
            benchmark="mini", phases=[]), clock=SimClock())


def test_rejects_unknown_txn_in_phase(mini_benchmark):
    with pytest.raises(ConfigurationError):
        make_manager(mini_benchmark, phases=[
            Phase(duration=5, rate=1, weights={"Nope": 100})])


def test_tick_emits_batches_and_advances_phases(mini_benchmark):
    manager = make_manager(mini_benchmark)
    manager.begin_run(0.0)
    assert len(manager.tick(0.0)) == 100
    assert manager.phase_index == 0
    assert len(manager.tick(10.0)) == 50  # second phase
    assert manager.phase_index == 1
    assert manager.tick(20.0) is None  # finished
    assert manager.finished


def test_cannot_start_twice(mini_benchmark):
    manager = make_manager(mini_benchmark)
    manager.begin_run(0.0)
    with pytest.raises(ConfigurationError):
        manager.begin_run(1.0)


def test_rate_override_and_phase_reset(mini_benchmark):
    manager = make_manager(mini_benchmark)
    manager.begin_run(0.0)
    manager.tick(0.0)
    manager.set_rate(10)
    assert manager.current_rate() == 10
    assert len(manager.tick(1.0)) == 10
    # Phase transition restores the configured parameters.
    manager.tick(10.0)
    assert manager.current_rate() == 50


def test_weights_override(mini_benchmark):
    manager = make_manager(mini_benchmark)
    manager.begin_run(0.0)
    manager.set_weights({"Write": 100})
    rng = random.Random(1)
    names = {manager.sample_txn_name(rng) for _ in range(50)}
    assert names == {"Write"}


def test_weights_override_validation(mini_benchmark):
    manager = make_manager(mini_benchmark)
    with pytest.raises(ConfigurationError):
        manager.set_weights({"Ghost": 100})
    with pytest.raises(ConfigurationError):
        manager.set_weights({})


def test_preset_mixture(mini_benchmark):
    manager = make_manager(mini_benchmark)
    manager.begin_run(0.0)
    manager.set_preset_mixture("read-only")
    assert manager.current_weights() == {"Read": 100.0}
    manager.set_preset_mixture("super-writes")
    assert manager.current_weights() == {"Write": 100.0}
    with pytest.raises(ConfigurationError):
        manager.set_preset_mixture("turbo")


def test_closed_loop_detection(mini_benchmark):
    manager = make_manager(mini_benchmark, phases=[
        Phase(duration=5, rate=RATE_DISABLED,
              weights={"Read": 100})])
    manager.begin_run(0.0)
    assert manager.closed_loop
    assert manager.tick(0.0) == []


def test_dynamic_switch_to_closed_loop(mini_benchmark):
    manager = make_manager(mini_benchmark)
    manager.begin_run(0.0)
    manager.set_rate(RATE_DISABLED)
    assert manager.closed_loop
    assert manager.tick(1.0) == []
    manager.set_rate(25)
    assert len(manager.tick(2.0)) == 25


def test_pause_resume(mini_benchmark):
    manager = make_manager(mini_benchmark)
    manager.begin_run(0.0)
    manager.tick(0.0)
    manager.pause()
    assert manager.paused
    assert manager.queue.poll(5.0) is None
    manager.resume()
    assert manager.queue.poll(5.0) is not None


def test_think_time_override(mini_benchmark):
    manager = make_manager(mini_benchmark)
    manager.begin_run(0.0)
    manager.set_think_time(0.5)
    assert manager.current_think_time() == 0.5
    with pytest.raises(ConfigurationError):
        manager.set_think_time(-1)


def test_stop_shuts_queue(mini_benchmark):
    manager = make_manager(mini_benchmark)
    manager.begin_run(0.0)
    manager.tick(0.0)
    manager.stop()
    assert manager.finished
    assert manager.tick(1.0) is None


def test_control_change_callback_fired(mini_benchmark):
    manager = make_manager(mini_benchmark)
    calls = []
    manager.on_control_change = lambda: calls.append(1)
    manager.begin_run(0.0)
    manager.set_rate(5)
    manager.pause()
    manager.resume()
    assert len(calls) == 3


def test_status_shape(mini_benchmark):
    manager = make_manager(mini_benchmark)
    manager.begin_run(0.0)
    manager.tick(0.0)
    status = manager.status(now=1.0)
    for key in ("benchmark", "tenant", "state", "phase_index", "rate",
                "weights", "throughput", "avg_latency", "per_txn",
                "queue_depth", "postponed"):
        assert key in status
    assert status["benchmark"] == "mini"
    assert status["rate"] == 100


def test_default_weights_used_when_phase_has_none(mini_benchmark):
    manager = make_manager(mini_benchmark, phases=[
        Phase(duration=5, rate=10)])
    manager.begin_run(0.0)
    weights = manager.current_weights()
    assert weights["Read"] == 70.0
    assert weights["Write"] == 30.0


def test_rate_change_transition_sheds_and_counts_postponed(mini_benchmark):
    """Cap policy: pending arrivals die with the old rate, counted."""
    manager = make_manager(mini_benchmark)  # phase rates 100 -> 50
    manager.begin_run(0.0)
    manager.tick(0.0)  # 100 arrivals queued, none served
    manager.tick(10.0)  # transition into the 50 tps phase
    counters = manager.queue.counters()
    assert manager.results.postponed >= 100  # the stale batch
    assert counters["offered"] == counters["taken"] \
        + counters["postponed"] + counters["depth"]


def test_same_rate_transition_keeps_queue(mini_benchmark):
    manager = make_manager(mini_benchmark, phases=[
        Phase(duration=10, rate=100), Phase(duration=10, rate=100)])
    manager.begin_run(0.0)
    manager.tick(0.0)
    before = manager.results.postponed
    manager.tick(10.0)  # same rate: nothing shed by the transition
    # (offer_batch itself may shed stale arrivals under cap policy,
    # but _enter_phase must not clear() on an equal-rate hop.)
    assert manager.phase_index == 1
    assert manager.results.postponed >= before


def test_metrics_payload_shape(mini_benchmark):
    manager = make_manager(mini_benchmark)
    manager.begin_run(0.0)
    manager.tick(0.0)
    payload = manager.metrics(now=5.0, window=5.0)
    assert payload["benchmark"] == "mini"
    assert payload["tenant"] == manager.tenant
    assert payload["state"] == "running"
    assert set(payload["queue"]) == {"offered", "taken", "postponed",
                                     "depth", "shards"}
    assert payload["queue"]["offered"] == 100
    assert payload["queue"]["shards"] == manager.queue.shards
    assert payload["recording"] == manager.results.recorder_stats()
    assert "throughput" in payload["window"]
    assert "total" in payload["latency"]
    assert payload["bins"]["bins_per_decade"] == 32
    assert payload["elapsed"] == pytest.approx(5.0)
