"""Trace-driven workload replay."""

import pytest

from repro.clock import SimClock
from repro.core import (SimulatedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.core.replay import (phases_from_csv, phases_from_results,
                               phases_from_series)
from repro.core.results import LatencySample, Results
from repro.errors import ConfigurationError

from ..conftest import MiniBenchmark


def test_phases_from_series_basic():
    phases = phases_from_series([(10, 50), (5, 200), (10, 50)])
    assert [p.duration for p in phases] == [10, 5, 10]
    assert [p.rate for p in phases] == [50, 200, 50]
    assert phases[0].name == "replay-0"


def test_adjacent_equal_rates_merged():
    phases = phases_from_series([(10, 50), (10, 50), (5, 100)])
    assert len(phases) == 2
    assert phases[0].duration == 20


def test_zero_rate_clamped_to_minimum():
    phases = phases_from_series([(10, 0)])
    assert phases[0].rate == pytest.approx(0.1)


def test_invalid_series_rejected():
    with pytest.raises(ConfigurationError):
        phases_from_series([])
    with pytest.raises(ConfigurationError):
        phases_from_series([(0, 10)])


def test_phases_from_csv(tmp_path):
    path = tmp_path / "profile.csv"
    path.write_text(
        "# production trace, 2026-07-01\n"
        "duration,rate\n"
        "30,120\n"
        "60,480\n"
        "30,120\n")
    phases = phases_from_csv(path, weights={"Read": 100})
    assert [p.rate for p in phases] == [120, 480, 120]
    assert phases[1].weights == {"Read": 100}


def test_phases_from_csv_malformed(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("30\n")
    with pytest.raises(ConfigurationError):
        phases_from_csv(path)


def test_phases_from_results_buckets_and_scale():
    results = Results()
    for second in range(20):
        rate = 10 if second < 10 else 30
        for i in range(rate):
            results.record(LatencySample("T", second + i / rate, 0.0,
                                         0.001))
    phases = phases_from_results(results, bucket_seconds=10, scale=2.0)
    assert [p.rate for p in phases] == [20.0, 60.0]
    with pytest.raises(ConfigurationError):
        phases_from_results(Results())
    with pytest.raises(ConfigurationError):
        phases_from_results(results, bucket_seconds=0)


def test_replayed_profile_reproduces_original_shape(db):
    """Record a run, extract its profile, replay it: same series."""
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    clock = SimClock()
    original_phases = phases_from_series([(6, 40), (6, 160), (6, 80)])
    cfg = WorkloadConfiguration(benchmark="mini", workers=8, seed=1,
                                phases=original_phases)
    manager = WorkloadManager(bench, cfg, clock=clock)
    executor = SimulatedExecutor(db, "oracle", clock)
    executor.add_workload(manager)
    executor.run()

    replay_phases = phases_from_results(manager.results, bucket_seconds=6)
    assert [round(p.rate) for p in replay_phases] == [40, 160, 80]

    db2 = type(db)()
    bench2 = MiniBenchmark(db2, seed=42)
    bench2.load()
    clock2 = SimClock()
    cfg2 = WorkloadConfiguration(benchmark="mini", workers=8, seed=1,
                                 phases=replay_phases)
    manager2 = WorkloadManager(bench2, cfg2, clock=clock2)
    executor2 = SimulatedExecutor(db2, "oracle", clock2)
    executor2.add_workload(manager2)
    executor2.run()
    original = dict(manager.results.per_second_throughput())
    replayed = dict(manager2.results.per_second_throughput())
    for second in range(1, 17):
        assert replayed.get(second, 0) == pytest.approx(
            original.get(second, 0), abs=2)
