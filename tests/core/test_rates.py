"""Arrival schedules: exact counts, interleaving, fractional rates."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rates import (ArrivalSchedule, exponential_offsets,
                              uniform_offsets)
from repro.errors import ConfigurationError


def test_uniform_offsets_evenly_spaced():
    offsets = uniform_offsets(4)
    assert offsets == [0.0, 0.25, 0.5, 0.75]
    assert uniform_offsets(0) == []


def test_exponential_offsets_sorted_in_unit_interval():
    rng = random.Random(3)
    offsets = exponential_offsets(100, rng)
    assert offsets == sorted(offsets)
    assert all(0.0 <= o < 1.0 for o in offsets)
    assert len(offsets) == 100


def test_exact_count_per_second():
    schedule = ArrivalSchedule(250, "uniform")
    batch = schedule.batch(10.0)
    assert len(batch) == 250
    assert all(10.0 <= t < 11.0 for t in batch)


def test_fractional_rate_long_run_exact():
    """2.5 tps must deliver exactly 25 arrivals over 10 seconds."""
    schedule = ArrivalSchedule(2.5, "uniform")
    total = sum(len(schedule.batch(float(s))) for s in range(10))
    assert total == 25


def test_sub_one_rate():
    schedule = ArrivalSchedule(0.25, "uniform")
    counts = [len(schedule.batch(float(s))) for s in range(8)]
    assert sum(counts) == 2
    assert max(counts) == 1


def test_rate_change_applies_next_batch():
    schedule = ArrivalSchedule(10, "uniform")
    assert len(schedule.batch(0.0)) == 10
    schedule.set_rate(40)
    assert len(schedule.batch(1.0)) == 40


def test_invalid_rates_rejected():
    with pytest.raises(ConfigurationError):
        ArrivalSchedule(0)
    schedule = ArrivalSchedule(1)
    with pytest.raises(ConfigurationError):
        schedule.set_rate(-1)


def test_invalid_arrival_kind_rejected():
    with pytest.raises(ConfigurationError):
        ArrivalSchedule(10, "weird")


def test_exponential_schedule_reproducible_with_seed():
    a = ArrivalSchedule(50, "exponential", random.Random(9))
    b = ArrivalSchedule(50, "exponential", random.Random(9))
    assert a.batch(0.0) == b.batch(0.0)


def test_stream_advances_seconds():
    schedule = ArrivalSchedule(3, "uniform")
    stream = schedule.stream(5.0)
    first = next(stream)
    second = next(stream)
    assert all(5.0 <= t < 6.0 for t in first)
    assert all(6.0 <= t < 7.0 for t in second)


@given(rate=st.floats(min_value=0.1, max_value=500),
       seconds=st.integers(min_value=1, max_value=60))
@settings(max_examples=80, deadline=None)
def test_long_run_count_matches_rate(rate, seconds):
    """Property: arrivals never exceed the target and lag by < 1 txn."""
    schedule = ArrivalSchedule(rate, "uniform")
    total = sum(len(schedule.batch(float(s))) for s in range(seconds))
    deficit = rate * seconds - total
    assert -1e-6 <= deficit < 1.0 + 1e-6


@given(rate=st.integers(min_value=1, max_value=300))
@settings(max_examples=40, deadline=None)
def test_batch_timestamps_monotonic_and_bounded(rate):
    schedule = ArrivalSchedule(rate, "exponential", random.Random(4))
    batch = schedule.batch(7.0)
    assert batch == sorted(batch)
    assert all(7.0 <= t < 8.0 for t in batch)
