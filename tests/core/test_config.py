"""Workload configuration: dict/JSON/XML round trips and validation."""

import pytest

from repro.core.config import WorkloadConfiguration
from repro.core.phase import RATE_DISABLED, RATE_UNLIMITED
from repro.errors import ConfigurationError


def test_from_dict_minimal():
    cfg = WorkloadConfiguration.from_dict({"benchmark": "ycsb"})
    assert cfg.benchmark == "ycsb"
    assert cfg.workers == 8
    assert cfg.phases == []


def test_from_dict_with_phases():
    cfg = WorkloadConfiguration.from_dict({
        "benchmark": "tpcc",
        "scale_factor": 2,
        "workers": 4,
        "seed": 7,
        "phases": [
            {"duration": 30, "rate": 100, "weights": {"NewOrder": 100},
             "arrival": "exponential", "think_time": 0.01, "name": "warm"},
            {"duration": 60, "rate": "disabled"},
        ],
    })
    assert len(cfg.phases) == 2
    assert cfg.phases[0].arrival == "exponential"
    assert cfg.phases[0].name == "warm"
    assert cfg.phases[1].rate == RATE_DISABLED


def test_from_dict_requires_benchmark():
    with pytest.raises(ConfigurationError):
        WorkloadConfiguration.from_dict({"workers": 2})


def test_dict_round_trip():
    cfg = WorkloadConfiguration.from_dict({
        "benchmark": "voter", "workers": 2, "seed": 1,
        "phases": [{"duration": 5, "rate": 10, "weights": {"Vote": 100}}],
    })
    again = WorkloadConfiguration.from_dict(cfg.to_dict())
    assert again.to_dict() == cfg.to_dict()


def test_json_round_trip(tmp_path):
    cfg = WorkloadConfiguration.from_dict({
        "benchmark": "voter",
        "phases": [{"duration": 5, "rate": 10}],
    })
    path = tmp_path / "config.json"
    cfg.to_json(path)
    loaded = WorkloadConfiguration.from_json(path)
    assert loaded.benchmark == "voter"
    assert loaded.phases[0].rate == 10


def test_xml_oltpbench_style(tmp_path):
    path = tmp_path / "config.xml"
    path.write_text("""
    <parameters>
        <benchmark>YCSB</benchmark>
        <scalefactor>2</scalefactor>
        <terminals>16</terminals>
        <isolation>serializable</isolation>
        <transactiontypes>
            <transactiontype><name>ReadRecord</name></transactiontype>
            <transactiontype><name>UpdateRecord</name></transactiontype>
        </transactiontypes>
        <works>
            <work>
                <time>30</time>
                <rate>500</rate>
                <weights>80,20</weights>
            </work>
            <work>
                <time>10</time>
                <rate>unlimited</rate>
                <weights>50,50</weights>
                <arrival>exponential</arrival>
            </work>
        </works>
    </parameters>
    """)
    cfg = WorkloadConfiguration.from_xml(path)
    assert cfg.benchmark == "ycsb"
    assert cfg.scale_factor == 2.0
    assert cfg.workers == 16
    assert cfg.phases[0].rate == 500.0
    assert cfg.phases[0].weights == {"readrecord": 80.0,
                                     "updaterecord": 20.0}
    assert cfg.phases[1].rate == RATE_UNLIMITED
    assert cfg.phases[1].arrival == "exponential"


def test_xml_missing_benchmark_rejected(tmp_path):
    path = tmp_path / "bad.xml"
    path.write_text("<parameters><works/></parameters>")
    with pytest.raises(ConfigurationError):
        WorkloadConfiguration.from_xml(path)


def test_xml_weight_count_mismatch(tmp_path):
    path = tmp_path / "bad.xml"
    path.write_text("""
    <parameters>
        <benchmark>x</benchmark>
        <transactiontypes>
            <transactiontype><name>A</name></transactiontype>
        </transactiontypes>
        <works><work><time>5</time><rate>1</rate>
            <weights>50,50</weights></work></works>
    </parameters>
    """)
    with pytest.raises(ConfigurationError):
        WorkloadConfiguration.from_xml(path)


def test_validated_against_rejects_unknown_txn():
    cfg = WorkloadConfiguration.from_dict({
        "benchmark": "x",
        "phases": [{"duration": 5, "weights": {"Nope": 100}}],
    })
    with pytest.raises(ConfigurationError):
        cfg.validated_against(["Yes"])
    cfg.validated_against(["Nope"])  # fine when known


def test_invalid_workers_and_scale():
    with pytest.raises(ConfigurationError):
        WorkloadConfiguration(benchmark="x", workers=0)
    with pytest.raises(ConfigurationError):
        WorkloadConfiguration(benchmark="x", scale_factor=0)


def test_total_duration():
    cfg = WorkloadConfiguration.from_dict({
        "benchmark": "x",
        "phases": [{"duration": 5}, {"duration": 7.5}],
    })
    assert cfg.total_duration() == 12.5
