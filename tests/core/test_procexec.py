"""Process-per-tenant executor: barrier, relay, results fidelity."""

import pytest

from repro.core import ProcessExecutor, TenantSpec, WorkloadConfiguration
from repro.core.phase import Phase
from repro.errors import ConfigurationError


def make_spec(i, rate=150, duration=2.0, benchmark="voter"):
    config = WorkloadConfiguration(
        benchmark=benchmark, scale_factor=0.1, workers=2, seed=42 + i,
        tenant=f"tenant-{i}",
        phases=[Phase(duration=duration, rate=rate)])
    return TenantSpec(config=config, queue_shards=2, take_batch=8)


def test_requires_tenants():
    with pytest.raises(ConfigurationError):
        ProcessExecutor().run()


def test_duplicate_tenant_rejected():
    executor = ProcessExecutor()
    executor.add_tenant(make_spec(0))
    with pytest.raises(ConfigurationError):
        executor.add_tenant(make_spec(0))


def test_two_tenant_run_relays_results():
    executor = ProcessExecutor(stats_interval=0.5)
    for i in range(2):
        executor.add_tenant(make_spec(i))
    report = executor.run(timeout=15.0)
    assert report["ok"], report
    assert report["errors"] == {}
    per_tenant = executor.per_tenant_results()
    assert set(per_tenant) == {"tenant-0", "tenant-1"}
    for tenant, results in per_tenant.items():
        child = report["per_tenant"][tenant]
        # The relayed sample set is exactly what the child recorded.
        assert len(results) == child["queue"]["taken"]
        assert results.postponed == child["postponed"]
        counters = child["queue"]
        assert counters["offered"] == (counters["taken"]
                                       + counters["postponed"]
                                       + counters["depth"])
        assert child["queue_shards"] == 2
        assert child["recording"]["sample_batches"] >= 1
        assert results.committed() > 0
    combined = executor.combined_results()
    assert len(combined) == sum(len(r) for r in per_tenant.values())
    # Streaming metrics were rebuilt from the relayed batches.
    assert combined.metrics.committed() == combined.committed()


def test_failed_tenant_surfaces_as_configuration_error():
    executor = ProcessExecutor()
    spec = make_spec(0)
    spec.config.benchmark = "no-such-benchmark"
    executor.add_tenant(spec)
    with pytest.raises(ConfigurationError, match="failed to load"):
        executor.run(timeout=10.0)
