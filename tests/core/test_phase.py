"""Phase validation and derived views."""

import pytest

from repro.core.phase import (ARRIVAL_EXPONENTIAL, Phase, RATE_DISABLED,
                              RATE_UNLIMITED, UNLIMITED_RATE_CONSTANT,
                              normalize_weights)
from repro.errors import ConfigurationError


def test_basic_phase():
    phase = Phase(duration=60, rate=100, weights={"A": 50, "B": 50})
    assert phase.is_rate_limited
    assert not phase.is_closed_loop
    assert phase.effective_rate == 100.0


def test_unlimited_rate_uses_large_constant():
    phase = Phase(duration=10)
    assert phase.rate == RATE_UNLIMITED
    assert not phase.is_rate_limited
    assert phase.effective_rate == UNLIMITED_RATE_CONSTANT


def test_disabled_rate_is_closed_loop():
    phase = Phase(duration=10, rate=RATE_DISABLED)
    assert phase.is_closed_loop
    with pytest.raises(ConfigurationError):
        phase.effective_rate


@pytest.mark.parametrize("bad", [0, -5, "fast", True])
def test_invalid_rates_rejected(bad):
    with pytest.raises(ConfigurationError):
        Phase(duration=10, rate=bad)


def test_invalid_duration_rejected():
    with pytest.raises(ConfigurationError):
        Phase(duration=0)
    with pytest.raises(ConfigurationError):
        Phase(duration=-1)


def test_negative_weight_rejected():
    with pytest.raises(ConfigurationError):
        Phase(duration=10, weights={"A": -1})


def test_all_zero_weights_rejected():
    with pytest.raises(ConfigurationError):
        Phase(duration=10, weights={"A": 0, "B": 0})


def test_unknown_arrival_rejected():
    with pytest.raises(ConfigurationError):
        Phase(duration=10, arrival="gaussian")


def test_negative_think_time_rejected():
    with pytest.raises(ConfigurationError):
        Phase(duration=10, think_time=-0.1)


def test_mixture_distribution_sampling():
    phase = Phase(duration=10, weights={"A": 100, "B": 0})
    import random
    dist = phase.mixture()
    assert all(dist.sample(random.Random(i)) == "A" for i in range(20))


def test_mixture_requires_weights():
    with pytest.raises(ConfigurationError):
        Phase(duration=10).mixture()


def test_with_rate_and_with_weights_copies():
    phase = Phase(duration=10, rate=50, weights={"A": 1})
    faster = phase.with_rate(200)
    assert faster.rate == 200 and phase.rate == 50
    reweighted = phase.with_weights({"A": 2})
    assert reweighted.weights == {"A": 2}


def test_exponential_arrival_accepted():
    assert Phase(duration=5, arrival=ARRIVAL_EXPONENTIAL).arrival == \
        ARRIVAL_EXPONENTIAL


def test_describe_is_readable():
    text = Phase(duration=5, rate=25, weights={"A": 1}, name="warm").describe()
    assert "warm" in text and "25" in text


def test_normalize_weights_sums_to_100():
    weights = normalize_weights({"A": 1, "B": 3})
    assert weights == {"A": 25.0, "B": 75.0}
    with pytest.raises(ConfigurationError):
        normalize_weights({"A": 0})
