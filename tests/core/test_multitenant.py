"""Multi-tenancy: parallel workloads on one instance interfere."""

import pytest

from repro.core import (MultiTenantCoordinator, Phase,
                        WorkloadConfiguration)
from repro.errors import ConfigurationError

from ..conftest import MiniBenchmark


def make_coordinator(db, personality="mysql"):
    return MultiTenantCoordinator(db, personality=personality,
                                  simulated=True)


def tenant_config(tenant, rate, duration=10, workers=4):
    return WorkloadConfiguration(
        benchmark="mini", workers=workers, seed=1, tenant=tenant,
        phases=[Phase(duration=duration, rate=rate)])


def test_two_tenants_run_in_parallel(db):
    coordinator = make_coordinator(db)
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    coordinator.add_tenant(bench, tenant_config("t1", rate=50))
    coordinator.add_tenant(bench, tenant_config("t2", rate=80))
    coordinator.run()
    per_tenant = coordinator.per_tenant_results()
    assert per_tenant["t1"].committed() == 500
    assert per_tenant["t2"].committed() == 800


def test_combined_results_merge(db):
    coordinator = make_coordinator(db)
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    coordinator.add_tenant(bench, tenant_config("t1", rate=20, duration=5))
    coordinator.add_tenant(bench, tenant_config("t2", rate=30, duration=5))
    coordinator.run()
    combined = coordinator.combined_results()
    assert len(combined) == 250
    tenants = {s.tenant for s in combined.samples()}
    assert tenants == {"t1", "t2"}


def test_interference_report(db):
    coordinator = make_coordinator(db)
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    coordinator.add_tenant(bench, tenant_config("t1", rate=40, duration=8))
    coordinator.add_tenant(bench, tenant_config("t2", rate=60, duration=8))
    coordinator.run()
    report = coordinator.interference_report(window=(2.0, 6.0))
    assert report["t1"] == pytest.approx(40, rel=0.2)
    assert report["t2"] == pytest.approx(60, rel=0.2)


def test_heavy_tenant_slows_light_tenant(db):
    """Shared capacity: a saturating neighbour inflates latencies."""
    bench = MiniBenchmark(db, seed=42)
    bench.load()

    # Baseline: tenant alone.
    alone = make_coordinator(db, personality="derby")
    alone.add_tenant(bench, tenant_config("solo", rate=100, duration=10,
                                          workers=2))
    alone.run()
    solo_latency = alone.per_tenant_results()[
        "solo"].latency_percentiles()["avg"]

    # Same tenant next to a heavy neighbour on a fresh engine.
    db2 = type(db)()
    bench2 = MiniBenchmark(db2, seed=42)
    bench2.load()
    shared = make_coordinator(db2, personality="derby")
    shared.add_tenant(bench2, tenant_config("light", rate=100, duration=10,
                                            workers=2))
    shared.add_tenant(bench2, tenant_config("heavy", rate=4000, duration=10,
                                            workers=32))
    shared.run()
    light_latency = shared.per_tenant_results()[
        "light"].latency_percentiles()["avg"]
    assert light_latency > solo_latency * 1.5


def test_unloaded_benchmark_rejected(db):
    coordinator = make_coordinator(db)
    bench = MiniBenchmark(db, seed=42)  # not loaded
    with pytest.raises(ConfigurationError):
        coordinator.add_tenant(bench, tenant_config("t1", rate=10))


def test_run_without_tenants_rejected(db):
    with pytest.raises(ConfigurationError):
        make_coordinator(db).run()
