"""Threaded executor: real workers, wall-clock rate control.

These are short integration runs (a few wall seconds total) proving the
OLTP-Bench architecture works live, not just in simulation.
"""

import pytest

from repro.core import (Phase, RATE_DISABLED, ThreadedExecutor,
                        WorkloadConfiguration, WorkloadManager)
from repro.engine.service import get_personality
from repro.errors import ConfigurationError

from ..conftest import MiniBenchmark


def run_threaded(db, phases, workers=4, personality=None, timeout=15):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    cfg = WorkloadConfiguration(benchmark="mini", workers=workers, seed=1,
                                phases=phases)
    manager = WorkloadManager(bench, cfg)
    executor = ThreadedExecutor(db, personality=personality)
    executor.add_workload(manager)
    executor.run(timeout=timeout)
    return manager


@pytest.mark.slow
def test_threaded_rate_control_hits_target(db):
    manager = run_threaded(db, [Phase(duration=3, rate=200)])
    throughput = manager.results.throughput()
    assert manager.results.committed() >= 550  # 3s * 200tps, small slack
    assert 160 <= throughput <= 220


@pytest.mark.slow
def test_threaded_never_exceeds_rate(db):
    manager = run_threaded(db, [Phase(duration=3, rate=150)])
    for _second, count in manager.results.per_second_throughput():
        assert count <= 165  # bucket-boundary slack only


@pytest.mark.slow
def test_threaded_closed_loop_runs_flat_out(db):
    manager = run_threaded(db, [
        Phase(duration=2, rate=RATE_DISABLED)], workers=2)
    assert manager.results.throughput() > 500  # engine-speed, no throttle


@pytest.mark.slow
def test_threaded_personality_throttles_throughput(db):
    manager = run_threaded(db, [Phase(duration=2, rate=RATE_DISABLED)],
                           workers=2, personality=get_personality("derby"))
    # Derby's ~1.2ms+ service time caps 2 workers well below raw speed.
    assert manager.results.throughput() < 1400


@pytest.mark.slow
def test_threaded_dynamic_rate_change(db):
    import threading

    bench = MiniBenchmark(db, seed=42)
    bench.load()
    cfg = WorkloadConfiguration(
        benchmark="mini", workers=4, seed=1,
        phases=[Phase(duration=4, rate=200)])
    manager = WorkloadManager(bench, cfg)
    executor = ThreadedExecutor(db)
    executor.add_workload(manager)
    timer = threading.Timer(2.0, lambda: manager.set_rate(40))
    timer.start()
    executor.run(timeout=15)
    timer.cancel()
    series = [count for _s, count in manager.results.per_second_throughput()]
    assert max(series) > 150
    assert min(series[1:-1] or series) < 80


@pytest.mark.slow
def test_threaded_stop_interrupts_run(db):
    import threading

    bench = MiniBenchmark(db, seed=42)
    bench.load()
    cfg = WorkloadConfiguration(
        benchmark="mini", workers=2, seed=1,
        phases=[Phase(duration=60, rate=50)])
    manager = WorkloadManager(bench, cfg)
    executor = ThreadedExecutor(db)
    executor.add_workload(manager)
    threading.Timer(1.0, executor.stop).start()
    executor.run(timeout=30)
    assert manager.finished
    assert manager.results.committed() < 200


def test_run_without_workloads_rejected(db):
    with pytest.raises(ConfigurationError):
        ThreadedExecutor(db).run()


@pytest.mark.slow
def test_threaded_executor_reusable_across_runs(db):
    """Successive run() calls start fresh threads, not accumulated ones."""
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    executor = ThreadedExecutor(db)

    def add(seed):
        cfg = WorkloadConfiguration(
            benchmark="mini", workers=2, seed=seed,
            phases=[Phase(duration=1, rate=50)])
        return executor.add_workload(WorkloadManager(bench, cfg))

    first = add(1)
    report1 = executor.run(timeout=10)
    assert report1["ok"] and report1["leaked_threads"] == []
    assert report1["workloads"] == 1
    assert report1["worker_threads"] == 2
    assert first.finished

    second = add(2)
    report2 = executor.run(timeout=10)
    # Only the fresh manager's workers: no accumulation from run one.
    assert report2["workloads"] == 1
    assert report2["worker_threads"] == 2
    assert report2["leaked_threads"] == []
    assert second.finished
    assert executor.last_run_report is report2
    assert len(executor._threads) == 2  # reset per run, not appended


def test_run_again_without_fresh_workload_rejected(db):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    cfg = WorkloadConfiguration(benchmark="mini", workers=1, seed=1,
                                phases=[Phase(duration=0.2, rate=20)])
    executor = ThreadedExecutor(db)
    executor.add_workload(WorkloadManager(bench, cfg))
    executor.run(timeout=10)
    with pytest.raises(ConfigurationError):
        executor.run(timeout=10)  # every added workload already ran


# -- batched hot path (sharded queue + buffered recording) ---------------


def test_take_batch_knob_validated(db):
    with pytest.raises(ConfigurationError):
        ThreadedExecutor(db, take_batch=0)
    with pytest.raises(ConfigurationError):
        ThreadedExecutor(db, take_batch=100000)
    assert ThreadedExecutor(db, take_batch=32).take_batch == 32


def test_take_batch_env_default(db, monkeypatch):
    from repro.core.executors import TAKE_BATCH_ENV, default_take_batch
    monkeypatch.delenv(TAKE_BATCH_ENV, raising=False)
    assert default_take_batch() == 16
    monkeypatch.setenv(TAKE_BATCH_ENV, "4")
    assert ThreadedExecutor(db).take_batch == 4
    monkeypatch.setenv(TAKE_BATCH_ENV, "zero")
    with pytest.raises(ConfigurationError):
        default_take_batch()


@pytest.mark.slow
def test_seed_compat_mode_matches_batched_delivery(db):
    """take_batch=1 + unbuffered recording still delivers the rate."""
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    cfg = WorkloadConfiguration(benchmark="mini", workers=4, seed=1,
                                phases=[Phase(duration=2, rate=150)])
    manager = WorkloadManager(bench, cfg)
    executor = ThreadedExecutor(db, take_batch=1, buffer_samples=False)
    executor.add_workload(manager)
    executor.run(timeout=15)
    assert manager.results.committed() >= 270
    # Unbuffered mode records per sample: no batch flushes.
    assert manager.results.recorder_stats()["sample_batches"] == 0


@pytest.mark.slow
def test_batched_run_flushes_all_samples(db):
    """No tail samples may be stranded in worker-local buffers."""
    manager = run_threaded(db, [Phase(duration=2, rate=200)])
    counters = manager.queue.counters()
    assert counters["offered"] == (counters["taken"]
                                   + counters["postponed"]
                                   + counters["depth"])
    # Every taken request became a recorded sample (buffers all flushed).
    assert len(manager.results) == counters["taken"]
    assert manager.results.recorder_stats()["sample_batches"] >= 1
