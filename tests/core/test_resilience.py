"""Resilience layer: retry policy, circuit breaker, and the attempt loop."""

import pytest

from repro.clock import SimClock
from repro.core.procedure import Procedure, UserAbort
from repro.core.resilience import (BREAKER_CLOSED, BREAKER_HALF_OPEN,
                                   BREAKER_OPEN, CircuitBreaker, ENV_RETRIES,
                                   Resilience, RetryPolicy,
                                   default_retry_policy, run_with_resilience)
from repro.engine import connect
from repro.errors import ConfigurationError, InjectedAbort, TransactionAborted
from repro.faults import FaultInjector, FaultProfile, FaultingConnection
from repro.rand import make_rng


class _FixedRng:
    """rng.random() returns a constant (deterministic jitter)."""

    def __init__(self, value: float) -> None:
        self.value = value

    def random(self) -> float:
        return self.value


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(backoff_multiplier=0.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(timeout=0)


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(max_attempts=5, backoff_base=0.1,
                         backoff_multiplier=2.0, backoff_max=0.3,
                         jitter=0.0)
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.delay(3) == pytest.approx(0.3)  # capped
    assert policy.delay(10) == pytest.approx(0.3)


def test_jitter_shrinks_the_delay_deterministically():
    policy = RetryPolicy(backoff_base=0.1, jitter=0.5)
    assert policy.delay(1, _FixedRng(1.0)) == pytest.approx(0.05)
    assert policy.delay(1, _FixedRng(0.0)) == pytest.approx(0.1)


def test_from_dict_partial_update():
    base = RetryPolicy(max_attempts=3, backoff_base=0.2)
    updated = RetryPolicy.from_dict({"max_attempts": 5}, base=base)
    assert updated.max_attempts == 5
    assert updated.backoff_base == 0.2


def test_from_dict_rejects_unknown_and_garbage():
    with pytest.raises(ConfigurationError):
        RetryPolicy.from_dict({"bogus": 1})
    with pytest.raises(ConfigurationError):
        RetryPolicy.from_dict({"max_attempts": "many"})


def test_default_policy_reads_env(monkeypatch):
    monkeypatch.delenv(ENV_RETRIES, raising=False)
    assert default_retry_policy().max_attempts == 1
    monkeypatch.setenv(ENV_RETRIES, "4")
    assert default_retry_policy().max_attempts == 4


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


def _tripped_breaker(clock):
    breaker = CircuitBreaker(clock, error_threshold=0.5, min_samples=4,
                             window_seconds=10.0, cooldown=2.0)
    for _ in range(4):
        breaker.record(False)
    return breaker


def test_disabled_breaker_always_allows():
    clock = SimClock()
    breaker = CircuitBreaker(clock)
    for _ in range(100):
        breaker.record(False)
    assert breaker.allow()
    assert breaker.state == BREAKER_CLOSED


def test_breaker_opens_on_error_rate():
    clock = SimClock()
    breaker = _tripped_breaker(clock)
    assert breaker.state == BREAKER_OPEN
    assert not breaker.allow()
    assert breaker.retry_after() == pytest.approx(2.0)


def test_breaker_needs_minimum_volume():
    clock = SimClock()
    breaker = CircuitBreaker(clock, error_threshold=0.5, min_samples=10)
    for _ in range(9):
        breaker.record(False)
    assert breaker.state == BREAKER_CLOSED


def test_half_open_probe_success_closes():
    clock = SimClock()
    breaker = _tripped_breaker(clock)
    clock.run_until(2.5)  # past the cooldown
    assert breaker.allow()  # the single probe
    assert breaker.state == BREAKER_HALF_OPEN
    assert not breaker.allow()  # second caller is still shed
    breaker.record(True)
    assert breaker.state == BREAKER_CLOSED
    assert breaker.allow()


def test_half_open_probe_failure_reopens():
    clock = SimClock()
    breaker = _tripped_breaker(clock)
    clock.run_until(2.5)
    assert breaker.allow()
    breaker.record(False)
    assert breaker.state == BREAKER_OPEN
    assert breaker.describe()["opened_count"] == 2


def test_breaker_configure_validation():
    breaker = CircuitBreaker(SimClock())
    with pytest.raises(ConfigurationError):
        breaker.configure(error_threshold=1.5)
    with pytest.raises(ConfigurationError):
        breaker.configure(cooldown=-1)


def test_clearing_threshold_disables_and_closes():
    clock = SimClock()
    breaker = _tripped_breaker(clock)
    breaker.configure(error_threshold=None)
    assert breaker.allow()
    assert breaker.state == BREAKER_CLOSED


# ---------------------------------------------------------------------------
# run_with_resilience over the real engine
# ---------------------------------------------------------------------------


class _Increment(Procedure):
    name = "Increment"

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute("UPDATE kv SET v = v + 1 WHERE k = ?", (1,))
        conn.commit()


class _AlwaysUserAbort(Procedure):
    name = "GiveUp"

    def run(self, conn, rng):
        raise UserAbort("benchmark-intended abort")


@pytest.fixture
def harness(db):
    setup = connect(db)
    cur = setup.cursor()
    cur.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL)")
    cur.execute("INSERT INTO kv VALUES (?, ?)", (1, 0))
    setup.commit()
    conn = FaultingConnection(connect(db))
    yield conn, setup
    conn.close()
    setup.close()


def _run(conn, proc, profile, policy, waits=None, injector_seed=1):
    clock = SimClock()
    resilience = Resilience(clock, default=policy)
    injector = FaultInjector(seed=injector_seed, profile=profile)
    outcome = run_with_resilience(
        proc, proc.name, conn, make_rng(1, "w"), clock=clock,
        resilience=resilience, injector=injector,
        retry_rng=make_rng(1, "r"),
        waiter=(waits.append if waits is not None else None))
    return outcome, resilience, injector


def test_clean_run_single_attempt(harness):
    conn, _ = harness
    outcome, resilience, _ = _run(
        conn, _Increment({}), FaultProfile(), RetryPolicy(max_attempts=3))
    assert outcome.status == "ok"
    assert outcome.attempts == 1
    assert outcome.waited == 0.0
    stats = resilience.stats.snapshot()
    assert stats["attempts"] == 1
    assert stats["retried"] == 0


def test_retry_recovers_injected_abort(harness):
    conn, setup = harness
    waits = []
    outcome, resilience, injector = _run(
        conn, _Increment({}), FaultProfile(abort_probability=1.0),
        RetryPolicy(max_attempts=3, jitter=0.0, backoff_base=0.01),
        waits=waits)
    # Attempt 1 and 2 hit the certain fault; with max_attempts=3 the
    # third attempt hits it too, so certainty can never recover -- use
    # the stats to check the retries actually happened.
    assert outcome.attempts == 3
    assert outcome.status == "aborted"
    stats = resilience.stats.snapshot()
    assert stats["retried"] == 2
    assert stats["exhausted"] == 1
    assert injector.counters()["abort"] == 3
    assert len(waits) == 2  # two backoff sleeps through the waiter
    assert outcome.waited == pytest.approx(sum(waits))
    # Every aborted attempt rolled back: no increment survived.
    cur = setup.cursor()
    cur.execute("SELECT v FROM kv WHERE k = ?", (1,))
    assert cur.fetchall()[0][0] == 0
    setup.commit()


def test_retry_recovers_when_fault_is_transient(harness):
    conn, setup = harness

    class _OneShotInjector:
        """Injects exactly one abort, like a real transient conflict."""

        def __init__(self) -> None:
            self.calls = 0

        def attempt_begin(self, txn_name):
            self.calls += 1
            if self.calls == 1:
                from repro.faults import FaultPlan, KIND_ABORT
                return FaultPlan(index=0, txn_name=txn_name,
                                 kind=KIND_ABORT, at_statement=0)
            return None

    clock = SimClock()
    resilience = Resilience(
        clock, default=RetryPolicy(max_attempts=3, jitter=0.0))
    outcome = run_with_resilience(
        _Increment({}), "Increment", conn, make_rng(1, "w"), clock=clock,
        resilience=resilience, injector=_OneShotInjector(),
        retry_rng=make_rng(1, "r"), waiter=None)
    assert outcome.status == "ok"
    assert outcome.attempts == 2
    stats = resilience.stats.snapshot()
    assert stats["recovered"] == 1
    cur = setup.cursor()
    cur.execute("SELECT v FROM kv WHERE k = ?", (1,))
    assert cur.fetchall()[0][0] == 1
    setup.commit()


def test_disconnect_is_retried_through_reconnect(harness):
    conn, _ = harness
    outcome, resilience, injector = _run(
        conn, _Increment({}), FaultProfile(disconnect_probability=0.5),
        RetryPolicy(max_attempts=10, jitter=0.0), injector_seed=8)
    assert outcome.status == "ok"
    assert injector.counters()["disconnect"] >= 1
    assert not conn.dropped  # the loop reconnected after every drop


def test_user_abort_is_never_retried(harness):
    conn, _ = harness
    outcome, resilience, _ = _run(
        conn, _AlwaysUserAbort({}), FaultProfile(),
        RetryPolicy(max_attempts=5))
    assert outcome.status == "aborted"
    assert outcome.attempts == 1
    assert resilience.stats.snapshot()["retried"] == 0


def test_latency_spike_waits_without_timeout(harness):
    conn, _ = harness
    profile = FaultProfile(latency_probability=1.0, latency_min=0.05,
                           latency_max=0.05)
    outcome, _, _ = _run(conn, _Increment({}), profile, RetryPolicy())
    assert outcome.status == "ok"
    assert outcome.waited == pytest.approx(0.05)


def test_statement_timeout_bounds_the_spike(harness):
    conn, _ = harness
    profile = FaultProfile(latency_probability=1.0, latency_min=0.5,
                           latency_max=0.5)
    policy = RetryPolicy(max_attempts=1, timeout=0.05)
    outcome, resilience, _ = _run(conn, _Increment({}), profile, policy)
    assert outcome.status == "aborted"
    # Waited only the timeout, not the full spike.
    assert outcome.waited == pytest.approx(0.05)
    assert resilience.stats.snapshot()["timeouts"] == 1


def test_resilience_configure_round_trip():
    clock = SimClock()
    resilience = Resilience(clock)
    resilience.configure({
        "max_attempts": 4,
        "per_procedure": {"Write": {"max_attempts": 7}},
        "breaker": {"error_threshold": 0.5, "min_samples": 5},
    })
    assert resilience.policy_for("Read").max_attempts == 4
    assert resilience.policy_for("Write").max_attempts == 7
    assert resilience.breaker.enabled
    described = resilience.describe()
    assert described["max_attempts"] == 4
    assert described["per_procedure"]["Write"]["max_attempts"] == 7
    assert described["breaker"]["error_threshold"] == 0.5
    # null clears the per-procedure override
    resilience.configure({"per_procedure": {"Write": None}})
    assert resilience.policy_for("Write").max_attempts == 4


def test_resilience_configure_rejects_bad_bodies():
    resilience = Resilience(SimClock())
    with pytest.raises(ConfigurationError):
        resilience.configure({"bogus_field": 1})
    with pytest.raises(ConfigurationError):
        resilience.configure({"breaker": {"bogus": 1}})
    with pytest.raises(ConfigurationError):
        resilience.configure({"per_procedure": "not-a-mapping"})
