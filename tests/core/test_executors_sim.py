"""Simulated executor: deterministic rate control over virtual time."""

import pytest

from repro.clock import SimClock
from repro.core import (ARRIVAL_EXPONENTIAL, Phase, RATE_DISABLED,
                        SimulatedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.errors import ConfigurationError
from repro.trace import TraceAnalyzer

from ..conftest import MiniBenchmark


def build(db, phases, workers=4, personality="inmem", seed=1,
          tenant="tenant-0"):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    clock = SimClock()
    cfg = WorkloadConfiguration(benchmark="mini", workers=workers, seed=seed,
                                tenant=tenant, phases=phases)
    manager = WorkloadManager(bench, cfg, clock=clock)
    executor = SimulatedExecutor(db, personality, clock)
    executor.add_workload(manager)
    return executor, manager


def test_exact_rate_delivery(db):
    executor, manager = build(db, [Phase(duration=10, rate=120)])
    executor.run()
    series = manager.results.per_second_throughput()
    assert [count for _s, count in series] == [120] * 10


def test_rate_never_exceeds_target(db):
    executor, manager = build(db, [Phase(duration=8, rate=75)])
    executor.run()
    analyzer = TraceAnalyzer(manager.results)
    assert analyzer.rate_cap_violations(cap=75) == 0


def test_phase_transition_changes_rate(db):
    executor, manager = build(db, [
        Phase(duration=5, rate=40),
        Phase(duration=5, rate=160),
    ])
    executor.run()
    series = dict(manager.results.per_second_throughput())
    assert series[2] == 40
    assert series[7] == 160


def test_exponential_arrivals_still_exact_count(db):
    executor, manager = build(db, [
        Phase(duration=10, rate=90, arrival=ARRIVAL_EXPONENTIAL)])
    executor.run()
    assert manager.results.committed() == 900


def test_mid_run_rate_change(db):
    executor, manager = build(db, [Phase(duration=10, rate=100)])
    executor.at(5.0, lambda: manager.set_rate(20))
    executor.run()
    series = dict(manager.results.per_second_throughput())
    assert series[3] == 100
    assert series[7] == 20


def test_mid_run_mixture_change(db):
    executor, manager = build(db, [
        Phase(duration=10, rate=50, weights={"Read": 100})])
    executor.at(5.0, lambda: manager.set_weights({"Write": 100}))
    executor.run()
    reads = [s for s in manager.results.samples() if s.txn_name == "Read"]
    writes = [s for s in manager.results.samples() if s.txn_name == "Write"]
    assert all(s.end <= 6.5 for s in reads)
    assert writes and all(s.end >= 5.0 for s in writes)


def test_pause_and_resume(db):
    executor, manager = build(db, [Phase(duration=10, rate=50)])
    executor.at(3.0, manager.pause)
    executor.at(6.0, manager.resume)
    executor.run()
    series = dict(manager.results.per_second_throughput())
    assert series.get(4, 0) == 0
    assert series.get(5, 0) == 0
    assert series[8] > 0


def test_closed_loop_saturates_workers(db):
    executor, manager = build(db, [
        Phase(duration=5, rate=RATE_DISABLED)], workers=2,
        personality="derby")
    executor.run()
    # Closed loop: throughput bounded by workers / service time, not by
    # an arrival schedule; with 2 workers it must be > 0 and roughly
    # steady.
    assert manager.results.committed() > 100


def test_think_time_caps_closed_loop_throughput(db):
    fast_exec, fast_mgr = build(db, [
        Phase(duration=10, rate=RATE_DISABLED)], workers=2)
    fast_exec.run()
    db2 = type(db)()
    slow_exec, slow_mgr = build(db2, [
        Phase(duration=10, rate=RATE_DISABLED, think_time=0.1)], workers=2)
    slow_exec.run()
    # 2 workers with 100ms think time -> at most ~20 tps + service slack.
    assert slow_mgr.results.throughput() < 25
    assert fast_mgr.results.throughput() > slow_mgr.results.throughput() * 4


def test_queue_delay_recorded_when_saturated(db):
    # derby is slow: 2 workers cannot deliver 20k tps; requests queue.
    executor, manager = build(db, [Phase(duration=5, rate=20000)],
                              workers=2, personality="derby")
    executor.run()
    delayed = [s for s in manager.results.samples() if s.queue_delay > 0]
    assert delayed
    assert manager.results.postponed > 0


def test_postponement_keeps_cap_under_overload(db):
    executor, manager = build(db, [Phase(duration=8, rate=3000)],
                              workers=2, personality="derby")
    executor.run()
    analyzer = TraceAnalyzer(manager.results)
    assert analyzer.rate_cap_violations(cap=3000) == 0


def test_run_until_stops_early(db):
    executor, manager = build(db, [Phase(duration=100, rate=10)])
    executor.run(until=5.0)
    assert manager.results.committed() <= 50 + 10


def test_add_workload_requires_shared_clock(db):
    bench = MiniBenchmark(db, seed=1)
    bench.load()
    cfg = WorkloadConfiguration(
        benchmark="mini", workers=1,
        phases=[Phase(duration=1, rate=1)])
    manager = WorkloadManager(bench, cfg, clock=SimClock())  # different clock
    executor = SimulatedExecutor(db, "inmem", SimClock())
    with pytest.raises(ConfigurationError):
        executor.add_workload(manager)


def test_run_without_workloads_rejected(db):
    with pytest.raises(ConfigurationError):
        SimulatedExecutor(db, "inmem").run()


def test_determinism_same_seed_same_results(db):
    executor1, manager1 = build(db, [Phase(duration=5, rate=80)], seed=9)
    executor1.run()
    db2 = type(db)()
    executor2, manager2 = build(db2, [Phase(duration=5, rate=80)], seed=9)
    executor2.run()
    a = [(s.txn_name, s.start, s.latency)
         for s in manager1.results.samples()]
    b = [(s.txn_name, s.start, s.latency)
         for s in manager2.results.samples()]
    assert a == b


def test_samples_tagged_with_tenant_and_worker(db):
    executor, manager = build(db, [Phase(duration=3, rate=30)],
                              tenant="alpha")
    executor.run()
    samples = manager.results.samples()
    assert all(s.tenant == "alpha" for s in samples)
    assert {s.worker_id for s in samples} <= set(range(4))
