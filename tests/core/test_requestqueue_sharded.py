"""Sharded request queue: invariant, equivalence oracle, batched take.

The sharding refactor must be invisible through the public API: for any
seeded offer/poll/clear schedule, an N-shard queue postpones exactly the
requests a single-deque queue would, and ``offered == taken + postponed
+ depth`` holds at every observation point under both cap and backlog
policies.
"""

import threading
import time

import pytest

from repro.clock import SimClock
from repro.core.requestqueue import (POLICY_BACKLOG, POLICY_CAP,
                                     RequestQueue, SHARDS_ENV,
                                     default_shards)
from repro.errors import ConfigurationError
from repro.rand import make_rng

SHARD_COUNTS = [1, 2, 4, 7]


def assert_invariant(queue):
    counters = queue.counters()
    assert counters["offered"] == (counters["taken"]
                                   + counters["postponed"]
                                   + counters["depth"]), counters


def seeded_schedule(seed, seconds=6, rate=40):
    """Deterministic per-second arrival batches (uneven, with ties)."""
    rng = make_rng(seed, "sharded-oracle")
    schedule = []
    for second in range(seconds):
        count = rng.randint(0, rate)
        batch = sorted(second + rng.random() for _ in range(count))
        if batch and rng.random() < 0.5:
            batch.append(batch[-1])  # equal arrival times must tie-break
        schedule.append(batch)
    return schedule


# -- equivalence oracle ---------------------------------------------------


@pytest.mark.parametrize("policy", [POLICY_CAP, POLICY_BACKLOG])
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_matches_single_on_seeded_schedules(policy, shards):
    """The acceptance oracle: identical postponement and delivery order."""
    for seed in range(5):
        single = RequestQueue(clock=SimClock(), policy=policy, shards=1)
        sharded = RequestQueue(clock=SimClock(), policy=policy,
                               shards=shards)
        rng = make_rng(seed, "oracle-serve")
        for second, batch in enumerate(seeded_schedule(seed)):
            assert single.offer_batch(batch) == \
                sharded.offer_batch(batch)
            # Serve a random fraction so some requests go stale.
            serves = rng.randint(0, max(1, len(batch)))
            now = second + 1.0
            for _ in range(serves):
                a = single.poll(now)
                b = sharded.poll(now)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.arrival_time == b.arrival_time
                    assert a.seq == b.seq
            assert single.counters() == sharded.counters()
            assert_invariant(sharded)
        assert single.postponed == sharded.postponed
        assert single.counters() == sharded.counters()


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_clear_counts_postponed_across_shards(shards):
    queue = RequestQueue(clock=SimClock(), shards=shards)
    queue.offer_batch([0.1 * i for i in range(17)])
    assert queue.clear() == 17
    assert queue.postponed == 17
    assert len(queue) == 0
    assert_invariant(queue)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_drop_due_across_shards(shards):
    queue = RequestQueue(clock=SimClock(), shards=shards)
    queue.offer_batch([0.0, 0.2, 0.4, 5.0, 6.0])
    assert queue.drop_due(1.0) == 3
    assert queue.postponed == 3
    assert len(queue) == 2
    assert_invariant(queue)


def test_round_robin_balances_shards():
    queue = RequestQueue(clock=SimClock(), shards=4,
                         policy=POLICY_BACKLOG)
    queue.offer_batch([0.01 * i for i in range(100)])
    assert queue.shard_depths() == [25, 25, 25, 25]
    # A second batch continues the rotation from the global seq.
    queue.offer_batch([10.0 + 0.01 * i for i in range(6)])
    assert sorted(queue.shard_depths()) == [26, 26, 27, 27]


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_pause_resume_shutdown_sharded(shards):
    clock = SimClock()
    queue = RequestQueue(clock=clock, shards=shards)
    queue.offer_batch([0.0, 0.1])
    clock.run_until(1.0)
    queue.pause()
    assert queue.poll(1.0) is None
    assert queue.take_batch(4, timeout=0.0) == []
    queue.resume()
    assert len(queue.take_batch(4, timeout=0.0)) == 2
    queue.shutdown()
    assert queue.take_batch(4, timeout=None) == []
    assert_invariant(queue)


# -- batched take ---------------------------------------------------------


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_take_batch_sorted_by_arrival(shards):
    clock = SimClock()
    queue = RequestQueue(clock=clock, shards=shards)
    arrivals = [0.05 * i for i in range(20)]
    queue.offer_batch(arrivals)
    clock.run_until(1.0)
    batch = queue.take_batch(20, timeout=0.0)
    assert [r.arrival_time for r in batch] == arrivals
    assert_invariant(queue)


def test_take_batch_respects_max_n():
    clock = SimClock()
    queue = RequestQueue(clock=clock, shards=4)
    queue.offer_batch([0.0] * 4 + [0.1] * 4)
    clock.run_until(1.0)
    first = queue.take_batch(5, timeout=0.0)
    assert len(first) == 5
    rest = queue.take_batch(5, timeout=0.0)
    assert len(rest) == 3
    # Each batch is arrival-sorted; a truncated drain may interleave
    # across batches (per-shard FIFO, not a global heap), but nothing
    # is lost or duplicated.
    for batch in (first, rest):
        times = [r.arrival_time for r in batch]
        assert times == sorted(times)
    assert sorted(r.seq for r in first + rest) == list(range(1, 9))
    assert_invariant(queue)


def test_take_batch_only_due_requests():
    clock = SimClock()
    queue = RequestQueue(clock=clock, shards=4)
    queue.offer_batch([0.0, 0.5, 99.0])
    clock.run_until(1.0)
    batch = queue.take_batch(10, timeout=0.0)
    assert [r.arrival_time for r in batch] == [0.0, 0.5]
    assert len(queue) == 1
    assert_invariant(queue)


def test_take_batch_rejects_nonpositive():
    queue = RequestQueue(clock=SimClock())
    with pytest.raises(ConfigurationError):
        queue.take_batch(0)


def test_take_batch_timeout_returns_empty():
    queue = RequestQueue(shards=4)  # real clock
    assert queue.take_batch(8, timeout=0.01) == []


def test_take_delegates_to_batched_path():
    queue = RequestQueue(clock=SimClock(), shards=4)
    queue.offer_batch([0.0, 0.1])
    request = queue.take(timeout=0.0)
    assert request is not None and request.arrival_time == 0.0
    assert_invariant(queue)


# -- wakeups (satellite: notify(n), no lost wakeups) ----------------------


def test_offer_batch_wakes_enough_blocked_takers():
    """notify(len(batch)) must wake enough takers to drain the batch."""
    queue = RequestQueue(shards=4)  # real clock: arrivals in the past
    results = []
    lock = threading.Lock()

    def taker():
        got = queue.take_batch(1, timeout=5.0)
        with lock:
            results.extend(got)

    threads = [threading.Thread(target=taker) for _ in range(6)]
    for thread in threads:
        thread.start()
    time.sleep(0.05)  # let every taker park on the condvar
    queue.offer_batch([0.0] * 6)
    for thread in threads:
        thread.join(timeout=5.0)
    assert not any(t.is_alive() for t in threads)
    assert len(results) == 6
    assert_invariant(queue)


def test_shutdown_wakes_all_blocked_batch_takers():
    queue = RequestQueue(shards=2)
    done = threading.Event()

    def taker():
        queue.take_batch(4, timeout=None)
        done.set()

    thread = threading.Thread(target=taker)
    thread.start()
    time.sleep(0.02)
    queue.shutdown()
    assert done.wait(timeout=2.0)
    thread.join(timeout=2.0)


# -- configuration --------------------------------------------------------


def test_shard_count_validation():
    with pytest.raises(ConfigurationError):
        RequestQueue(shards=0)
    with pytest.raises(ConfigurationError):
        RequestQueue(shards=65)


def test_default_shards_env(monkeypatch):
    monkeypatch.delenv(SHARDS_ENV, raising=False)
    assert default_shards() == 1
    monkeypatch.setenv(SHARDS_ENV, "8")
    assert default_shards() == 8
    assert RequestQueue(clock=SimClock()).shards == 8
    monkeypatch.setenv(SHARDS_ENV, "nope")
    with pytest.raises(ConfigurationError):
        default_shards()
    monkeypatch.setenv(SHARDS_ENV, "0")
    with pytest.raises(ConfigurationError):
        default_shards()
