"""Fault injection + resilience wired through the executors.

The acceptance story of the resilience subsystem: with a nonzero abort
profile, retries recover the injected failures (goodput close to the
fault-free run), the queue accounting invariant survives, and the
metrics payload's resilience counters reconcile exactly with the
injector's ground-truth log.
"""

import pytest

from repro.clock import SimClock
from repro.core import (Phase, SimulatedExecutor, ThreadedExecutor,
                        WorkloadConfiguration, WorkloadManager)
from repro.engine import Database

from ..conftest import MiniBenchmark


def build(db, phases, workers=4, seed=1, tenant="tenant-0"):
    db = db or Database()
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    clock = SimClock()
    cfg = WorkloadConfiguration(benchmark="mini", workers=workers, seed=seed,
                                tenant=tenant, phases=phases)
    manager = WorkloadManager(bench, cfg, clock=clock)
    executor = SimulatedExecutor(db, "inmem", clock)
    executor.add_workload(manager)
    return executor, manager


ABORTS = {"abort_probability": 0.05}
RETRIES = {"max_attempts": 4, "backoff_base": 0.001, "backoff_max": 0.01}

CHAOS_ENV = ("REPRO_CHAOS_ABORTS", "REPRO_CHAOS_LATENCY",
             "REPRO_CHAOS_LOCK_TIMEOUTS", "REPRO_CHAOS_DISCONNECTS",
             "REPRO_CHAOS_RETRIES")


@pytest.fixture(autouse=True)
def _pin_chaos_env(monkeypatch):
    """These tests configure their own fault/retry story; the CI chaos
    job's ``REPRO_CHAOS_*`` defaults must not leak into it."""
    for var in CHAOS_ENV:
        monkeypatch.delenv(var, raising=False)


def test_faults_without_retries_pollute_results(db):
    executor, manager = build(db, [Phase(duration=10, rate=100)])
    manager.set_fault_profile(ABORTS)
    executor.run()
    injected = manager.faults.counters()["abort"]
    assert injected > 0
    # Every injected abort became a recorded aborted sample.
    assert manager.results.aborted() >= injected


def test_retries_recover_injected_faults(db):
    executor, manager = build(db, [Phase(duration=10, rate=100)])
    manager.set_fault_profile(ABORTS)
    manager.set_resilience(RETRIES)
    executor.run()
    injected = manager.faults.counters()["total"]
    assert injected > 0
    stats = manager.resilience.stats.snapshot()
    # A faulted request either recovered through retries or exhausted
    # them.  p=0.05 with 4 attempts leaves p^3 odds of exhaustion per
    # faulted request, so >= 99% of faulted requests must recover.
    faulted = stats["recovered"] + stats["exhausted"]
    assert faulted > 0
    assert stats["recovered"] >= 0.99 * faulted
    assert manager.results.committed() == 1000 - manager.results.aborted()


def test_goodput_within_tolerance_of_fault_free(db):
    clean_exec, clean = build(None, [Phase(duration=10, rate=100)])
    clean_exec.run()
    faulty_exec, faulty = build(None, [Phase(duration=10, rate=100)])
    faulty.set_fault_profile(ABORTS)
    faulty.set_resilience(RETRIES)
    faulty_exec.run()
    assert faulty.results.committed() >= 0.95 * clean.results.committed()


def test_queue_invariant_holds_under_faults(db):
    executor, manager = build(db, [Phase(duration=10, rate=100)])
    manager.set_fault_profile({"abort_probability": 0.1,
                               "disconnect_probability": 0.05})
    manager.set_resilience(RETRIES)
    executor.run()
    counters = manager.queue.counters()
    assert counters["offered"] == (counters["taken"]
                                   + counters["postponed"]
                                   + counters["depth"])


def test_metrics_counters_match_injector_ground_truth(db):
    executor, manager = build(db, [Phase(duration=10, rate=100)])
    manager.set_fault_profile(ABORTS)
    manager.set_resilience(RETRIES)
    executor.run()
    payload = manager.metrics()
    resilience = payload["resilience"]
    assert resilience["faults"]["injected"] == manager.faults.counters()
    assert resilience["retries"] == manager.resilience.stats.snapshot()
    assert resilience["faults"]["injected"]["total"] == \
        len(manager.faults.log())
    assert resilience["breaker"]["state"] == "closed"


def test_same_seed_same_fault_schedule(db):
    first_exec, first = build(None, [Phase(duration=5, rate=80)])
    first.set_fault_profile(ABORTS)
    first_exec.run()
    second_exec, second = build(None, [Phase(duration=5, rate=80)])
    second.set_fault_profile(ABORTS)
    second_exec.run()
    assert first.faults.schedule() == second.faults.schedule()
    assert first.faults.schedule()  # and it is not trivially empty


def test_injected_waits_surface_as_latency(db):
    executor, manager = build(db, [Phase(duration=5, rate=50)])
    manager.set_fault_profile({"latency_probability": 1.0})
    executor.run()
    # Every attempt carries a spike of at least latency_min seconds.
    quantiles = manager.results.metrics.latency_percentiles()
    assert quantiles["p50"] >= 0.05


def test_breaker_sheds_as_postponed(db):
    executor, manager = build(db, [Phase(duration=20, rate=100)])
    manager.set_fault_profile({"abort_probability": 1.0})
    manager.set_resilience({"breaker": {"error_threshold": 0.5,
                                        "min_samples": 10,
                                        "cooldown": 1.0}})
    executor.run()
    stats = manager.resilience.stats.snapshot()
    assert manager.resilience.breaker.describe()["opened_count"] > 0
    assert stats["breaker_shed"] > 0
    counters = manager.queue.counters()
    assert counters["offered"] == (counters["taken"]
                                   + counters["postponed"]
                                   + counters["depth"])
    # Shed requests were counted into the results' postponed tally too.
    assert manager.results.postponed >= stats["breaker_shed"]


def test_per_procedure_policy_only_retries_selected_txn(db):
    executor, manager = build(db, [Phase(duration=10, rate=60)])
    manager.set_fault_profile({"abort_probability": 1.0})
    manager.set_resilience({"per_procedure": {"Read": {"max_attempts": 2}}})
    executor.run()
    stats = manager.resilience.stats.snapshot()
    assert stats["retried"] > 0
    # Write requests fail on attempt one (default policy is 1 attempt),
    # so retries can never exceed the number of Read requests.
    reads = manager.results.metrics.txn_counts().get("Read", {})
    read_requests = sum(reads.values())
    assert stats["retried"] <= read_requests


@pytest.mark.slow
def test_threaded_executor_recovers_faults(db):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    cfg = WorkloadConfiguration(benchmark="mini", workers=4, seed=1,
                                phases=[Phase(duration=2, rate=50)])
    manager = WorkloadManager(bench, cfg)
    manager.set_fault_profile(ABORTS)
    manager.set_resilience(RETRIES)
    executor = ThreadedExecutor(db)
    executor.add_workload(manager)
    report = executor.run(timeout=15)
    assert report["ok"]
    injected = manager.faults.counters()["total"]
    stats = manager.resilience.stats.snapshot()
    assert injected > 0
    assert stats["recovered"] > 0
    counters = manager.queue.counters()
    assert counters["offered"] == (counters["taken"]
                                   + counters["postponed"]
                                   + counters["depth"])
