"""BenchmarkModule base class behaviour."""

import pytest

from repro.benchmarks.voter import VoterBenchmark
from repro.core.benchmark import BenchmarkModule
from repro.engine import Database
from repro.errors import BenchmarkError, ConfigurationError

from ..conftest import MiniBenchmark


def test_load_creates_schema_and_params(db):
    bench = MiniBenchmark(db, seed=1)
    assert not bench.loaded
    bench.load()
    assert bench.loaded
    assert bench.params["rows"] == 64
    assert db.row_count("kv") == 64


def test_scale_factor_scales_rows(db):
    bench = MiniBenchmark(db, scale_factor=0.5, seed=1)
    bench.load()
    assert bench.params["rows"] == 32


def test_invalid_scale_factor(db):
    with pytest.raises(ConfigurationError):
        MiniBenchmark(db, scale_factor=0)


def test_make_procedure_unknown(mini_benchmark):
    with pytest.raises(BenchmarkError):
        mini_benchmark.make_procedure("Ghost")


def test_default_weights_normalised(mini_benchmark):
    weights = mini_benchmark.default_weights()
    assert weights == {"Read": 70.0, "Write": 30.0}


def test_presets_three_kinds(mini_benchmark):
    presets = mini_benchmark.preset_mixtures()
    assert presets["read-only"] == {"Read": 100.0}
    assert presets["super-writes"] == {"Write": 100.0}
    assert presets["default"] == {"Read": 70.0, "Write": 30.0}


def test_one_sided_benchmark_preset_falls_back():
    """Voter has no read-only transaction: read-only keeps the default."""
    db = Database()
    bench = VoterBenchmark(db)
    presets = bench.preset_mixtures()
    assert presets["read-only"] == presets["default"]
    assert presets["super-writes"] == {"Vote": 100.0}


def test_describe_shape(mini_benchmark):
    info = mini_benchmark.describe()
    assert info["name"] == "mini"
    assert info["transactions"] == ["Read", "Write"]
    assert "default_weights" in info


def test_table_counts(mini_benchmark):
    assert mini_benchmark.table_counts() == {"kv": 64}


def test_default_weights_equal_when_unspecified(db):
    class Flat(MiniBenchmark):
        name = "flat"

        class P1(MiniBenchmark.procedures[0]):
            name = "P1"
            default_weight = 0

        class P2(MiniBenchmark.procedures[1]):
            name = "P2"
            default_weight = 0

        procedures = (P1, P2)

    bench = Flat(db)
    assert bench.default_weights() == {"P1": 50.0, "P2": 50.0}
