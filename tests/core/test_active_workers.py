"""<active_terminals>: per-phase active worker counts."""

import pytest

from repro.clock import SimClock
from repro.core import (Phase, RATE_DISABLED, SimulatedExecutor,
                        WorkloadConfiguration, WorkloadManager)
from repro.errors import ConfigurationError

from ..conftest import MiniBenchmark


def build(db, phases, workers=4):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    clock = SimClock()
    cfg = WorkloadConfiguration(benchmark="mini", workers=workers, seed=1,
                                phases=phases)
    manager = WorkloadManager(bench, cfg, clock=clock)
    executor = SimulatedExecutor(db, "oracle", clock)
    executor.add_workload(manager)
    return executor, manager


def test_phase_validates_active_workers():
    with pytest.raises(ConfigurationError):
        Phase(duration=5, active_workers=0)
    assert Phase(duration=5, active_workers=3).active_workers == 3


def test_only_active_workers_execute(db):
    executor, manager = build(db, [
        Phase(duration=8, rate=RATE_DISABLED, active_workers=1)],
        workers=4)
    executor.run()
    used = {s.worker_id for s in manager.results.samples()}
    assert used == {0}


def test_phase_transition_changes_active_set(db):
    executor, manager = build(db, [
        Phase(duration=5, rate=RATE_DISABLED, active_workers=1),
        Phase(duration=5, rate=RATE_DISABLED, active_workers=3),
    ], workers=4)
    executor.run()
    first = {s.worker_id for s in manager.results.samples() if s.end < 5}
    second = {s.worker_id for s in manager.results.samples()
              if 5.5 < s.end < 10}
    assert first == {0}
    assert second == {0, 1, 2}


def test_active_workers_caps_closed_loop_throughput(db):
    executor, manager = build(db, [
        Phase(duration=5, rate=RATE_DISABLED, think_time=0.1,
              active_workers=1)], workers=8)
    executor.run()
    # One worker with 100ms think time: ~10 tps, not ~80.
    assert manager.results.throughput() < 15


def test_dynamic_active_workers_override(db):
    executor, manager = build(db, [
        Phase(duration=10, rate=RATE_DISABLED, think_time=0.05)],
        workers=4)
    executor.at(5.0, lambda: manager.set_active_workers(1))
    executor.run()
    late = {s.worker_id for s in manager.results.samples() if s.end > 6.5}
    assert late == {0}
    with pytest.raises(ConfigurationError):
        manager.set_active_workers(0)


def test_rate_limited_phase_with_few_workers_still_delivers(db):
    executor, manager = build(db, [
        Phase(duration=8, rate=40, active_workers=2)], workers=8)
    executor.run()
    assert manager.results.throughput() == pytest.approx(40, rel=0.1)
    assert {s.worker_id for s in manager.results.samples()} <= {0, 1}


def test_xml_active_terminals(tmp_path):
    path = tmp_path / "c.xml"
    path.write_text("""
    <parameters>
        <benchmark>mini</benchmark>
        <works><work><time>5</time><rate>10</rate>
            <active_terminals>3</active_terminals></work></works>
    </parameters>
    """)
    cfg = WorkloadConfiguration.from_xml(path)
    assert cfg.phases[0].active_workers == 3


def test_dict_round_trip_includes_active_workers():
    cfg = WorkloadConfiguration.from_dict({
        "benchmark": "x",
        "phases": [{"duration": 5, "active_workers": 2}],
    })
    assert cfg.phases[0].active_workers == 2
    again = WorkloadConfiguration.from_dict(cfg.to_dict())
    assert again.phases[0].active_workers == 2
