"""Results accumulation: throughput, percentiles, merging."""

import pytest

from repro.core.results import (LatencySample, Results, STATUS_ABORTED,
                                STATUS_ERROR, STATUS_OK, merge, percentile)


def sample(txn="T", start=0.0, queue_delay=0.0, latency=0.01,
           status=STATUS_OK, tenant="tenant-0"):
    return LatencySample(txn, start, queue_delay, latency, status,
                         tenant=tenant)


def test_counts_by_status_and_txn():
    results = Results()
    results.record(sample("A"))
    results.record(sample("A", status=STATUS_ABORTED))
    results.record(sample("B", status=STATUS_ERROR))
    assert results.count() == 3
    assert results.committed() == 1
    assert results.aborted() == 1
    assert results.count(STATUS_OK, "A") == 1
    assert results.count(txn_name="A") == 2
    assert results.abort_rate() == pytest.approx(1 / 3)


def test_sample_end_and_response_time():
    s = sample(start=10.0, queue_delay=0.5, latency=0.25)
    assert s.end == 10.75
    assert s.response_time == 0.75


def test_throughput_over_duration():
    results = Results()
    for i in range(100):
        results.record(sample(start=i * 0.1, latency=0.05))
    assert results.throughput() == pytest.approx(
        100 / results.duration(), rel=1e-6)


def test_throughput_window():
    results = Results()
    for i in range(10):
        results.record(sample(start=float(i)))  # ends at i + 0.01
    assert results.throughput(window=(0.0, 5.0)) == pytest.approx(1.0)
    assert results.throughput(window=(20.0, 25.0)) == 0.0


def test_per_second_throughput_counts_commits_only():
    results = Results()
    results.record(sample(start=1.2))
    results.record(sample(start=1.7))
    results.record(sample(start=1.8, status=STATUS_ABORTED))
    results.record(sample(start=2.5))
    assert results.per_second_throughput() == [(1, 2), (2, 1)]


def test_latency_percentiles():
    results = Results()
    for latency in [0.01 * i for i in range(1, 101)]:
        results.record(sample(latency=latency))
    summary = results.latency_percentiles()
    assert summary["min"] == pytest.approx(0.01)
    assert summary["max"] == pytest.approx(1.0)
    assert summary["p50"] == pytest.approx(0.505, rel=0.02)
    assert summary["p99"] == pytest.approx(0.99, rel=0.02)
    assert summary["avg"] == pytest.approx(0.505, rel=0.01)


def test_latency_percentiles_empty():
    assert Results().latency_percentiles() == {}


def test_percentile_function():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)
    with pytest.raises(ValueError):
        percentile([], 50)
    assert percentile([7.0], 99) == 7.0


def test_summary_structure():
    results = Results()
    results.record(sample("A"))
    results.record(sample("B", status=STATUS_ABORTED))
    results.record_postponed(3)
    summary = results.summary()
    assert summary["total"] == 2
    assert summary["postponed"] == 3
    assert set(summary["per_txn"]) == {"A", "B"}
    assert summary["per_txn"]["B"]["aborted"] == 1


def test_merge_combines_results():
    a, b = Results(), Results()
    a.record(sample("A", tenant="t1"))
    b.record(sample("B", tenant="t2"))
    b.record_postponed(2)
    merged = merge([a, b])
    assert len(merged) == 2
    assert merged.postponed == 2
    assert merged.txn_names() == ["A", "B"]


def test_thread_safety_smoke():
    import threading
    results = Results()

    def writer():
        for i in range(500):
            results.record(sample(start=float(i)))

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(results) == 2000


def test_negative_virtual_end_buckets_with_floor():
    """A sample ending at -0.55 belongs to second -1, not 0."""
    results = Results()
    results.record(sample(start=-0.6, latency=0.05))
    assert results.per_second_throughput() == [(-1, 1)]


def test_postponed_property_is_locked_accessor():
    results = Results()
    results.record_postponed(2)
    assert results.postponed == 2
    assert results.metrics.postponed() == 2  # mirrored into streaming


def test_merge_sums_postponed_and_rebuilds_metrics():
    a, b = Results(), Results()
    a.record(sample("A", start=1.0))
    a.record_postponed(1)
    b.record(sample("B", start=2.0))
    b.record_postponed(4)
    merged = merge([a, b])
    assert merged.postponed == 5
    # Streaming state is rebuilt from the replayed samples.
    assert merged.metrics.committed() == 2
    assert merged.metrics.postponed() == 5
    assert merged.metrics.throughput_series() == [(1, 1), (2, 1)]


def test_record_feeds_streaming_metrics_once():
    results = Results()
    for i in range(10):
        results.record(sample(start=float(i)))
    snap = results.metrics.snapshot(10.0, 10.0)
    assert snap["totals"]["committed"] == 10
    assert snap["window"]["throughput"] == pytest.approx(1.0)


# -- batched recording (sharded-driver hot path) --------------------------


def test_record_batch_matches_per_sample_record():
    batched, serial = Results(), Results()
    samples = [sample("A", start=float(i)) for i in range(20)]
    batched.record_batch(samples)
    for s in samples:
        serial.record(s)
    assert batched.samples() == serial.samples()
    assert batched.metrics.committed() == serial.metrics.committed()
    assert batched.metrics.throughput_series() == \
        serial.metrics.throughput_series()
    assert batched.recorder_stats()["sample_batches"] == 1
    assert serial.recorder_stats()["sample_batches"] == 0


def test_record_batch_empty_is_noop():
    results = Results()
    results.record_batch([])
    assert len(results) == 0
    assert results.recorder_stats() == {"sample_batches": 0, "samples": 0}


def test_sample_buffer_flushes_at_capacity():
    results = Results()
    buffer = results.buffered(capacity=4, interval=1000.0)
    for i in range(3):
        buffer.add(sample(start=float(i)))
        assert len(results) == 0  # still worker-local
    buffer.add(sample(start=3.0))
    assert len(results) == 4
    assert len(buffer) == 0


def test_sample_buffer_flushes_on_sample_time_epoch():
    results = Results()
    buffer = results.buffered(capacity=1000, interval=0.25)
    buffer.add(sample(start=0.0))
    buffer.add(sample(start=0.1))
    assert len(results) == 0
    buffer.add(sample(start=0.3))  # 0.3 - 0.0 >= 0.25: epoch flush
    assert len(results) == 3


def test_sample_buffer_manual_flush_and_stranded_tail():
    results = Results()
    buffer = results.buffered(capacity=100, interval=100.0)
    buffer.add(sample(start=0.0))
    buffer.add(sample(start=0.1))
    assert buffer.flush() == 2
    assert buffer.flush() == 0
    assert len(results) == 2


def test_sample_buffer_capacity_validated():
    with pytest.raises(ValueError):
        Results().buffered(capacity=0)


def test_direct_recorder_is_unbuffered():
    from repro.core.results import DirectRecorder
    results = Results()
    recorder = DirectRecorder(results)
    recorder.add(sample(start=0.0))
    assert len(results) == 1
    assert recorder.flush() == 0
    assert results.recorder_stats()["sample_batches"] == 0


def test_merge_uses_one_batch_per_source():
    sources = []
    for i in range(3):
        results = Results()
        for j in range(5):
            results.record(sample(start=float(i * 5 + j)))
        sources.append(results)
    merged = merge(sources)
    assert len(merged) == 15
    # One extend per source container, not one lock pass per sample.
    assert merged.recorder_stats()["sample_batches"] == 3
    assert merged.metrics.committed() == 15
