"""Command-line interface: list, run, dump/restore, game."""

import json

import pytest

from repro.cli import main


def test_list_prints_table1(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "tpcc" in out
    assert "Feature Testing" in out
    assert out.count("\n") >= 16  # header + 15 rows


def test_run_simulated(capsys):
    code = main(["run", "--benchmark", "ycsb", "--scale", "0.2",
                 "--rate", "50", "--duration", "5", "--workers", "4",
                 "--dbms", "oracle", "--seed", "3"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["benchmark"] == "ycsb"
    assert payload["committed"] == 250
    assert payload["throughput_tps"] == pytest.approx(50, rel=0.05)
    assert payload["per_txn"]


def test_run_with_trace_output(tmp_path, capsys):
    trace = tmp_path / "trace.csv"
    code = main(["run", "--benchmark", "voter", "--scale", "0.2",
                 "--rate", "20", "--duration", "4", "--trace", str(trace)])
    assert code == 0
    from repro.trace import read_trace
    results = read_trace(trace)
    assert len(results) == 80


def test_run_with_config_file(tmp_path, capsys):
    config = tmp_path / "wl.json"
    config.write_text(json.dumps({
        "benchmark": "sibench", "workers": 2, "seed": 1,
        "phases": [{"duration": 3, "rate": 10},
                   {"duration": 3, "rate": 30}],
    }))
    code = main(["run", "--benchmark", "sibench", "--scale", "0.5",
                 "--config", str(config)])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["committed"] == 120


def test_dump_then_restore_run(tmp_path, capsys):
    dump_path = tmp_path / "smallbank.json"
    assert main(["dump", "--benchmark", "smallbank", "--scale", "0.1",
                 "--output", str(dump_path)]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["tables"]["accounts"] == 100

    code = main(["run", "--benchmark", "smallbank", "--scale", "0.1",
                 "--rate", "30", "--duration", "4",
                 "--restore", str(dump_path)])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["committed"] + payload["aborted"] == 120


def test_game_command(capsys):
    code = main(["game", "--benchmark", "voter", "--dbms", "oracle"])
    assert code == 0
    out = capsys.readouterr().out
    summary = json.loads(out[out.rindex("{\n"):])
    assert summary["state"] in ("completed", "crashed")
    assert "@" in out  # at least one rendered frame


def test_unknown_benchmark_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--benchmark", "mongomark"])
