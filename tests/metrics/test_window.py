"""Per-second ring buffer vs the batch sample-rescan ground truth."""

import pytest

from repro.core.results import (LatencySample, Results, STATUS_ABORTED,
                                STATUS_ERROR, STATUS_OK)
from repro.metrics import ThroughputWindow


def feed(window, results, *, start, latency=0.01, status=STATUS_OK,
         txn="T"):
    sample = LatencySample(txn, start, 0.0, latency, status)
    window.record(sample.end, txn, latency, status)
    results.record(sample)
    return sample


def test_per_second_series_matches_batch():
    window = ThroughputWindow()
    results = Results()
    for i in range(50):
        feed(window, results, start=i * 0.25)  # 4 commits/second
    feed(window, results, start=3.5, status=STATUS_ABORTED)
    assert window.series() == results.per_second_throughput()


def test_window_stats_match_batch_throughput_exactly():
    """Same floor bucketing both sides: the window numbers are exact."""
    window = ThroughputWindow()
    results = Results()
    for i in range(80):
        feed(window, results, start=i * 0.125)  # ends within [0, 10)
    now = 10.0
    for w in (2, 5, 10):
        stats = window.window_stats(now, float(w))
        assert stats["throughput"] == pytest.approx(
            results.throughput(window=(now - w, now)))


def test_window_excludes_current_incomplete_second():
    window = ThroughputWindow()
    window.record(4.2, "T", 0.01, STATUS_OK)
    window.record(5.1, "T", 0.01, STATUS_OK)  # current second when now=5.5
    stats = window.window_stats(5.5, 5.0)
    assert stats["committed"] == 1
    assert stats["throughput"] == pytest.approx(1 / 5)


def test_aborts_and_errors_counted_per_second():
    window = ThroughputWindow()
    window.record(1.0, "T", 0.01, STATUS_OK)
    window.record(1.2, "T", 0.01, STATUS_ABORTED)
    window.record(1.4, "T", 0.01, STATUS_ERROR)
    stats = window.window_stats(2.0, 1.0)
    assert stats["committed"] == 1
    assert stats["aborts_per_sec"] == pytest.approx(1.0)
    assert stats["errors_per_sec"] == pytest.approx(1.0)


def test_per_txn_breakdown():
    window = ThroughputWindow()
    window.record(1.0, "A", 0.02, STATUS_OK)
    window.record(1.1, "A", 0.04, STATUS_OK)
    window.record(1.2, "B", 0.10, STATUS_OK)
    per_txn = window.window_stats(2.0, 1.0)["per_txn"]
    assert per_txn["A"]["throughput"] == pytest.approx(2.0)
    assert per_txn["A"]["avg_latency"] == pytest.approx(0.03)
    assert per_txn["B"]["throughput"] == pytest.approx(1.0)


def test_negative_virtual_seconds_use_floor():
    """A sample ending at -0.5 belongs to second -1, not 0."""
    window = ThroughputWindow()
    window.record(-0.5, "T", 0.01, STATUS_OK)
    assert window.series() == [(-1, 1)]
    stats = window.window_stats(0.0, 1.0)
    assert stats["committed"] == 1


def test_eviction_marks_history_incomplete():
    window = ThroughputWindow(history_seconds=4)
    assert window.complete()
    for second in range(6):
        window.record(second + 0.5, "T", 0.01, STATUS_OK)
    assert not window.complete()
    # Only the seconds within the retained horizon are reported.
    assert window.series() == [(2, 1), (3, 1), (4, 1), (5, 1)]


def test_stale_samples_are_dropped_and_counted():
    window = ThroughputWindow(history_seconds=4)
    for second in range(6):
        window.record(second + 0.5, "T", 0.01, STATUS_OK)
    window.record(0.9, "T", 0.01, STATUS_OK)  # beyond the horizon
    assert window.dropped_stale == 1
    assert window.series() == [(2, 1), (3, 1), (4, 1), (5, 1)]


def test_series_range_arguments():
    window = ThroughputWindow()
    for second in range(5):
        window.record(second + 0.1, "T", 0.01, STATUS_OK)
    assert window.series(start=1, end=4) == [(1, 1), (2, 1), (3, 1)]
    assert ThroughputWindow().series() == []


def test_merge_combines_per_second_counts():
    a, b = ThroughputWindow(), ThroughputWindow()
    a.record(1.0, "A", 0.02, STATUS_OK)
    b.record(1.5, "B", 0.04, STATUS_OK)
    b.record(2.5, "B", 0.04, STATUS_ABORTED)
    a.merge(b)
    assert a.series() == [(1, 2)]
    stats = a.window_stats(3.0, 2.0)
    assert stats["committed"] == 2
    assert stats["aborts_per_sec"] == pytest.approx(0.5)
    a.merge(ThroughputWindow())  # merging an empty window is a no-op
    assert a.series() == [(1, 2)]


def test_rejects_nonpositive_history():
    with pytest.raises(ValueError):
        ThroughputWindow(history_seconds=0)
