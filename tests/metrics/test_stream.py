"""StreamingMetrics end-to-end: equivalence with the batch paths."""

import threading

import pytest

from repro.core.collector import StatisticsCollector
from repro.core.results import (LatencySample, Results, STATUS_ABORTED,
                                STATUS_ERROR, STATUS_OK)
from repro.metrics import StreamingMetrics, TOTAL_KEY


def simulated_run(n=2000):
    """A deterministic multi-type run: ~100 tps for ~20 s, with a tail."""
    samples = []
    for i in range(n):
        start = i / 100.0
        latency = 0.002 + ((i * 31) % 89) / 89.0 * 0.03
        if i % 83 == 0:
            latency *= 15.0
        if i % 41 == 0:
            status = STATUS_ABORTED
        elif i % 311 == 0:
            status = STATUS_ERROR
        else:
            status = STATUS_OK
        samples.append(LatencySample(
            ("NewOrder", "Payment", "StockLevel")[i % 3], start, 0.001,
            latency, status))
    return samples


@pytest.fixture()
def recorded():
    """The same run fed through Results (which feeds its metrics)."""
    results = Results()
    for sample in simulated_run():
        results.record(sample)
    return results


def test_results_owns_streaming_metrics(recorded):
    assert isinstance(recorded.metrics, StreamingMetrics)
    assert recorded.metrics.committed() == recorded.committed()


def test_windowed_throughput_exact_vs_batch(recorded):
    now = 20.0
    for w in (1.0, 5.0, 10.0):
        snap = recorded.metrics.snapshot(now, w)
        assert snap["window"]["throughput"] == pytest.approx(
            recorded.throughput(window=(now - w, now)))


def test_quantiles_within_bin_tolerance_vs_batch(recorded):
    """The documented contract, checked against the order statistics.

    The batch path interpolates linearly between the two sorted values
    bounding the rank; with a sparse tail those can be more than one bin
    apart, so the bin tolerance is guaranteed relative to that bounding
    pair, not to the interpolated point inside the gap.
    """
    import math

    tolerance = recorded.metrics.snapshot(20.0)["bins"]["relative_error"]
    for name in [None] + recorded.txn_names():
        exact = recorded.latency_percentiles(name)
        binned = recorded.metrics.latency_percentiles(name)
        assert binned["min"] == exact["min"]
        assert binned["max"] == exact["max"]
        assert binned["avg"] == pytest.approx(exact["avg"])
        values = sorted(recorded.latencies(name))
        for pct in (25, 50, 75, 90, 95, 99):
            rank = pct / 100.0 * (len(values) - 1)
            lo = values[math.floor(rank)] * (1.0 - tolerance)
            hi = values[math.ceil(rank)] * (1.0 + tolerance)
            key = f"p{pct}"
            assert lo <= binned[key] <= hi, \
                f"{name or 'total'} {key}: {binned[key]} not in " \
                f"[{lo}, {hi}] (exact {exact[key]})"


def test_totals_match_batch_counts(recorded):
    totals = recorded.metrics.snapshot(20.0)["totals"]
    assert totals["committed"] == recorded.committed()
    assert totals["aborted"] == recorded.aborted()
    assert totals["errors"] == recorded.count(STATUS_ERROR)
    for name in recorded.txn_names():
        assert totals["per_txn"][name]["committed"] == \
            recorded.count(STATUS_OK, name)
        assert totals["per_txn"][name]["aborted"] == \
            recorded.count(STATUS_ABORTED, name)


def test_latency_section_keyed_by_type_plus_total(recorded):
    latency = recorded.metrics.snapshot(20.0)["latency"]
    assert set(latency) == {TOTAL_KEY, *recorded.txn_names()}
    assert latency[TOTAL_KEY]["count"] == recorded.committed()


def test_instantaneous_matches_legacy_collector():
    """Shape and value parity with the StatisticsCollector it replaced."""
    collector = StatisticsCollector()
    metrics = StreamingMetrics()
    for sample in simulated_run():
        collector.record(sample.end, sample.txn_name, sample.latency,
                         sample.status)
        metrics.observe(sample.end, sample.txn_name, sample.latency,
                        sample.status)
    for now, window in ((20.0, 5.0), (20.6, 5.0), (10.0, 3.0)):
        legacy = collector.instantaneous(now, window)
        streaming = metrics.instantaneous(now, window)
        assert set(streaming) == set(legacy)
        assert streaming["throughput"] == pytest.approx(
            legacy["throughput"])
        assert streaming["aborts_per_sec"] == pytest.approx(
            legacy["aborts_per_sec"])
        assert streaming["avg_latency"] == pytest.approx(
            legacy["avg_latency"])
        for name, entry in legacy["per_txn"].items():
            assert streaming["per_txn"][name]["throughput"] == \
                pytest.approx(entry["throughput"])
            assert streaming["per_txn"][name]["avg_latency"] == \
                pytest.approx(entry["avg_latency"])


def test_throughput_series_matches_collector(recorded):
    collector = StatisticsCollector()
    for sample in recorded.samples():
        collector.record(sample.end, sample.txn_name, sample.latency,
                         sample.status)
    assert recorded.metrics.series_complete()
    assert recorded.metrics.throughput_series() == \
        collector.throughput_series()
    assert recorded.metrics.throughput_series() == \
        recorded.per_second_throughput()


def test_queue_counters_surface_in_snapshot():
    metrics = StreamingMetrics()
    counters = {"offered": 10, "taken": 7, "postponed": 2, "depth": 1}
    snap = metrics.snapshot(5.0, queue=counters)
    assert snap["queue"] == counters
    # Without a fresh queue argument the last snapshot sticks.
    assert metrics.snapshot(6.0)["queue"] == counters


def test_postponed_counter():
    metrics = StreamingMetrics()
    metrics.record_postponed(3)
    metrics.record_postponed()
    assert metrics.postponed() == 4
    assert metrics.snapshot(1.0)["totals"]["postponed"] == 4


def test_bins_section_documents_layout():
    bins = StreamingMetrics().snapshot(0.0)["bins"]
    assert bins["bins_per_decade"] == 32
    assert bins["relative_error"] == pytest.approx(10 ** (1 / 32) - 1)


def test_merge_folds_tenants_without_samples():
    a, b = StreamingMetrics(), StreamingMetrics()
    for i, metrics in enumerate((a, b)):
        for sample in simulated_run(400):
            metrics.observe(sample.end + i, sample.txn_name,
                            sample.latency, sample.status)
    b.record_postponed(5)
    before = a.committed()
    a.merge(b)
    assert a.committed() == before + b.committed()
    assert a.postponed() == 5
    snap = a.snapshot(30.0)
    assert snap["latency"][TOTAL_KEY]["count"] == a.committed()


def test_concurrent_observe_is_safe():
    metrics = StreamingMetrics()

    def writer(offset):
        for sample in simulated_run(500):
            metrics.observe(sample.end + offset, sample.txn_name,
                            sample.latency, sample.status)

    threads = [threading.Thread(target=writer, args=(k,)) for k in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    expected_ok = sum(1 for s in simulated_run(500)
                      if s.status == STATUS_OK)
    assert metrics.committed() == 4 * expected_ok
