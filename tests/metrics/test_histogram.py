"""Online log-binned histogram vs the exact batch percentile path."""

import math

import pytest

from repro.core.results import percentile
from repro.metrics import LatencyHistogram, make_histogram


def test_layout_defaults():
    h = LatencyHistogram()
    layout = h.layout()
    assert layout["lower"] == 1e-6
    assert layout["upper"] == 1e3
    assert layout["bins_per_decade"] == 32
    assert layout["bins"] == 9 * 32  # 9 decades
    assert layout["relative_error"] == pytest.approx(
        10 ** (1 / 32) - 1)


def test_invalid_layouts_rejected():
    with pytest.raises(ValueError):
        LatencyHistogram(lower=0.0)
    with pytest.raises(ValueError):
        LatencyHistogram(lower=1.0, upper=0.5)
    with pytest.raises(ValueError):
        LatencyHistogram(bins_per_decade=0)


def test_min_max_sum_are_exact():
    h = LatencyHistogram()
    values = [0.003, 0.17, 0.0009, 2.5, 0.02]
    for v in values:
        h.record(v)
    assert h.min == min(values)
    assert h.max == max(values)
    assert h.avg == pytest.approx(sum(values) / len(values))
    assert h.count == len(values)


def test_quantiles_within_bin_tolerance_of_exact():
    """The documented contract: |binned - exact| / exact <= g - 1."""
    h = LatencyHistogram()
    # Three decades of deterministic, irregular latencies.
    values = sorted(0.0005 * (1.0 + ((i * 37) % 101)) for i in range(500))
    for v in values:
        h.record(v)
    for pct in (25, 50, 75, 90, 95, 99):
        exact = percentile(values, pct)
        binned = h.quantile(pct)
        assert abs(binned - exact) / exact <= h.relative_error, \
            f"p{pct}: binned={binned} exact={exact}"


def test_quantiles_clamped_to_observed_range():
    h = LatencyHistogram()
    h.record(0.01)
    h.record(0.0100001)  # both land in the same bin
    for pct in (0, 1, 50, 99, 100):
        assert 0.01 <= h.quantile(pct) <= 0.0100001


def test_out_of_range_values_land_in_edge_bins():
    h = LatencyHistogram(lower=1e-3, upper=1e0, bins_per_decade=4)
    h.record(1e-9)   # below lower -> first bin
    h.record(1e9)    # above upper -> last bin
    assert h.count == 2
    assert h.min == 1e-9
    assert h.max == 1e9
    # Clamping keeps quantiles inside the exact observed range.
    assert h.quantile(0) == 1e-9
    assert h.quantile(100) == 1e9


def test_empty_histogram():
    h = LatencyHistogram()
    assert h.percentiles() == {}
    assert h.avg == 0.0
    with pytest.raises(ValueError):
        h.quantile(50)


def test_single_value_histogram():
    h = LatencyHistogram()
    h.record(0.042)
    for pct in (0, 25, 50, 99, 100):
        assert h.quantile(pct) == 0.042


def test_percentiles_keys_match_batch_summary():
    h = LatencyHistogram()
    for i in range(1, 101):
        h.record(0.01 * i)
    summary = h.percentiles()
    assert set(summary) == {"min", "max", "avg", "p25", "p50", "p75",
                            "p90", "p95", "p99"}
    assert summary["min"] == pytest.approx(0.01)
    assert summary["max"] == pytest.approx(1.0)
    assert summary["p50"] == pytest.approx(0.505, rel=0.08)


def test_snapshot_adds_count():
    h = LatencyHistogram()
    h.record(0.5)
    assert h.snapshot()["count"] == 1


def test_merge_matches_single_histogram():
    a, b, combined = (LatencyHistogram() for _ in range(3))
    for i in range(200):
        value = 0.001 * (1 + (i * 13) % 77)
        (a if i % 2 else b).record(value)
        combined.record(value)
    a.merge(b)
    assert a.count == combined.count
    assert a.min == combined.min
    assert a.max == combined.max
    assert a.sum == pytest.approx(combined.sum)
    for pct in (50, 95, 99):
        assert a.quantile(pct) == pytest.approx(combined.quantile(pct))


def test_merge_rejects_incompatible_layouts():
    a = LatencyHistogram()
    b = LatencyHistogram(bins_per_decade=8)
    with pytest.raises(ValueError):
        a.merge(b)


def test_make_histogram_copies_template_layout():
    template = LatencyHistogram(lower=1e-4, upper=1e2, bins_per_decade=16)
    clone = make_histogram(template)
    assert clone.compatible_with(template)
    assert clone.count == 0
    assert make_histogram(None).bins_per_decade == 32


def test_copy_is_independent():
    h = LatencyHistogram()
    h.record(0.1)
    clone = h.copy()
    clone.record(0.2)
    assert h.count == 1
    assert clone.count == 2


def test_bin_edges_monotone_and_cover_range():
    h = LatencyHistogram()
    previous = 0.0
    for index in range(h.nbins):
        lo, hi = h._edges(index)
        assert lo > previous or index == 0
        assert hi > lo
        previous = lo
    assert h._edges(0)[0] == pytest.approx(h.lower)
    assert h._edges(h.nbins - 1)[1] == pytest.approx(h.upper)


def test_index_is_monotone_in_value():
    h = LatencyHistogram()
    values = [10 ** (-6 + 9 * i / 200) for i in range(201)]
    indices = [h._index(v) for v in values]
    assert indices == sorted(indices)
    assert indices[0] == 0
    assert indices[-1] == h.nbins - 1
    assert math.isfinite(h.relative_error)
