"""Invariants under real thread concurrency.

These tests hammer contention-sensitive benchmarks with genuine worker
threads and then audit their data invariants — the strongest evidence that
the engine's 2PL actually serialises the workloads the way a real DBMS
would for OLTP-Bench.
"""

import pytest

from repro.benchmarks import create_benchmark
from repro.core import (Phase, RATE_DISABLED, ThreadedExecutor,
                        WorkloadConfiguration, WorkloadManager)
from repro.engine import Database

DURATION = 2  # wall seconds each


def run_threaded(bench, weights=None, workers=8):
    cfg = WorkloadConfiguration(
        benchmark=bench.name, workers=workers, seed=1,
        phases=[Phase(duration=DURATION, rate=RATE_DISABLED,
                      weights=weights or {})])
    manager = WorkloadManager(bench, cfg)
    executor = ThreadedExecutor(bench.database)
    executor.add_workload(manager)
    executor.run(timeout=DURATION + 15)
    return manager.results


@pytest.mark.slow
def test_smallbank_money_conserved_under_concurrency():
    db = Database()
    bench = create_benchmark("smallbank", db, scale_factor=0.1, seed=3,
                             hotspot_probability=0.95)
    bench.load()
    before = bench.total_money()
    # Only transfer transactions: total money is invariant.
    results = run_threaded(bench, weights={"SendPayment": 60,
                                           "Amalgamate": 40})
    assert results.committed() > 200
    assert bench.total_money() == pytest.approx(before, rel=1e-9)


@pytest.mark.slow
def test_seats_invariant_under_concurrency():
    db = Database()
    bench = create_benchmark("seats", db, scale_factor=0.3, seed=4)
    bench.load()
    results = run_threaded(bench)
    assert results.committed() > 100
    assert bench.check_seat_invariant()


@pytest.mark.slow
def test_tpcc_consistency_under_concurrency():
    db = Database()
    bench = create_benchmark("tpcc", db, scale_factor=1, seed=5,
                             districts=3, customers_per_district=30,
                             items=100, initial_orders=20)
    bench.load()
    results = run_threaded(bench, workers=6)
    assert results.committed() > 100
    checks = bench.check_consistency()
    assert checks["d_next_o_id"]
    assert checks["new_order_contiguous"]


@pytest.mark.slow
def test_linkbench_counts_under_concurrency():
    db = Database()
    bench = create_benchmark("linkbench", db, scale_factor=0.2, seed=6)
    bench.load()
    results = run_threaded(bench)
    assert results.committed() > 200
    assert bench.check_count_invariant()


@pytest.mark.slow
def test_voter_ids_unique_under_concurrency():
    db = Database()
    bench = create_benchmark("voter", db, scale_factor=1, seed=7)
    bench.load()
    results = run_threaded(bench)
    committed = results.committed()
    assert committed > 200
    # Every committed vote produced exactly one row with a distinct id.
    assert db.row_count("votes") == committed
    txn = db.begin()
    dupes = db.execute(
        txn, "SELECT vote_id, COUNT(*) FROM votes "
        "GROUP BY vote_id HAVING COUNT(*) > 1").rows
    db.rollback(txn)
    assert dupes == []
