"""Registry and paper Table 1 completeness."""

import pytest

from repro.benchmarks import (REGISTRY, benchmark_names, create_benchmark,
                              table1)
from repro.core.benchmark import (CLASS_FEATURE, CLASS_TRANSACTIONAL,
                                  CLASS_WEB)
from repro.engine import Database
from repro.errors import BenchmarkError

#: Paper Table 1, verbatim.
TABLE1_EXPECTED = {
    "auctionmark": (CLASS_TRANSACTIONAL, "On-line Auctions"),
    "chbenchmark": (CLASS_TRANSACTIONAL, "Mixture of OLTP and OLAP"),
    "seats": (CLASS_TRANSACTIONAL, "On-line Airline Ticketing"),
    "smallbank": (CLASS_TRANSACTIONAL, "Banking System"),
    "tatp": (CLASS_TRANSACTIONAL, "Caller Location App"),
    "tpcc": (CLASS_TRANSACTIONAL, "Order Processing"),
    "voter": (CLASS_TRANSACTIONAL, "Talent Show Voting"),
    "epinions": (CLASS_WEB, "Social Networking"),
    "linkbench": (CLASS_WEB, "Social Networking"),
    "twitter": (CLASS_WEB, "Social Networking"),
    "wikipedia": (CLASS_WEB, "On-line Encyclopedia"),
    "resourcestresser": (CLASS_FEATURE, "Isolated Resource Stresser"),
    "ycsb": (CLASS_FEATURE, "Scalable Key-value Store"),
    "jpab": (CLASS_FEATURE, "Object-Relational Mapping"),
    "sibench": (CLASS_FEATURE, "Transactional Isolation"),
}


def test_fifteen_benchmarks_registered():
    assert len(REGISTRY) == 15
    assert set(benchmark_names()) == set(TABLE1_EXPECTED)


@pytest.mark.parametrize("name", sorted(TABLE1_EXPECTED))
def test_class_and_domain_match_table1(name):
    expected_class, expected_domain = TABLE1_EXPECTED[name]
    cls = REGISTRY[name]
    assert cls.benchmark_class == expected_class
    assert cls.domain == expected_domain


def test_table1_rows():
    rows = table1()
    assert len(rows) == 15
    by_name = {row["benchmark"]: row for row in rows}
    assert by_name["tpcc"]["class"] == CLASS_TRANSACTIONAL


def test_create_benchmark_unknown_name():
    with pytest.raises(BenchmarkError):
        create_benchmark("mongomark", Database())


def test_create_benchmark_case_insensitive():
    bench = create_benchmark("TPCC", Database())
    assert bench.name == "tpcc"


@pytest.mark.parametrize("name", sorted(TABLE1_EXPECTED))
def test_every_benchmark_has_procedures_and_weights(name):
    bench = create_benchmark(name, Database())
    names = bench.procedure_names()
    assert names
    weights = bench.default_weights()
    assert set(weights) == set(names)
    assert sum(weights.values()) == pytest.approx(100.0)


@pytest.mark.parametrize("name", sorted(TABLE1_EXPECTED))
def test_every_benchmark_has_presets(name):
    bench = create_benchmark(name, Database())
    presets = bench.preset_mixtures()
    assert set(presets) == {"default", "read-only", "super-writes"}
    for weights in presets.values():
        assert sum(weights.values()) == pytest.approx(100.0)


def test_read_only_preset_is_read_only_where_possible():
    bench = create_benchmark("ycsb", Database())
    preset = bench.preset_mixtures()["read-only"]
    read_only_names = {p.txn_name() for p in bench.procedures if p.read_only}
    assert set(preset) <= read_only_names
