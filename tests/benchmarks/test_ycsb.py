"""YCSB: loader, request distributions, and CRUD procedures."""

import random

import pytest

from repro.benchmarks.ycsb import YcsbBenchmark
from repro.engine import Database, connect

from .conftest import committed, run_mixture


@pytest.fixture(scope="module")
def ycsb():
    db = Database()
    bench = YcsbBenchmark(db, scale_factor=0.5, seed=3)
    bench.load()
    return bench


def test_load_row_count(ycsb):
    assert ycsb.database.row_count("usertable") == 500
    assert ycsb.params["record_count"] == 500


def test_read_record(ycsb):
    conn = connect(ycsb.database)
    ycsb.make_procedure("ReadRecord").run(conn, random.Random(1))
    conn.close()


def test_insert_extends_keyspace(ycsb):
    conn = connect(ycsb.database)
    before = ycsb.database.row_count("usertable")
    ycsb.make_procedure("InsertRecord").run(conn, random.Random(2))
    assert ycsb.database.row_count("usertable") == before + 1
    conn.close()


def test_update_changes_field(ycsb):
    conn = connect(ycsb.database)
    rng = random.Random(4)
    cur = conn.cursor()
    cur.execute("SELECT field1 FROM usertable WHERE ycsb_key = 0")
    before = cur.fetchone()[0]
    conn.commit()
    # Run enough updates that key 0 (zipf-hot) is touched.
    proc = ycsb.make_procedure("UpdateRecord")
    for _ in range(60):
        proc.run(conn, rng)
    cur.execute("SELECT field1 FROM usertable WHERE ycsb_key = 0")
    # No assertion on inequality (field choice random); row must exist.
    assert cur.fetchone() is not None
    conn.commit()
    conn.close()


def test_scan_is_ordered(ycsb):
    conn = connect(ycsb.database)
    cur = conn.cursor()
    cur.execute("SELECT ycsb_key FROM usertable WHERE ycsb_key >= 10 "
                "AND ycsb_key < 20 ORDER BY ycsb_key")
    keys = [r[0] for r in cur.fetchall()]
    assert keys == sorted(keys)
    conn.commit()
    conn.close()


def test_read_modify_write(ycsb):
    conn = connect(ycsb.database)
    ycsb.make_procedure("ReadModifyWriteRecord").run(conn, random.Random(5))
    conn.close()


def test_mixture_run(ycsb):
    outcomes = run_mixture(ycsb, iterations=120)
    assert committed(outcomes) >= 115  # deletes of missing keys are no-ops


def test_zipfian_skews_access():
    db = Database()
    bench = YcsbBenchmark(db, scale_factor=0.2, seed=1)
    bench.load()
    proc = bench.make_procedure("ReadRecord")
    rng = random.Random(9)
    picks = [proc._pick_key(rng) for _ in range(3000)]
    from collections import Counter
    top_share = sum(c for _k, c in Counter(picks).most_common(20)) / 3000
    assert top_share > 0.4  # 10% of keys draw >40% of traffic


def test_uniform_distribution_option():
    db = Database()
    bench = YcsbBenchmark(db, scale_factor=0.2, seed=1,
                          request_distribution="uniform")
    bench.load()
    proc = bench.make_procedure("ReadRecord")
    rng = random.Random(9)
    picks = [proc._pick_key(rng) for _ in range(5000)]
    from collections import Counter
    top_share = sum(c for _k, c in Counter(picks).most_common(20)) / 5000
    assert top_share < 0.25


def test_hotspot_distribution_option():
    db = Database()
    bench = YcsbBenchmark(db, scale_factor=0.2, seed=1,
                          request_distribution="hotspot")
    bench.load()
    proc = bench.make_procedure("ReadRecord")
    rng = random.Random(9)
    picks = [proc._pick_key(rng) for _ in range(2000)]
    hot = sum(1 for p in picks if p < 40)  # hot set: first 20% of 200
    assert hot / 2000 > 0.7


def test_latest_distribution_option():
    db = Database()
    bench = YcsbBenchmark(db, scale_factor=0.2, seed=1,
                          request_distribution="latest")
    bench.load()
    proc = bench.make_procedure("ReadRecord")
    rng = random.Random(9)
    picks = [proc._pick_key(rng) for _ in range(2000)]
    recent = sum(1 for p in picks if p >= 150)
    assert recent / 2000 > 0.5
