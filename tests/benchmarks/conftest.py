"""Helpers for benchmark tests: loaded instances and mixed runs."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.core.procedure import UserAbort
from repro.engine import Database, connect
from repro.errors import Error


def run_mixture(bench, iterations=150, seed=5):
    """Run ``iterations`` transactions sampled from the default mixture.

    Returns a Counter of (txn_name, outcome).  Any outcome other than
    commit or UserAbort fails the calling test immediately.
    """
    conn = connect(bench.database)
    rng = random.Random(seed)
    weights = bench.default_weights()
    names = list(weights)
    cumulative = []
    acc = 0.0
    total = sum(weights.values())
    for name in names:
        acc += weights[name] / total
        cumulative.append(acc)
    outcomes: Counter = Counter()
    for _ in range(iterations):
        roll = rng.random()
        name = next(n for n, c in zip(names, cumulative) if roll <= c)
        proc = bench.make_procedure(name)
        try:
            proc.run(conn, rng)
            outcomes[(name, "ok")] += 1
        except UserAbort:
            conn.rollback()
            outcomes[(name, "abort")] += 1
        except Error as exc:  # engine errors are test failures
            conn.rollback()
            raise AssertionError(
                f"{bench.name}.{name} raised {type(exc).__name__}: {exc}"
            ) from exc
    conn.close()
    return outcomes


def committed(outcomes) -> int:
    return sum(v for (_n, status), v in outcomes.items() if status == "ok")
