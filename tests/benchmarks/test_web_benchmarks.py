"""Web-oriented benchmarks: Epinions, LinkBench, Twitter, Wikipedia."""

import random

import pytest

from repro.benchmarks.epinions import EpinionsBenchmark
from repro.benchmarks.linkbench import LinkBenchBenchmark
from repro.benchmarks.twitter import TwitterBenchmark
from repro.benchmarks.wikipedia import WikipediaBenchmark
from repro.engine import Database, connect

from .conftest import committed, run_mixture


# -- Epinions -------------------------------------------------------------


@pytest.fixture(scope="module")
def epinions():
    db = Database()
    bench = EpinionsBenchmark(db, scale_factor=0.5, seed=6)
    bench.load()
    return bench


def test_epinions_population(epinions):
    counts = epinions.table_counts()
    assert counts["useracct"] == 100
    assert counts["item"] == 50
    assert counts["review"] > 0
    assert counts["trust"] > 0


def test_epinions_trusted_rating_join(epinions):
    conn = connect(epinions.database)
    proc = epinions.make_procedure("GetAverageRatingByTrustedUser")
    result = proc.run(conn, random.Random(2))
    assert result is None or 0 <= result <= 5
    conn.close()


def test_epinions_review_uniqueness(epinions):
    txn = epinions.database.begin()
    rows = epinions.database.execute(
        txn, "SELECT i_id, u_id, COUNT(*) FROM review "
        "GROUP BY i_id, u_id HAVING COUNT(*) > 1").rows
    epinions.database.rollback(txn)
    assert rows == []


def test_epinions_mixture(epinions):
    outcomes = run_mixture(epinions, iterations=150)
    assert committed(outcomes) >= 140


# -- LinkBench --------------------------------------------------------------------


@pytest.fixture(scope="module")
def linkbench():
    db = Database()
    bench = LinkBenchBenchmark(db, scale_factor=0.3, seed=8)
    bench.load()
    return bench


def test_linkbench_count_invariant_after_load(linkbench):
    assert linkbench.check_count_invariant()


def test_linkbench_add_then_delete_link_keeps_counts(linkbench):
    conn = connect(linkbench.database)
    rng = random.Random(3)
    add = linkbench.make_procedure("AddLink")
    delete = linkbench.make_procedure("DeleteLink")
    for _ in range(30):
        add.run(conn, rng)
        delete.run(conn, rng)
    conn.close()
    assert linkbench.check_count_invariant()


def test_linkbench_get_link_list_filters_hidden(linkbench):
    conn = connect(linkbench.database)
    cur = conn.cursor()
    cur.execute("SELECT COUNT(*) FROM linktable WHERE visibility = 0")
    hidden_before = cur.fetchone()[0]
    conn.commit()
    rows = linkbench.make_procedure("GetLinkList").run(
        conn, random.Random(4))
    assert isinstance(rows, list)
    conn.close()


def test_linkbench_mixture_preserves_invariant(linkbench):
    outcomes = run_mixture(linkbench, iterations=200)
    assert committed(outcomes) >= 180
    assert linkbench.check_count_invariant()


def test_linkbench_add_node_ids_monotonic(linkbench):
    conn = connect(linkbench.database)
    proc = linkbench.make_procedure("AddNode")
    a = proc.run(conn, random.Random(5))
    b = proc.run(conn, random.Random(6))
    assert b > a  # ids are minted from a shared monotonic counter
    conn.close()


# -- Twitter -----------------------------------------------------------------------------


@pytest.fixture(scope="module")
def twitter():
    db = Database()
    bench = TwitterBenchmark(db, scale_factor=0.2, seed=9)
    bench.load()
    return bench


def test_twitter_population(twitter):
    counts = twitter.table_counts()
    assert counts["user_profiles"] == 100
    assert counts["tweets"] == 400
    assert counts["follows"] == counts["followers"]


def test_twitter_follow_graph_is_mirrored(twitter):
    txn = twitter.database.begin()
    follows = set(map(tuple, twitter.database.execute(
        txn, "SELECT f1, f2 FROM follows").rows))
    followers = set(map(tuple, twitter.database.execute(
        txn, "SELECT f1, f2 FROM followers").rows))
    twitter.database.rollback(txn)
    assert {(b, a) for a, b in follows} == followers


def test_twitter_insert_tweet_goes_to_added_tweets(twitter):
    conn = connect(twitter.database)
    before = twitter.database.row_count("added_tweets")
    twitter.make_procedure("InsertTweet").run(conn, random.Random(1))
    assert twitter.database.row_count("added_tweets") == before + 1
    conn.close()


def test_twitter_get_user_tweets_limit(twitter):
    conn = connect(twitter.database)
    rows = twitter.make_procedure("GetUserTweets").run(
        conn, random.Random(2))
    assert len(rows) <= 10
    conn.close()


def test_twitter_default_mix_is_read_heavy(twitter):
    weights = twitter.default_weights()
    assert weights["GetUserTweets"] == pytest.approx(90.0)
    assert weights["InsertTweet"] == pytest.approx(1.0)


def test_twitter_mixture(twitter):
    outcomes = run_mixture(twitter, iterations=120)
    assert committed(outcomes) == 120


# -- Wikipedia --------------------------------------------------------------------------------


@pytest.fixture(scope="module")
def wikipedia():
    db = Database()
    bench = WikipediaBenchmark(db, scale_factor=0.3, seed=10)
    bench.load()
    return bench


def test_wikipedia_population(wikipedia):
    counts = wikipedia.table_counts()
    assert counts["useracct"] == 30
    assert counts["page"] == 60
    assert counts["revision"] == counts["text"]
    assert counts["revision"] >= counts["page"]


def test_wikipedia_page_latest_points_at_revision(wikipedia):
    txn = wikipedia.database.begin()
    rows = wikipedia.database.execute(txn, """
        SELECT COUNT(*) FROM page p JOIN revision r ON r.rev_id = p.page_latest
        WHERE r.rev_page = p.page_id
    """).rows
    count_pages = wikipedia.database.execute(
        txn, "SELECT COUNT(*) FROM page").rows[0][0]
    wikipedia.database.rollback(txn)
    assert rows[0][0] == count_pages


def test_wikipedia_update_page_creates_revision(wikipedia):
    conn = connect(wikipedia.database)
    before = wikipedia.database.row_count("revision")
    rev_id = wikipedia.make_procedure("UpdatePage").run(
        conn, random.Random(3))
    assert wikipedia.database.row_count("revision") == before + 1
    txn = wikipedia.database.begin()
    latest = wikipedia.database.execute(
        txn, "SELECT COUNT(*) FROM page WHERE page_latest = ?",
        (rev_id,)).rows[0][0]
    wikipedia.database.rollback(txn)
    assert latest == 1
    conn.close()


def test_wikipedia_anonymous_read(wikipedia):
    conn = connect(wikipedia.database)
    size = wikipedia.make_procedure("GetPageAnonymous").run(
        conn, random.Random(4))
    assert size > 0
    conn.close()


def test_wikipedia_mixture(wikipedia):
    outcomes = run_mixture(wikipedia, iterations=150)
    assert committed(outcomes) >= 140
