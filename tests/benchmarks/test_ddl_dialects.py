"""Every benchmark's DDL parses, and dialect translation is total."""

import pytest

from repro.benchmarks import REGISTRY, create_benchmark
from repro.dialects import dialect_names, translate_ddl
from repro.engine import Database
from repro.engine.sqlparser import ast, parse


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_ddl_parses(name):
    bench = create_benchmark(name, Database())
    statements = list(bench.ddl())
    assert statements
    tables = 0
    for sql in statements:
        stmt = parse(sql)
        assert isinstance(stmt, (ast.CreateTable, ast.CreateIndex))
        if isinstance(stmt, ast.CreateTable):
            tables += 1
            assert stmt.columns
    assert tables >= 1


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_every_table_has_primary_key(name):
    """OLTP workloads address rows by key; every table must declare one."""
    bench = create_benchmark(name, Database())
    for sql in bench.ddl():
        stmt = parse(sql)
        if isinstance(stmt, ast.CreateTable):
            assert stmt.primary_key, f"{name}: {stmt.name} has no PK"


@pytest.mark.parametrize("dbms", ["postgres", "derby"])
@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_ddl_translates_without_residue(name, dbms):
    bench = create_benchmark(name, Database())
    for sql in bench.ddl():
        translated = translate_ddl(sql, dbms)
        assert "TINYINT" not in translated.upper() or dbms == "mysql"


def test_translated_ddl_still_loads_in_engine():
    """The engine accepts the derby-translated schema end to end."""
    db = Database()
    bench = create_benchmark("tatp", db)  # heaviest TINYINT user
    for sql in bench.ddl():
        db.execute(None, translate_ddl(sql, "derby"))
    assert db.catalog.has("subscriber")
