"""SEATS, AuctionMark, CH-benCHmark, ResourceStresser, and JPAB."""

import random

import pytest

from repro.benchmarks.auctionmark import AuctionMarkBenchmark
from repro.benchmarks.auctionmark.schema import ITEM_STATUS_OPEN
from repro.benchmarks.chbenchmark import ChBenchmark
from repro.benchmarks.jpab import JpabBenchmark
from repro.benchmarks.jpab.orm import Employee, EntityManager
from repro.benchmarks.resourcestresser import ResourceStresserBenchmark
from repro.benchmarks.seats import SeatsBenchmark
from repro.core.procedure import UserAbort
from repro.engine import Database, connect
from repro.errors import TransactionAborted

from .conftest import committed, run_mixture


# -- SEATS -------------------------------------------------------------------


@pytest.fixture(scope="module")
def seats():
    db = Database()
    bench = SeatsBenchmark(db, scale_factor=0.3, seed=12)
    bench.load()
    return bench


def test_seats_invariant_after_load(seats):
    assert seats.check_seat_invariant()


def test_seats_new_reservation_updates_counter(seats):
    conn = connect(seats.database)
    rng = random.Random(1)
    proc = seats.make_procedure("NewReservation")
    booked = 0
    for _ in range(30):
        try:
            proc.run(conn, rng)
            booked += 1
        except UserAbort:
            conn.rollback()
    conn.close()
    assert booked > 0
    assert seats.check_seat_invariant()


def test_seats_delete_reservation_releases_seat(seats):
    conn = connect(seats.database)
    rng = random.Random(2)
    proc = seats.make_procedure("DeleteReservation")
    deleted = 0
    for _ in range(20):
        try:
            proc.run(conn, rng)
            deleted += 1
        except UserAbort:
            conn.rollback()
    conn.close()
    assert deleted > 0
    assert seats.check_seat_invariant()


def test_seats_find_flights_in_window(seats):
    conn = connect(seats.database)
    rows = seats.make_procedure("FindFlights").run(conn, random.Random(3))
    assert isinstance(rows, list)
    conn.close()


def test_seats_find_open_seats_counts(seats):
    conn = connect(seats.database)
    open_seats = seats.make_procedure("FindOpenSeats").run(
        conn, random.Random(4))
    assert 0 <= len(open_seats) <= 150
    conn.close()


def test_seats_mixture_preserves_invariant(seats):
    outcomes = run_mixture(seats, iterations=150)
    assert committed(outcomes) > 90
    assert seats.check_seat_invariant()


def test_seats_no_duplicate_seat_assignments(seats):
    txn = seats.database.begin()
    rows = seats.database.execute(
        txn, "SELECT r_f_id, r_seat, COUNT(*) FROM reservation "
        "GROUP BY r_f_id, r_seat HAVING COUNT(*) > 1").rows
    seats.database.rollback(txn)
    assert rows == []


# -- AuctionMark -----------------------------------------------------------------


@pytest.fixture(scope="module")
def auction():
    db = Database()
    bench = AuctionMarkBenchmark(db, scale_factor=0.5, seed=13)
    bench.load()
    return bench


def test_auction_population(auction):
    counts = auction.table_counts()
    assert counts["useracct"] == 100
    assert counts["item"] == 50
    assert counts["region"] == 5


def test_auction_new_bid_raises_price(auction):
    conn = connect(auction.database)
    rng = random.Random(1)
    proc = auction.make_procedure("NewBid")
    for _ in range(40):
        try:
            proc.run(conn, rng)
            break
        except UserAbort:
            conn.rollback()
    else:
        pytest.fail("no open item accepted a bid")
    # Bid counters and price must be consistent for bid-carrying items.
    txn = auction.database.begin()
    rows = auction.database.execute(
        txn, "SELECT COUNT(*) FROM item WHERE i_num_bids > 0 "
        "AND i_current_price < i_initial_price").rows
    auction.database.rollback(txn)
    assert rows[0][0] == 0
    conn.close()


def test_auction_bid_counter_matches_bids(auction):
    txn = auction.database.begin()
    items = auction.database.execute(
        txn, "SELECT i_id, i_num_bids FROM item").rows
    bid_counts = dict(auction.database.execute(
        txn, "SELECT ib_i_id, COUNT(*) FROM item_bid GROUP BY ib_i_id").rows)
    auction.database.rollback(txn)
    for i_id, num_bids in items:
        assert bid_counts.get(i_id, 0) == num_bids


def test_auction_new_item_is_open(auction):
    conn = connect(auction.database)
    i_id = auction.make_procedure("NewItem").run(conn, random.Random(2))
    txn = auction.database.begin()
    status = auction.database.execute(
        txn, "SELECT i_status FROM item WHERE i_id = ?", (i_id,)).rows[0][0]
    auction.database.rollback(txn)
    assert status == ITEM_STATUS_OPEN
    conn.close()


def test_auction_mixture(auction):
    outcomes = run_mixture(auction, iterations=150)
    assert committed(outcomes) > 100


# -- CH-benCHmark -----------------------------------------------------------------------


@pytest.fixture(scope="module")
def chbench():
    db = Database()
    bench = ChBenchmark(db, scale_factor=1, seed=14, districts=2,
                        customers_per_district=30, items=80,
                        initial_orders=20)
    bench.load()
    return bench


def test_ch_has_tpch_tables(chbench):
    counts = chbench.table_counts()
    assert counts["supplier"] == 100
    assert counts["nation"] == 9
    assert counts["region"] == 3


def test_ch_mixes_oltp_and_olap_procedures(chbench):
    names = set(chbench.procedure_names())
    assert {"NewOrder", "Payment"} <= names
    assert {"Query1", "Query6", "Query12", "Query14"} <= names


def test_ch_query1_groups_by_line_number(chbench):
    conn = connect(chbench.database)
    rows = chbench.make_procedure("Query1").run(conn, random.Random(1))
    line_numbers = [r[0] for r in rows]
    assert line_numbers == sorted(line_numbers)
    assert all(r[5] >= 1 for r in rows)  # count_order per group
    conn.close()


def test_ch_query6_revenue_positive(chbench):
    conn = connect(chbench.database)
    revenue = chbench.make_procedure("Query6").run(conn, random.Random(1))
    assert revenue is None or revenue >= 0
    conn.close()


def test_ch_query12_partitions_orders(chbench):
    conn = connect(chbench.database)
    rows = chbench.make_procedure("Query12").run(conn, random.Random(1))
    for _ol_cnt, high, low in rows:
        assert high >= 0 and low >= 0
    conn.close()


def test_ch_query14_promo_share_bounded(chbench):
    conn = connect(chbench.database)
    share = chbench.make_procedure("Query14").run(conn, random.Random(1))
    assert 0.0 <= share <= 100.0
    conn.close()


def test_ch_olap_runs_against_live_oltp_state(chbench):
    conn = connect(chbench.database)
    rng = random.Random(5)
    before = chbench.make_procedure("Query6").run(conn, rng) or 0.0
    delivered = chbench.make_procedure("Delivery").run(conn, rng)
    after = chbench.make_procedure("Query6").run(conn, rng) or 0.0
    if delivered:
        assert after > before  # delivered lines now count as revenue
    conn.close()


# -- ResourceStresser -------------------------------------------------------------------------


@pytest.fixture(scope="module")
def stresser():
    db = Database()
    bench = ResourceStresserBenchmark(db, scale_factor=0.5, seed=15)
    bench.load()
    return bench


def test_stresser_all_procedures_run(stresser):
    conn = connect(stresser.database)
    rng = random.Random(1)
    for name in stresser.procedure_names():
        stresser.make_procedure(name).run(conn, rng)
    conn.close()


def test_stresser_contention1_touches_hot_rows_only(stresser):
    conn = connect(stresser.database)
    rng = random.Random(2)
    proc = stresser.make_procedure("Contention1")
    for _ in range(20):
        proc.run(conn, rng)
    txn = stresser.database.begin()
    rows = stresser.database.execute(
        txn, "SELECT COUNT(*) FROM locktable WHERE salary > 10000 "
        "AND empid >= 4").rows
    stresser.database.rollback(txn)
    assert rows[0][0] == 0  # cold rows untouched
    conn.close()


def test_stresser_io2_flips_flags(stresser):
    conn = connect(stresser.database)
    rng = random.Random(3)
    stresser.make_procedure("IO2").run(conn, rng)
    txn = stresser.database.begin()
    flipped = stresser.database.execute(
        txn, "SELECT COUNT(*) FROM iotablesmallrow WHERE flag1 = 1"
    ).rows[0][0]
    stresser.database.rollback(txn)
    assert flipped > 0
    conn.close()


def test_stresser_cpu_txn_footprint_is_read_only(stresser):
    conn = connect(stresser.database)
    stresser.make_procedure("CPU1").run(conn, random.Random(4))
    stats = conn.last_txn_stats
    assert stats.write_footprint == 0
    assert stats.rows_read > 0
    conn.close()


# -- JPAB -----------------------------------------------------------------------------------------


@pytest.fixture
def jpab():
    db = Database()
    bench = JpabBenchmark(db, scale_factor=0.2, seed=16)
    bench.load()
    return bench


def test_jpab_persist_retrieve_round_trip(jpab):
    conn = connect(jpab.database)
    em = EntityManager(conn)
    employee = Employee(id=99_999, first_name="Ada", last_name="Lovelace",
                        street="12 Analytical Way", city="London",
                        salary=120_000.0)
    em.persist(employee)
    em.commit()
    em2 = EntityManager(conn)
    found = em2.find(Employee, 99_999)
    assert found is not None
    assert found.first_name == "Ada"
    assert found.version == 0
    em2.commit()
    conn.close()


def test_jpab_identity_map_returns_same_object(jpab):
    conn = connect(jpab.database)
    em = EntityManager(conn)
    first = em.find(Employee, 0)
    second = em.find(Employee, 0)
    assert first is second
    em.commit()
    conn.close()


def test_jpab_merge_bumps_version(jpab):
    conn = connect(jpab.database)
    em = EntityManager(conn)
    employee = em.find(Employee, 1)
    employee.city = "Zurich"
    em.merge(employee)
    em.commit()
    assert employee.version == 1
    em2 = EntityManager(conn)
    reloaded = em2.find(Employee, 1)
    assert reloaded.city == "Zurich"
    assert reloaded.version == 1
    em2.commit()
    conn.close()


def test_jpab_optimistic_lock_failure(jpab):
    conn = connect(jpab.database)
    em = EntityManager(conn)
    stale = em.find(Employee, 2)
    em.commit()

    other = connect(jpab.database)
    em_other = EntityManager(other)
    fresh = em_other.find(Employee, 2)
    fresh.salary += 1
    em_other.merge(fresh)
    em_other.commit()
    other.close()

    stale.salary += 2
    with pytest.raises(TransactionAborted):
        em.merge(stale)  # version moved underneath us
    em.rollback()
    conn.close()


def test_jpab_remove(jpab):
    conn = connect(jpab.database)
    em = EntityManager(conn)
    employee = em.find(Employee, 3)
    em.remove(employee)
    em.commit()
    em2 = EntityManager(conn)
    assert em2.find(Employee, 3) is None
    em2.commit()
    conn.close()


def test_jpab_mixture(jpab):
    outcomes = run_mixture(jpab, iterations=80)
    assert committed(outcomes) >= 75
