"""Voter, TATP, and SIBench behaviours."""

import random

import pytest

from repro.benchmarks.sibench import SiBenchmark
from repro.benchmarks.tatp import TatpBenchmark
from repro.benchmarks.voter import VoterBenchmark
from repro.core.procedure import UserAbort
from repro.engine import Database, SNAPSHOT, connect

from .conftest import committed, run_mixture


# -- Voter ---------------------------------------------------------------


@pytest.fixture
def voter():
    db = Database()
    bench = VoterBenchmark(db, scale_factor=1, seed=1)
    bench.load()
    return bench


def test_voter_vote_inserts(voter):
    conn = connect(voter.database)
    vote_id = voter.make_procedure("Vote").run(conn, random.Random(1))
    assert vote_id == 1
    assert voter.database.row_count("votes") == 1
    conn.close()


def test_voter_vote_limit_enforced(voter):
    conn = connect(voter.database)
    rng = random.Random(2)
    proc = voter.make_procedure("Vote")

    # Monkeypatch-free approach: flood votes until some phone repeats is
    # impractical; instead vote twice with a fixed phone by seeding rng
    # identically and checking the cap via direct SQL.
    cur = conn.cursor()
    for i in range(2):
        cur.execute(
            "INSERT INTO votes (vote_id, phone_number, state, "
            "contestant_number, created) VALUES (?, ?, ?, ?, ?)",
            (1000 + i, 2125551234, "NY", 1, 0.0))
    conn.commit()
    cur.execute("SELECT COUNT(*) FROM votes WHERE phone_number = ?",
                (2125551234,))
    assert cur.fetchone()[0] == voter.params["max_votes_per_phone"]
    conn.close()


def test_voter_leaderboard(voter):
    conn = connect(voter.database)
    proc = voter.make_procedure("Vote")
    rng = random.Random(3)
    for _ in range(30):
        try:
            proc.run(conn, rng)
        except UserAbort:
            conn.rollback()
    conn.close()
    board = voter.leaderboard()
    assert len(board) == 6
    assert sum(votes for _name, votes in board) >= 28
    assert board == sorted(board, key=lambda r: (-r[1], r[0]))


# -- TATP ---------------------------------------------------------------------


@pytest.fixture(scope="module")
def tatp():
    db = Database()
    bench = TatpBenchmark(db, scale_factor=0.1, seed=4)
    bench.load()
    return bench


def test_tatp_population(tatp):
    counts = tatp.table_counts()
    assert counts["subscriber"] == 100
    assert counts["access_info"] >= 100  # 1..4 per subscriber
    assert counts["special_facility"] >= 100


def test_tatp_get_subscriber_data(tatp):
    conn = connect(tatp.database)
    row = tatp.make_procedure("GetSubscriberData").run(
        conn, random.Random(1))
    assert len(row) == 34  # s_id + sub_nbr + 30 flags + 2 locations
    conn.close()


def test_tatp_update_location_by_sub_nbr(tatp):
    conn = connect(tatp.database)
    tatp.make_procedure("UpdateLocation").run(conn, random.Random(2))
    conn.close()


def test_tatp_insert_delete_call_forwarding_round_trip(tatp):
    conn = connect(tatp.database)
    rng = random.Random(6)
    inserts = deletes = 0
    for _ in range(40):
        try:
            tatp.make_procedure("InsertCallForwarding").run(conn, rng)
            inserts += 1
        except UserAbort:
            conn.rollback()
        try:
            tatp.make_procedure("DeleteCallForwarding").run(conn, rng)
            deletes += 1
        except UserAbort:
            conn.rollback()
    assert inserts > 0
    assert deletes > 0
    conn.close()


def test_tatp_mixture(tatp):
    outcomes = run_mixture(tatp, iterations=200)
    assert committed(outcomes) > 120  # spec expects a visible abort share


def test_tatp_default_weights_sum_to_100(tatp):
    assert sum(tatp.default_weights().values()) == pytest.approx(100.0)


# -- SIBench -----------------------------------------------------------------------


def test_sibench_min_and_update():
    db = Database()
    bench = SiBenchmark(db, scale_factor=0.5, seed=1)
    bench.load()
    conn = connect(db)
    rng = random.Random(1)
    minimum = bench.make_procedure("MinRecord").run(conn, rng)
    assert minimum == 0
    bench.make_procedure("UpdateRecord").run(conn, rng)
    conn.close()


def test_sibench_detects_si_vs_serializable_difference():
    """Under SI a reader's MIN is stable across a concurrent bump."""
    db = Database()
    bench = SiBenchmark(db, scale_factor=0.5, seed=1)
    bench.load()

    reader = connect(db, isolation=SNAPSHOT)
    cur = reader.cursor()
    cur.execute("SELECT MIN(value) FROM sitest")
    first = cur.fetchone()[0]

    writer = connect(db)
    wcur = writer.cursor()
    wcur.execute("UPDATE sitest SET value = value + 100 WHERE id = 0")
    writer.commit()

    cur.execute("SELECT MIN(value) FROM sitest")
    assert cur.fetchone()[0] == first  # snapshot stability
    reader.commit()
    cur.execute("SELECT MIN(value) FROM sitest")
    assert cur.fetchone()[0] != first or first != 0
    reader.close()
