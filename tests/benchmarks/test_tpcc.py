"""TPC-C: loader population rules, transaction logic, consistency."""

import random

import pytest

from repro.benchmarks.tpcc import TpccBenchmark
from repro.benchmarks.tpcc.schema import nurand_a
from repro.engine import Database, connect
from repro.rand import tpcc_last_name

from .conftest import committed, run_mixture


@pytest.fixture(scope="module")
def tpcc():
    db = Database()
    bench = TpccBenchmark(db, scale_factor=1, seed=7, districts=3,
                          customers_per_district=40, items=150,
                          initial_orders=30)
    bench.load()
    return bench


def q(bench, sql, params=()):
    txn = bench.database.begin()
    try:
        return bench.database.execute(txn, sql, params).rows
    finally:
        bench.database.rollback(txn)


def test_population_ratios(tpcc):
    counts = tpcc.table_counts()
    assert counts["warehouse"] == 1
    assert counts["district"] == 3
    assert counts["customer"] == 3 * 40
    assert counts["history"] == 3 * 40  # one history row per customer
    assert counts["item"] == 150
    assert counts["stock"] == 150  # items x warehouses
    assert counts["oorder"] == 3 * 30
    # ~30% of initial orders are undelivered new orders.
    assert counts["new_order"] == pytest.approx(0.3 * 90, abs=6)


def test_initial_orders_cover_distinct_customers(tpcc):
    rows = q(tpcc, "SELECT COUNT(DISTINCT o_c_id) FROM oorder "
                   "WHERE o_w_id = 1 AND o_d_id = 1")
    assert rows[0][0] == 30  # random permutation: all distinct


def test_district_next_o_id_consistent_after_load(tpcc):
    assert tpcc.check_consistency() == {
        "d_next_o_id": True, "new_order_contiguous": True}


def test_new_order_creates_rows(tpcc):
    conn = connect(tpcc.database)
    rng = random.Random(11)
    before = q(tpcc, "SELECT COUNT(*) FROM oorder")[0][0]
    proc = tpcc.make_procedure("NewOrder")
    total = None
    for _ in range(10):
        try:
            total = proc.run(conn, rng)
            break
        except Exception:
            conn.rollback()
    assert total is not None and total > 0
    after = q(tpcc, "SELECT COUNT(*) FROM oorder")[0][0]
    assert after == before + 1
    conn.close()


def test_payment_updates_ytd_chain(tpcc):
    conn = connect(tpcc.database)
    rng = random.Random(13)
    w_ytd_before = q(tpcc, "SELECT SUM(w_ytd) FROM warehouse")[0][0]
    tpcc.make_procedure("Payment").run(conn, rng)
    conn.close()
    w_ytd_after = q(tpcc, "SELECT SUM(w_ytd) FROM warehouse")[0][0]
    assert w_ytd_after > w_ytd_before


def test_delivery_clears_new_orders(tpcc):
    conn = connect(tpcc.database)
    rng = random.Random(17)
    before = q(tpcc, "SELECT COUNT(*) FROM new_order")[0][0]
    delivered = tpcc.make_procedure("Delivery").run(conn, rng)
    conn.close()
    after = q(tpcc, "SELECT COUNT(*) FROM new_order")[0][0]
    assert delivered >= 1
    assert after == before - delivered


def test_order_status_reads_latest_order(tpcc):
    conn = connect(tpcc.database)
    rng = random.Random(19)
    result = tpcc.make_procedure("OrderStatus").run(conn, rng)
    if result is not None:
        o_id, lines = result
        assert o_id >= 1
        assert lines
    conn.close()


def test_stock_level_returns_count(tpcc):
    conn = connect(tpcc.database)
    rng = random.Random(23)
    count = tpcc.make_procedure("StockLevel").run(conn, rng)
    assert isinstance(count, int)
    assert count >= 0
    conn.close()


def test_mixture_run_stays_consistent(tpcc):
    outcomes = run_mixture(tpcc, iterations=150)
    assert committed(outcomes) > 120
    assert tpcc.check_consistency() == {
        "d_next_o_id": True, "new_order_contiguous": True}


def test_default_mixture_is_spec():
    bench = TpccBenchmark(Database())
    weights = bench.default_weights()
    assert weights["NewOrder"] == pytest.approx(45.0)
    assert weights["Payment"] == pytest.approx(43.0)
    assert weights["OrderStatus"] == pytest.approx(4.0)


def test_nurand_a_scaling():
    assert nurand_a(3000, 3000, 1023) == 1023  # spec population
    assert nurand_a(100_000, 100_000, 8191) == 8191
    reduced = nurand_a(60, 3000, 1023)
    assert 1 <= reduced < 60
    assert (reduced + 1) & reduced == 0  # 2^k - 1 shape
    assert nurand_a(2, 3000, 1023) == 1


def test_tpcc_last_name_syllables():
    assert tpcc_last_name(0) == "BARBARBAR"
    assert tpcc_last_name(371) == "PRICALLYOUGHT"
    assert tpcc_last_name(999) == "EINGEINGEING"
