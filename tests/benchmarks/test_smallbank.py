"""SmallBank: money conservation and per-transaction semantics."""

import random

import pytest

from repro.benchmarks.smallbank import SmallBankBenchmark
from repro.core.procedure import UserAbort
from repro.engine import Database, connect

from .conftest import run_mixture


@pytest.fixture
def bank():
    db = Database()
    bench = SmallBankBenchmark(db, scale_factor=0.1, seed=2)
    bench.load()
    return bench


def test_load_counts(bank):
    counts = bank.table_counts()
    assert counts["accounts"] == counts["savings"] == counts["checking"]
    assert counts["accounts"] == 100


def test_balance_reads_total(bank):
    conn = connect(bank.database)
    total = bank.make_procedure("Balance").run(conn, random.Random(1))
    assert total > 0
    conn.close()


def test_send_payment_conserves_money(bank):
    before = bank.total_money()
    conn = connect(bank.database)
    rng = random.Random(3)
    proc = bank.make_procedure("SendPayment")
    for _ in range(20):
        try:
            proc.run(conn, rng)
        except UserAbort:
            conn.rollback()
    conn.close()
    assert bank.total_money() == pytest.approx(before, rel=1e-9)


def test_amalgamate_conserves_money_and_zeroes_source(bank):
    before = bank.total_money()
    conn = connect(bank.database)
    proc = bank.make_procedure("Amalgamate")
    proc.run(conn, random.Random(4))
    conn.close()
    assert bank.total_money() == pytest.approx(before, rel=1e-9)
    # At least one account is now fully drained.
    txn = bank.database.begin()
    rows = bank.database.execute(
        txn, "SELECT COUNT(*) FROM savings WHERE bal = 0").rows
    bank.database.rollback(txn)
    assert rows[0][0] >= 1


def test_deposit_checking_increases_total(bank):
    before = bank.total_money()
    conn = connect(bank.database)
    bank.make_procedure("DepositChecking").run(conn, random.Random(5))
    conn.close()
    assert bank.total_money() > before


def test_transact_savings_overdraft_aborts():
    db = Database()
    bench = SmallBankBenchmark(db, scale_factor=0.01, seed=2)
    bench.load()
    conn = connect(db)
    cur = conn.cursor()
    cur.execute("UPDATE savings SET bal = 0.5")
    conn.commit()
    rng = random.Random(0)
    proc = bench.make_procedure("TransactSavings")
    aborted = False
    for _ in range(30):
        try:
            proc.run(conn, rng)
        except UserAbort:
            conn.rollback()
            aborted = True
            break
    assert aborted
    conn.close()


def test_write_check_applies_penalty():
    db = Database()
    bench = SmallBankBenchmark(db, scale_factor=0.01, seed=2)
    bench.load()
    conn = connect(db)
    cur = conn.cursor()
    cur.execute("UPDATE savings SET bal = 0")
    cur.execute("UPDATE checking SET bal = 10")
    conn.commit()
    rng = random.Random(1)
    proc = bench.make_procedure("WriteCheck")
    proc.run(conn, rng)
    cur.execute("SELECT MIN(bal) FROM checking")
    lowest = cur.fetchone()[0]
    conn.commit()
    conn.close()
    # The checked amount exceeded funds, so balance dropped below -1
    # (amount + $1 penalty) rather than stopping at the limit.
    assert lowest < 0


def test_hotspot_concentrates_traffic(bank):
    proc = bank.make_procedure("Balance")
    rng = random.Random(7)
    picks = [proc._pick_customer(rng) for _ in range(2000)]
    hot = sum(1 for p in picks if p < 100)
    assert hot / 2000 > 0.85


def test_mixture_run_conserves_invariants(bank):
    run_mixture(bank, iterations=200)
    # After arbitrary traffic every account still has both balance rows.
    counts = bank.table_counts()
    assert counts["accounts"] == counts["savings"] == counts["checking"]
