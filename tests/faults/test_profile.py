"""FaultProfile: validation, partial updates, and the chaos env hook."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (ENV_ABORTS, ENV_DISCONNECTS, ENV_LATENCY,
                          ENV_LOCK_TIMEOUTS, FaultProfile,
                          default_profile, zero_profile)

ALL_ENV = (ENV_ABORTS, ENV_LATENCY, ENV_LOCK_TIMEOUTS, ENV_DISCONNECTS)


def _clear_env(monkeypatch):
    for var in ALL_ENV:
        monkeypatch.delenv(var, raising=False)


def test_zero_profile_is_disabled():
    profile = zero_profile()
    assert not profile.enabled
    assert profile.total_probability == 0.0


def test_probability_bounds_validated():
    with pytest.raises(ConfigurationError):
        FaultProfile(abort_probability=1.5)
    with pytest.raises(ConfigurationError):
        FaultProfile(latency_probability=-0.1)


def test_probabilities_must_sum_to_at_most_one():
    with pytest.raises(ConfigurationError):
        FaultProfile(abort_probability=0.6, disconnect_probability=0.6)


def test_latency_bounds_validated():
    with pytest.raises(ConfigurationError):
        FaultProfile(latency_min=0.5, latency_max=0.1)
    with pytest.raises(ConfigurationError):
        FaultProfile(latency_min=-0.1)


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigurationError) as excinfo:
        FaultProfile.from_dict({"abort_probability": 0.1, "bogus": 1})
    assert "bogus" in str(excinfo.value)


def test_from_dict_rejects_non_numbers():
    with pytest.raises(ConfigurationError):
        FaultProfile.from_dict({"abort_probability": "lots"})


def test_updated_is_a_partial_put():
    base = FaultProfile(abort_probability=0.1, latency_min=0.2,
                        latency_max=0.4)
    updated = base.updated({"abort_probability": 0.3})
    assert updated.abort_probability == 0.3
    assert updated.latency_min == 0.2  # untouched fields survive
    assert base.abort_probability == 0.1  # immutable value object


def test_updated_validates_the_merged_profile():
    base = FaultProfile(abort_probability=0.6)
    with pytest.raises(ConfigurationError):
        base.updated({"disconnect_probability": 0.6})


def test_round_trip_through_dict():
    profile = FaultProfile(abort_probability=0.05,
                           latency_probability=0.1)
    assert FaultProfile.from_dict(profile.to_dict()) == profile


def test_default_profile_is_zero_without_env(monkeypatch):
    _clear_env(monkeypatch)
    assert not default_profile().enabled


def test_default_profile_reads_chaos_env(monkeypatch):
    _clear_env(monkeypatch)
    monkeypatch.setenv(ENV_ABORTS, "0.05")
    monkeypatch.setenv(ENV_LATENCY, "0.02")
    profile = default_profile()
    assert profile.abort_probability == 0.05
    assert profile.latency_probability == 0.02
    # Chaos runs share real suites: spikes are kept short.
    assert profile.latency_max <= 0.01


def test_default_profile_ignores_garbage_env(monkeypatch):
    _clear_env(monkeypatch)
    monkeypatch.setenv(ENV_ABORTS, "not-a-number")
    assert not default_profile().enabled
