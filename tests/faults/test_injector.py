"""FaultInjector: deterministic schedules and ground-truth accounting."""

from repro.faults import (FaultInjector, FaultProfile, KIND_ABORT,
                          KIND_LATENCY, zero_profile)


def _drive(injector, attempts=200, txn="Read"):
    return [injector.attempt_begin(txn) for _ in range(attempts)]


def test_zero_profile_injects_nothing():
    injector = FaultInjector(seed=7, profile=zero_profile())
    plans = _drive(injector)
    assert plans == [None] * 200
    counters = injector.counters()
    assert counters["total"] == 0
    assert counters["attempts"] == 200


def test_same_seed_same_schedule():
    profile = FaultProfile(abort_probability=0.2,
                           disconnect_probability=0.1,
                           latency_probability=0.1)
    first = FaultInjector(seed=11, tenant="t1", profile=profile)
    second = FaultInjector(seed=11, tenant="t1", profile=profile)
    _drive(first)
    _drive(second)
    assert first.schedule() == second.schedule()
    assert first.schedule()  # nonzero profile actually injected


def test_different_seed_different_schedule():
    profile = FaultProfile(abort_probability=0.3)
    first = FaultInjector(seed=11, tenant="t1", profile=profile)
    second = FaultInjector(seed=12, tenant="t1", profile=profile)
    _drive(first)
    _drive(second)
    assert first.schedule() != second.schedule()


def test_tenant_salts_the_stream():
    profile = FaultProfile(abort_probability=0.3)
    first = FaultInjector(seed=11, tenant="t1", profile=profile)
    second = FaultInjector(seed=11, tenant="t2", profile=profile)
    _drive(first)
    _drive(second)
    assert first.schedule() != second.schedule()


def test_certain_fault_fires_every_attempt():
    injector = FaultInjector(
        seed=3, profile=FaultProfile(abort_probability=1.0))
    plans = _drive(injector, attempts=50)
    assert all(p is not None and p.kind == KIND_ABORT for p in plans)
    assert injector.counters()[KIND_ABORT] == 50


def test_latency_plans_carry_bounded_spikes():
    profile = FaultProfile(latency_probability=1.0,
                           latency_min=0.01, latency_max=0.02)
    injector = FaultInjector(seed=5, profile=profile)
    for plan in _drive(injector, attempts=50):
        assert plan.kind == KIND_LATENCY
        assert 0.01 <= plan.latency <= 0.02


def test_counters_reconcile_with_log():
    profile = FaultProfile(abort_probability=0.2, latency_probability=0.2)
    injector = FaultInjector(seed=9, profile=profile)
    _drive(injector, attempts=500)
    counters = injector.counters()
    log = injector.log()
    assert counters["total"] == len(log)
    for kind in ("abort", "latency"):
        assert counters[kind] == sum(1 for p in log if p.kind == kind)


def test_profile_swap_takes_effect_mid_stream():
    injector = FaultInjector(seed=2, profile=zero_profile())
    assert _drive(injector, attempts=20) == [None] * 20
    injector.set_profile(FaultProfile(abort_probability=1.0))
    assert all(p is not None for p in _drive(injector, attempts=20))
