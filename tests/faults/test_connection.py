"""FaultingConnection: statement-boundary firing over the real engine."""

import pytest

from repro.engine import connect
from repro.errors import (InjectedAbort, InjectedDisconnect,
                          InjectedLockTimeout)
from repro.faults import (FaultPlan, FaultingConnection, KIND_ABORT,
                          KIND_DISCONNECT, KIND_LATENCY, KIND_LOCK_TIMEOUT)


@pytest.fixture
def kv(db):
    raw = connect(db)
    cur = raw.cursor()
    cur.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL)")
    cur.execute("INSERT INTO kv VALUES (?, ?)", (1, 0))
    raw.commit()
    wrapped = FaultingConnection(connect(db))
    yield wrapped
    wrapped.close()
    raw.close()


def _plan(kind, at_statement=0):
    return FaultPlan(index=0, txn_name="Write", kind=kind,
                     at_statement=at_statement)


def test_unarmed_connection_is_transparent(kv):
    cur = kv.cursor()
    cur.execute("UPDATE kv SET v = v + 1 WHERE k = ?", (1,))
    kv.commit()
    cur.execute("SELECT v FROM kv WHERE k = ?", (1,))
    assert cur.fetchall()[0][0] == 1


def test_abort_fires_at_planned_statement(kv):
    kv.arm(_plan(KIND_ABORT, at_statement=1))
    cur = kv.cursor()
    cur.execute("UPDATE kv SET v = v + 1 WHERE k = ?", (1,))  # statement 0
    with pytest.raises(InjectedAbort):
        cur.execute("UPDATE kv SET v = v + 1 WHERE k = ?", (1,))
    # Firing rolled the transaction back: the first update is gone.
    kv.rollback()
    cur = kv.cursor()
    cur.execute("SELECT v FROM kv WHERE k = ?", (1,))
    assert cur.fetchall()[0][0] == 0


def test_short_transaction_fires_at_commit(kv):
    kv.arm(_plan(KIND_LOCK_TIMEOUT, at_statement=2))
    cur = kv.cursor()
    cur.execute("UPDATE kv SET v = v + 1 WHERE k = ?", (1,))  # statement 0
    with pytest.raises(InjectedLockTimeout):
        kv.commit()  # only 1 statement ran; the planned fault still fires
    kv.rollback()


def test_disconnect_sticks_until_reconnect(kv):
    kv.arm(_plan(KIND_DISCONNECT))
    cur = kv.cursor()
    with pytest.raises(InjectedDisconnect):
        cur.execute("SELECT v FROM kv WHERE k = ?", (1,))
    assert kv.dropped
    with pytest.raises(InjectedDisconnect):
        kv.cursor()  # still dead
    kv.rollback()  # the failure handler's rollback is always allowed
    kv.reconnect()
    assert not kv.dropped
    cur = kv.cursor()
    cur.execute("SELECT v FROM kv WHERE k = ?", (1,))
    assert cur.fetchall()[0][0] == 0


def test_plan_is_consumed_by_firing(kv):
    kv.arm(_plan(KIND_ABORT))
    cur = kv.cursor()
    with pytest.raises(InjectedAbort):
        cur.execute("SELECT v FROM kv WHERE k = ?", (1,))
    # The retry's statements run clean: the plan fired exactly once.
    cur = kv.cursor()
    cur.execute("SELECT v FROM kv WHERE k = ?", (1,))
    kv.commit()


def test_latency_plans_are_rejected(kv):
    with pytest.raises(ValueError):
        kv.arm(FaultPlan(index=0, txn_name="Read", kind=KIND_LATENCY))


def test_attribute_passthrough(kv):
    assert kv.in_transaction is False
    cur = kv.cursor()
    cur.execute("SELECT v FROM kv WHERE k = ?", (1,))
    assert kv.in_transaction is True
    kv.commit()
