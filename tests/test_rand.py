"""Distribution utilities: Zipf, NURand, hotspot, discrete sampling."""

import math
import random
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.rand import (DiscreteDistribution, HotspotGenerator,
                        LatestGenerator, ScrambledZipfGenerator,
                        ZipfGenerator, exponential_interarrival, make_rng,
                        nu_rand, random_numeric_string, random_string,
                        tpcc_last_name)


def test_random_string_lengths():
    rng = random.Random(1)
    for _ in range(50):
        s = random_string(rng, 5, 10)
        assert 5 <= len(s) <= 10
    assert len(random_string(rng, 7)) == 7


def test_random_numeric_string():
    rng = random.Random(2)
    s = random_numeric_string(rng, 15)
    assert len(s) == 15
    assert s.isdigit()


def test_nu_rand_in_range():
    rng = random.Random(3)
    values = [nu_rand(rng, 255, 0, 999) for _ in range(2000)]
    assert all(0 <= v <= 999 for v in values)
    assert len(set(values)) > 100  # actually spreads


def test_nu_rand_skews_distribution():
    rng = random.Random(4)
    values = Counter(nu_rand(rng, 7, 0, 99) for _ in range(20000))
    top_decile = sum(c for v, c in values.items()) / 20000
    # Compared to uniform, the OR-composition concentrates on values with
    # many set bits; just check the distribution is non-degenerate.
    assert len(values) > 50


def test_zipf_generator_bounds_and_skew():
    zipf = ZipfGenerator(1000, theta=0.99)
    rng = random.Random(5)
    draws = [zipf.next(rng) for _ in range(20000)]
    assert all(0 <= d < 1000 for d in draws)
    counts = Counter(draws)
    top10 = sum(c for _v, c in counts.most_common(10)) / len(draws)
    assert top10 > 0.3  # heavy head


def test_zipf_invalid_args():
    with pytest.raises(ValueError):
        ZipfGenerator(0)
    with pytest.raises(ValueError):
        ZipfGenerator(10, theta=1.5)


def test_zipf_large_n_uses_approximation():
    # >10k switches to the integral tail approximation; stays in bounds.
    zipf = ZipfGenerator(1_000_000, theta=0.9)
    rng = random.Random(6)
    draws = [zipf.next(rng) for _ in range(500)]
    assert all(0 <= d < 1_000_000 for d in draws)


def test_scrambled_zipf_spreads_hot_keys():
    scrambled = ScrambledZipfGenerator(1000)
    rng = random.Random(7)
    draws = [scrambled.next(rng) for _ in range(20000)]
    counts = Counter(draws)
    hot_keys = [v for v, _c in counts.most_common(10)]
    # Hot keys are scattered, not the lowest ids.
    assert max(hot_keys) > 100
    assert all(0 <= d < 1000 for d in draws)


def test_latest_generator_prefers_recent():
    latest = LatestGenerator(1000)
    rng = random.Random(8)
    draws = [latest.next(rng) for _ in range(5000)]
    assert sum(1 for d in draws if d >= 900) / len(draws) > 0.5
    latest.set_max(2000)
    assert latest.n == 2000


def test_hotspot_generator_fractions():
    hotspot = HotspotGenerator(1000, hot_set_fraction=0.1,
                               hot_op_fraction=0.9)
    rng = random.Random(9)
    draws = [hotspot.next(rng) for _ in range(10000)]
    hot_share = sum(1 for d in draws if d < 100) / len(draws)
    assert hot_share == pytest.approx(0.9, abs=0.03)
    with pytest.raises(ValueError):
        HotspotGenerator(10, hot_set_fraction=0)
    with pytest.raises(ValueError):
        HotspotGenerator(10, hot_op_fraction=2)


def test_discrete_distribution_probabilities():
    dist = DiscreteDistribution(["a", "b", "c"], [50, 30, 20])
    rng = random.Random(10)
    counts = Counter(dist.sample(rng) for _ in range(20000))
    assert counts["a"] / 20000 == pytest.approx(0.5, abs=0.02)
    assert counts["b"] / 20000 == pytest.approx(0.3, abs=0.02)
    assert dist.probability("a") == pytest.approx(0.5)
    assert dist.probability("zz") == 0.0


def test_discrete_distribution_validation():
    with pytest.raises(ValueError):
        DiscreteDistribution([], [])
    with pytest.raises(ValueError):
        DiscreteDistribution(["a"], [1, 2])
    with pytest.raises(ValueError):
        DiscreteDistribution(["a"], [-1])
    with pytest.raises(ValueError):
        DiscreteDistribution(["a", "b"], [0, 0])


def test_discrete_distribution_zero_weight_never_sampled():
    dist = DiscreteDistribution(["a", "b"], [100, 0])
    rng = random.Random(11)
    assert all(dist.sample(rng) == "a" for _ in range(200))


def test_exponential_interarrival_mean():
    rng = random.Random(12)
    gaps = [exponential_interarrival(rng, 50.0) for _ in range(20000)]
    assert sum(gaps) / len(gaps) == pytest.approx(1 / 50.0, rel=0.05)
    with pytest.raises(ValueError):
        exponential_interarrival(rng, 0)


def test_make_rng_deterministic_and_salted():
    a = make_rng(42, "x").random()
    b = make_rng(42, "x").random()
    c = make_rng(42, "y").random()
    assert a == b
    assert a != c
    assert make_rng(None) is not None  # unseeded allowed


def test_tpcc_last_name_range():
    names = {tpcc_last_name(i) for i in range(1000)}
    assert len(names) == 1000  # all distinct


@given(n=st.integers(min_value=1, max_value=5000),
       theta=st.floats(min_value=0.01, max_value=0.99))
@settings(max_examples=50, deadline=None)
def test_zipf_always_in_bounds(n, theta):
    zipf = ZipfGenerator(n, theta)
    rng = random.Random(0)
    assert all(0 <= zipf.next(rng) < n for _ in range(50))


@given(weights=st.lists(st.floats(min_value=0.0, max_value=100.0),
                        min_size=1, max_size=10).filter(
                            lambda w: sum(w) > 0))
@settings(max_examples=80, deadline=None)
def test_discrete_distribution_only_returns_members(weights):
    values = list(range(len(weights)))
    dist = DiscreteDistribution(values, weights)
    rng = random.Random(1)
    for _ in range(30):
        drawn = dist.sample(rng)
        assert drawn in values
        assert weights[values.index(drawn)] > 0 or len(
            [w for w in weights if w > 0]) == 0
