"""ApiClient resilience: timeouts and retry-with-backoff on transport
failures, against a deliberately flaky stub server.

The client must retry only *connection-level* failures (refused, reset,
timed out).  An HTTP error response — any status — is a server decision
and is never retried.
"""

import json
import socket
import threading

import pytest

from repro.api import ApiClient
from repro.core.resilience import RetryPolicy
from repro.errors import ApiError, ApiNotFound


class _RecordingClock:
    """Clock stub: captures requested sleeps instead of waiting."""

    def __init__(self) -> None:
        self.sleeps: list[float] = []

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)

    def now(self) -> float:
        return float(len(self.sleeps))


class FlakyServer:
    """Raw-socket HTTP stub that sabotages the first N connections.

    ``failures`` connections are closed without a byte of response
    (the client sees a reset); with ``stall=True`` they are instead
    held open silently (the client times out).  Every later request
    gets the canned ``status``/``payload`` response.
    """

    def __init__(self, failures: int = 0, status: int = 200,
                 payload: object = {"ok": True}, stall: bool = False):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.failures = failures
        self.status = status
        self.payload = payload
        self.stall = stall
        self.connections = 0
        self._stalled: list[socket.socket] = []
        self._closing = False
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self._sock.getsockname()[1]}"

    def _serve(self) -> None:
        while not self._closing:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            if self.connections <= self.failures:
                if self.stall:
                    self._stalled.append(conn)  # never answer
                else:
                    conn.close()  # immediate reset / EOF
                continue
            try:
                conn.recv(65536)
                body = json.dumps(self.payload).encode()
                head = (f"HTTP/1.1 {self.status} Stub\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {len(body)}\r\n"
                        "Connection: close\r\n\r\n")
                conn.sendall(head.encode() + body)
            finally:
                conn.close()

    def close(self) -> None:
        self._closing = True
        self._sock.close()
        for conn in self._stalled:
            conn.close()
        self._thread.join(timeout=2.0)


@pytest.fixture
def clock():
    return _RecordingClock()


def _client(server, clock, attempts=3, timeout=5.0):
    policy = RetryPolicy(max_attempts=attempts, backoff_base=0.01,
                         backoff_multiplier=2.0, backoff_max=1.0,
                         jitter=0.0)
    return ApiClient(server.url, timeout=timeout, retry=policy,
                     clock=clock, seed=1)


def test_retry_recovers_from_dropped_connections(clock):
    server = FlakyServer(failures=2, payload=["t1"])
    try:
        client = _client(server, clock)
        assert client.tenants() == ["t1"]
        assert server.connections == 3
        # Exponential backoff between the attempts, through the clock.
        assert clock.sleeps == pytest.approx([0.01, 0.02])
    finally:
        server.close()


def test_retries_exhaust_into_api_error(clock):
    server = FlakyServer(failures=100)
    try:
        client = _client(server, clock)
        with pytest.raises(ApiError) as excinfo:
            client.tenants()
        assert "3 attempt" in str(excinfo.value)
        assert server.connections == 3  # exactly max_attempts, no more
    finally:
        server.close()


def test_http_errors_are_never_retried(clock):
    envelope = {"error": {"code": "not_found", "message": "no tenant"}}
    server = FlakyServer(status=404, payload=envelope)
    try:
        client = _client(server, clock)
        with pytest.raises(ApiNotFound) as excinfo:
            client.status("ghost")
        assert "no tenant" in str(excinfo.value)
        assert server.connections == 1  # a 4xx is an answer, not a fault
        assert clock.sleeps == []
    finally:
        server.close()


def test_timeout_is_a_retryable_transport_failure(clock):
    server = FlakyServer(failures=1, stall=True, payload=["t1"])
    try:
        client = _client(server, clock, timeout=0.2)
        assert client.tenants() == ["t1"]
        assert server.connections == 2
        assert len(clock.sleeps) == 1
    finally:
        server.close()


def test_connection_refused_retries_then_fails(clock):
    # Bind then close: nothing listens on the port any more.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    client = ApiClient(f"http://127.0.0.1:{port}", timeout=0.2,
                       retry=RetryPolicy(max_attempts=2,
                                         backoff_base=0.01, jitter=0.0),
                       clock=clock, seed=1)
    with pytest.raises(ApiError):
        client.tenants()
    assert clock.sleeps == pytest.approx([0.01])


def test_default_policy_retries_connection_failures():
    # No injected clock: the default RealClock sleeps for real, so keep
    # the flakiness to a single dropped connection.
    server = FlakyServer(failures=1, payload=["t1"])
    try:
        client = ApiClient(server.url, timeout=1.0, seed=1)
        assert client.tenants() == ["t1"]
        assert server.connections == 2
    finally:
        server.close()
