"""REST server + client round trips over a real HTTP socket."""

import pytest

from repro.api import ApiClient, ApiServer, ControlApi
from repro.core import (Phase, ThreadedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.errors import ApiError

from ..conftest import MiniBenchmark


@pytest.fixture
def live(db):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    cfg = WorkloadConfiguration(
        benchmark="mini", workers=2, seed=1, tenant="t1",
        phases=[Phase(duration=60, rate=30)])
    manager = WorkloadManager(bench, cfg)
    control = ControlApi()
    control.register(manager)
    server = ApiServer(control, port=0).start()
    client = ApiClient(server.url)
    yield client, manager
    server.stop()


@pytest.mark.slow
def test_tenants_and_benchmarks(live):
    client, _manager = live
    assert client.tenants() == ["t1"]
    assert len(client.benchmarks()) == 15


@pytest.mark.slow
def test_rate_round_trip(live):
    client, manager = live
    response = client.set_rate("t1", 75)
    assert response == {"ok": True, "rate": 75}
    assert manager.current_rate() == 75
    response = client.set_rate("t1", "unlimited")
    assert manager.current_rate() == "unlimited"


@pytest.mark.slow
def test_weights_and_preset_round_trip(live):
    client, manager = live
    client.set_weights("t1", {"Read": 10, "Write": 90})
    assert manager.current_weights() == {"Read": 10, "Write": 90}
    client.set_preset("t1", "read-only")
    assert manager.current_weights() == {"Read": 100.0}
    presets = client.presets("t1")
    assert "super-writes" in presets


@pytest.mark.slow
def test_pause_resume_round_trip(live):
    client, manager = live
    client.pause("t1")
    assert manager.paused
    client.resume("t1")
    assert not manager.paused


@pytest.mark.slow
def test_think_time_round_trip(live):
    client, manager = live
    client.set_think_time("t1", 0.05)
    assert manager.current_think_time() == 0.05


@pytest.mark.slow
def test_status_round_trip(live):
    client, _manager = live
    status = client.status("t1")
    assert status["benchmark"] == "mini"
    everything = client.all_status()
    assert "t1" in everything


@pytest.mark.slow
def test_error_surfaces_as_api_error(live):
    client, _manager = live
    with pytest.raises(ApiError):
        client.set_rate("t1", -3)
    with pytest.raises(ApiError):
        client.status("ghost")
    with pytest.raises(ApiError):
        client._request("GET", "/nope")


@pytest.mark.slow
def test_live_control_during_threaded_run(db):
    """The paper's demo loop: drive a live benchmark over HTTP."""
    import threading

    bench = MiniBenchmark(db, seed=42)
    bench.load()
    cfg = WorkloadConfiguration(
        benchmark="mini", workers=4, seed=1, tenant="t1",
        phases=[Phase(duration=4, rate=200)])
    manager = WorkloadManager(bench, cfg)
    executor = ThreadedExecutor(db)
    executor.add_workload(manager)
    control = ControlApi()
    control.register(manager)
    with ApiServer(control, port=0) as server:
        client = ApiClient(server.url)

        def throttle():
            client.set_rate("t1", 30)

        timer = threading.Timer(2.0, throttle)
        timer.start()
        executor.run(timeout=15)
        timer.cancel()
    samples = manager.results.samples()
    start = min(s.start for s in samples)
    before = manager.results.throughput((start + 0.5, start + 1.5))
    after = manager.results.throughput((start + 2.8, start + 3.8))
    assert before > 120
    assert after < 70


def test_client_rejects_bad_url():
    with pytest.raises(ApiError):
        ApiClient("ftp://nope")
