"""Workload lifecycle over HTTP: create, start, stop, delete.

The full remote story: a client with no in-process wiring creates a
small YCSB workload, starts it, watches it run to completion through
the status endpoint, reads its metrics, and deletes it.
"""

import time

import pytest

from repro.api import ApiClient, ApiServer, ControlApi
from repro.errors import ApiConflict, ApiError, ApiNotFound

#: A deliberately tiny workload: 50 YCSB rows load in milliseconds and
#: one 1-second phase keeps the threaded run short.
CONFIG = {
    "benchmark": "ycsb",
    "scale_factor": 0.05,
    "workers": 2,
    "seed": 7,
    "tenant": "w1",
    "phases": [{"duration": 1, "rate": 50}],
}


@pytest.fixture
def client():
    server = ApiServer(ControlApi(), port=0).start()
    yield ApiClient(server.url)
    server.stop()


def _await_state(client, tenant, state, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = client.status(tenant)
        if status["state"] == state:
            return status
        time.sleep(0.05)
    raise AssertionError(f"tenant {tenant!r} never reached {state!r}")


@pytest.mark.slow
def test_full_lifecycle_over_http(client):
    created = client.create_workload(CONFIG)
    assert created["ok"] is True
    assert created["tenant"] == "w1"
    assert created["state"] == "created"

    listing = client.workloads()["workloads"]
    assert listing == [{"tenant": "w1", "benchmark": "ycsb",
                        "state": "created", "hosted": True}]

    started = client.start_workload("w1")
    assert started["state"] == "running"
    # The 1-second phase unwinds in real time and completes on its own.
    _await_state(client, "w1", "finished")
    metrics = client.metrics("w1")
    assert metrics["queue"]["offered"] > 0
    assert "resilience" in metrics

    deleted = client.delete_workload("w1")
    assert deleted["deleted"] is True
    assert client.tenants() == []
    with pytest.raises(ApiNotFound):
        client.status("w1")


@pytest.mark.slow
def test_stop_interrupts_a_long_phase(client):
    config = dict(CONFIG, phases=[{"duration": 120, "rate": 20}])
    client.create_workload(config)
    client.start_workload("w1")
    stopped = client.stop_workload("w1")
    assert stopped["state"] in ("stopped", "finished")
    status = client.status("w1")
    assert status["state"] != "running"


@pytest.mark.slow
def test_duplicate_create_conflicts(client):
    client.create_workload(CONFIG)
    with pytest.raises(ApiConflict):
        client.create_workload(CONFIG)


@pytest.mark.slow
def test_start_twice_conflicts(client):
    client.create_workload(CONFIG)
    client.start_workload("w1")
    try:
        with pytest.raises(ApiConflict):
            client.start_workload("w1")
    finally:
        client.stop_workload("w1")
    # A run is one-shot: once it has run, start refuses again.
    with pytest.raises(ApiConflict):
        client.start_workload("w1")


@pytest.mark.slow
def test_lifecycle_verbs_on_missing_tenant_404(client):
    with pytest.raises(ApiNotFound):
        client.start_workload("ghost")
    with pytest.raises(ApiNotFound):
        client.delete_workload("ghost")


@pytest.mark.slow
def test_create_rejects_bad_configs(client):
    with pytest.raises(ApiError):
        client.create_workload({"tenant": "x"})  # no benchmark
    with pytest.raises(ApiError):
        client.create_workload(dict(CONFIG, benchmark="not-a-benchmark"))
    assert client.tenants() == []  # nothing was half-registered


@pytest.mark.slow
def test_created_workload_accepts_fault_control(client):
    """Fault and resilience knobs work on hosted workloads pre-start."""
    client.create_workload(CONFIG)
    client.set_faults("w1", {"abort_probability": 0.1})
    client.set_resilience("w1", {"max_attempts": 3})
    faults = client.get_faults("w1")
    assert faults["faults"]["abort_probability"] == 0.1
    assert faults["injected"]["total"] == 0
    resilience = client.get_resilience("w1")
    assert resilience["resilience"]["max_attempts"] == 3
