"""HTTP server edge cases: bad routes, bad bodies, concurrent polls."""

import json
import threading
from http.client import HTTPConnection

import pytest

from repro.api import ApiServer, ControlApi
from repro.core import Phase, WorkloadConfiguration, WorkloadManager

from ..conftest import MiniBenchmark


@pytest.fixture
def server(db):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    cfg = WorkloadConfiguration(
        benchmark="mini", workers=2, seed=1, tenant="t1",
        phases=[Phase(duration=60, rate=10)])
    manager = WorkloadManager(bench, cfg)
    control = ControlApi()
    control.register(manager)
    srv = ApiServer(control, port=0).start()
    yield srv
    srv.stop()


def raw_request(server, method, path, body=None):
    host, port = server.address
    conn = HTTPConnection(host, port, timeout=5)
    payload = json.dumps(body).encode() if body is not None else None
    headers = {"Content-Type": "application/json"} if payload else {}
    conn.request(method, path, body=payload, headers=headers)
    response = conn.getresponse()
    data = json.loads(response.read() or b"null")
    conn.close()
    return response.status, data


@pytest.mark.slow
def test_unknown_get_route_is_404(server):
    status, data = raw_request(server, "GET", "/nonsense")
    assert status == 404
    assert data["ok"] is False


@pytest.mark.slow
def test_unknown_post_action_is_404(server):
    status, _data = raw_request(server, "POST", "/workloads/t1/explode",
                                {})
    assert status == 404


@pytest.mark.slow
def test_post_to_get_only_route_is_405(server):
    for path in ("/status", "/metrics", "/benchmarks", "/tenants",
                 "/workloads/t1/status", "/workloads/t1/metrics",
                 "/workloads/t1/presets"):
        status, data = raw_request(server, "POST", path, {})
        assert status == 405, path
        assert data["ok"] is False


@pytest.mark.slow
def test_get_on_post_only_action_is_405(server):
    status, _data = raw_request(server, "GET", "/workloads/t1/rate")
    assert status == 405


@pytest.mark.slow
def test_405_carries_allow_header(server):
    host, port = server.address
    conn = HTTPConnection(host, port, timeout=5)
    conn.request("POST", "/workloads/t1/status")
    response = conn.getresponse()
    assert response.status == 405
    assert "GET" in (response.getheader("Allow") or "")
    response.read()
    conn.close()


@pytest.mark.slow
def test_unsupported_method_is_405_on_known_path(server):
    status, _data = raw_request(server, "PUT", "/workloads/t1/rate", {})
    assert status == 405


@pytest.mark.slow
def test_unsupported_method_is_404_on_unknown_path(server):
    status, _data = raw_request(server, "DELETE", "/no/such/path")
    assert status == 404


@pytest.mark.slow
def test_malformed_json_body_is_400(server):
    host, port = server.address
    conn = HTTPConnection(host, port, timeout=5)
    conn.request("POST", "/workloads/t1/rate", body=b"{not json",
                 headers={"Content-Type": "application/json"})
    response = conn.getresponse()
    assert response.status == 400
    response.read()
    conn.close()


@pytest.mark.slow
def test_missing_body_fields_rejected(server):
    status, data = raw_request(server, "POST", "/workloads/t1/rate", {})
    assert status == 400  # rate missing -> invalid


@pytest.mark.slow
def test_unknown_tenant_in_path_is_404(server):
    for path in ("/workloads/ghost/status", "/workloads/ghost/metrics"):
        status, data = raw_request(server, "GET", path)
        assert status == 404, path
        assert "ghost" in data["error"]


@pytest.mark.slow
def test_metrics_route_round_trip(server):
    status, data = raw_request(server, "GET", "/workloads/t1/metrics")
    assert status == 200
    assert data["tenant"] == "t1"
    assert "throughput" in data["window"]
    assert "total" in data["latency"]
    assert {"offered", "taken", "postponed", "depth"} <= set(data["queue"])
    engine = data["engine"]
    assert {"hits", "misses", "evictions", "invalidations"} <= \
        set(engine["plan_cache"])
    assert "stmt_cache" in engine and "catalog_version" in engine
    status, data = raw_request(server, "GET", "/metrics")
    assert status == 200
    assert "t1" in data


@pytest.mark.slow
def test_metrics_window_param(server):
    status, data = raw_request(server, "GET",
                               "/workloads/t1/metrics?window=2")
    assert status == 200
    assert data["window"]["seconds"] == 2


@pytest.mark.slow
def test_bad_window_param_is_400(server):
    status, _data = raw_request(server, "GET",
                                "/workloads/t1/metrics?window=soon")
    assert status == 400
    status, _data = raw_request(server, "GET",
                                "/workloads/t1/metrics?window=-1")
    assert status == 400


@pytest.mark.slow
def test_concurrent_status_polls(server):
    errors = []

    def poll():
        for _ in range(10):
            status, data = raw_request(server, "GET",
                                       "/workloads/t1/status")
            if status != 200 or data["benchmark"] != "mini":
                errors.append(data)

    threads = [threading.Thread(target=poll) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(10)
    assert not errors
