"""Contract tests for the versioned v1 REST surface.

Every v1 route is probed with every HTTP method: allowed methods answer
200 (or a semantically correct 4xx), disallowed methods answer 405 with
an ``Allow`` header, unknown paths answer 404, and every v1 error uses
the uniform envelope ``{"error": {"code", "message"}}``.  The legacy
unversioned routes must keep their exact old payloads and error shape
while carrying a ``Deprecation: true`` header.
"""

import json
from http.client import HTTPConnection

import pytest

from repro.api import ApiServer, ControlApi
from repro.core import Phase, WorkloadConfiguration, WorkloadManager

from ..conftest import MiniBenchmark

METHODS = ("GET", "POST", "PUT", "DELETE", "PATCH")

#: Every v1 route and the methods it accepts.  ``{tenant}`` is the
#: in-process tenant registered by the fixture.
V1_ROUTES = {
    "/v1/benchmarks": {"GET"},
    "/v1/status": {"GET"},
    "/v1/metrics": {"GET"},
    "/v1/tenants": {"GET"},
    "/v1/workloads": {"GET", "POST"},
    "/v1/workloads/{tenant}": {"GET", "DELETE"},
    "/v1/workloads/{tenant}/status": {"GET"},
    "/v1/workloads/{tenant}/metrics": {"GET"},
    "/v1/workloads/{tenant}/presets": {"GET"},
    "/v1/workloads/{tenant}/rate": {"POST"},
    "/v1/workloads/{tenant}/weights": {"POST"},
    "/v1/workloads/{tenant}/preset": {"POST"},
    "/v1/workloads/{tenant}/think_time": {"POST"},
    "/v1/workloads/{tenant}/pause": {"POST"},
    "/v1/workloads/{tenant}/resume": {"POST"},
    "/v1/workloads/{tenant}/start": {"POST"},
    "/v1/workloads/{tenant}/stop": {"POST"},
    "/v1/workloads/{tenant}/faults": {"GET", "PUT"},
    "/v1/workloads/{tenant}/resilience": {"GET", "PUT"},
}

#: Legacy routes that must answer exactly like their v1 twin.
LEGACY_TWINS = (
    "/benchmarks", "/status", "/metrics", "/tenants",
    "/workloads/{tenant}/status", "/workloads/{tenant}/presets",
)

#: v1-only paths: they never existed unversioned, so the legacy tree 404s.
V1_ONLY = (
    "/workloads", "/workloads/{tenant}", "/workloads/{tenant}/start",
    "/workloads/{tenant}/stop", "/workloads/{tenant}/faults",
    "/workloads/{tenant}/resilience",
)

TENANT = "t1"


@pytest.fixture
def server(db):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    cfg = WorkloadConfiguration(
        benchmark="mini", workers=2, seed=1, tenant=TENANT,
        phases=[Phase(duration=60, rate=30)])
    control = ControlApi()
    control.register(WorkloadManager(bench, cfg))
    api = ApiServer(control, port=0).start()
    yield api
    api.stop()


def call(server, method, path, body=None, raw_body=None):
    """One raw HTTP round trip: (status, headers, parsed json)."""
    host, port = server.address
    conn = HTTPConnection(host, port, timeout=5)
    try:
        payload = raw_body
        if body is not None:
            payload = json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        data = json.loads(response.read() or b"null")
        return response.status, dict(response.getheaders()), data
    finally:
        conn.close()


def _expand(path):
    return path.replace("{tenant}", TENANT)


def _stable(data):
    """Mask wall-clock fields so two sequential reads compare equal."""
    if isinstance(data, dict):
        return {k: _stable(v) for k, v in data.items() if k != "elapsed"}
    if isinstance(data, list):
        return [_stable(v) for v in data]
    return data


# ---------------------------------------------------------------------------
# The route x method matrix
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_disallowed_methods_answer_405_with_allow(server):
    for route, allowed in V1_ROUTES.items():
        for method in METHODS:
            if method in allowed:
                continue
            status, headers, data = call(server, method, _expand(route))
            assert status == 405, (route, method, data)
            assert data["error"]["code"] == "method_not_allowed"
            assert "message" in data["error"]
            assert set(headers["Allow"].split(", ")) == allowed, route


@pytest.mark.slow
def test_get_routes_answer_200(server):
    for route, allowed in V1_ROUTES.items():
        if "GET" not in allowed:
            continue
        status, headers, data = call(server, "GET", _expand(route))
        assert status == 200, (route, data)
        assert "Deprecation" not in headers, route
        assert "error" not in (data if isinstance(data, dict) else {})


@pytest.mark.slow
def test_control_writes_round_trip(server):
    cases = [
        ("POST", "/rate", {"rate": 50}),
        ("POST", "/weights", {"weights": {"Read": 50, "Write": 50}}),
        ("POST", "/preset", {"preset": "read-only"}),
        ("POST", "/think_time", {"seconds": 0.01}),
        ("POST", "/pause", None),
        ("POST", "/resume", None),
        ("PUT", "/faults", {"abort_probability": 0.25}),
        ("PUT", "/resilience", {"max_attempts": 2}),
    ]
    base = f"/v1/workloads/{TENANT}"
    for method, suffix, body in cases:
        status, _, data = call(server, method, base + suffix, body=body)
        assert status == 200, (suffix, data)
        assert data.get("ok", True) is True
    # The PUTs actually landed and read back.
    _, _, faults = call(server, "GET", base + "/faults")
    assert faults["faults"]["abort_probability"] == 0.25
    _, _, resilience = call(server, "GET", base + "/resilience")
    assert resilience["resilience"]["max_attempts"] == 2


@pytest.mark.slow
def test_fault_put_is_partial_update(server):
    base = f"/v1/workloads/{TENANT}/faults"
    call(server, "PUT", base, body={"abort_probability": 0.1})
    call(server, "PUT", base, body={"latency_probability": 0.2})
    _, _, data = call(server, "GET", base)
    assert data["faults"]["abort_probability"] == 0.1
    assert data["faults"]["latency_probability"] == 0.2


# ---------------------------------------------------------------------------
# Error envelope
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_unknown_path_is_enveloped_404(server):
    status, _, data = call(server, "GET", "/v1/nope")
    assert status == 404
    assert data["error"]["code"] == "not_found"


@pytest.mark.slow
def test_unknown_tenant_is_enveloped_404(server):
    for path in ("/v1/workloads/ghost/status", "/v1/workloads/ghost/faults"):
        status, _, data = call(server, "GET", path)
        assert status == 404, path
        assert data["error"]["code"] == "not_found"


@pytest.mark.slow
def test_bad_bodies_are_enveloped_400(server):
    base = f"/v1/workloads/{TENANT}"
    cases = [
        ("POST", base + "/rate", None, b"{not json"),
        ("POST", base + "/rate", {"rate": -3}, None),
        ("PUT", base + "/faults", {"abort_probability": 2.0}, None),
        ("PUT", base + "/faults", {"bogus_knob": 1}, None),
        ("PUT", base + "/resilience", {"max_attempts": 0}, None),
        ("POST", "/v1/workloads", {"no_benchmark": True}, None),
    ]
    for method, path, body, raw in cases:
        status, _, data = call(server, method, path, body=body,
                               raw_body=raw)
        assert status == 400, (path, data)
        assert data["error"]["code"] == "bad_request"
        assert data["error"]["message"]


@pytest.mark.slow
def test_lifecycle_on_inprocess_tenant_is_409(server):
    """The host refuses to drive workloads it does not own."""
    for method, path in (("POST", f"/v1/workloads/{TENANT}/start"),
                         ("POST", f"/v1/workloads/{TENANT}/stop"),
                         ("DELETE", f"/v1/workloads/{TENANT}")):
        status, _, data = call(server, method, path)
        assert status == 409, (path, data)
        assert data["error"]["code"] == "conflict"
        assert "hosted" in data["error"]["message"]


@pytest.mark.slow
def test_workloads_listing_marks_inprocess_tenants(server):
    status, _, data = call(server, "GET", "/v1/workloads")
    assert status == 200
    assert data["workloads"] == [{
        "tenant": TENANT, "benchmark": "mini",
        "state": "created", "hosted": False,
    }]


# ---------------------------------------------------------------------------
# Legacy aliases: same payloads, Deprecation header, old error shape
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_legacy_routes_match_v1_payloads(server):
    for route in LEGACY_TWINS:
        legacy = _expand(route)
        status, headers, data = call(server, "GET", legacy)
        v1_status, v1_headers, v1_data = call(server, "GET",
                                              "/v1" + legacy)
        assert status == v1_status == 200, route
        assert _stable(data) == _stable(v1_data), route
        assert headers.get("Deprecation") == "true", route
        assert 'rel="successor-version"' in headers.get("Link", ""), route
        assert "Deprecation" not in v1_headers


@pytest.mark.slow
def test_legacy_errors_keep_the_old_shape(server):
    status, headers, data = call(server, "GET", "/workloads/ghost/status")
    assert status == 404
    assert data["ok"] is False
    assert isinstance(data["error"], str)  # not the v1 envelope
    assert headers.get("Deprecation") == "true"
    status, _, data = call(server, "POST", f"/workloads/{TENANT}/rate",
                           body={"rate": -3})
    assert status == 400
    assert data["ok"] is False


@pytest.mark.slow
def test_v1_only_routes_never_existed_unversioned(server):
    for route in V1_ONLY:
        path = _expand(route)
        method = "POST" if path.endswith(("start", "stop")) else "GET"
        status, headers, data = call(server, method, path)
        assert status == 404, (path, data)
        assert data["ok"] is False  # legacy tree, legacy error shape
        assert headers.get("Deprecation") == "true"
