"""In-process control facade: verbs, feedback, validation."""

import pytest

from repro.api import ControlApi
from repro.clock import SimClock
from repro.core import (Phase, SimulatedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.errors import ApiError

from ..conftest import MiniBenchmark


@pytest.fixture
def setup(db):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    clock = SimClock()
    cfg = WorkloadConfiguration(
        benchmark="mini", workers=4, seed=1, tenant="t1",
        phases=[Phase(duration=30, rate=50)])
    manager = WorkloadManager(bench, cfg, clock=clock)
    executor = SimulatedExecutor(db, "inmem", clock)
    executor.add_workload(manager)
    control = ControlApi()
    control.register(manager)
    return control, manager, executor


def test_register_and_tenants(setup):
    control, _manager, _executor = setup
    assert control.tenants() == ["t1"]


def test_duplicate_registration_rejected(setup):
    control, manager, _executor = setup
    with pytest.raises(ApiError):
        control.register(manager)


def test_unknown_tenant_rejected(setup):
    control, _manager, _executor = setup
    with pytest.raises(ApiError):
        control.status("ghost")


def test_set_rate(setup):
    control, manager, _executor = setup
    response = control.set_rate("t1", 120)
    assert response == {"ok": True, "rate": 120}
    assert manager.current_rate() == 120


def test_set_rate_invalid(setup):
    control, _manager, _executor = setup
    with pytest.raises(ApiError):
        control.set_rate("t1", -5)


def test_set_weights(setup):
    control, manager, _executor = setup
    response = control.set_weights("t1", {"Write": 100})
    assert response["ok"]
    assert manager.current_weights() == {"Write": 100}
    with pytest.raises(ApiError):
        control.set_weights("t1", {"Ghost": 100})


def test_preset(setup):
    control, manager, _executor = setup
    control.set_preset("t1", "read-only")
    assert manager.current_weights() == {"Read": 100.0}
    with pytest.raises(ApiError):
        control.set_preset("t1", "nope")
    assert set(control.presets("t1")) == {
        "default", "read-only", "super-writes"}


def test_pause_resume(setup):
    control, manager, _executor = setup
    control.pause("t1")
    assert manager.paused
    control.resume("t1")
    assert not manager.paused


def test_think_time(setup):
    control, manager, _executor = setup
    control.set_think_time("t1", 0.25)
    assert manager.current_think_time() == 0.25
    with pytest.raises(ApiError):
        control.set_think_time("t1", -1)


def test_status_feedback_includes_instantaneous_metrics(setup):
    control, manager, executor = setup
    executor.run(until=6.0)
    status = control.status("t1", now=6.0)
    assert status["throughput"] == pytest.approx(50, rel=0.1)
    assert status["avg_latency"] > 0
    assert "Read" in status["per_txn"]
    assert status["per_txn"]["Read"]["avg_latency"] > 0


def test_metrics_include_engine_cache_stats(setup):
    control, manager, executor = setup
    executor.run(until=3.0)
    payload = control.metrics("t1", now=3.0)
    engine = payload["engine"]
    assert engine["plan_cache"]["hits"] > 0
    assert engine["plan_cache"]["misses"] >= 1
    assert engine["plan_cache"]["invalidations"] == 0
    assert engine["stmt_cache"]["size"] >= 1
    assert engine["catalog_version"] >= 1
    # DDL invalidates: counters visible through the same payload.
    db = manager.benchmark.database
    db.execute(None, "CREATE TABLE extra (x INT PRIMARY KEY)")
    engine = control.metrics("t1", now=3.0)["engine"]
    assert engine["plan_cache"]["size"] == 0
    assert engine["plan_cache"]["invalidations"] >= 1


def test_all_status(setup):
    control, _manager, _executor = setup
    statuses = control.all_status(now=0.0)
    assert set(statuses) == {"t1"}


def test_benchmarks_listing(setup):
    control, _m, _e = setup
    rows = control.benchmarks()
    assert len(rows) == 15


def test_unregister(setup):
    control, _m, _e = setup
    control.unregister("t1")
    assert control.tenants() == []
    control.unregister("t1")  # idempotent
