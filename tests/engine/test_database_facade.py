"""Database facade: statement cache, counters, stats reporting."""

import pytest

from repro.engine import Database, connect
from repro.errors import ProgrammingError

from ..conftest import execute


def test_statement_cache_reuses_parse(db):
    first = db.prepare("SELECT 1 + 1")
    second = db.prepare("SELECT 1 + 1")
    assert first is second
    third = db.prepare("SELECT 1 + 2")
    assert third is not first


def test_counters_track_activity(db, conn):
    execute(conn, "CREATE TABLE t (a INT PRIMARY KEY, b INT)")
    execute(conn, "INSERT INTO t VALUES (1, 1), (2, 2)")
    execute(conn, "UPDATE t SET b = 9 WHERE a = 1")
    execute(conn, "DELETE FROM t WHERE a = 2")
    execute(conn, "SELECT * FROM t")
    conn.commit()
    counters = db.counters.snapshot()
    assert counters["rows_inserted"] == 2
    assert counters["rows_updated"] == 1
    assert counters["rows_deleted"] == 1
    assert counters["rows_read"] >= 1
    assert counters["statements"] == 5


def test_stats_shape(db, conn):
    execute(conn, "CREATE TABLE t (a INT PRIMARY KEY)")
    execute(conn, "INSERT INTO t VALUES (1)")
    conn.commit()
    stats = db.stats()
    assert stats["tables"] == {"t": 1}
    assert stats["committed"] == 1
    assert "locks" in stats and "counters" in stats
    assert stats["name"] == "main"


def test_row_count_counts_live_rows_only(db, conn):
    execute(conn, "CREATE TABLE t (a INT PRIMARY KEY)")
    execute(conn, "INSERT INTO t VALUES (1), (2), (3)")
    conn.commit()
    execute(conn, "DELETE FROM t WHERE a = 2")
    conn.commit()
    assert db.row_count("t") == 2


def test_table_names_sorted(db, conn):
    execute(conn, "CREATE TABLE zebra (a INT)")
    execute(conn, "CREATE TABLE alpha (a INT)")
    assert db.table_names() == ["alpha", "zebra"]


def test_transaction_control_statements_rejected(db, conn):
    execute(conn, "CREATE TABLE t (a INT)")
    execute(conn, "INSERT INTO t VALUES (1)")
    with pytest.raises(ProgrammingError):
        execute(conn, "COMMIT")
    conn.rollback()


def test_bulk_insert_validates_width(db, conn):
    execute(conn, "CREATE TABLE t (a INT PRIMARY KEY, b INT)")
    with pytest.raises(ProgrammingError):
        db.bulk_insert("t", [(1,)])


def test_named_database():
    db = Database("production-shadow")
    assert db.stats()["name"] == "production-shadow"
