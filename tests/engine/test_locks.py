"""Lock manager semantics: sharing, upgrades, deadlock, timeout."""

import threading
import time

import pytest

from repro.engine.locks import EXCLUSIVE, LockManager, SHARED
from repro.errors import DeadlockError, LockTimeoutError


@pytest.fixture
def lm():
    return LockManager(timeout=0.5)


def test_shared_locks_are_compatible(lm):
    assert lm.acquire("t1", "r", SHARED)
    assert lm.acquire("t2", "r", SHARED)
    assert lm.holds("t1", "r", SHARED)
    assert lm.holds("t2", "r", SHARED)


def test_exclusive_excludes_shared(lm):
    lm.acquire("t1", "r", EXCLUSIVE)
    assert not lm.try_acquire("t2", "r", SHARED)
    assert not lm.try_acquire("t2", "r", EXCLUSIVE)


def test_reacquire_is_noop(lm):
    assert lm.acquire("t1", "r", SHARED)
    assert lm.acquire("t1", "r", SHARED) is False
    lm.acquire("t1", "r", EXCLUSIVE)
    assert lm.acquire("t1", "r", SHARED) is False  # X covers S


def test_upgrade_s_to_x_when_alone(lm):
    lm.acquire("t1", "r", SHARED)
    assert lm.acquire("t1", "r", EXCLUSIVE)
    assert not lm.try_acquire("t2", "r", SHARED)


def test_release_all_frees_everything(lm):
    lm.acquire("t1", "a", EXCLUSIVE)
    lm.acquire("t1", "b", SHARED)
    lm.release_all("t1")
    assert lm.try_acquire("t2", "a", EXCLUSIVE)
    assert lm.try_acquire("t2", "b", EXCLUSIVE)


def test_blocked_acquire_wakes_on_release(lm):
    lm.acquire("t1", "r", EXCLUSIVE)
    acquired = threading.Event()

    def taker():
        lm.acquire("t2", "r", EXCLUSIVE, timeout=5.0)
        acquired.set()

    thread = threading.Thread(target=taker, daemon=True)
    thread.start()
    time.sleep(0.05)
    assert not acquired.is_set()
    lm.release_all("t1")
    assert acquired.wait(2.0)
    thread.join(1.0)


def test_timeout_raises(lm):
    lm.acquire("t1", "r", EXCLUSIVE)

    result = {}

    def taker():
        try:
            lm.acquire("t2", "r", SHARED, timeout=0.1)
        except LockTimeoutError:
            result["timeout"] = True

    thread = threading.Thread(target=taker, daemon=True)
    thread.start()
    thread.join(2.0)
    assert result.get("timeout")
    assert lm.stats.timeouts == 1


def test_deadlock_detected_across_threads(lm):
    """t1 holds a, wants b; t2 holds b, wants a — one must die."""
    lm_local = LockManager(timeout=5.0)
    barrier = threading.Barrier(2)
    outcomes = {}

    def worker(me, first, second):
        lm_local.acquire(me, first, EXCLUSIVE)
        barrier.wait()
        try:
            lm_local.acquire(me, second, EXCLUSIVE, timeout=3.0)
            outcomes[me] = "ok"
        except DeadlockError:
            outcomes[me] = "deadlock"
            lm_local.release_all(me)

    t1 = threading.Thread(target=worker, args=("t1", "a", "b"), daemon=True)
    t2 = threading.Thread(target=worker, args=("t2", "b", "a"), daemon=True)
    t1.start()
    t2.start()
    t1.join(5.0)
    t2.join(5.0)
    assert "deadlock" in outcomes.values()
    assert lm_local.stats.deadlocks >= 1


def test_same_thread_conflict_raises_immediately(lm):
    """Two transactions on one thread must not block forever."""
    lm.acquire("t1", "r", EXCLUSIVE)
    started = time.monotonic()
    with pytest.raises(DeadlockError):
        lm.acquire("t2", "r", EXCLUSIVE, timeout=10.0)
    assert time.monotonic() - started < 1.0


def test_active_lock_count(lm):
    lm.acquire("t1", "a", SHARED)
    lm.acquire("t2", "a", SHARED)
    lm.acquire("t1", "b", EXCLUSIVE)
    assert lm.active_lock_count() == 3
    lm.release_all("t1")
    assert lm.active_lock_count() == 1


def test_stats_acquisitions_counted(lm):
    lm.acquire("t1", "a", SHARED)
    lm.acquire("t1", "b", SHARED)
    lm.acquire("t1", "a", SHARED)  # no-op: not re-counted
    assert lm.stats.acquisitions == 2
