"""Expression evaluation: three-valued logic, LIKE, scalar functions."""

import pytest

from repro.engine.expr import evaluate, is_true, like_match
from repro.engine.sqlparser import parse
from repro.errors import DataError, ProgrammingError


def eval_expr(sql_expr, params=()):
    """Evaluate an expression through a contextless SELECT."""
    stmt = parse(f"SELECT {sql_expr}")
    return evaluate(stmt.items[0].expr, None, params)


# -- arithmetic ---------------------------------------------------------------


def test_basic_arithmetic():
    assert eval_expr("1 + 2 * 3") == 7
    assert eval_expr("(1 + 2) * 3") == 9
    assert eval_expr("-5 + 3") == -2


def test_integer_division_truncates_toward_zero():
    assert eval_expr("7 / 2") == 3
    assert eval_expr("-7 / 2") == -3


def test_float_division():
    assert eval_expr("7.0 / 2") == 3.5


def test_division_by_zero_raises():
    with pytest.raises(DataError):
        eval_expr("1 / 0")
    with pytest.raises(DataError):
        eval_expr("1 % 0")


def test_modulo():
    assert eval_expr("7 % 3") == 1


def test_null_propagates_through_arithmetic():
    assert eval_expr("1 + NULL") is None
    assert eval_expr("NULL * 2") is None


# -- logic --------------------------------------------------------------------------


def test_kleene_and():
    assert eval_expr("TRUE AND TRUE") is True
    assert eval_expr("TRUE AND FALSE") is False
    assert eval_expr("FALSE AND NULL") is False  # short-circuits to FALSE
    assert eval_expr("TRUE AND NULL") is None


def test_kleene_or():
    assert eval_expr("FALSE OR TRUE") is True
    assert eval_expr("TRUE OR NULL") is True
    assert eval_expr("FALSE OR NULL") is None


def test_not_with_null():
    assert eval_expr("NOT TRUE") is False
    assert eval_expr("NOT NULL") is None


def test_comparison_with_null_is_unknown():
    assert eval_expr("1 = NULL") is None
    assert eval_expr("NULL <> NULL") is None


def test_is_null_never_unknown():
    assert eval_expr("NULL IS NULL") is True
    assert eval_expr("1 IS NULL") is False
    assert eval_expr("1 IS NOT NULL") is True


def test_between():
    assert eval_expr("3 BETWEEN 1 AND 5") is True
    assert eval_expr("6 BETWEEN 1 AND 5") is False
    assert eval_expr("3 NOT BETWEEN 1 AND 5") is False
    assert eval_expr("NULL BETWEEN 1 AND 5") is None


def test_in_list_semantics():
    assert eval_expr("2 IN (1, 2, 3)") is True
    assert eval_expr("5 IN (1, 2, 3)") is False
    assert eval_expr("5 NOT IN (1, 2, 3)") is True
    # NULL in the list makes a non-match UNKNOWN, not FALSE.
    assert eval_expr("5 IN (1, NULL)") is None
    assert eval_expr("1 IN (1, NULL)") is True


def test_is_true_only_accepts_true():
    assert is_true(True)
    assert not is_true(None)
    assert not is_true(False)
    assert not is_true(1)


# -- LIKE -------------------------------------------------------------------------------


@pytest.mark.parametrize("text,pattern,expected", [
    ("hello", "hello", True),
    ("hello", "h%", True),
    ("hello", "%o", True),
    ("hello", "%ell%", True),
    ("hello", "h_llo", True),
    ("hello", "h_x", False),
    ("hello", "", False),
    ("", "%", True),
    ("abc", "a%c%", True),
    ("abc", "%%", True),
    ("mississippi", "%iss%ppi", True),
    ("ORIGINALdata", "%ORIGINAL%", True),
])
def test_like_match(text, pattern, expected):
    assert like_match(text, pattern) is expected


def test_like_via_sql():
    assert eval_expr("'forest' LIKE 'f%t'") is True
    assert eval_expr("'forest' NOT LIKE 'f%t'") is False
    assert eval_expr("NULL LIKE 'x'") is None


# -- scalar functions -----------------------------------------------------------------------


def test_scalar_functions():
    assert eval_expr("ABS(-4)") == 4
    assert eval_expr("LENGTH('abc')") == 3
    assert eval_expr("LOWER('ABC')") == "abc"
    assert eval_expr("UPPER('abc')") == "ABC"
    assert eval_expr("SUBSTR('hello', 2, 3)") == "ell"
    assert eval_expr("SUBSTR('hello', 2)") == "ello"
    assert eval_expr("MOD(7, 3)") == 1
    assert eval_expr("COALESCE(NULL, NULL, 5)") == 5
    assert eval_expr("COALESCE(NULL, NULL)") is None
    assert eval_expr("NULLIF(3, 3)") is None
    assert eval_expr("NULLIF(3, 4)") == 3
    assert eval_expr("ROUND(3.567, 1)") == 3.6
    assert eval_expr("FLOOR(3.9)") == 3
    assert eval_expr("CEIL(3.1)") == 4
    assert eval_expr("SIGN(-9)") == -1


def test_scalar_function_null_propagation():
    assert eval_expr("ABS(NULL)") is None
    assert eval_expr("UPPER(NULL)") is None


def test_unknown_function_raises():
    with pytest.raises(ProgrammingError):
        eval_expr("MYSTERY(1)")


def test_aggregate_outside_group_context_raises():
    with pytest.raises(ProgrammingError):
        eval_expr("SUM(1)")


def test_case_expression_evaluation():
    assert eval_expr(
        "CASE WHEN 1 = 2 THEN 'a' WHEN 2 = 2 THEN 'b' ELSE 'c' END") == "b"
    assert eval_expr("CASE WHEN 1 = 2 THEN 'a' END") is None


def test_concat_stringifies():
    assert eval_expr("'v' || 1") == "v1"
    assert eval_expr("'v' || NULL") is None


def test_param_binding():
    assert eval_expr("? + ?", (2, 3)) == 5


def test_missing_param_raises():
    with pytest.raises(ProgrammingError):
        eval_expr("? + ?", (2,))
