"""Version-chain storage and conservative index maintenance."""

import pytest

from repro.engine.catalog import ColumnDef, IndexDef, TableSchema
from repro.engine.storage import READ_LATEST, TableData, Version
from repro.engine.types import SqlType
from repro.errors import IntegrityError


def make_table(with_secondary=True):
    schema = TableSchema(
        "t",
        (ColumnDef("id", SqlType("int")), ColumnDef("grp", SqlType("int")),
         ColumnDef("val", SqlType("text"))),
        primary_key=("id",))
    data = TableData(schema)
    if with_secondary:
        data.add_index(IndexDef("idx_grp", "t", ("grp",)))
    return data


def test_insert_and_visible_version():
    data = make_table()
    rowid = data.new_rowid()
    data.apply_insert(rowid, (1, 10, "a"), commit_ts=1.0)
    version = data.visible_version(rowid, READ_LATEST)
    assert version.values == (1, 10, "a")


def test_snapshot_visibility_by_timestamp():
    data = make_table()
    rowid = data.new_rowid()
    data.apply_insert(rowid, (1, 10, "a"), commit_ts=1.0)
    data.apply_update(rowid, (1, 10, "b"), commit_ts=5.0)
    assert data.visible_version(rowid, 1.0).values[2] == "a"
    assert data.visible_version(rowid, 4.9).values[2] == "a"
    assert data.visible_version(rowid, 5.0).values[2] == "b"
    assert data.visible_version(rowid, 0.5) is None


def test_tombstone_hides_row():
    data = make_table()
    rowid = data.new_rowid()
    data.apply_insert(rowid, (1, 10, "a"), commit_ts=1.0)
    data.apply_delete(rowid, commit_ts=2.0)
    assert data.visible_version(rowid, READ_LATEST).is_tombstone
    assert data.visible_version(rowid, 1.5).values == (1, 10, "a")


def test_duplicate_pk_insert_rejected():
    data = make_table()
    data.apply_insert(data.new_rowid(), (1, 10, "a"), commit_ts=1.0)
    with pytest.raises(IntegrityError):
        data.apply_insert(data.new_rowid(), (1, 20, "b"), commit_ts=2.0)


def test_pk_reusable_after_delete():
    data = make_table()
    rowid = data.new_rowid()
    data.apply_insert(rowid, (1, 10, "a"), commit_ts=1.0)
    data.apply_delete(rowid, commit_ts=2.0)
    data.apply_insert(data.new_rowid(), (1, 30, "c"), commit_ts=3.0)
    assert data.pk_lookup_latest((1,)) is not None


def test_index_superset_includes_old_keys_until_prune():
    data = make_table()
    rowid = data.new_rowid()
    data.apply_insert(rowid, (1, 10, "a"), commit_ts=1.0)
    data.apply_update(rowid, (1, 20, "a"), commit_ts=2.0)
    # Conservative superset: both the old and new group keys point here.
    assert rowid in data.index_lookup("idx_grp", (10,))
    assert rowid in data.index_lookup("idx_grp", (20,))
    data.prune(min_active_snapshot=READ_LATEST)
    assert rowid not in data.index_lookup("idx_grp", (10,))
    assert rowid in data.index_lookup("idx_grp", (20,))


def test_prune_respects_active_snapshots():
    data = make_table()
    rowid = data.new_rowid()
    data.apply_insert(rowid, (1, 10, "a"), commit_ts=1.0)
    data.apply_update(rowid, (1, 10, "b"), commit_ts=5.0)
    dropped = data.prune(min_active_snapshot=2.0)  # snapshot still needs v1
    assert dropped == 0
    assert data.visible_version(rowid, 2.0).values[2] == "a"
    dropped = data.prune(min_active_snapshot=READ_LATEST)
    assert dropped == 1


def test_prune_removes_fully_dead_rows():
    data = make_table()
    rowid = data.new_rowid()
    data.apply_insert(rowid, (1, 10, "a"), commit_ts=1.0)
    data.apply_delete(rowid, commit_ts=2.0)
    data.prune(min_active_snapshot=READ_LATEST)
    assert data.visible_version(rowid, READ_LATEST) is None
    assert data.index_lookup("idx_grp", (10,)) == set()
    assert data.pk_lookup_latest((1,)) is None
    assert data.count_live() == 0


def test_find_index_prefers_most_columns():
    data = make_table()
    data.add_index(IndexDef("idx_grp_val", "t", ("grp", "val")))
    chosen = data.find_index({"grp", "val", "id"})
    # The PK has one column; idx_grp_val covers two.
    assert chosen.name == "idx_grp_val"
    assert data.find_index({"val"}) is None or \
        data.find_index({"val"}).columns == ("val",)


def test_count_live():
    data = make_table()
    for i in range(5):
        data.apply_insert(data.new_rowid(), (i, 0, "x"), commit_ts=1.0)
    assert data.count_live() == 5


def test_backfilled_index_covers_existing_rows():
    data = make_table(with_secondary=False)
    for i in range(3):
        data.apply_insert(data.new_rowid(), (i, i % 2, "x"), commit_ts=1.0)
    data.add_index(IndexDef("idx_late", "t", ("grp",)))
    assert len(data.index_lookup("idx_late", (0,))) == 2
    assert len(data.index_lookup("idx_late", (1,))) == 1
