"""SELECT pipeline: filtering, ordering, limits, joins, aggregation."""

import pytest

from repro.errors import ProgrammingError

from ..conftest import execute


@pytest.fixture
def shop(conn):
    execute(conn, """
        CREATE TABLE orders (
            o_id INT PRIMARY KEY,
            cust INT NOT NULL,
            total FLOAT NOT NULL,
            region VARCHAR(8)
        )
    """)
    execute(conn, "CREATE INDEX idx_orders_cust ON orders (cust)")
    execute(conn, """
        CREATE TABLE customers (
            c_id INT PRIMARY KEY,
            name VARCHAR(16) NOT NULL
        )
    """)
    execute(conn, "INSERT INTO customers (c_id, name) VALUES "
                  "(1, 'alice'), (2, 'bob'), (3, 'carol')")
    execute(conn, "INSERT INTO orders (o_id, cust, total, region) VALUES "
                  "(10, 1, 100.0, 'east'), (11, 1, 50.0, 'west'), "
                  "(12, 2, 75.0, 'east'), (13, 2, 25.0, NULL), "
                  "(14, 1, 10.0, 'east')")
    conn.commit()
    return conn


def test_where_filters(shop):
    cur = execute(shop, "SELECT o_id FROM orders WHERE total > 60 "
                        "ORDER BY o_id")
    assert cur.fetchall() == [(10,), (12,)]


def test_where_null_filters_out(shop):
    cur = execute(shop, "SELECT o_id FROM orders WHERE region = 'east'")
    assert len(cur.fetchall()) == 3  # the NULL-region row never matches


def test_order_by_desc_and_multiple_keys(shop):
    cur = execute(shop, "SELECT cust, total FROM orders "
                        "ORDER BY cust DESC, total ASC")
    assert cur.fetchall() == [
        (2, 25.0), (2, 75.0), (1, 10.0), (1, 50.0), (1, 100.0)]


def test_order_by_nulls_last(shop):
    cur = execute(shop, "SELECT region FROM orders ORDER BY region")
    regions = [r[0] for r in cur.fetchall()]
    assert regions[-1] is None


def test_order_by_positional(shop):
    cur = execute(shop, "SELECT o_id, total FROM orders ORDER BY 2 DESC")
    assert cur.fetchone() == (10, 100.0)


def test_limit_offset(shop):
    cur = execute(shop, "SELECT o_id FROM orders ORDER BY o_id "
                        "LIMIT 2 OFFSET 1")
    assert cur.fetchall() == [(11,), (12,)]


def test_limit_zero(shop):
    cur = execute(shop, "SELECT o_id FROM orders LIMIT 0")
    assert cur.fetchall() == []


def test_distinct(shop):
    cur = execute(shop, "SELECT DISTINCT cust FROM orders ORDER BY cust")
    assert cur.fetchall() == [(1,), (2,)]


def test_select_star_column_order(shop):
    cur = execute(shop, "SELECT * FROM customers WHERE c_id = 1")
    assert cur.fetchone() == (1, "alice")
    assert [d[0] for d in cur.description] == ["c_id", "name"]


def test_expression_projection_with_alias(shop):
    cur = execute(shop, "SELECT total * 2 AS double_total FROM orders "
                        "WHERE o_id = 10")
    assert cur.fetchone() == (200.0,)
    assert cur.description[0][0] == "double_total"


def test_select_without_from(conn):
    cur = execute(conn, "SELECT 1 + 1, 'x'")
    assert cur.fetchone() == (2, "x")


# -- joins ---------------------------------------------------------------------


def test_inner_join(shop):
    cur = execute(shop, """
        SELECT c.name, o.total FROM customers c
        JOIN orders o ON o.cust = c.c_id
        WHERE o.total >= 75 ORDER BY o.total
    """)
    assert cur.fetchall() == [("bob", 75.0), ("alice", 100.0)]


def test_left_join_preserves_unmatched(shop):
    cur = execute(shop, """
        SELECT c.name, o.o_id FROM customers c
        LEFT JOIN orders o ON o.cust = c.c_id
        ORDER BY c.c_id, o.o_id
    """)
    rows = cur.fetchall()
    assert ("carol", None) in rows
    assert len(rows) == 6  # 5 matches + carol's null row


def test_comma_join_with_where(shop):
    cur = execute(shop, """
        SELECT COUNT(*) FROM customers c, orders o
        WHERE o.cust = c.c_id
    """)
    assert cur.fetchone() == (5,)


def test_three_way_join(conn):
    execute(conn, "CREATE TABLE a (id INT PRIMARY KEY, bid INT)")
    execute(conn, "CREATE TABLE b (id INT PRIMARY KEY, cid INT)")
    execute(conn, "CREATE TABLE c (id INT PRIMARY KEY, v VARCHAR(4))")
    execute(conn, "INSERT INTO a VALUES (1, 10), (2, 20)")
    execute(conn, "INSERT INTO b VALUES (10, 100), (20, 200)")
    execute(conn, "INSERT INTO c VALUES (100, 'x'), (200, 'y')")
    conn.commit()
    cur = execute(conn, """
        SELECT a.id, c.v FROM a
        JOIN b ON b.id = a.bid
        JOIN c ON c.id = b.cid
        ORDER BY a.id
    """)
    assert cur.fetchall() == [(1, "x"), (2, "y")]


def test_duplicate_binding_rejected(shop):
    with pytest.raises(ProgrammingError):
        execute(shop, "SELECT 1 FROM orders JOIN orders ON 1 = 1")


def test_self_join_with_aliases(shop):
    cur = execute(shop, """
        SELECT o1.o_id, o2.o_id FROM orders o1
        JOIN orders o2 ON o2.cust = o1.cust
        WHERE o1.o_id < o2.o_id AND o1.cust = 2
    """)
    assert cur.fetchall() == [(12, 13)]


def test_ambiguous_column_rejected(conn):
    execute(conn, "CREATE TABLE x (v INT)")
    execute(conn, "CREATE TABLE y (v INT)")
    execute(conn, "INSERT INTO x (v) VALUES (1)")
    execute(conn, "INSERT INTO y (v) VALUES (2)")
    conn.commit()
    with pytest.raises(ProgrammingError):
        execute(conn, "SELECT v FROM x JOIN y ON x.v = y.v - 1")


# -- aggregation -------------------------------------------------------------------


def test_global_aggregates(shop):
    cur = execute(shop, "SELECT COUNT(*), SUM(total), MIN(total), "
                        "MAX(total), AVG(total) FROM orders")
    count, total, low, high, avg = cur.fetchone()
    assert count == 5
    assert total == 260.0
    assert (low, high) == (10.0, 100.0)
    assert avg == pytest.approx(52.0)


def test_aggregates_skip_nulls(shop):
    cur = execute(shop, "SELECT COUNT(region) FROM orders")
    assert cur.fetchone() == (4,)


def test_aggregate_on_empty_set(shop):
    cur = execute(shop, "SELECT COUNT(*), SUM(total) FROM orders "
                        "WHERE total > 1000")
    assert cur.fetchone() == (0, None)


def test_group_by(shop):
    cur = execute(shop, "SELECT cust, COUNT(*), SUM(total) FROM orders "
                        "GROUP BY cust ORDER BY cust")
    assert cur.fetchall() == [(1, 3, 160.0), (2, 2, 100.0)]


def test_group_by_having(shop):
    cur = execute(shop, "SELECT cust, COUNT(*) FROM orders GROUP BY cust "
                        "HAVING COUNT(*) > 2")
    assert cur.fetchall() == [(1, 3)]


def test_group_by_order_by_aggregate(shop):
    cur = execute(shop, "SELECT cust, SUM(total) AS s FROM orders "
                        "GROUP BY cust ORDER BY s DESC")
    assert [r[0] for r in cur.fetchall()] == [1, 2]


def test_count_distinct(shop):
    cur = execute(shop, "SELECT COUNT(DISTINCT region) FROM orders")
    assert cur.fetchone() == (2,)


def test_aggregate_arithmetic(shop):
    cur = execute(shop, "SELECT SUM(total) / COUNT(*) FROM orders")
    assert cur.fetchone()[0] == pytest.approx(52.0)


def test_case_inside_aggregate(shop):
    cur = execute(shop, """
        SELECT SUM(CASE WHEN region = 'east' THEN 1 ELSE 0 END) FROM orders
    """)
    assert cur.fetchone() == (3,)


def test_group_by_expression(shop):
    cur = execute(shop, "SELECT cust % 2, COUNT(*) FROM orders "
                        "GROUP BY cust % 2 ORDER BY 1")
    assert cur.fetchall() == [(0, 2), (1, 3)]
