"""DBMS personality model: service times, saturation, load tracking."""

import random

import pytest

from repro.engine.service import (DbmsPersonality, LoadTracker,
                                  PERSONALITIES, get_personality)


def test_all_demo_stages_present():
    # The Fig. 2b selection screen: PostgreSQL, Apache Derby, Oracle, MySQL.
    for name in ("mysql", "postgres", "oracle", "derby"):
        assert name in PERSONALITIES


def test_get_personality_unknown():
    with pytest.raises(KeyError):
        get_personality("mongodb")


def test_service_time_scales_with_footprint():
    p = get_personality("mysql")
    rng = random.Random(1)
    small = sum(p.service_time(rng, 1, 0, 1, 0) for _ in range(200))
    rng = random.Random(1)
    large = sum(p.service_time(rng, 1000, 100, 1, 0) for _ in range(200))
    assert large > small * 5


def test_service_time_processor_sharing():
    p = DbmsPersonality("x", "stage", cpu_cores=4, jitter_sigma=0.0)
    rng = random.Random(1)
    uncontended = p.service_time(rng, 10, 0, active=4, active_writers=0)
    contended = p.service_time(rng, 10, 0, active=16, active_writers=0)
    assert contended == pytest.approx(uncontended * 4)


def test_write_contention_only_affects_writers():
    p = DbmsPersonality("x", "stage", write_contention=0.1,
                        jitter_sigma=0.0)
    rng = random.Random(1)
    reader = p.service_time(rng, 10, 0, active=5, active_writers=5)
    writer_alone = p.service_time(rng, 10, 2, active=1, active_writers=1)
    writer_crowded = p.service_time(rng, 10, 2, active=5, active_writers=5)
    base_reader = p.service_time(rng, 10, 0, active=1, active_writers=0)
    assert reader == pytest.approx(base_reader)  # readers don't pay
    assert writer_crowded > writer_alone


def test_jitter_disperses_samples():
    noisy = DbmsPersonality("x", "s", jitter_sigma=0.3)
    tight = DbmsPersonality("y", "s", jitter_sigma=0.0)
    rng = random.Random(7)
    noisy_samples = [noisy.service_time(rng, 10, 0, 1, 0)
                     for _ in range(100)]
    tight_samples = [tight.service_time(rng, 10, 0, 1, 0)
                     for _ in range(100)]
    assert max(tight_samples) == pytest.approx(min(tight_samples))
    assert max(noisy_samples) > min(noisy_samples) * 1.5


def test_derby_is_slower_and_noisier_than_oracle():
    derby = get_personality("derby")
    oracle = get_personality("oracle")
    assert derby.saturation_tps() < oracle.saturation_tps() / 4
    assert derby.jitter_sigma > oracle.jitter_sigma


def test_saturation_tps_formula():
    p = DbmsPersonality("x", "s", overhead_ms=1.0, read_row_ms=0.0,
                        write_row_ms=0.0, cpu_cores=8)
    assert p.saturation_tps(0, 0) == pytest.approx(8 / 0.001)


def test_load_tracker_counts():
    tracker = LoadTracker()
    tracker.started(1, is_writer=True)
    tracker.started(2, is_writer=False)
    assert tracker.active == 2
    assert tracker.active_writers == 1
    assert tracker.peak_active == 2
    tracker.finished(1)
    assert tracker.active == 1
    assert tracker.active_writers == 0
    tracker.finished(2)
    tracker.finished(2)  # double-finish tolerated
    assert tracker.active == 0
