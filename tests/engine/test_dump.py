"""Data dumps: round trips and benchmark restore (Fig. 1 "Data Dumps")."""

import random

import pytest

from repro.benchmarks import REGISTRY, create_benchmark
from repro.engine import Database, connect
from repro.engine.dump import dump_database, restore_database
from repro.errors import DataError

from ..conftest import execute


def test_dump_restore_round_trip(tmp_path, db, conn):
    execute(conn, """
        CREATE TABLE t (
            id INT PRIMARY KEY,
            name VARCHAR(8) NOT NULL,
            score FLOAT,
            flag BOOLEAN DEFAULT TRUE
        )
    """)
    execute(conn, "CREATE INDEX idx_t_name ON t (name)")
    execute(conn, "INSERT INTO t (id, name, score) VALUES "
                  "(1, 'a', 1.5), (2, 'b', NULL), (3, 'c', -2.25)")
    conn.commit()

    path = tmp_path / "db.dump.json"
    manifest = dump_database(db, path)
    assert manifest == {"t": 3}

    restored = restore_database(path)
    check = connect(restored)
    cur = execute(check, "SELECT id, name, score FROM t ORDER BY id")
    assert cur.fetchall() == [(1, "a", 1.5), (2, "b", None),
                              (3, "c", -2.25)]
    # Schema survives: PK and index usable, defaults intact.
    cur = execute(check, "SELECT id FROM t WHERE name = 'b'")
    assert cur.fetchall() == [(2,)]
    execute(check, "INSERT INTO t (id, name) VALUES (9, 'z')")
    cur = execute(check, "SELECT flag FROM t WHERE id = 9")
    assert cur.fetchone() == (True,)
    with pytest.raises(Exception):
        execute(check, "INSERT INTO t (id, name) VALUES (1, 'dup')")
    check.rollback()


def test_dump_excludes_uncommitted_and_deleted(tmp_path, db, conn):
    execute(conn, "CREATE TABLE t (id INT PRIMARY KEY)")
    execute(conn, "INSERT INTO t VALUES (1), (2)")
    conn.commit()
    execute(conn, "DELETE FROM t WHERE id = 2")
    conn.commit()
    execute(conn, "INSERT INTO t VALUES (3)")  # left uncommitted
    path = tmp_path / "d.json"
    manifest = dump_database(db, path)
    assert manifest == {"t": 1}
    conn.rollback()


def test_restore_rejects_unknown_format(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"format": 99, "tables": []}')
    with pytest.raises(DataError):
        restore_database(path)


@pytest.mark.parametrize("name", ["ycsb", "smallbank", "voter", "tpcc",
                                  "seats", "linkbench"])
def test_benchmark_restore_and_run(tmp_path, name):
    """Dump a loaded benchmark, restore it, derive params, run txns."""
    kwargs = {}
    if name == "tpcc":
        kwargs = dict(districts=2, customers_per_district=20, items=50,
                      initial_orders=10)
    db = Database()
    bench = create_benchmark(name, db, scale_factor=0.2, seed=5, **kwargs)
    bench.load()
    path = tmp_path / f"{name}.json"
    dump_database(db, path)

    db2 = restore_database(path)
    bench2 = create_benchmark(name, db2, scale_factor=0.2, seed=5, **kwargs)
    bench2.derive_params()
    assert bench2.loaded
    # Same live row counts.
    assert bench2.table_counts() == bench.table_counts()

    # The restored benchmark executes its whole mixture.
    conn = connect(db2)
    rng = random.Random(9)
    from repro.core.procedure import UserAbort
    committed = 0
    for txn_name in bench2.procedure_names():
        for _ in range(3):
            try:
                bench2.make_procedure(txn_name).run(conn, rng)
                committed += 1
            except UserAbort:
                conn.rollback()
    assert committed > 0
    conn.close()


def test_all_benchmarks_support_derive_params():
    """Every registered benchmark can rebuild params from data."""
    for name in REGISTRY:
        kwargs = {}
        if name in ("tpcc", "chbenchmark"):
            kwargs = dict(districts=2, customers_per_district=10, items=30,
                          initial_orders=5)
        db = Database()
        bench = create_benchmark(name, db, scale_factor=0.1, seed=3,
                                 **kwargs)
        bench.load()
        fresh = create_benchmark(name, db, scale_factor=0.1, seed=3,
                                 **kwargs)
        fresh.derive_params()
        assert fresh.loaded, name
