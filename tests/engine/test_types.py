"""Type coercion and SQL comparison semantics."""

import pytest

from repro.engine.types import SqlType, compare_values
from repro.errors import DataError


def test_integer_affinity_coercion():
    t = SqlType("int")
    assert t.coerce(5) == 5
    assert t.coerce(5.0) == 5
    assert t.coerce("7") == 7
    assert t.coerce(True) == 1


def test_integer_rejects_fractional():
    with pytest.raises(DataError):
        SqlType("bigint").coerce(1.5)


def test_integer_rejects_garbage_string():
    with pytest.raises(DataError):
        SqlType("int").coerce("abc")


def test_float_affinity():
    t = SqlType("decimal", (10, 2))
    assert t.coerce(3) == 3.0
    assert isinstance(t.coerce(3), float)
    assert t.coerce("2.5") == 2.5


def test_varchar_truncates_to_declared_length():
    t = SqlType("varchar", (4,))
    assert t.coerce("abcdef") == "abcd"
    assert t.coerce("ab") == "ab"


def test_text_without_length_unbounded():
    assert SqlType("text").coerce("x" * 1000) == "x" * 1000


def test_text_stringifies_numbers():
    assert SqlType("varchar", (10,)).coerce(42) == "42"


def test_boolean_affinity():
    t = SqlType("boolean")
    assert t.coerce("true") is True
    assert t.coerce(0) is False
    with pytest.raises(DataError):
        t.coerce("maybe")


def test_timestamp_stores_float_seconds():
    t = SqlType("timestamp")
    assert t.coerce(100) == 100.0
    assert t.coerce("3.5") == 3.5
    with pytest.raises(DataError):
        t.coerce("not-a-time")


def test_null_passes_through_all_types():
    for name in ("int", "float", "varchar", "boolean", "timestamp"):
        assert SqlType(name, (5,) if name == "varchar" else ()).coerce(
            None) is None


def test_unknown_type_raises():
    with pytest.raises(DataError):
        SqlType("fancytype").coerce(1)


# -- comparisons ---------------------------------------------------------------


def test_compare_numbers():
    assert compare_values(1, 2) == -1
    assert compare_values(2, 2) == 0
    assert compare_values(3, 2) == 1
    assert compare_values(1, 1.5) == -1


def test_compare_null_is_unknown():
    assert compare_values(None, 1) is None
    assert compare_values(1, None) is None
    assert compare_values(None, None) is None


def test_compare_strings():
    assert compare_values("apple", "banana") == -1
    assert compare_values("b", "b") == 0


def test_compare_mixed_numeric_string():
    assert compare_values("10", 9) == 1  # numeric interpretation wins
    assert compare_values(5, "5") == 0


def test_compare_mixed_non_numeric_string():
    # Falls back to string comparison when the string isn't numeric.
    assert compare_values("abc", 1) is not None


def test_bool_compares_as_int():
    assert compare_values(True, 1) == 0
    assert compare_values(False, 1) == -1
