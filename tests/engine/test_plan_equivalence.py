"""Compiled-vs-interpreted equivalence: the plan layer's oracle.

Every statement here runs through two identically-populated databases —
one with ``use_compiled_plans=True``, one with ``False`` — and must
produce the same rows (order-sensitive), the same rowcounts, the same
column names, and the same error type and message.  Cases concentrate
on the seams where a compiler drifts from an interpreter: NULL/Kleene
logic, type coercion in comparisons, join/aggregation structure, and
runtime access-path fallback.
"""

import pytest

from repro.engine import Database, connect
from repro.errors import DatabaseError

SCHEMA = [
    "CREATE TABLE items (id INT PRIMARY KEY, grp INT, price FLOAT, "
    "name VARCHAR(16), note VARCHAR(16))",
    "CREATE INDEX idx_items_grp ON items (grp)",
    "CREATE TABLE tags (item_id INT, tag VARCHAR(8), "
    "PRIMARY KEY (item_id, tag))",
]

ROWS = [
    (1, 1, 2.5, "ant", None),
    (2, 1, 7.0, "bee", "buzz"),
    (3, 2, 1.0, "cat", None),
    (4, 2, None, "dog", "woof"),
    (5, None, 9.0, "eel", None),
]

TAGS = [(1, "red"), (1, "big"), (2, "red"), (4, "old")]


def make_pair():
    pair = []
    for compiled in (True, False):
        db = Database(use_compiled_plans=compiled)
        conn = connect(db)
        cur = conn.cursor()
        for ddl in SCHEMA:
            cur.execute(ddl)
        cur.executemany("INSERT INTO items VALUES (?, ?, ?, ?, ?)", ROWS)
        cur.executemany("INSERT INTO tags VALUES (?, ?)", TAGS)
        conn.commit()
        pair.append((db, conn))
    return pair


@pytest.fixture
def pair():
    made = make_pair()
    yield made
    for _db, conn in made:
        conn.close()


def both(pair, sql, params=()):
    """Run on both paths; assert identical outcome; return the rows."""
    outcomes = []
    for db, conn in pair:
        cur = conn.cursor()
        try:
            cur.execute(sql, params)
            outcomes.append(("ok", cur.fetchall(), cur.rowcount,
                             cur.description and
                             [d[0] for d in cur.description]))
        except DatabaseError as exc:
            conn.rollback()
            outcomes.append(("error", type(exc).__name__, str(exc)))
    compiled, interpreted = outcomes
    assert compiled == interpreted, (
        f"paths diverge for {sql!r} {params!r}:\n"
        f"  compiled:    {compiled}\n  interpreted: {interpreted}")
    # Sanity: the compiled database really used a compiled plan for DML
    # and SELECT statements (not a silent fallback).
    return compiled


SELECT_CASES = [
    ("SELECT id, name FROM items ORDER BY id", ()),
    # NULL in comparisons: grp IS NULL rows never match = / <> / <.
    ("SELECT id FROM items WHERE grp = 1 ORDER BY id", ()),
    ("SELECT id FROM items WHERE grp <> 1 ORDER BY id", ()),
    ("SELECT id FROM items WHERE grp < 9 ORDER BY id", ()),
    ("SELECT id FROM items WHERE grp IS NULL", ()),
    ("SELECT id FROM items WHERE grp IS NOT NULL ORDER BY id", ()),
    # Kleene AND/OR over NULL operands.
    ("SELECT id FROM items WHERE grp = 1 OR price > 8 ORDER BY id", ()),
    ("SELECT id FROM items WHERE grp = 2 AND price > 0.5 ORDER BY id", ()),
    ("SELECT id FROM items WHERE NOT (grp = 1) ORDER BY id", ()),
    # NULL propagation through arithmetic and functions.
    ("SELECT id, price * 2 FROM items ORDER BY id", ()),
    ("SELECT id, coalesce(note, 'none') FROM items ORDER BY id", ()),
    ("SELECT id, nullif(grp, 1) FROM items ORDER BY id", ()),
    ("SELECT upper(name), length(name) FROM items ORDER BY id", ()),
    # BETWEEN / IN / LIKE, plus their negations with NULLs in range.
    ("SELECT id FROM items WHERE price BETWEEN 1.0 AND 7.0 ORDER BY id",
     ()),
    ("SELECT id FROM items WHERE price NOT BETWEEN 1.0 AND 7.0 "
     "ORDER BY id", ()),
    ("SELECT id FROM items WHERE grp IN (1, 2) ORDER BY id", ()),
    ("SELECT id FROM items WHERE grp NOT IN (1) ORDER BY id", ()),
    ("SELECT id FROM items WHERE name LIKE '%e%' ORDER BY id", ()),
    # CASE branches, including no-match-no-default -> NULL.
    ("SELECT id, CASE WHEN price > 5 THEN 'hi' WHEN price > 1 THEN 'mid' "
     "END FROM items ORDER BY id", ()),
    # Parameterised access paths: PK point, PK range, index equality.
    ("SELECT name FROM items WHERE id = ?", (3,)),
    ("SELECT id FROM items WHERE id BETWEEN ? AND ? ORDER BY id", (2, 4)),
    ("SELECT id FROM items WHERE grp = ? ORDER BY id", (2,)),
    # Non-integer PK range operand: runtime fallback to full scan.
    ("SELECT id FROM items WHERE id > ? ORDER BY id", (1.5,)),
    # Joins, including LEFT JOIN missed side producing NULLs.
    ("SELECT i.id, t.tag FROM items i JOIN tags t ON t.item_id = i.id "
     "ORDER BY i.id, t.tag", ()),
    ("SELECT i.id, t.tag FROM items i LEFT JOIN tags t "
     "ON t.item_id = i.id ORDER BY i.id, t.tag", ()),
    # Aggregation: empty groups, HAVING, NULL-skipping aggregates.
    ("SELECT count(*), count(price), sum(price), min(price), max(price) "
     "FROM items", ()),
    ("SELECT grp, count(*) FROM items GROUP BY grp ORDER BY grp", ()),
    ("SELECT grp, avg(price) FROM items GROUP BY grp "
     "HAVING count(*) > 1 ORDER BY grp", ()),
    ("SELECT count(*) FROM items WHERE id > 100", ()),
    ("SELECT sum(price) FROM items WHERE id > 100", ()),
    ("SELECT count(DISTINCT grp) FROM items", ()),
    # DISTINCT / ORDER BY position / DESC / LIMIT-OFFSET.
    ("SELECT DISTINCT grp FROM items ORDER BY 1", ()),
    ("SELECT id, name FROM items ORDER BY 2 DESC", ()),
    ("SELECT id FROM items ORDER BY id DESC LIMIT 2", ()),
    ("SELECT id FROM items ORDER BY id LIMIT 2 OFFSET 2", ()),
    # Scalar (table-less) selects.
    ("SELECT 1 + 1, 'x' || 'y'", ()),
    # Mixed-type comparison: string column against numeric string.
    ("SELECT id FROM items WHERE name > '1' ORDER BY id", ()),
]


@pytest.mark.parametrize("sql,params", SELECT_CASES,
                         ids=[c[0][:60] for c in SELECT_CASES])
def test_select_equivalence(pair, sql, params):
    both(pair, sql, params)


ERROR_CASES = [
    ("SELECT nope FROM items", ()),
    ("SELECT i.nope FROM items i", ()),
    ("SELECT x.id FROM items i", ()),
    ("SELECT id FROM items WHERE id = ?", ()),   # missing parameter
    ("SELECT unknown_fn(id) FROM items", ()),
    ("SELECT max(*) FROM items", ()),
]


@pytest.mark.parametrize("sql,params", ERROR_CASES,
                         ids=[c[0][:60] for c in ERROR_CASES])
def test_error_equivalence(pair, sql, params):
    outcome = both(pair, sql, params)
    assert outcome[0] == "error"


def test_dml_equivalence(pair):
    for sql, params in [
        ("INSERT INTO items VALUES (?, ?, ?, ?, ?)",
         (6, 3, 4.5, "fox", None)),
        ("UPDATE items SET price = price + 1 WHERE grp = 1", ()),
        ("UPDATE items SET note = NULL WHERE id = 2", ()),
        ("DELETE FROM items WHERE grp IS NULL", ()),
        ("UPDATE items SET grp = grp WHERE price > ?", (3.0,)),
    ]:
        both(pair, sql, params)
        both(pair, "SELECT * FROM items ORDER BY id")


def test_constraint_error_equivalence(pair):
    # Duplicate PK and NOT NULL violations carry identical messages.
    both(pair, "INSERT INTO items VALUES (1, 9, 0.0, 'dup', NULL)")
    both(pair, "INSERT INTO items VALUES (7, 1, 1.0, NULL, NULL)")
    both(pair, "SELECT count(*) FROM items")


def test_procedure_statement_equivalence_on_mini_benchmark():
    """Drive the shared-fixture mini benchmark's statements both ways."""
    results = []
    for compiled in (True, False):
        db = Database(use_compiled_plans=compiled)
        conn = connect(db)
        cur = conn.cursor()
        cur.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL)")
        cur.executemany("INSERT INTO kv VALUES (?, ?)",
                        [(i, 0) for i in range(16)])
        conn.commit()
        out = []
        for k in range(16):
            cur.execute("UPDATE kv SET v = v + 1 WHERE k = ?", (k % 7,))
            out.append(cur.rowcount)
        cur.execute("SELECT k, v FROM kv ORDER BY k")
        out.append(cur.fetchall())
        conn.commit()
        results.append(out)
        conn.close()
    assert results[0] == results[1]


def test_compiled_path_actually_ran():
    """Guard against the oracle silently comparing interpreter to itself."""
    db = Database()
    conn = connect(db)
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (a INT PRIMARY KEY)")
    cur.execute("INSERT INTO t VALUES (1)")
    cur.execute("SELECT a FROM t")
    conn.commit()
    counters = db.counters.snapshot()
    assert counters["plan_executions"] == 2
    assert counters["interpreted_executions"] == 0
    conn.close()
