"""PEP 249 driver surface: cursors, fetch modes, autocommit, errors."""

import pytest

from repro.engine import Database, connect
from repro.engine import dbapi
from repro.errors import (InterfaceError, NotSupportedError,
                          ProgrammingError)

from ..conftest import execute


def test_module_globals():
    assert dbapi.apilevel == "2.0"
    assert dbapi.paramstyle == "qmark"
    assert dbapi.threadsafety == 2


@pytest.fixture
def loaded(conn):
    execute(conn, "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(8))")
    execute(conn, "INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')")
    conn.commit()
    return conn


def test_fetchone_exhaustion(loaded):
    cur = execute(loaded, "SELECT a FROM t ORDER BY a")
    assert cur.fetchone() == (1,)
    assert cur.fetchone() == (2,)
    assert cur.fetchone() == (3,)
    assert cur.fetchone() is None


def test_fetchmany_with_arraysize(loaded):
    cur = execute(loaded, "SELECT a FROM t ORDER BY a")
    cur.arraysize = 2
    assert cur.fetchmany() == [(1,), (2,)]
    assert cur.fetchmany(5) == [(3,)]
    assert cur.fetchmany() == []


def test_fetchall_after_partial_fetch(loaded):
    cur = execute(loaded, "SELECT a FROM t ORDER BY a")
    cur.fetchone()
    assert cur.fetchall() == [(2,), (3,)]


def test_cursor_iteration(loaded):
    cur = execute(loaded, "SELECT a FROM t ORDER BY a")
    assert [row for row in cur] == [(1,), (2,), (3,)]


def test_description_present_for_select(loaded):
    cur = execute(loaded, "SELECT a, b AS label FROM t")
    assert [d[0] for d in cur.description] == ["a", "label"]
    assert all(len(d) == 7 for d in cur.description)


def test_description_none_for_dml(loaded):
    cur = execute(loaded, "UPDATE t SET b = 'x' WHERE a = 1")
    assert cur.description is None
    loaded.rollback()


def test_rowcount_for_select(loaded):
    cur = execute(loaded, "SELECT a FROM t")
    assert cur.rowcount == 3


def test_executemany(loaded):
    cur = loaded.cursor()
    cur.executemany("INSERT INTO t VALUES (?, ?)",
                    [(10, "x"), (11, "y"), (12, "z")])
    assert cur.rowcount == 3
    loaded.commit()
    cur = execute(loaded, "SELECT COUNT(*) FROM t")
    assert cur.fetchone() == (6,)


def test_string_params_rejected(loaded):
    cur = loaded.cursor()
    with pytest.raises(ProgrammingError):
        cur.execute("SELECT a FROM t WHERE b = ?", "one")


def test_closed_cursor_rejects_operations(loaded):
    cur = execute(loaded, "SELECT a FROM t")
    cur.close()
    with pytest.raises(InterfaceError):
        cur.fetchone()
    with pytest.raises(InterfaceError):
        cur.execute("SELECT 1")


def test_closed_connection_rejects_cursor(db):
    conn = connect(db)
    conn.close()
    with pytest.raises(InterfaceError):
        conn.cursor()
    conn.close()  # double-close is fine


def test_close_rolls_back_open_transaction(db):
    setup = connect(db)
    execute(setup, "CREATE TABLE t (a INT PRIMARY KEY)")
    setup.commit()
    conn = connect(db)
    execute(conn, "INSERT INTO t VALUES (1)")
    conn.close()  # implicit rollback
    check = connect(db)
    cur = execute(check, "SELECT COUNT(*) FROM t")
    assert cur.fetchone() == (0,)


def test_context_manager_commits_on_success(db):
    with connect(db) as conn:
        execute(conn, "CREATE TABLE t (a INT PRIMARY KEY)")
        execute(conn, "INSERT INTO t VALUES (1)")
    check = connect(db)
    cur = execute(check, "SELECT COUNT(*) FROM t")
    assert cur.fetchone() == (1,)


def test_context_manager_rolls_back_on_error(db):
    setup = connect(db)
    execute(setup, "CREATE TABLE t (a INT PRIMARY KEY)")
    setup.commit()
    with pytest.raises(RuntimeError):
        with connect(db) as conn:
            execute(conn, "INSERT INTO t VALUES (1)")
            raise RuntimeError("boom")
    check = connect(db)
    cur = execute(check, "SELECT COUNT(*) FROM t")
    assert cur.fetchone() == (0,)


def test_autocommit_mode(db):
    setup = connect(db)
    execute(setup, "CREATE TABLE t (a INT PRIMARY KEY)")
    setup.commit()
    auto = connect(db, autocommit=True)
    execute(auto, "INSERT INTO t VALUES (1)")
    # Visible to another connection without an explicit commit.
    other = connect(db)
    cur = execute(other, "SELECT COUNT(*) FROM t")
    assert cur.fetchone() == (1,)


def test_invalid_isolation_rejected(db):
    with pytest.raises(NotSupportedError):
        connect(db, isolation="read-uncommitted")


def test_commit_without_transaction_is_noop(db):
    conn = connect(db)
    conn.commit()
    conn.rollback()


def test_last_txn_stats_exposed(loaded):
    execute(loaded, "SELECT a FROM t")
    loaded.commit()
    stats = loaded.last_txn_stats
    assert stats is not None
    assert stats.rows_read == 3


def test_setinputsizes_are_noops(loaded):
    cur = loaded.cursor()
    cur.setinputsizes([1, 2])
    cur.setoutputsize(10)
