"""Tokenizer behaviour: literals, identifiers, operators, comments."""

import pytest

from repro.engine.sqlparser.lexer import Token, tokenize
from repro.errors import ProgrammingError


def kinds(sql):
    return [t.kind for t in tokenize(sql)[:-1]]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


def test_keywords_are_case_insensitive():
    assert values("SELECT select SeLeCt") == ["select"] * 3


def test_identifiers_lowercased():
    assert values("FooBar") == ["foobar"]
    assert kinds("FooBar") == ["ident"]


def test_quoted_identifier_preserves_case():
    tokens = tokenize('"MixedCase"')
    assert tokens[0].kind == "ident"
    assert tokens[0].value == "MixedCase"


def test_integer_and_float_literals():
    tokens = tokenize("42 3.14 .5 1e3 2.5E-2")
    assert [t.value for t in tokens[:-1]] == [42, 3.14, 0.5, 1000.0, 0.025]
    assert tokens[0].kind == "number"


def test_string_literal_with_escaped_quote():
    tokens = tokenize("'it''s'")
    assert tokens[0].value == "it's"
    assert tokens[0].kind == "string"


def test_unterminated_string_raises():
    with pytest.raises(ProgrammingError):
        tokenize("'oops")


def test_two_char_operators():
    assert values("<= >= <> != ||") == ["<=", ">=", "<>", "!=", "||"]


def test_param_markers_counted_individually():
    tokens = tokenize("? ? ?")
    assert all(t.kind == "param" for t in tokens[:-1])
    assert len(tokens) == 4  # 3 params + eof


def test_line_comment_skipped():
    assert values("SELECT -- hidden\n 1") == ["select", 1]


def test_block_comment_skipped():
    assert values("SELECT /* hidden\nacross lines */ 1") == ["select", 1]


def test_unterminated_block_comment_raises():
    with pytest.raises(ProgrammingError):
        tokenize("SELECT /* oops")


def test_unexpected_character_raises():
    with pytest.raises(ProgrammingError):
        tokenize("SELECT @")


def test_eof_token_terminates_stream():
    tokens = tokenize("SELECT 1")
    assert tokens[-1].kind == "eof"


def test_token_matches_helper():
    token = Token("keyword", "select", 0)
    assert token.matches("keyword")
    assert token.matches("keyword", "select")
    assert not token.matches("keyword", "insert")
    assert not token.matches("ident")
