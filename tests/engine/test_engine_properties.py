"""Property-based engine tests: the SQL engine vs. a dict reference model.

Hypothesis drives random CRUD sequences against both the engine and a plain
Python dict; after every committed batch the two must agree exactly.  A
second suite checks LIKE against a regex oracle and ORDER BY stability.
"""

import re

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, initialize,
                                 invariant, rule)

from repro.engine import Database, connect
from repro.engine.expr import like_match
from repro.errors import IntegrityError

KEYS = st.integers(min_value=0, max_value=20)
VALUES = st.integers(min_value=-1000, max_value=1000)


class KvModelMachine(RuleBasedStateMachine):
    """Random inserts/updates/deletes with commit/rollback vs a dict."""

    def __init__(self):
        super().__init__()
        self.db = Database()
        self.conn = connect(self.db)
        cur = self.conn.cursor()
        cur.execute("CREATE TABLE kv (k INT PRIMARY KEY, v INT NOT NULL)")
        self.conn.commit()
        self.committed: dict[int, int] = {}
        self.pending: dict[int, int] = {}

    @rule(k=KEYS, v=VALUES)
    def insert(self, k, v):
        cur = self.conn.cursor()
        try:
            cur.execute("INSERT INTO kv VALUES (?, ?)", (k, v))
        except IntegrityError:
            assert k in self.pending  # duplicate must already exist
        else:
            assert k not in self.pending
            self.pending[k] = v

    @rule(k=KEYS, v=VALUES)
    def update(self, k, v):
        cur = self.conn.cursor()
        cur.execute("UPDATE kv SET v = ? WHERE k = ?", (v, k))
        assert cur.rowcount == (1 if k in self.pending else 0)
        if k in self.pending:
            self.pending[k] = v

    @rule(k=KEYS)
    def delete(self, k):
        cur = self.conn.cursor()
        cur.execute("DELETE FROM kv WHERE k = ?", (k,))
        assert cur.rowcount == (1 if k in self.pending else 0)
        self.pending.pop(k, None)

    @rule()
    def commit(self):
        self.conn.commit()
        self.committed = dict(self.pending)

    @rule()
    def rollback(self):
        self.conn.rollback()
        self.pending = dict(self.committed)

    @invariant()
    def engine_matches_model(self):
        cur = self.conn.cursor()
        cur.execute("SELECT k, v FROM kv")
        assert dict(cur.fetchall()) == self.pending
        # A second connection must see only committed state.  Snapshot
        # isolation reads without locks: under 2PL a same-thread reader
        # would (correctly) self-deadlock against our pending X locks.
        other = connect(self.db, isolation="snapshot")
        cur = other.cursor()
        cur.execute("SELECT k, v FROM kv")
        assert dict(cur.fetchall()) == self.committed
        other.close()


KvModelMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None)
TestKvModel = KvModelMachine.TestCase


def _like_to_regex(pattern: str) -> str:
    parts = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return "^" + "".join(parts) + "$"


@given(text=st.text(alphabet="ab%_c", max_size=12),
       pattern=st.text(alphabet="ab%_c", max_size=8))
@settings(max_examples=300, deadline=None)
def test_like_matches_regex_oracle(text, pattern):
    expected = re.match(_like_to_regex(pattern), text, re.DOTALL) is not None
    assert like_match(text, pattern) is expected


@given(rows=st.lists(
    st.tuples(st.integers(0, 50), st.integers(-5, 5)),
    min_size=0, max_size=30, unique_by=lambda r: r[0]))
@settings(max_examples=60, deadline=None)
def test_order_by_matches_sorted(rows):
    db = Database()
    conn = connect(db)
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    for k, v in rows:
        cur.execute("INSERT INTO t VALUES (?, ?)", (k, v))
    conn.commit()
    cur.execute("SELECT k, v FROM t ORDER BY v, k")
    assert cur.fetchall() == sorted(rows, key=lambda r: (r[1], r[0]))
    cur.execute("SELECT k FROM t ORDER BY v DESC, k DESC")
    assert [r[0] for r in cur.fetchall()] == [
        r[0] for r in sorted(rows, key=lambda r: (r[1], r[0]),
                             reverse=True)]


@given(values=st.lists(st.integers(-100, 100), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_aggregates_match_python(values):
    db = Database()
    conn = connect(db)
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    for i, v in enumerate(values):
        cur.execute("INSERT INTO t VALUES (?, ?)", (i, v))
    conn.commit()
    cur.execute("SELECT COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM t")
    count, total, low, high, avg = cur.fetchone()
    assert count == len(values)
    assert total == sum(values)
    assert low == min(values)
    assert high == max(values)
    assert avg == sum(values) / len(values)
