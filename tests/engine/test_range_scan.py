"""Integer PK range unrolling: the hash-index answer to range scans.

``pk >= lo AND pk < hi`` on a single-column integer primary key is
unrolled into point lookups (``Executor._integer_pk_range``).  These tests
pin the optimisation's correctness against full-scan semantics and verify
it actually engages (via the transaction's index/scan counters).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Database, connect

from ..conftest import execute


@pytest.fixture
def table(conn):
    execute(conn, "CREATE TABLE t (k INT PRIMARY KEY, v INT NOT NULL)")
    execute(conn, "INSERT INTO t VALUES " + ", ".join(
        f"({i}, {i * 10})" for i in range(50)))
    conn.commit()
    return conn


def scans_used(conn):
    stats = conn.last_txn_stats
    return stats.full_scans, stats.index_lookups


def test_closed_range_uses_index(table):
    cur = execute(table, "SELECT k FROM t WHERE k >= 10 AND k < 15 "
                         "ORDER BY k")
    assert [r[0] for r in cur.fetchall()] == [10, 11, 12, 13, 14]
    table.commit()
    full, index = scans_used(table)
    assert full == 0
    assert index == 1


def test_between_uses_index(table):
    cur = execute(table, "SELECT COUNT(*) FROM t WHERE k BETWEEN 5 AND 9")
    assert cur.fetchone() == (5,)
    table.commit()
    assert scans_used(table)[0] == 0


def test_flipped_operands(table):
    cur = execute(table, "SELECT COUNT(*) FROM t "
                         "WHERE 10 <= k AND 15 > k")
    assert cur.fetchone() == (5,)
    table.commit()
    assert scans_used(table)[0] == 0


def test_strict_bounds(table):
    cur = execute(table, "SELECT k FROM t WHERE k > 47 AND k <= 49 "
                         "ORDER BY k")
    assert [r[0] for r in cur.fetchall()] == [48, 49]
    table.commit()
    assert scans_used(table)[0] == 0


def test_open_ended_range_falls_back_to_scan(table):
    cur = execute(table, "SELECT COUNT(*) FROM t WHERE k >= 45")
    assert cur.fetchone() == (5,)
    table.commit()
    assert scans_used(table)[0] == 1  # no upper bound: full scan


def test_empty_range(table):
    cur = execute(table, "SELECT COUNT(*) FROM t WHERE k >= 30 AND k < 30")
    assert cur.fetchone() == (0,)
    cur = execute(table, "SELECT COUNT(*) FROM t WHERE k >= 40 AND k < 35")
    assert cur.fetchone() == (0,)
    table.commit()


def test_range_with_extra_predicates(table):
    cur = execute(table, "SELECT k FROM t WHERE k >= 10 AND k < 20 "
                         "AND v > 150 ORDER BY k")
    assert [r[0] for r in cur.fetchall()] == [16, 17, 18, 19]
    table.commit()
    assert scans_used(table)[0] == 0


def test_range_with_params(table):
    cur = execute(table, "SELECT COUNT(*) FROM t WHERE k >= ? AND k < ?",
                  (20, 26))
    assert cur.fetchone() == (6,)
    table.commit()
    assert scans_used(table)[0] == 0


def test_huge_range_falls_back(table):
    # Wider than MAX_RANGE_UNROLL: correctness via full scan.
    cur = execute(table, "SELECT COUNT(*) FROM t "
                         "WHERE k >= 0 AND k < 1000000")
    assert cur.fetchone() == (50,)
    table.commit()
    assert scans_used(table)[0] == 1


def test_range_update_and_delete(table):
    cur = execute(table, "UPDATE t SET v = 0 WHERE k >= 5 AND k < 8")
    assert cur.rowcount == 3
    cur = execute(table, "DELETE FROM t WHERE k BETWEEN 40 AND 44")
    assert cur.rowcount == 5
    table.commit()
    cur = execute(table, "SELECT COUNT(*) FROM t")
    assert cur.fetchone() == (45,)


def test_range_sees_own_uncommitted_inserts(table):
    execute(table, "INSERT INTO t VALUES (100, 1000)")
    cur = execute(table, "SELECT COUNT(*) FROM t "
                         "WHERE k >= 99 AND k < 102")
    assert cur.fetchone() == (1,)
    table.rollback()


def test_composite_pk_not_unrolled(conn):
    execute(conn, "CREATE TABLE c (a INT, b INT, PRIMARY KEY (a, b))")
    execute(conn, "INSERT INTO c VALUES (1, 1), (1, 2), (2, 1)")
    conn.commit()
    cur = execute(conn, "SELECT COUNT(*) FROM c WHERE a >= 1 AND a < 3")
    assert cur.fetchone() == (3,)
    conn.commit()
    assert conn.last_txn_stats.full_scans == 1


@given(
    keys=st.sets(st.integers(0, 200), min_size=0, max_size=60),
    lo=st.integers(-10, 210),
    width=st.integers(0, 60),
)
@settings(max_examples=60, deadline=None)
def test_property_range_matches_filter(keys, lo, width):
    db = Database()
    conn = connect(db)
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (k INT PRIMARY KEY)")
    for k in keys:
        cur.execute("INSERT INTO t VALUES (?)", (k,))
    conn.commit()
    hi = lo + width
    cur.execute("SELECT k FROM t WHERE k >= ? AND k < ? ORDER BY k",
                (lo, hi))
    got = [r[0] for r in cur.fetchall()]
    assert got == sorted(k for k in keys if lo <= k < hi)
    conn.commit()
