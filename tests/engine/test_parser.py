"""Parser coverage: every statement form and the expression grammar."""

import pytest

from repro.engine.sqlparser import ast, parse
from repro.errors import ProgrammingError


# -- SELECT -----------------------------------------------------------------


def test_simple_select():
    stmt = parse("SELECT a, b FROM t")
    assert isinstance(stmt, ast.Select)
    assert [i.expr.column for i in stmt.items] == ["a", "b"]
    assert stmt.table.name == "t"


def test_select_star():
    stmt = parse("SELECT * FROM t")
    assert stmt.items[0].star


def test_select_qualified_star():
    stmt = parse("SELECT t.* FROM t")
    assert stmt.items[0].star
    assert stmt.items[0].star_table == "t"


def test_select_with_alias_forms():
    stmt = parse("SELECT a AS x, b y FROM t")
    assert stmt.items[0].alias == "x"
    assert stmt.items[1].alias == "y"


def test_select_where_precedence():
    stmt = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
    # AND binds tighter than OR.
    assert stmt.where.op == "or"
    assert stmt.where.right.op == "and"


def test_select_join_on():
    stmt = parse("SELECT a FROM t JOIN u ON t.id = u.id")
    assert len(stmt.joins) == 1
    assert stmt.joins[0].kind == "inner"
    assert isinstance(stmt.joins[0].condition, ast.BinaryOp)


def test_select_left_join():
    stmt = parse("SELECT a FROM t LEFT JOIN u ON t.id = u.id")
    assert stmt.joins[0].kind == "left"
    stmt = parse("SELECT a FROM t LEFT OUTER JOIN u ON t.id = u.id")
    assert stmt.joins[0].kind == "left"


def test_select_comma_join():
    stmt = parse("SELECT a FROM t, u WHERE t.id = u.id")
    assert stmt.joins[0].kind == "cross"
    assert stmt.joins[0].condition is None


def test_select_group_by_having():
    stmt = parse("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2")
    assert len(stmt.group_by) == 1
    assert stmt.having is not None


def test_select_order_limit_offset():
    stmt = parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 10 OFFSET 5")
    assert stmt.order_by[0].descending
    assert not stmt.order_by[1].descending
    assert isinstance(stmt.limit, ast.Literal)
    assert stmt.offset.value == 5


def test_select_for_update():
    stmt = parse("SELECT a FROM t WHERE a = ? FOR UPDATE")
    assert stmt.for_update


def test_select_distinct():
    assert parse("SELECT DISTINCT a FROM t").distinct


def test_select_without_from():
    stmt = parse("SELECT 1 + 2")
    assert stmt.table is None


# -- expressions ---------------------------------------------------------------


def test_between_and_not_between():
    stmt = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
    assert isinstance(stmt.where, ast.Between)
    stmt = parse("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 5")
    assert stmt.where.negated


def test_in_list():
    stmt = parse("SELECT a FROM t WHERE a IN (1, 2, 3)")
    assert isinstance(stmt.where, ast.InList)
    assert len(stmt.where.options) == 3


def test_like_and_not_like():
    stmt = parse("SELECT a FROM t WHERE a LIKE 'x%'")
    assert isinstance(stmt.where, ast.Like)
    stmt = parse("SELECT a FROM t WHERE a NOT LIKE 'x%'")
    assert stmt.where.negated


def test_is_null_and_is_not_null():
    assert not parse("SELECT a FROM t WHERE a IS NULL").where.negated
    assert parse("SELECT a FROM t WHERE a IS NOT NULL").where.negated


def test_case_expression():
    stmt = parse("SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t")
    expr = stmt.items[0].expr
    assert isinstance(expr, ast.CaseExpr)
    assert expr.default is not None


def test_count_star_and_distinct():
    stmt = parse("SELECT COUNT(*), COUNT(DISTINCT a) FROM t")
    star, distinct = (item.expr for item in stmt.items)
    assert star.star
    assert distinct.distinct


def test_param_indices_assigned_in_order():
    stmt = parse("SELECT a FROM t WHERE a = ? AND b = ? AND c = ?")
    params = [n for n in ast.walk(stmt.where) if isinstance(n, ast.Param)]
    assert [p.index for p in params] == [0, 1, 2]


def test_count_params_helper():
    stmt = parse("UPDATE t SET a = ?, b = ? WHERE c = ?")
    assert ast.count_params(stmt) == 3


def test_unary_minus_and_arithmetic_precedence():
    stmt = parse("SELECT -a + b * 2 FROM t")
    expr = stmt.items[0].expr
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_string_concat():
    stmt = parse("SELECT a || 'x' FROM t")
    assert stmt.items[0].expr.op == "||"


# -- DML -------------------------------------------------------------------------


def test_insert_single_row():
    stmt = parse("INSERT INTO t (a, b) VALUES (?, ?)")
    assert isinstance(stmt, ast.Insert)
    assert stmt.columns == ("a", "b")
    assert len(stmt.rows) == 1


def test_insert_multi_row():
    stmt = parse("INSERT INTO t (a) VALUES (1), (2), (3)")
    assert len(stmt.rows) == 3


def test_insert_without_column_list():
    stmt = parse("INSERT INTO t VALUES (1, 2)")
    assert stmt.columns == ()


def test_update():
    stmt = parse("UPDATE t SET a = a + 1, b = ? WHERE c = 2")
    assert isinstance(stmt, ast.Update)
    assert [a.column for a in stmt.assignments] == ["a", "b"]
    assert stmt.where is not None


def test_delete():
    stmt = parse("DELETE FROM t WHERE a = 1")
    assert isinstance(stmt, ast.Delete)


def test_delete_without_where():
    assert parse("DELETE FROM t").where is None


# -- DDL ----------------------------------------------------------------------------


def test_create_table_with_inline_pk():
    stmt = parse("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(10))")
    assert isinstance(stmt, ast.CreateTable)
    assert stmt.primary_key == ("id",)
    assert stmt.columns[1].type_args == (10,)


def test_create_table_with_composite_pk():
    stmt = parse("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
    assert stmt.primary_key == ("a", "b")


def test_create_table_not_null_and_default():
    stmt = parse("CREATE TABLE t (a INT NOT NULL, b INT DEFAULT 5)")
    assert stmt.columns[0].not_null
    assert stmt.columns[1].default.value == 5


def test_create_table_if_not_exists():
    assert parse("CREATE TABLE IF NOT EXISTS t (a INT)").if_not_exists


def test_create_table_with_foreign_key():
    stmt = parse(
        "CREATE TABLE t (a INT, FOREIGN KEY (a) REFERENCES u (id))")
    assert stmt.foreign_keys == ((("a",), "u", ("id",)),)


def test_create_index():
    stmt = parse("CREATE INDEX idx ON t (a, b)")
    assert isinstance(stmt, ast.CreateIndex)
    assert stmt.columns == ("a", "b")
    assert not stmt.unique


def test_create_unique_index():
    assert parse("CREATE UNIQUE INDEX idx ON t (a)").unique


def test_drop_table():
    stmt = parse("DROP TABLE IF EXISTS t")
    assert isinstance(stmt, ast.DropTable)
    assert stmt.if_exists


def test_duplicate_primary_key_rejected():
    with pytest.raises(ProgrammingError):
        parse("CREATE TABLE t (a INT PRIMARY KEY, PRIMARY KEY (a))")


# -- errors ---------------------------------------------------------------------------


@pytest.mark.parametrize("bad", [
    "SELECT",
    "SELECT FROM t",
    "INSERT t VALUES (1)",
    "UPDATE t a = 1",
    "CREATE t",
    "SELECT a FROM t WHERE",
    "SELECT a FROM t GROUP",
    "garbage",
    "SELECT a FROM t; SELECT b FROM t",
])
def test_syntax_errors(bad):
    with pytest.raises(ProgrammingError):
        parse(bad)


def test_trailing_semicolon_allowed():
    assert isinstance(parse("SELECT 1;"), ast.Select)
