"""Plan compiler and cache units: keying, invalidation, access paths.

The equivalence of compiled execution against the interpreter is
covered separately in ``test_plan_equivalence.py``; this file pins the
planner's own contracts — prepare-time error reporting, cache counter
accounting, DDL invalidation, and access-path selection.
"""

import pytest

from repro.engine import Database, LruCache, PlanCache, connect
from repro.engine.plan import (CompiledSelect, IndexProbe, PkRangeProbe,
                               compile_statement)
from repro.errors import ProgrammingError

from ..conftest import execute


@pytest.fixture
def loaded(db):
    conn = connect(db)
    execute(conn, "CREATE TABLE t (a INT PRIMARY KEY, b INT, c VARCHAR(8))")
    execute(conn, "CREATE INDEX idx_b ON t (b)")
    execute(conn, "INSERT INTO t VALUES (1, 10, 'x'), (2, 20, 'y'), "
                  "(3, 20, 'z')")
    conn.commit()
    yield db, conn
    conn.close()


def plan_of(db, sql) -> CompiledSelect:
    plan = db.prepare_exec(sql).plan
    assert plan is not None, f"expected a compiled plan for {sql!r}"
    return plan


# -- prepare-time errors ----------------------------------------------------


def test_unknown_column_raises_at_prepare_time(loaded):
    db, _ = loaded
    with pytest.raises(ProgrammingError, match="unknown column 'nope'"):
        db.prepare_exec("SELECT nope FROM t")


def test_unknown_table_binding_raises_at_prepare_time(loaded):
    db, _ = loaded
    with pytest.raises(ProgrammingError,
                       match="unknown table binding 'u'"):
        db.prepare_exec("SELECT u.a FROM t")


def test_ambiguous_column_raises_at_prepare_time(loaded):
    db, _ = loaded
    with pytest.raises(ProgrammingError, match="ambiguous column 'b'"):
        db.prepare_exec("SELECT b FROM t t1 JOIN t t2 ON t1.a = t2.a")


def test_prepare_time_errors_are_not_cached(loaded):
    db, _ = loaded
    before = db.plan_cache.snapshot()["size"]
    for _ in range(2):
        with pytest.raises(ProgrammingError):
            db.prepare_exec("SELECT nope FROM t")
    assert db.plan_cache.snapshot()["size"] == before


def test_execution_still_reports_error_rows_like_interpreter(loaded):
    db, conn = loaded
    # The same statement through the cursor: error surfaces to the
    # caller before any transaction work happens.
    with pytest.raises(ProgrammingError, match="unknown column"):
        execute(conn, "SELECT nope FROM t")


# -- plan cache keying and counters -----------------------------------------


def test_plan_cache_hits_on_repeat_and_misses_on_first(loaded):
    db, _ = loaded
    db.plan_cache = PlanCache(8)  # fresh counters
    db.prepare_exec("SELECT a FROM t WHERE b = ?")
    db.prepare_exec("SELECT a FROM t WHERE b = ?")
    stats = db.plan_cache.snapshot()
    assert stats["misses"] == 1
    assert stats["hits"] == 1
    assert stats["size"] == 1


def test_ddl_bumps_catalog_version_and_invalidates_plans(loaded):
    db, conn = loaded
    version = db.catalog.version
    db.prepare_exec("SELECT a FROM t")
    assert db.plan_cache.snapshot()["size"] >= 1
    execute(conn, "CREATE TABLE other (k INT PRIMARY KEY)")
    assert db.catalog.version == version + 1
    stats = db.plan_cache.snapshot()
    assert stats["size"] == 0
    assert stats["invalidations"] >= 1


def test_plans_recompile_under_new_catalog_version(loaded):
    db, conn = loaded
    first = db.prepare_exec("SELECT a FROM t").plan
    execute(conn, "CREATE INDEX idx_c ON t (c)")
    second = db.prepare_exec("SELECT a FROM t").plan
    assert second is not first  # old version's plan cannot be served
    # And the recompiled plan still executes.
    assert sorted(execute(conn, "SELECT a FROM t").fetchall()) == \
        [(1,), (2,), (3,)]
    conn.commit()


def test_noop_ddl_does_not_invalidate(loaded):
    db, conn = loaded
    db.prepare_exec("SELECT a FROM t")
    before = db.plan_cache.snapshot()
    execute(conn, "CREATE TABLE IF NOT EXISTS t (a INT PRIMARY KEY)")
    after = db.plan_cache.snapshot()
    assert after["size"] == before["size"]
    assert after["invalidations"] == before["invalidations"]


def test_plan_cache_eviction_is_counted():
    db = Database(plan_cache_size=2)
    conn = connect(db)
    execute(conn, "CREATE TABLE t (a INT PRIMARY KEY)")
    for i in range(4):
        db.prepare_exec(f"SELECT a FROM t WHERE a = {i}")
    stats = db.plan_cache.snapshot()
    assert stats["capacity"] == 2
    assert stats["size"] == 2
    assert stats["evictions"] == 2
    conn.close()


def test_disabled_compilation_runs_interpreted():
    plain = Database(use_compiled_plans=False)
    conn = connect(plain)
    execute(conn, "CREATE TABLE t (a INT PRIMARY KEY)")
    execute(conn, "INSERT INTO t VALUES (1)")
    assert execute(conn, "SELECT a FROM t").fetchall() == [(1,)]
    conn.commit()
    counters = plain.counters.snapshot()
    assert counters["plan_executions"] == 0
    assert counters["interpreted_executions"] == 2
    conn.close()


def test_compiled_execution_is_counted(loaded):
    db, conn = loaded
    before = db.counters.plan_executions
    execute(conn, "SELECT a FROM t WHERE a = 1")
    conn.commit()
    assert db.counters.plan_executions == before + 1


# -- statement cache (satellite: bounded LRU) --------------------------------


def test_stmt_cache_is_bounded():
    db = Database(stmt_cache_size=2)
    for i in range(5):
        db.prepare(f"SELECT {i}")
    stats = db.cache_stats()["stmt_cache"]
    assert stats["size"] == 2
    assert stats["evictions"] == 3


def test_lru_cache_evicts_least_recently_used():
    cache = LruCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.lookup("a") == (True, 1)  # refresh "a"
    cache.put("c", 3)                      # evicts "b"
    assert cache.lookup("b") == (False, None)
    assert cache.lookup("a") == (True, 1)
    assert cache.lookup("c") == (True, 3)
    stats = cache.snapshot()
    assert stats["hits"] == 3
    assert stats["misses"] == 1
    assert stats["evictions"] == 1


def test_cache_stats_exposed_via_database_stats(loaded):
    db, _ = loaded
    caches = db.stats()["caches"]
    assert set(caches) == {"plan_cache", "stmt_cache", "catalog_version"}
    for key in ("size", "capacity", "hits", "misses", "evictions"):
        assert key in caches["plan_cache"]
        assert key in caches["stmt_cache"]
    assert "invalidations" in caches["plan_cache"]


# -- access-path selection ---------------------------------------------------


def test_pk_equality_uses_the_pk_index(loaded):
    db, _ = loaded
    plan = plan_of(db, "SELECT a FROM t WHERE a = ?")
    source = plan.sources[0]
    assert isinstance(source.index_probe, IndexProbe)
    assert source.index_probe.index_name == "__pk__"


def test_secondary_index_equality_is_probed(loaded):
    db, _ = loaded
    plan = plan_of(db, "SELECT a FROM t WHERE b = ?")
    source = plan.sources[0]
    assert isinstance(source.index_probe, IndexProbe)
    assert source.index_probe.index_name == "idx_b"


def test_pk_range_predicate_compiles_a_range_probe(loaded):
    db, _ = loaded
    plan = plan_of(db, "SELECT a FROM t WHERE a BETWEEN ? AND ?")
    source = plan.sources[0]
    assert source.index_probe is None
    assert isinstance(source.pk_range, PkRangeProbe)


def test_unindexed_predicate_falls_back_to_full_scan(loaded):
    db, _ = loaded
    plan = plan_of(db, "SELECT a FROM t WHERE c = ?")
    source = plan.sources[0]
    assert source.index_probe is None
    assert source.pk_range is None
    assert source.filter is not None


def test_scan_stats_reflect_chosen_access_path(loaded):
    db, conn = loaded
    execute(conn, "SELECT a FROM t WHERE a = ?", (1,))
    assert conn.transaction.stats.index_lookups >= 1
    assert conn.transaction.stats.full_scans == 0
    conn.commit()
    execute(conn, "SELECT a FROM t WHERE c = ?", ("x",))
    assert conn.transaction.stats.full_scans >= 1
    conn.commit()


def test_compile_statement_resolves_join_probe(loaded):
    db, _ = loaded
    stmt = db.prepare(
        "SELECT t1.a FROM t t1 JOIN t t2 ON t2.b = t1.b WHERE t1.a = ?")
    plan = compile_statement(stmt, db.catalog)
    inner = plan.sources[1]
    # The join equality probes idx_b with the outer row's value.
    assert isinstance(inner.index_probe, IndexProbe)
    assert inner.index_probe.index_name == "idx_b"


# -- executemany fast path (satellite) ---------------------------------------


def test_executemany_plans_once(loaded):
    db, conn = loaded
    db.plan_cache = PlanCache(8)
    cur = conn.cursor()
    cur.executemany("INSERT INTO t VALUES (?, ?, ?)",
                    [(10, 1, "a"), (11, 2, "b"), (12, 3, "c")])
    conn.commit()
    assert cur.rowcount == 3
    stats = db.plan_cache.snapshot()
    assert stats["misses"] == 1  # planned exactly once
    assert execute(conn, "SELECT count(*) FROM t").fetchone() == (6,)
    conn.commit()


def test_executemany_rejects_string_params(loaded):
    _, conn = loaded
    cur = conn.cursor()
    with pytest.raises(ProgrammingError, match="sequence"):
        cur.executemany("INSERT INTO t VALUES (?, ?, ?)", ["abc"])
