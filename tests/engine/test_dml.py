"""DDL + DML execution through the DB-API: CRUD, constraints, defaults."""

import pytest

from repro.engine import Database, connect
from repro.errors import IntegrityError, ProgrammingError

from ..conftest import execute


@pytest.fixture
def people(conn):
    execute(conn, """
        CREATE TABLE people (
            id INT PRIMARY KEY,
            name VARCHAR(20) NOT NULL,
            age INT,
            city VARCHAR(20) DEFAULT 'unknown'
        )
    """)
    execute(conn, "INSERT INTO people (id, name, age) VALUES "
                  "(1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 35)")
    conn.commit()
    return conn


def test_insert_and_select(people):
    cur = execute(people, "SELECT name FROM people WHERE id = ?", (2,))
    assert cur.fetchone() == ("bob",)


def test_insert_rowcount(people):
    cur = execute(people, "INSERT INTO people (id, name) VALUES (4, 'dan')")
    assert cur.rowcount == 1


def test_multi_row_insert_rowcount(conn):
    execute(conn, "CREATE TABLE t (a INT PRIMARY KEY)")
    cur = execute(conn, "INSERT INTO t (a) VALUES (1), (2), (3)")
    assert cur.rowcount == 3


def test_default_value_applied(people):
    execute(people, "INSERT INTO people (id, name) VALUES (9, 'zoe')")
    cur = execute(people, "SELECT city FROM people WHERE id = 9")
    assert cur.fetchone() == ("unknown",)


def test_missing_column_without_default_is_null(people):
    execute(people, "INSERT INTO people (id, name) VALUES (8, 'yan')")
    cur = execute(people, "SELECT age FROM people WHERE id = 8")
    assert cur.fetchone() == (None,)


def test_not_null_violation(people):
    with pytest.raises(IntegrityError):
        execute(people, "INSERT INTO people (id, age) VALUES (5, 20)")


def test_duplicate_pk_rejected(people):
    with pytest.raises(IntegrityError):
        execute(people, "INSERT INTO people (id, name) VALUES (1, 'dup')")


def test_null_pk_rejected(people):
    with pytest.raises(IntegrityError):
        execute(people, "INSERT INTO people (id, name) VALUES (NULL, 'x')")


def test_update_with_expression(people):
    cur = execute(people, "UPDATE people SET age = age + 1 WHERE age < 31")
    assert cur.rowcount == 2
    people.commit()
    cur = execute(people, "SELECT SUM(age) FROM people")
    assert cur.fetchone()[0] == 30 + 25 + 35 + 2


def test_update_no_match_rowcount_zero(people):
    cur = execute(people, "UPDATE people SET age = 1 WHERE id = 99")
    assert cur.rowcount == 0


def test_update_pk_to_conflicting_value_rejected(people):
    with pytest.raises(IntegrityError):
        execute(people, "UPDATE people SET id = 2 WHERE id = 1")


def test_update_pk_to_free_value_ok(people):
    execute(people, "UPDATE people SET id = 10 WHERE id = 1")
    people.commit()
    cur = execute(people, "SELECT name FROM people WHERE id = 10")
    assert cur.fetchone() == ("alice",)
    cur = execute(people, "SELECT COUNT(*) FROM people WHERE id = 1")
    assert cur.fetchone() == (0,)


def test_delete(people):
    cur = execute(people, "DELETE FROM people WHERE age > 28")
    assert cur.rowcount == 2
    people.commit()
    cur = execute(people, "SELECT COUNT(*) FROM people")
    assert cur.fetchone() == (1,)


def test_delete_all(people):
    cur = execute(people, "DELETE FROM people")
    assert cur.rowcount == 3


def test_halloween_protection(conn):
    """An UPDATE must not revisit rows it has just written."""
    execute(conn, "CREATE TABLE t (a INT PRIMARY KEY, v INT)")
    execute(conn, "INSERT INTO t (a, v) VALUES (1, 1), (2, 2)")
    conn.commit()
    cur = execute(conn, "UPDATE t SET v = v + 10 WHERE v < 100")
    assert cur.rowcount == 2
    conn.commit()
    cur = execute(conn, "SELECT v FROM t ORDER BY a")
    assert cur.fetchall() == [(11,), (12,)]


def test_varchar_truncation_on_insert(conn):
    execute(conn, "CREATE TABLE t (a INT PRIMARY KEY, s VARCHAR(3))")
    execute(conn, "INSERT INTO t (a, s) VALUES (1, 'abcdef')")
    cur = execute(conn, "SELECT s FROM t")
    assert cur.fetchone() == ("abc",)


def test_insert_column_count_mismatch(conn):
    execute(conn, "CREATE TABLE t (a INT, b INT)")
    with pytest.raises(ProgrammingError):
        execute(conn, "INSERT INTO t (a, b) VALUES (1)")


def test_unknown_table_raises(conn):
    with pytest.raises(ProgrammingError):
        execute(conn, "SELECT * FROM missing")


def test_unknown_column_raises(people):
    with pytest.raises(ProgrammingError):
        execute(people, "SELECT nope FROM people")


# -- DDL ------------------------------------------------------------------------


def test_create_table_twice_rejected(conn):
    execute(conn, "CREATE TABLE t (a INT)")
    with pytest.raises(ProgrammingError):
        execute(conn, "CREATE TABLE t (a INT)")


def test_create_table_if_not_exists_is_idempotent(conn):
    execute(conn, "CREATE TABLE t (a INT)")
    execute(conn, "CREATE TABLE IF NOT EXISTS t (a INT)")


def test_drop_table(conn):
    execute(conn, "CREATE TABLE t (a INT)")
    execute(conn, "DROP TABLE t")
    with pytest.raises(ProgrammingError):
        execute(conn, "SELECT * FROM t")


def test_drop_missing_table_if_exists(conn):
    execute(conn, "DROP TABLE IF EXISTS missing")
    with pytest.raises(ProgrammingError):
        execute(conn, "DROP TABLE missing")


def test_ddl_inside_transaction_rejected(conn):
    execute(conn, "CREATE TABLE t (a INT PRIMARY KEY)")
    execute(conn, "INSERT INTO t (a) VALUES (1)")  # opens a transaction
    with pytest.raises(ProgrammingError):
        execute(conn, "CREATE TABLE u (a INT)")
    conn.rollback()


def test_create_index_backfills(db, conn):
    execute(conn, "CREATE TABLE t (a INT PRIMARY KEY, b INT)")
    execute(conn, "INSERT INTO t (a, b) VALUES (1, 10), (2, 10), (3, 20)")
    conn.commit()
    execute(conn, "CREATE INDEX idx_b ON t (b)")
    data = db.table_data("t")
    assert len(data.index_lookup("idx_b", (10,))) == 2
    assert len(data.index_lookup("idx_b", (20,))) == 1


def test_bulk_insert_fast_path(db):
    connection = connect(db)
    execute(connection, "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(4))")
    count = db.bulk_insert("t", [(i, f"row{i}") for i in range(100)])
    assert count == 100
    cur = execute(connection, "SELECT COUNT(*), MAX(a) FROM t")
    assert cur.fetchone() == (100, 99)
    # Type coercion still applies on the fast path.
    cur = execute(connection, "SELECT b FROM t WHERE a = 5")
    assert cur.fetchone() == ("row5"[:4],)
