"""Harder SQL combinations: joins + aggregates + ordering interplay."""

import pytest

from repro.errors import ProgrammingError

from ..conftest import execute


@pytest.fixture
def sales(conn):
    execute(conn, """
        CREATE TABLE region (r_id INT PRIMARY KEY, r_name VARCHAR(10))
    """)
    execute(conn, """
        CREATE TABLE sale (
            s_id INT PRIMARY KEY,
            r_id INT NOT NULL,
            amount FLOAT NOT NULL,
            kind VARCHAR(4)
        )
    """)
    execute(conn, "CREATE INDEX idx_sale_region ON sale (r_id)")
    execute(conn, "INSERT INTO region VALUES (1, 'east'), (2, 'west'), "
                  "(3, 'north')")
    execute(conn, "INSERT INTO sale VALUES "
                  "(1, 1, 10.0, 'a'), (2, 1, 20.0, 'b'), "
                  "(3, 2, 5.0, 'a'), (4, 2, 15.0, NULL), "
                  "(5, 2, 30.0, 'b')")
    conn.commit()
    return conn


def test_join_group_by_with_having(sales):
    cur = execute(sales, """
        SELECT r.r_name, COUNT(*) AS n, SUM(s.amount) AS total
        FROM region r JOIN sale s ON s.r_id = r.r_id
        GROUP BY r.r_name
        HAVING SUM(s.amount) > 25
        ORDER BY total DESC
    """)
    assert cur.fetchall() == [("west", 3, 50.0), ("east", 2, 30.0)]


def test_left_join_group_counts_unmatched_as_zero(sales):
    cur = execute(sales, """
        SELECT r.r_name, COUNT(s.s_id) FROM region r
        LEFT JOIN sale s ON s.r_id = r.r_id
        GROUP BY r.r_name ORDER BY r.r_name
    """)
    assert cur.fetchall() == [("east", 2), ("north", 0), ("west", 3)]


def test_aggregate_arithmetic_in_having(sales):
    cur = execute(sales, """
        SELECT r_id, SUM(amount) / COUNT(*) FROM sale
        GROUP BY r_id HAVING SUM(amount) / COUNT(*) >= 16
        ORDER BY r_id
    """)
    assert cur.fetchall() == [(2, pytest.approx(50.0 / 3))]


def test_case_aggregation_by_kind(sales):
    cur = execute(sales, """
        SELECT SUM(CASE WHEN kind = 'a' THEN amount ELSE 0 END),
               SUM(CASE WHEN kind = 'b' THEN amount ELSE 0 END),
               SUM(CASE WHEN kind IS NULL THEN amount ELSE 0 END)
        FROM sale
    """)
    assert cur.fetchone() == (15.0, 50.0, 15.0)


def test_distinct_on_join_result(sales):
    cur = execute(sales, """
        SELECT DISTINCT r.r_name FROM region r
        JOIN sale s ON s.r_id = r.r_id
        ORDER BY r.r_name
    """)
    assert cur.fetchall() == [("east",), ("west",)]


def test_order_by_expression_not_in_select(sales):
    cur = execute(sales, "SELECT s_id FROM sale ORDER BY amount * -1")
    assert [r[0] for r in cur.fetchall()] == [5, 2, 4, 1, 3]


def test_limit_after_group_order(sales):
    cur = execute(sales, """
        SELECT r_id, MAX(amount) FROM sale GROUP BY r_id
        ORDER BY 2 DESC LIMIT 1
    """)
    assert cur.fetchall() == [(2, 30.0)]


def test_in_list_with_params(sales):
    cur = execute(sales, "SELECT COUNT(*) FROM sale WHERE kind IN (?, ?)",
                  ("a", "b"))
    assert cur.fetchone() == (4,)


def test_not_in_excludes_nulls(sales):
    # SQL semantics: NULL kind rows are UNKNOWN, filtered out.
    cur = execute(sales, "SELECT COUNT(*) FROM sale "
                         "WHERE kind NOT IN ('a')")
    assert cur.fetchone() == (2,)


def test_join_on_expression(sales):
    cur = execute(sales, """
        SELECT COUNT(*) FROM region r JOIN sale s
        ON s.r_id = r.r_id AND s.amount > 10
    """)
    assert cur.fetchone() == (3,)


def test_group_by_null_groups_together(sales):
    cur = execute(sales, "SELECT kind, COUNT(*) FROM sale GROUP BY kind "
                         "ORDER BY kind")
    rows = cur.fetchall()
    assert (None, 1) in rows
    assert ("a", 2) in rows and ("b", 2) in rows


def test_count_star_vs_count_column(sales):
    cur = execute(sales, "SELECT COUNT(*), COUNT(kind) FROM sale")
    assert cur.fetchone() == (5, 4)


def test_nested_aggregate_rejected(sales):
    with pytest.raises(ProgrammingError):
        execute(sales, "SELECT SUM(MAX(amount)) FROM sale")
    sales.rollback()


def test_min_max_on_strings(sales):
    cur = execute(sales, "SELECT MIN(r_name), MAX(r_name) FROM region")
    assert cur.fetchone() == ("east", "west")


def test_three_table_star_join_with_filter(conn):
    execute(conn, "CREATE TABLE a (id INT PRIMARY KEY, x INT)")
    execute(conn, "CREATE TABLE b (id INT PRIMARY KEY, aid INT, y INT)")
    execute(conn, "CREATE INDEX idx_b_aid ON b (aid)")
    execute(conn, "CREATE TABLE c (id INT PRIMARY KEY, bid INT, z INT)")
    execute(conn, "CREATE INDEX idx_c_bid ON c (bid)")
    execute(conn, "INSERT INTO a VALUES (1, 10), (2, 20)")
    execute(conn, "INSERT INTO b VALUES (1, 1, 100), (2, 2, 200)")
    execute(conn, "INSERT INTO c VALUES (1, 1, 1000), (2, 2, 2000)")
    conn.commit()
    cur = execute(conn, """
        SELECT a.x + b.y + c.z FROM a
        JOIN b ON b.aid = a.id
        JOIN c ON c.bid = b.id
        WHERE a.x > 10
    """)
    assert cur.fetchall() == [(2220,)]
    conn.commit()
    # Inner joins used indexes, not full scans, for the inner tables.
    assert conn.last_txn_stats.index_lookups >= 2
