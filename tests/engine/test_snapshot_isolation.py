"""Snapshot isolation: stable reads, first-committer-wins, write skew.

These tests encode the textbook behaviours SIBench was designed to probe:
SI gives repeatable snapshot reads and forbids lost updates, but permits
write skew — while serializable 2PL does not.
"""

import pytest

from repro.engine import Database, SERIALIZABLE, SNAPSHOT, connect
from repro.errors import SerializationError, TransactionAborted

from ..conftest import execute


@pytest.fixture
def si_db(db):
    conn = connect(db)
    execute(conn, "CREATE TABLE t (id INT PRIMARY KEY, v INT NOT NULL)")
    execute(conn, "INSERT INTO t VALUES (1, 10), (2, 20)")
    conn.commit()
    conn.close()
    return db


def test_snapshot_reads_are_stable(si_db):
    reader = connect(si_db, isolation=SNAPSHOT)
    cur = execute(reader, "SELECT v FROM t WHERE id = 1")
    assert cur.fetchone() == (10,)

    writer = connect(si_db)
    execute(writer, "UPDATE t SET v = 99 WHERE id = 1")
    writer.commit()

    # The open snapshot still sees the old value...
    cur = execute(reader, "SELECT v FROM t WHERE id = 1")
    assert cur.fetchone() == (10,)
    reader.commit()
    # ...and a fresh snapshot sees the new one.
    cur = execute(reader, "SELECT v FROM t WHERE id = 1")
    assert cur.fetchone() == (99,)


def test_snapshot_does_not_see_concurrent_insert(si_db):
    reader = connect(si_db, isolation=SNAPSHOT)
    execute(reader, "SELECT COUNT(*) FROM t")  # pins the snapshot

    writer = connect(si_db)
    execute(writer, "INSERT INTO t VALUES (3, 30)")
    writer.commit()

    cur = execute(reader, "SELECT COUNT(*) FROM t")
    assert cur.fetchone() == (2,)
    reader.commit()


def test_snapshot_does_not_see_concurrent_delete(si_db):
    reader = connect(si_db, isolation=SNAPSHOT)
    execute(reader, "SELECT COUNT(*) FROM t")

    writer = connect(si_db)
    execute(writer, "DELETE FROM t WHERE id = 2")
    writer.commit()

    cur = execute(reader, "SELECT v FROM t WHERE id = 2")
    assert cur.fetchone() == (20,)
    reader.commit()


def test_first_committer_wins(si_db):
    t1 = connect(si_db, isolation=SNAPSHOT)
    t2 = connect(si_db, isolation=SNAPSHOT)
    execute(t1, "UPDATE t SET v = v + 1 WHERE id = 1")
    execute(t2, "UPDATE t SET v = v + 5 WHERE id = 1")
    t1.commit()
    with pytest.raises(SerializationError):
        t2.commit()
    # The loser's transaction rolled back: no partial state.
    check = connect(si_db)
    cur = execute(check, "SELECT v FROM t WHERE id = 1")
    assert cur.fetchone() == (11,)


def test_serialization_error_is_retryable_abort(si_db):
    assert issubclass(SerializationError, TransactionAborted)


def test_concurrent_si_inserts_same_key_conflict(si_db):
    t1 = connect(si_db, isolation=SNAPSHOT)
    t2 = connect(si_db, isolation=SNAPSHOT)
    execute(t1, "SELECT COUNT(*) FROM t")  # pin snapshots before writes
    execute(t2, "SELECT COUNT(*) FROM t")
    execute(t1, "INSERT INTO t VALUES (7, 70)")
    t1.commit()
    execute(t2, "INSERT INTO t VALUES (7, 71)")
    with pytest.raises((SerializationError, Exception)):
        t2.commit()


def test_write_skew_allowed_under_si(si_db):
    """The canonical SI anomaly: disjoint writes on overlapping reads.

    Constraint: v(1) + v(2) >= 0.  Each txn checks the sum then drains a
    *different* row.  Under SI both commit (write skew violates the
    constraint); under 2PL the shared read locks would serialise them.
    """
    t1 = connect(si_db, isolation=SNAPSHOT)
    t2 = connect(si_db, isolation=SNAPSHOT)

    cur = execute(t1, "SELECT SUM(v) FROM t")
    total1 = cur.fetchone()[0]
    cur = execute(t2, "SELECT SUM(v) FROM t")
    total2 = cur.fetchone()[0]
    assert total1 == total2 == 30

    # Each withdraws 30 from a different row, believing the sum allows it.
    execute(t1, "UPDATE t SET v = v - 30 WHERE id = 1")
    execute(t2, "UPDATE t SET v = v - 30 WHERE id = 2")
    t1.commit()
    t2.commit()  # SI permits this: disjoint write sets

    check = connect(si_db)
    cur = execute(check, "SELECT SUM(v) FROM t")
    assert cur.fetchone()[0] == -30  # constraint violated: write skew


def test_si_read_only_never_aborts(si_db):
    reader = connect(si_db, isolation=SNAPSHOT)
    for _ in range(5):
        execute(reader, "SELECT SUM(v) FROM t")
        writer = connect(si_db)
        execute(writer, "UPDATE t SET v = v + 1 WHERE id = 1")
        writer.commit()
    reader.commit()  # read-only snapshot commits cleanly


def test_version_chains_are_pruned(si_db):
    """Old versions disappear once no snapshot can see them."""
    writer = connect(si_db)
    for _ in range(600):  # cross the prune interval at least twice
        execute(writer, "UPDATE t SET v = v + 1 WHERE id = 1")
        writer.commit()
    data = si_db.table_data("t")
    # Without GC the chain would hold 601 versions; pruning bounds it by
    # the inter-prune interval.
    from repro.engine.txn import TransactionManager
    assert data.version_count() <= TransactionManager.PRUNE_INTERVAL + 2
