"""Transaction semantics: atomicity, visibility, 2PL conflicts, aborts."""

import threading

import pytest

from repro.engine import Database, SERIALIZABLE, connect
from repro.errors import (DeadlockError, IntegrityError, OperationalError,
                          ProgrammingError, TransactionAborted)

from ..conftest import execute


@pytest.fixture
def bank(db):
    conn = connect(db)
    execute(conn, "CREATE TABLE acct (id INT PRIMARY KEY, bal INT NOT NULL)")
    execute(conn, "INSERT INTO acct VALUES (1, 100), (2, 100)")
    conn.commit()
    conn.close()
    return db


def balances(db):
    conn = connect(db)
    cur = execute(conn, "SELECT id, bal FROM acct ORDER BY id")
    rows = dict(cur.fetchall())
    conn.rollback()
    conn.close()
    return rows


def test_commit_makes_writes_visible(bank):
    c1, c2 = connect(bank), connect(bank)
    execute(c1, "UPDATE acct SET bal = bal - 10 WHERE id = 1")
    c1.commit()
    cur = execute(c2, "SELECT bal FROM acct WHERE id = 1")
    assert cur.fetchone() == (90,)


def test_rollback_discards_writes(bank):
    conn = connect(bank)
    execute(conn, "UPDATE acct SET bal = 0 WHERE id = 1")
    conn.rollback()
    assert balances(bank)[1] == 100


def test_rollback_discards_inserts_and_deletes(bank):
    conn = connect(bank)
    execute(conn, "INSERT INTO acct VALUES (3, 5)")
    execute(conn, "DELETE FROM acct WHERE id = 1")
    conn.rollback()
    assert balances(bank) == {1: 100, 2: 100}


def test_own_writes_visible_before_commit(bank):
    conn = connect(bank)
    execute(conn, "UPDATE acct SET bal = 42 WHERE id = 1")
    cur = execute(conn, "SELECT bal FROM acct WHERE id = 1")
    assert cur.fetchone() == (42,)
    conn.rollback()


def test_insert_then_delete_in_txn_cancels(bank):
    conn = connect(bank)
    execute(conn, "INSERT INTO acct VALUES (9, 1)")
    execute(conn, "DELETE FROM acct WHERE id = 9")
    conn.commit()
    assert 9 not in balances(bank)


def test_insert_then_update_in_txn(bank):
    conn = connect(bank)
    execute(conn, "INSERT INTO acct VALUES (9, 1)")
    execute(conn, "UPDATE acct SET bal = 7 WHERE id = 9")
    conn.commit()
    assert balances(bank)[9] == 7


def test_write_conflict_blocks_until_commit(bank):
    """Second writer waits for the first writer's lock (strict 2PL)."""
    c1 = connect(bank)
    execute(c1, "UPDATE acct SET bal = bal - 10 WHERE id = 1")

    done = threading.Event()
    observed = {}

    def second_writer():
        c2 = connect(bank)
        execute(c2, "UPDATE acct SET bal = bal - 10 WHERE id = 1")
        c2.commit()
        observed["bal"] = balances(bank)[1]
        done.set()

    thread = threading.Thread(target=second_writer, daemon=True)
    thread.start()
    assert not done.wait(0.15)  # blocked behind c1
    c1.commit()
    assert done.wait(3.0)
    assert observed["bal"] == 80  # both decrements applied, no lost update


def test_lost_update_prevented_with_for_update(bank):
    """Classic read-modify-write race, serialised by FOR UPDATE."""
    results = []

    def transfer():
        conn = connect(bank)
        cur = execute(conn, "SELECT bal FROM acct WHERE id = 1 FOR UPDATE")
        bal = cur.fetchone()[0]
        execute(conn, "UPDATE acct SET bal = ? WHERE id = 1", (bal - 10,))
        conn.commit()
        results.append(bal)

    threads = [threading.Thread(target=transfer, daemon=True)
               for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(5.0)
    assert balances(bank)[1] == 60


def test_deadlock_victim_can_retry(bank):
    """Opposite-order updates deadlock; victim retries and succeeds."""
    barrier = threading.Barrier(2)
    errors = []

    def worker(first, second):
        conn = connect(bank)
        for attempt in range(5):
            try:
                execute(conn, "UPDATE acct SET bal = bal + 1 WHERE id = ?",
                        (first,))
                if attempt == 0:
                    # Synchronise only the first attempt to force the
                    # opposite-order lock acquisition.
                    try:
                        barrier.wait(timeout=5.0)
                    except threading.BrokenBarrierError:
                        pass
                execute(conn, "UPDATE acct SET bal = bal + 1 WHERE id = ?",
                        (second,))
                conn.commit()
                return
            except TransactionAborted:
                pass  # rolled back by the driver; retry
        errors.append("gave up")

    t1 = threading.Thread(target=worker, args=(1, 2), daemon=True)
    t2 = threading.Thread(target=worker, args=(2, 1), daemon=True)
    t1.start()
    t2.start()
    t1.join(10.0)
    t2.join(10.0)
    assert not errors
    totals = balances(bank)
    assert totals[1] + totals[2] == 204  # both +1s on both accounts


def test_concurrent_duplicate_insert_one_wins(bank):
    """Key locks serialise same-PK inserts; exactly one succeeds."""
    outcomes = []
    barrier = threading.Barrier(2)

    def inserter():
        conn = connect(bank)
        barrier.wait(timeout=5.0)
        try:
            execute(conn, "INSERT INTO acct VALUES (50, 1)")
            conn.commit()
            outcomes.append("ok")
        except (IntegrityError, OperationalError):
            conn.rollback()
            outcomes.append("dup")

    threads = [threading.Thread(target=inserter, daemon=True)
               for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(5.0)
    assert sorted(outcomes) == ["dup", "ok"]


def test_execute_after_close_rejected(bank):
    conn = connect(bank)
    conn.close()
    with pytest.raises(Exception):
        execute(conn, "SELECT 1")


def test_statement_without_txn_on_database_facade(bank):
    with pytest.raises(ProgrammingError):
        bank.execute(None, "SELECT COUNT(*) FROM acct")


def test_database_stats_counts_commits_and_aborts(bank):
    conn = connect(bank)
    execute(conn, "UPDATE acct SET bal = 0 WHERE id = 1")
    conn.commit()
    execute(conn, "UPDATE acct SET bal = 0 WHERE id = 2")
    conn.rollback()
    stats = bank.stats()
    assert stats["committed"] >= 2  # fixture commit + this one
    assert stats["aborted"] >= 1
