"""Game sessions end to end on the simulated substrate."""

import pytest

from repro.api import ControlApi
from repro.benchpress import (Character, Course, GameSession, GreedyPilot,
                              NoInputPilot, PerfectPilot, ScriptedPilot,
                              STATE_COMPLETED, STATE_CRASHED, peak,
                              render_frame, sinusoidal, steps, tunnel)
from repro.clock import SimClock
from repro.core import (Phase, SimulatedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.engine import Database

from ..conftest import MiniBenchmark


def play(course, pilot, personality="oracle", workers=16,
         character=None, seed=1):
    db = Database()
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    clock = SimClock()
    cfg = WorkloadConfiguration(
        benchmark="mini", workers=workers, seed=seed, tenant="p1",
        phases=[Phase(duration=course.end + 15, rate=50)])
    manager = WorkloadManager(bench, cfg, clock=clock)
    executor = SimulatedExecutor(db, personality, clock)
    executor.add_workload(manager)
    control = ControlApi()
    control.register(manager)
    session = GameSession(
        control, "p1", course, pilot=pilot,
        character=character or Character(requested_rate=50, jump_boost=30))
    session.run_on(executor)
    executor.run(until=course.end + 10)
    return session


@pytest.fixture(scope="module")
def standard_course():
    return Course.build([
        steps(base=50, step=40, count=3, width=10),
        sinusoidal(center=100, amplitude=40, period=20, duration=20),
        tunnel(level=80, duration=15),
    ], gap=6, start=8)


def test_perfect_pilot_completes(standard_course):
    session = play(standard_course, PerfectPilot(lookahead=2))
    assert session.state == STATE_COMPLETED
    assert session.obstacles_passed > 20
    assert session.summary()["crashes"] == 0


def test_no_input_crashes_from_gravity(standard_course):
    session = play(standard_course, NoInputPilot())
    assert session.state == STATE_CRASHED
    crash = [e for e in session.events if e.kind == "crash"][0]
    # Gravity pulled the request below the first corridor.
    assert crash.detail["altitude"] < crash.detail["corridor"][0]


def test_greedy_pilot_crashes_above_corridor(standard_course):
    session = play(standard_course, GreedyPilot(factor=3.0))
    assert session.state == STATE_CRASHED
    crash = [e for e in session.events if e.kind == "crash"][0]
    assert crash.detail["altitude"] > crash.detail["corridor"][1]


def test_character_tracks_delivered_not_requested(standard_course):
    """Fig. 2c: the character only responds to the DBMS's actual tput."""
    session = play(standard_course, GreedyPilot(factor=3.0))
    overshoot_ticks = [
        (req, alt) for _t, req, alt in session.altitude_history if req > 0]
    assert any(alt < req * 0.9 for req, alt in overshoot_ticks)


def test_crash_halts_benchmark(standard_course):
    session = play(standard_course, NoInputPilot())
    assert session.state == STATE_CRASHED
    # halt_on_crash pauses the workload (the demo resets the database).
    assert session.control.status("p1")["paused"]


def test_scripted_mixture_change_records_event():
    course = Course.build([steps(base=40, step=0, count=2, width=10)],
                          start=8)
    pilot = ScriptedPilot([
        (6.0, lambda s: s.character.set_requested(40)),
        (12.0, lambda s: s.change_mixture("read-only")),
    ])
    session = play(course, pilot)
    kinds = [e.kind for e in session.events]
    assert "mixture" in kinds
    assert "pause" in kinds
    mixture_events = [e for e in session.events if e.kind == "mixture"]
    assert mixture_events[0].detail["preset"] == "read-only"


def test_custom_mixture():
    course = Course.build([steps(base=40, step=0, count=1, width=8)],
                          start=8)
    pilot = ScriptedPilot([
        (6.0, lambda s: s.character.set_requested(40)),
        (9.0, lambda s: s.set_custom_mixture({"Read": 60, "Write": 40})),
    ])
    session = play(course, pilot)
    weights = session.control.status("p1")["weights"]
    assert weights == {"Read": 60, "Write": 40}


class _HoldThenSpike:
    """Hold the right rate, then demand an absurd one inside the tunnel.

    If the autopilot zone honoured input, the spike would blast the
    character out of the corridor; completion proves input is ignored.
    """

    def __init__(self, level: float, tunnel_start: float) -> None:
        self.level = level
        self.tunnel_start = tunnel_start

    def act(self, session, now):
        if now < self.tunnel_start:
            session.character.set_requested(self.level)
        else:  # only reachable if autopilot failed to ignore us
            session.character.set_requested(self.level * 50)


def test_autopilot_zone_ignores_pilot_input():
    """Tunnels: the correct pre-entry rate carries you through."""
    course = Course.build([tunnel(level=60, duration=20)], start=10)
    session = play(course, _HoldThenSpike(60, tunnel_start=10))
    assert session.state == STATE_COMPLETED


def test_score_accumulates_with_survival(standard_course):
    session = play(standard_course, PerfectPilot(lookahead=2))
    assert session.score == pytest.approx(standard_course.end, abs=3)


def test_render_frame_shows_character_and_pipes(standard_course):
    session = play(standard_course, PerfectPilot(lookahead=2))
    frame = render_frame(session, now=10.0)
    assert "@" in frame
    assert "|" in frame
    assert "score" in frame


def test_derby_fails_tight_tunnel_near_saturation():
    """§4.3: jittery DBMSs 'cannot pass the tunnel tests'.

    Near saturation Derby's delivered throughput oscillates; a tight
    corridor at ~90% of its capacity crashes it, while Oracle (running at
    a far smaller fraction of its capacity) holds the same corridor.
    """
    from repro.engine.service import get_personality
    # Target Derby's nominal capacity: jitter + queueing make its
    # delivered throughput fall short of the tight corridor.
    level = get_personality("derby").saturation_tps(1.5, 0.3)
    course = Course.build(
        [tunnel(level=level, duration=30, corridor=0.06)], start=10)
    derby = play(course, _HoldThenSpike(level, 10), personality="derby",
                 workers=8,
                 character=Character(requested_rate=50, max_rate=1e6))
    oracle = play(course, _HoldThenSpike(level, 10), personality="oracle",
                  workers=8,
                  character=Character(requested_rate=50, max_rate=1e6))
    assert oracle.state == STATE_COMPLETED
    assert derby.state == STATE_CRASHED
