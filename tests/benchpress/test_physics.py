"""Character physics: gravity, jumps, requested-vs-delivered split."""

import pytest

from repro.benchpress import Character


def test_jump_raises_requested_rate():
    character = Character(requested_rate=50, jump_boost=20)
    assert character.jump() == 70
    assert character.jump(5) == 75
    assert not character.grounded


def test_jump_capped_at_max_rate():
    character = Character(requested_rate=90, jump_boost=20, max_rate=100)
    assert character.jump() == 100


def test_duck_lowers_requested_rate():
    character = Character(requested_rate=50, jump_boost=20)
    assert character.duck() == 30
    assert character.duck(100) == 0


def test_gravity_decays_linearly_without_input():
    character = Character(requested_rate=50, gravity=10)
    character.apply_gravity(1.0)
    assert character.requested_rate == 40
    character.apply_gravity(2.5)
    assert character.requested_rate == 15


def test_gravity_reaches_floor_and_grounds():
    """Paper §4.1: decreases linearly until 0, character on the floor."""
    character = Character(requested_rate=15, gravity=10)
    character.apply_gravity(1.0)
    character.apply_gravity(1.0)
    assert character.requested_rate == 0
    assert character.grounded


def test_input_suppresses_gravity_for_one_tick():
    character = Character(requested_rate=50, gravity=10)
    character.jump()  # input this tick
    character.apply_gravity(1.0)
    assert character.requested_rate == 70  # no decay on an input tick
    character.apply_gravity(1.0)
    assert character.requested_rate == 60  # decays again afterwards


def test_altitude_follows_observation_not_request():
    character = Character(requested_rate=500)
    character.observe(120.0)
    assert character.altitude == 120.0
    assert character.falling_short == 380.0
    character.observe(-5)
    assert character.altitude == 0.0


def test_set_requested_clamps():
    character = Character(max_rate=1000)
    assert character.set_requested(2000) == 1000
    assert character.set_requested(-10) == 0
    assert character.grounded
