"""Challenge shapes, obstacles, courses, and config loading."""

import math

import pytest

from repro.benchpress import (Course, Obstacle, challenge_from_config, peak,
                              sinusoidal, steps, tunnel)
from repro.errors import ConfigurationError


def test_obstacle_validation():
    with pytest.raises(ConfigurationError):
        Obstacle(0, 0, 10, 20)  # zero duration
    with pytest.raises(ConfigurationError):
        Obstacle(0, 5, 20, 10)  # inverted corridor


def test_obstacle_geometry():
    obstacle = Obstacle(start=5, duration=10, low=40, high=60)
    assert obstacle.end == 15
    assert obstacle.target == 50
    assert obstacle.contains_time(5) and obstacle.contains_time(14.9)
    assert not obstacle.contains_time(15)
    assert obstacle.contains_altitude(40)
    assert obstacle.contains_altitude(60)
    assert not obstacle.contains_altitude(61)


def test_steps_ascending_levels():
    challenge = steps(base=50, step=25, count=4, width=10)
    targets = [o.target for o in challenge.obstacles]
    assert targets == [50, 75, 100, 125]
    assert challenge.duration == 40
    assert not challenge.autopilot


def test_steps_descending():
    challenge = steps(base=50, step=25, count=3, width=5, descending=True)
    assert [o.target for o in challenge.obstacles] == [100, 75, 50]


def test_steps_requires_positive_count():
    with pytest.raises(ConfigurationError):
        steps(base=10, step=5, count=0, width=5)


def test_sinusoidal_oscillates_around_center():
    challenge = sinusoidal(center=100, amplitude=50, period=20, duration=40)
    targets = [o.target for o in challenge.obstacles]
    assert max(targets) == pytest.approx(150, rel=0.05)
    assert min(targets) == pytest.approx(50, rel=0.10)
    assert targets[0] == pytest.approx(100)


def test_sinusoidal_amplitude_bound():
    with pytest.raises(ConfigurationError):
        sinusoidal(center=50, amplitude=60, period=10, duration=10)


def test_peak_shape():
    challenge = peak(low=50, high=200, lead=10, burst=5, tail=10)
    assert [o.target for o in challenge.obstacles] == [50, 200, 50]
    assert challenge.obstacles[1].start == 10
    assert challenge.duration == 25
    with pytest.raises(ConfigurationError):
        peak(low=100, high=90, lead=1, burst=1, tail=1)


def test_tunnel_is_autopilot_with_tight_corridor():
    challenge = tunnel(level=100, duration=30, corridor=0.2)
    assert challenge.autopilot
    obstacle = challenge.obstacles[0]
    assert obstacle.low == pytest.approx(90)
    assert obstacle.high == pytest.approx(110)


def test_challenge_lookup_and_shift():
    challenge = steps(base=10, step=10, count=2, width=5)
    assert challenge.obstacle_at(2.0).target == 10
    assert challenge.obstacle_at(7.0).target == 20
    assert challenge.obstacle_at(11.0) is None
    shifted = challenge.shifted(100)
    assert shifted.start == 100
    assert shifted.obstacle_at(102.0).target == 10


def test_challenge_from_config():
    challenge = challenge_from_config(
        {"shape": "steps", "base": 20, "step": 10, "count": 3, "width": 4})
    assert challenge.shape == "steps"
    assert len(challenge.obstacles) == 3
    with pytest.raises(ConfigurationError):
        challenge_from_config({"shape": "spiral"})
    with pytest.raises(ConfigurationError):
        challenge_from_config({})


def test_course_layout_with_gaps():
    course = Course.build([
        steps(base=10, step=5, count=2, width=5),
        tunnel(level=50, duration=10),
    ], gap=3, start=2)
    first, second = course.challenges
    assert first.start == 2
    assert second.start == first.end + 3
    assert course.end == second.end
    assert course.challenge_at(first.start + 1) is first
    assert course.challenge_at(first.end + 1) is None  # in the gap
    assert course.obstacle_at(second.start + 1).target == 50


def test_course_target_fn():
    course = Course.build([steps(base=10, step=0, count=1, width=5)],
                          start=0)
    fn = course.target_fn(default=-1)
    assert fn(2.0) == 10
    assert fn(100.0) == -1
