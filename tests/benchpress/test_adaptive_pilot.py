"""AdaptivePilot: monitoring-guided defensive play (paper §4.2)."""

import pytest

from repro.api import ControlApi
from repro.benchpress import (AdaptivePilot, Character, Course, GameSession,
                              steps)
from repro.clock import SimClock
from repro.core import (Phase, SimulatedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.engine import Database
from repro.monitor import EngineMonitor

from ..conftest import MiniBenchmark


class _FakeMonitor:
    """Scriptable saturation signal."""

    def __init__(self):
        self.signal = 0.0

    def saturation_signal(self, window=5):
        return self.signal


def build_session(pilot):
    db = Database()
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    clock = SimClock()
    course = Course.build([steps(base=60, step=0, count=3, width=10)],
                          start=8)
    cfg = WorkloadConfiguration(
        benchmark="mini", workers=8, seed=1, tenant="p1",
        phases=[Phase(duration=course.end + 15, rate=60)])
    manager = WorkloadManager(bench, cfg, clock=clock)
    executor = SimulatedExecutor(db, "oracle", clock)
    executor.add_workload(manager)
    control = ControlApi()
    control.register(manager)
    session = GameSession(control, "p1", course, pilot=pilot,
                          character=Character(requested_rate=60))
    return executor, session, manager, course


def test_adaptive_tracks_target_when_calm():
    monitor = _FakeMonitor()
    executor, session, _manager, course = build_session(
        AdaptivePilot(monitor=monitor, lookahead=1))
    session.run_on(executor)
    executor.run(until=course.end + 5)
    assert session.state == "completed"
    # Calm: requested rate sits at the corridor midpoint.
    mid_run = [req for t, req, _alt in session.altitude_history
               if 12 <= t <= 20]
    assert all(req == pytest.approx(60, abs=1) for req in mid_run)


def test_adaptive_backs_off_and_goes_read_only_when_saturated():
    monitor = _FakeMonitor()
    executor, session, manager, course = build_session(
        AdaptivePilot(monitor=monitor, lookahead=1,
                      lock_wait_threshold=0.05))
    session.run_on(executor)
    executor.at(14.0, lambda: setattr(monitor, "signal", 0.5))
    executor.at(22.0, lambda: setattr(monitor, "signal", 0.0))
    executor.run(until=course.end + 5)

    # While the signal was high: lower request and read-only mixture.
    defensive = [req for t, req, _alt in session.altitude_history
                 if 16 <= t <= 20]
    assert defensive and all(req < 60 for req in defensive)
    mixture_events = [e.detail for e in session.events
                      if e.kind == "mixture"]
    assert {"preset": "read-only"} in mixture_events
    # After the signal cleared: back to the default mixture and midpoint.
    assert {"preset": "default"} in mixture_events
    recovered = [req for t, req, _alt in session.altitude_history
                 if 25 <= t <= 35]  # before end-of-course gravity decay
    assert recovered and recovered[-1] == pytest.approx(60, abs=1)


def test_adaptive_with_real_monitor_runs():
    db = Database()
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    clock = SimClock()
    course = Course.build([steps(base=40, step=0, count=2, width=8)],
                          start=8)
    cfg = WorkloadConfiguration(
        benchmark="mini", workers=4, seed=1, tenant="p1",
        phases=[Phase(duration=course.end + 10, rate=40)])
    manager = WorkloadManager(bench, cfg, clock=clock)
    executor = SimulatedExecutor(db, "oracle", clock)
    executor.add_workload(manager)
    control = ControlApi()
    control.register(manager)
    monitor = EngineMonitor(db)
    monitor.schedule_on(executor, interval=1.0, until=course.end)
    session = GameSession(
        control, "p1", course,
        pilot=AdaptivePilot(monitor=monitor, lookahead=1),
        character=Character(requested_rate=40))
    session.run_on(executor)
    executor.run(until=course.end + 5)
    assert session.state == "completed"
