"""ASCII renderer behaviour."""

import pytest

from repro.api import ControlApi
from repro.benchpress import (Character, Course, GameSession, render_frame,
                              steps, tunnel)
from repro.clock import SimClock
from repro.core import (Phase, SimulatedExecutor, WorkloadConfiguration,
                        WorkloadManager)
from repro.engine import Database

from ..conftest import MiniBenchmark


@pytest.fixture
def session(db):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    clock = SimClock()
    course = Course.build([steps(base=50, step=25, count=3, width=10),
                           tunnel(level=60, duration=10)], start=5)
    cfg = WorkloadConfiguration(
        benchmark="mini", workers=4, seed=1, tenant="p1",
        phases=[Phase(duration=course.end + 10, rate=50)])
    manager = WorkloadManager(bench, cfg, clock=clock)
    executor = SimulatedExecutor(db, "oracle", clock)
    executor.add_workload(manager)
    control = ControlApi()
    control.register(manager)
    game = GameSession(control, "p1", course,
                       character=Character(requested_rate=50))
    game.start(0.0)
    game.character.observe(50.0)
    return game


def test_frame_dimensions(session):
    frame = render_frame(session, now=5.0, width=40, height=12)
    lines = frame.split("\n")
    grid = lines[:12]
    assert all(len(line) == 40 for line in grid)
    assert lines[12] == "-" * 40
    assert "alt=" in lines[13] and "req=" in lines[13]


def test_character_marker_present(session):
    frame = render_frame(session, now=5.0)
    assert "@" in frame


def test_obstacles_rendered_as_pipes(session):
    frame = render_frame(session, now=5.0)
    assert "|" in frame


def test_requested_marker_when_gap(session):
    session.character.set_requested(200.0)
    session.character.observe(50.0)
    # At t=0 the first column is open course (no pipes hiding markers).
    frame = render_frame(session, now=0.0)
    assert "+" in frame  # requested differs visibly from altitude


def test_gap_region_renders_empty_columns(session):
    # Far beyond the course: no obstacles at all.
    frame = render_frame(session, now=10_000.0, width=30, height=8)
    grid_lines = frame.split("\n")[:8]
    assert all(set(line) <= {" ", "@", "+"} for line in grid_lines)


def test_footer_reports_state(session):
    frame = render_frame(session, now=5.0)
    assert "[running]" in frame
