"""Two-player multi-tenancy: one player affects the other (paper §4.3)."""

import pytest

from repro.benchpress import (Character, Course, PerfectPilot, PlayerSpec,
                              STATE_COMPLETED, TwoPlayerGame, steps, tunnel)
from repro.core import Phase, WorkloadConfiguration
from repro.engine import Database

from ..conftest import MiniBenchmark


def player_spec(bench, tenant, course, workers=8):
    return PlayerSpec(
        benchmark=bench,
        config=WorkloadConfiguration(
            benchmark="mini", workers=workers, seed=1, tenant=tenant,
            phases=[Phase(duration=course.end + 15, rate=40)]),
        course=course,
        pilot=PerfectPilot(lookahead=2),
        character=Character(requested_rate=40, max_rate=1e6),
    )


def test_two_player_game_runs_both_sessions(db):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    course = Course.build([steps(base=40, step=20, count=3, width=8)],
                          start=8)
    game = TwoPlayerGame(db, personality="mysql")
    game.add_player(player_spec(bench, "p1", course))
    game.add_player(player_spec(bench, "p2", course))
    game.run()
    summaries = game.summaries()
    assert {s["tenant"] for s in summaries} == {"p1", "p2"}
    assert all(s["state"] == STATE_COMPLETED for s in summaries)


def test_third_player_rejected(db):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    course = Course.build([steps(base=10, step=0, count=1, width=5)])
    game = TwoPlayerGame(db)
    game.add_player(player_spec(bench, "p1", course))
    game.add_player(player_spec(bench, "p2", course))
    with pytest.raises(ValueError):
        game.add_player(player_spec(bench, "p3", course))


def test_run_requires_two_players(db):
    bench = MiniBenchmark(db, seed=42)
    bench.load()
    course = Course.build([steps(base=10, step=0, count=1, width=5)])
    game = TwoPlayerGame(db)
    game.add_player(player_spec(bench, "p1", course))
    with pytest.raises(ValueError):
        game.run()


def test_one_player_affects_the_other(db):
    """A rival hammering the shared DBMS sinks a tunnel the solo run
    passes: the multi-tenancy interference the demo teaches."""
    from repro.engine.service import get_personality
    level = get_personality("derby").saturation_tps(1.5, 0.3) * 0.6
    tunnel_course = Course.build(
        [tunnel(level=level, duration=25, corridor=0.1)], start=10)

    # Solo: player 1 in the tunnel, player 2 idling at a trivial rate.
    db1 = Database()
    bench1 = MiniBenchmark(db1, seed=42)
    bench1.load()
    calm = TwoPlayerGame(db1, personality="derby")
    spec1 = player_spec(bench1, "p1", tunnel_course)
    spec1.pilot = _hold(level, 10)
    calm.add_player(spec1)
    idle_course = Course.build([steps(base=10, step=0, count=1, width=40)],
                               start=8)
    calm.add_player(player_spec(bench1, "p2", idle_course))
    calm.run()
    solo_state = calm.sessions[0].state

    # Contended: player 2 demands Derby's full capacity alongside.
    db2 = Database()
    bench2 = MiniBenchmark(db2, seed=42)
    bench2.load()
    rough = TwoPlayerGame(db2, personality="derby")
    spec1b = player_spec(bench2, "p1", tunnel_course)
    spec1b.pilot = _hold(level, 10)
    rough.add_player(spec1b)
    greedy_course = Course.build(
        [steps(base=level * 2, step=0, count=1, width=40,
               corridor=1.9)], start=8)
    spec2 = player_spec(bench2, "p2", greedy_course, workers=32)
    spec2.pilot = _hold(level * 2, 1e9)
    rough.add_player(spec2)
    rough.run()
    contended_state = rough.sessions[0].state

    assert solo_state == STATE_COMPLETED
    assert contended_state == "crashed"


def _hold(level, until):
    class Hold:
        def act(self, session, now):
            if now < until:
                session.character.set_requested(level)
    return Hold()
