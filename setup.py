"""Setup shim: allows `pip install -e .` on environments without the
`wheel` package (the project metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
