"""Exception hierarchy shared across the testbed.

The engine-facing exceptions follow the PEP 249 (DB-API 2.0) layering so that
benchmark transaction code written against ``repro.engine.dbapi`` reads like
code written against any other Python database driver.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


# --------------------------------------------------------------------------
# PEP 249 exception layering (engine / driver side)
# --------------------------------------------------------------------------


class Warning(ReproError):  # noqa: A001 - name mandated by PEP 249
    """Important warnings such as data truncation during inserts."""


class Error(ReproError):
    """Base class of all DB-API error exceptions."""


class InterfaceError(Error):
    """Errors related to the database interface rather than the database."""


class DatabaseError(Error):
    """Errors related to the database itself."""


class DataError(DatabaseError):
    """Problems with the processed data (bad value, out of range, ...)."""


class OperationalError(DatabaseError):
    """Errors related to the database's operation (e.g. lock timeout)."""


class IntegrityError(DatabaseError):
    """Relational integrity violation (duplicate key, bad foreign key)."""


class InternalError(DatabaseError):
    """The database encountered an internal error (e.g. stale cursor)."""


class ProgrammingError(DatabaseError):
    """SQL syntax errors, wrong parameter counts, missing tables, ..."""


class NotSupportedError(DatabaseError):
    """A method or SQL feature the engine does not implement."""


# --------------------------------------------------------------------------
# Concurrency control
# --------------------------------------------------------------------------


class TransactionAborted(OperationalError):
    """The transaction was rolled back by the engine and may be retried.

    This is the Python analogue of JDBC's ``SQLTransactionRollbackException``
    family: OLTP-Bench workers catch it, count the abort, and move on to the
    next request.
    """

    retryable = True


class DeadlockError(TransactionAborted):
    """The lock manager chose this transaction as a deadlock victim."""


class LockTimeoutError(TransactionAborted):
    """A lock could not be acquired within the configured timeout."""


class SerializationError(TransactionAborted):
    """Snapshot-isolation first-committer-wins conflict."""


class StatementTimeout(TransactionAborted):
    """The statement/transaction exceeded the resilience policy's timeout."""


# --------------------------------------------------------------------------
# Fault injection (repro.faults)
# --------------------------------------------------------------------------


class InjectedFault(ReproError):
    """Marker mixin: the error came from the fault injector, not the engine.

    Counters keyed on this distinguish injected failures (which a resilient
    harness must absorb) from organic engine failures (which it must report).
    """

    injected = True


class InjectedAbort(InjectedFault, TransactionAborted):
    """An injected transient abort; retryable like any engine abort."""


class InjectedLockTimeout(InjectedFault, LockTimeoutError):
    """An injected deadlock-style lock timeout."""


class InjectedDisconnect(InjectedFault, OperationalError):
    """The injector dropped the connection; reconnect before retrying."""

    retryable = True


# --------------------------------------------------------------------------
# Driver / testbed side
# --------------------------------------------------------------------------


class ConfigurationError(ReproError):
    """Invalid workload configuration (bad phase, weights, rates, ...)."""


class BenchmarkError(ReproError):
    """A benchmark module failed to load or execute."""


class ApiError(ReproError):
    """Control-API request failed (HTTP 400 for malformed requests)."""


class ApiNotFound(ApiError):
    """Unknown route or unregistered tenant (HTTP 404)."""


class ApiConflict(ApiError):
    """The request conflicts with current state (HTTP 409), e.g. creating
    a tenant that already exists or starting a finished workload."""


class ApiMethodNotAllowed(ApiError):
    """The path exists but not for this HTTP method (HTTP 405)."""

    def __init__(self, message: str, allowed: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.allowed = allowed


class GameOverError(ReproError):
    """The BenchPress character crashed into an obstacle."""
