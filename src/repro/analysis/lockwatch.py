"""Runtime lock-order / race watchdog — a miniature thread sanitizer.

Static rules can prove a lock is *released*; they cannot prove two locks
are always taken in the same order, or that a shared dict is only touched
with its guard held.  :class:`LockWatch` checks both at runtime:

* :meth:`LockWatch.installed` patches the ``threading.Lock`` /
  ``threading.RLock`` factories (``Condition`` picks the patch up through
  its default lock) so every primitive created inside the block is a
  :class:`_WatchedLock` proxy.  Each acquisition adds *held → acquired*
  edges to a global lock-order graph; an acquisition that closes a cycle
  in that graph is a **lock-order inversion** — two threads that take the
  same pair of locks in opposite orders can deadlock, even if this run
  happened not to.  Violations are recorded (never raised mid-acquire)
  and surfaced by :meth:`assert_clean`, which the ``--lockwatch`` pytest
  flag calls after every test.
* :class:`GuardedMapping` wraps a dict-like field so that every access
  without the guarding lock held by the current thread is recorded as a
  :class:`GuardViolation`.  :meth:`LockWatch.guard_lockmanager` applies
  it to the four ``LockManager`` fields guarded by its mutex.
* :meth:`LockWatch.watch_lockmanager` instruments the engine's
  :class:`~repro.engine.locks.LockManager` to record the *resource-level*
  acquisition-order graph across transactions.  Resource-order cycles are
  expected there (the manager detects and aborts real deadlocks by
  design), so they are reported via :meth:`resource_inversions` rather
  than failed.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Hashable, Iterator, MutableMapping, Optional

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


def _call_site() -> str:
    """``file:line`` of the nearest caller outside this module.

    Walks raw frames via ``sys._getframe`` instead of
    ``traceback.extract_stack`` — the latter loads source lines and is
    far too slow for a hook that can run on every lock acquisition.
    """
    frame = sys._getframe(1)
    while frame is not None and \
            frame.f_code.co_filename.endswith("lockwatch.py"):
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


def _thread_name() -> str:
    """Current thread's name without ``threading.current_thread()``.

    ``current_thread()`` builds a ``_DummyThread`` — which allocates an
    ``Event`` and therefore a (patched) lock — for threads not yet in
    ``threading._active``.  A starting thread signals its ``_started``
    event *before* registering itself, so calling it from the
    acquisition hooks recurses forever.  A plain dict lookup is safe.
    """
    ident = threading.get_ident()
    thread = threading._active.get(ident)
    return thread.name if thread is not None else f"thread-{ident}"


@dataclass(frozen=True)
class LockOrderViolation:
    """Two locks observed in both A→B and B→A order across threads."""

    first: str          # lock acquired first at the violating site
    second: str         # lock whose acquisition closed the cycle
    thread: str         # thread that closed the cycle
    site: str           # file:line of the violating acquire
    reverse_site: str   # file:line where the opposite order was observed

    def format(self) -> str:
        return (f"lock-order inversion: {self.second!r} acquired while "
                f"holding {self.first!r} (thread {self.thread}, {self.site})"
                f" but the opposite order was observed at "
                f"{self.reverse_site}")


@dataclass(frozen=True)
class GuardViolation:
    """A guarded field was accessed without its guard lock held."""

    guard: str
    target: str
    operation: str
    thread: str
    site: str

    def format(self) -> str:
        return (f"guarded-field violation: {self.operation} on "
                f"{self.target!r} without {self.guard!r} held "
                f"(thread {self.thread}, {self.site})")


@dataclass
class _Edge:
    count: int = 0
    first_site: str = ""
    first_thread: str = ""


class _WatchedLock:
    """Proxy over a threading primitive reporting to a :class:`LockWatch`.

    Implements the full lock protocol plus the private
    ``_release_save`` / ``_acquire_restore`` / ``_is_owned`` hooks
    ``threading.Condition`` probes for, so wait() keeps the watch's
    held-set accurate for both Lock and RLock.
    """

    def __init__(self, watch: "LockWatch", inner, token: int,
                 name: str) -> None:
        self._watch = watch
        self._inner = inner
        self._token = token
        self._name = name

    # -- lock protocol ---------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watch._on_acquired(self._token)
        return acquired

    def release(self) -> None:
        self._watch._on_released(self._token)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __repr__(self) -> str:
        return f"<watched {self._name} over {self._inner!r}>"

    # -- Condition compatibility ------------------------------------------

    def _release_save(self) -> object:
        self._watch._on_released(self._token, completely=True)
        if hasattr(self._inner, "_release_save"):
            return self._inner._release_save()
        self._inner.release()
        return None

    def _acquire_restore(self, state) -> None:
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        self._watch._on_acquired(self._token)

    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return self._inner._is_owned()
        return self._watch.holds_current(self)


class LockWatch:
    """Records lock acquisition order and guard discipline at runtime."""

    def __init__(self) -> None:
        self._internal = _REAL_LOCK()
        self._tls = threading.local()
        self._tokens = iter(range(1, 1 << 62))
        self._names: dict[int, str] = {}
        # lock-order graph: token -> token -> edge metadata
        self._graph: dict[int, dict[int, _Edge]] = {}
        # resource-order graph from LockManager instrumentation
        self._resources: dict[Hashable, dict[Hashable, _Edge]] = {}
        self.violations: list[LockOrderViolation] = []
        self.guard_violations: list[GuardViolation] = []

    # -- wrapping ----------------------------------------------------------

    def wrap_lock(self, inner=None, name: Optional[str] = None,
                  kind: str = "Lock") -> _WatchedLock:
        """Wrap an existing primitive (or create one) under the watch."""
        if inner is None:
            inner = _REAL_LOCK() if kind == "Lock" else _REAL_RLOCK()
        with self._internal:
            token = next(self._tokens)
        label = name or f"{kind}#{token}({_call_site()})"
        self._names[token] = label
        return _WatchedLock(self, inner, token, label)

    @contextmanager
    def installed(self) -> Iterator["LockWatch"]:
        """Patch the ``threading`` factories for the duration of a block."""
        original_lock, original_rlock = threading.Lock, threading.RLock
        threading.Lock = lambda: self.wrap_lock(original_lock(),
                                                kind="Lock")
        threading.RLock = lambda: self.wrap_lock(original_rlock(),
                                                 kind="RLock")
        try:
            yield self
        finally:
            threading.Lock = original_lock
            threading.RLock = original_rlock

    # -- acquisition tracking ----------------------------------------------

    def _held(self) -> list[list]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def _on_acquired(self, token: int) -> None:
        held = self._held()
        for entry in held:
            if entry[0] == token:  # reentrant re-acquire: no new edges
                entry[1] += 1
                return
        if held:
            with self._internal:
                site: Optional[str] = None
                for prior_token, _count in held:
                    site = self._add_edge(prior_token, token, site)
        held.append([token, 1])

    def _on_released(self, token: int, completely: bool = False) -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index][0] == token:
                held[index][1] -= 1
                if completely or held[index][1] <= 0:
                    del held[index]
                return
        # Release of a lock this thread never acquired (handed over from
        # another thread); out of scope for ordering analysis.

    def _add_edge(self, before: int, after: int,
                  site: Optional[str]) -> Optional[str]:
        """Record *before held while acquiring after*; detect cycles.

        The call site is expensive to compute, so it is resolved only
        the first time a given edge appears and threaded back to the
        caller for reuse across the held set.
        """
        edges = self._graph.setdefault(before, {})
        edge = edges.get(after)
        if edge is not None:
            edge.count += 1
            return site
        if site is None:
            site = _call_site()
        thread = _thread_name()
        reverse = self._find_path(after, before)
        edges[after] = _Edge(count=1, first_site=site, first_thread=thread)
        if reverse is not None:
            self.violations.append(LockOrderViolation(
                first=self._names.get(before, str(before)),
                second=self._names.get(after, str(after)),
                thread=thread, site=site, reverse_site=reverse))
        return site

    def _find_path(self, start: int, goal: int) -> Optional[str]:
        """First-site of the initial hop of a path start ⇝ goal, if any."""
        stack = [(start, None)]
        seen: set[int] = set()
        while stack:
            node, first_hop = stack.pop()
            if node == goal and first_hop is not None:
                return first_hop
            if node in seen:
                continue
            seen.add(node)
            for succ, edge in self._graph.get(node, {}).items():
                stack.append((succ, first_hop or edge.first_site))
        return None

    def holds_current(self, lock: "_WatchedLock") -> bool:
        """True when the calling thread holds ``lock``."""
        return any(entry[0] == lock._token for entry in self._held())

    # -- guarded fields ------------------------------------------------------

    def guard_mapping(self, data: MutableMapping, guard: "_WatchedLock",
                      name: str) -> "GuardedMapping":
        return GuardedMapping(self, data, guard, name)

    def guard_lockmanager(self, manager) -> None:
        """Guard the LockManager fields its mutex protects.

        Requires the manager's ``_mutex`` to be a watched lock, i.e. the
        manager must have been constructed inside :meth:`installed`.
        """
        mutex = manager._mutex
        if not isinstance(mutex, _WatchedLock):
            raise TypeError(
                "LockManager was created outside LockWatch.installed(); "
                "its mutex is not instrumented")
        for attr in ("_entries", "_held", "_waits_for", "_txn_thread"):
            setattr(manager, attr, self.guard_mapping(
                getattr(manager, attr), mutex, f"LockManager.{attr}"))

    # -- LockManager resource ordering ----------------------------------------

    def watch_lockmanager(self, manager) -> None:
        """Record the cross-transaction resource-acquisition-order graph."""
        original = manager.acquire

        def acquire(txn: object, resource: Hashable, mode: str,
                    timeout: Optional[float] = None) -> bool:
            already = manager.held_by(txn)
            result = original(txn, resource, mode, timeout)
            site: Optional[str] = None
            with self._internal:
                for prior in already:
                    edges = self._resources.setdefault(prior, {})
                    edge = edges.get(resource)
                    if edge is None:
                        if site is None:
                            site = _call_site()
                        edges[resource] = _Edge(count=1, first_site=site,
                                                first_thread=_thread_name())
                    else:
                        edge.count += 1
            return result

        manager.acquire = acquire

    def resource_order_graph(self) -> dict[Hashable, dict[Hashable, int]]:
        with self._internal:
            return {before: {after: edge.count
                             for after, edge in edges.items()}
                    for before, edges in self._resources.items()}

    def resource_inversions(self) -> list[tuple[Hashable, Hashable]]:
        """Resource pairs observed in both orders (deadlock candidates)."""
        pairs = []
        with self._internal:
            for before, edges in self._resources.items():
                for after in edges:
                    if before in self._resources.get(after, {}):
                        pair = (before, after)
                        if (after, before) not in pairs:
                            pairs.append(pair)
        return pairs

    # -- reporting -----------------------------------------------------------

    def order_graph(self) -> dict[str, dict[str, int]]:
        """The observed lock-order graph with human-readable labels."""
        with self._internal:
            return {
                self._names.get(before, str(before)): {
                    self._names.get(after, str(after)): edge.count
                    for after, edge in edges.items()}
                for before, edges in self._graph.items()}

    def assert_clean(self) -> None:
        problems = [v.format() for v in self.violations]
        problems += [v.format() for v in self.guard_violations]
        if problems:
            raise AssertionError(
                "lockwatch detected concurrency violations:\n  "
                + "\n  ".join(problems))


class GuardedMapping(MutableMapping):
    """Dict wrapper that reports access without the guard lock held."""

    def __init__(self, watch: LockWatch, data: MutableMapping,
                 guard: _WatchedLock, name: str) -> None:
        self._watch = watch
        self._data = data
        self._guard = guard
        self._name = name

    def _check(self, operation: str) -> None:
        if not self._watch.holds_current(self._guard):
            self._watch.guard_violations.append(GuardViolation(
                guard=self._guard._name, target=self._name,
                operation=operation,
                thread=_thread_name(),
                site=_call_site()))

    def __getitem__(self, key: object) -> object:
        self._check("read")
        return self._data[key]

    def __setitem__(self, key, value) -> None:
        self._check("write")
        self._data[key] = value

    def __delitem__(self, key) -> None:
        self._check("delete")
        del self._data[key]

    def __iter__(self) -> Iterator[object]:
        self._check("iterate")
        return iter(self._data)

    def __len__(self) -> int:
        self._check("len")
        return len(self._data)

    def __repr__(self) -> str:
        return f"<guarded {self._name}: {self._data!r}>"
