"""Render diagnostics as human-readable text or machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from .diagnostics import Diagnostic
from .rules import RULES


def render_text(diagnostics: Sequence[Diagnostic],
                statistics: bool = False) -> str:
    lines = [d.format() for d in diagnostics]
    if statistics and diagnostics:
        lines.append("")
        counts = Counter(d.rule for d in diagnostics)
        for rule_id, count in sorted(counts.items()):
            rule = RULES.get(rule_id)
            title = f" ({rule.title})" if rule else ""
            lines.append(f"{rule_id}{title}: {count}")
    if diagnostics:
        lines.append(f"found {len(diagnostics)} problem"
                     f"{'s' if len(diagnostics) != 1 else ''}")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    return json.dumps({
        "diagnostics": [d.to_dict() for d in diagnostics],
        "count": len(diagnostics),
    }, indent=2)


def render_explain() -> str:
    """The rule table, for ``repro lint --explain``."""
    lines = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"{rule_id}  {rule.title}")
        lines.append(f"       {rule.rationale}")
    return "\n".join(lines)
