"""Lint driver: file discovery, parsing, rule execution, suppression.

The driver is deliberately dependency-free (stdlib ``ast`` only) so it
can run in CI before the package is even importable; only RP004 reaches
into the engine's SQL parser, lazily.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .context import FileContext
from .diagnostics import Diagnostic, SuppressionIndex
from .rules import RULES, Rule, all_rules

_SKIP_DIRS = {".git", "__pycache__", ".venv", "node_modules", "build",
              "dist", ".mypy_cache", ".ruff_cache"}


class Linter:
    """Runs a set of rules over files and trees."""

    def __init__(self, root: Optional[Path] = None,
                 select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None) -> None:
        self.root = (root or Path.cwd()).resolve()
        chosen: list[Rule] = []
        select_set = {s.upper() for s in select} if select else None
        ignore_set = {s.upper() for s in ignore} if ignore else set()
        unknown = (select_set or set()) | ignore_set
        unknown -= set(RULES)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}")
        for rule in all_rules():
            if select_set is not None and rule.rule_id not in select_set:
                continue
            if rule.rule_id in ignore_set:
                continue
            chosen.append(rule)
        self.rules = chosen

    # -- discovery ---------------------------------------------------------

    def discover(self, paths: Sequence[Path]) -> list[Path]:
        files: list[Path] = []
        for path in paths:
            path = Path(path)
            if path.is_dir():
                for candidate in sorted(path.rglob("*.py")):
                    if not _SKIP_DIRS.intersection(candidate.parts):
                        files.append(candidate)
            elif path.suffix == ".py":
                files.append(path)
        return files

    # -- linting -----------------------------------------------------------

    def lint_paths(self, paths: Sequence[Path]) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for file_path in self.discover(paths):
            diagnostics.extend(self.lint_file(file_path))
        return sorted(diagnostics)

    def lint_file(self, path: Path) -> list[Diagnostic]:
        path = Path(path).resolve()
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            return [Diagnostic(path=str(path), line=1, col=1, rule="RP000",
                               message=f"cannot read file: {exc}")]
        return self.lint_source(source, path)

    def lint_source(self, source: str, path: Path) -> list[Diagnostic]:
        path = Path(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [Diagnostic(
                path=str(path), line=exc.lineno or 1,
                col=(exc.offset or 0) + 1, rule="RP000",
                message=f"syntax error: {exc.msg}")]
        lines = source.splitlines()
        try:
            rel = path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            rel = path.as_posix()
        ctx = FileContext(path=path, rel=rel, tree=tree, lines=lines,
                          root=self.root)
        suppressions = SuppressionIndex.from_source(lines)
        found: list[Diagnostic] = []
        for rule in self.rules:
            for diagnostic in rule.check(ctx):
                if not suppressions.suppresses(diagnostic):
                    found.append(diagnostic)
        return sorted(found)


def lint_paths(paths: Sequence[Path], root: Optional[Path] = None,
               select: Optional[Iterable[str]] = None,
               ignore: Optional[Iterable[str]] = None) -> list[Diagnostic]:
    """Convenience wrapper: lint ``paths`` with the default rule set."""
    return Linter(root=root, select=select,
                  ignore=ignore).lint_paths([Path(p) for p in paths])
