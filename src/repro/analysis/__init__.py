"""Correctness tooling for the testbed itself.

The paper's headline claim — delivered throughput never exceeds the
requested rate (§2.2) — is only as credible as the harness that measures
it.  This package verifies the harness:

* a repo-aware **lint framework** (:mod:`~repro.analysis.driver`,
  :mod:`~repro.analysis.rules`) with rules that enforce the conventions
  the executors depend on: all time through the :class:`~repro.clock.Clock`
  abstraction, all randomness through seeded RNGs, locks released on every
  path, SQL literals that actually parse, benchmark packages registered
  consistently, and no swallowed errors in hot paths.  Exposed as the
  ``repro lint`` CLI subcommand.
* a **runtime lock-order/race watchdog** (:mod:`~repro.analysis.lockwatch`)
  — a miniature thread sanitizer that instruments ``threading`` primitives
  and the engine's :class:`~repro.engine.locks.LockManager`, records the
  cross-thread lock-acquisition-order graph, and flags lock-order
  inversions and guarded-field access without the guarding lock held.
  Enabled test-wide with ``pytest --lockwatch``.
"""

from .diagnostics import Diagnostic, SuppressionIndex
from .driver import FileContext, Linter, lint_paths
from .lockwatch import (GuardedMapping, GuardViolation, LockOrderViolation,
                        LockWatch)
from .reporters import render_json, render_text
from .rules import RULES, Rule, all_rules, register

__all__ = [
    "Diagnostic", "SuppressionIndex", "FileContext", "Linter", "lint_paths",
    "render_json", "render_text", "RULES", "Rule", "all_rules", "register",
    "LockWatch", "LockOrderViolation", "GuardViolation", "GuardedMapping",
]
