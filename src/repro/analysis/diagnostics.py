"""Diagnostic records and in-source suppression comments.

A suppression is an ordinary comment on the flagged line::

    deadline = time.time() + 5     # repro: noqa[RP001] migration pending
    lock.acquire()                 # repro: noqa

``# repro: noqa`` silences every rule on that line; ``# repro:
noqa[RP001,RP003]`` silences only the listed rule ids.  A file-level
escape hatch, ``# repro: noqa-file[RP004]``, placed anywhere in the first
ten lines, silences a rule for the whole file — intended for generated
code only.  Text after the bracket is a free-form justification; review
expects one (see docs/lint-rules.md).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_LINE_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Z0-9,\s]+)\])?")
_FILE_RE = re.compile(r"#\s*repro:\s*noqa-file\[([A-Z0-9,\s]+)\]")
_FILE_SCOPE_LINES = 10

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule fired at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = SEVERITY_ERROR

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}")

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path, "line": self.line, "col": self.col,
            "rule": self.rule, "message": self.message,
            "severity": self.severity,
        }


@dataclass
class SuppressionIndex:
    """Per-file map of suppressed rule ids, built from the source text."""

    #: line number -> rule ids silenced there (empty set = all rules).
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: rule ids silenced for the entire file.
    file_wide: set[str] = field(default_factory=set)

    @classmethod
    def from_source(cls, lines: list[str]) -> "SuppressionIndex":
        index = cls()
        for lineno, text in enumerate(lines, start=1):
            if "#" not in text:
                continue
            match = _LINE_RE.search(text)
            if match:
                rules = _parse_rule_list(match.group(1))
                existing = index.by_line.get(lineno)
                if existing is None:
                    index.by_line[lineno] = rules
                elif rules and existing:
                    existing.update(rules)
                else:
                    index.by_line[lineno] = set()
            if lineno <= _FILE_SCOPE_LINES:
                file_match = _FILE_RE.search(text)
                if file_match:
                    index.file_wide.update(
                        _parse_rule_list(file_match.group(1)))
        return index

    def suppresses(self, diagnostic: Diagnostic) -> bool:
        if diagnostic.rule in self.file_wide:
            return True
        rules = self.by_line.get(diagnostic.line)
        if rules is None:
            return False
        return not rules or diagnostic.rule in rules


def _parse_rule_list(raw: str | None) -> set[str]:
    """``"RP001, RP003"`` -> ``{"RP001", "RP003"}``; None -> all rules."""
    if raw is None:
        return set()
    return {part.strip() for part in raw.split(",") if part.strip()}
