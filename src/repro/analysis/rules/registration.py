"""RP005 — benchmark registration consistency.

Benchmarks are discovered through two conventions that nothing else
enforces: the package must be imported and listed in ``REGISTRY`` inside
``benchmarks/__init__.py``, and the benchmark class must bind a
non-empty ``procedures`` tuple whose entries carry sane default weights.
A package that misses either step silently disappears from ``repro
list`` / ``create_benchmark`` — this rule makes that a lint error.

Checks, in order:

* ``benchmarks/__init__.py``: every sibling package directory is imported
  (``from .pkg import Cls``) and every imported benchmark class appears
  in the ``REGISTRY`` construction.
* every class deriving from ``BenchmarkModule``: ``procedures`` is
  present and non-empty; tuple entries are unique and resolvable (defined
  or imported in the module, following the common ``from .procedures
  import PROCEDURES`` indirection into the sibling file); resolvable
  ``default_weight`` values are non-negative and not all zero.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Optional

from ..context import FileContext
from ..diagnostics import Diagnostic
from . import Rule, register

_BASE_CLASS = "BenchmarkModule"


def _base_names(node: ast.ClassDef) -> set[str]:
    names = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _class_assign(node: ast.ClassDef, name: str) -> Optional[ast.Assign]:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt
    return None


def _module_names(tree: ast.Module) -> dict[str, ast.AST]:
    """Top-level bindings: classes, assignments, imported names."""
    bound: dict[str, ast.AST] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            bound[stmt.name] = stmt
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    bound[target.id] = stmt
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                bound[alias.asname or alias.name] = stmt
    return bound


def _default_weight(cls: ast.ClassDef) -> Optional[float]:
    assign = _class_assign(cls, "default_weight")
    if assign is None:
        return 0.0  # Procedure's class default
    value = assign.value
    if isinstance(value, ast.Constant) and \
            isinstance(value.value, (int, float)):
        return float(value.value)
    if isinstance(value, ast.UnaryOp) and \
            isinstance(value.op, ast.USub) and \
            isinstance(value.operand, ast.Constant) and \
            isinstance(value.operand.value, (int, float)):
        return -float(value.operand.value)
    return None


def _import_source(tree: ast.Module, name: str) -> Optional[str]:
    """Relative module a top-level ``from .mod import name`` came from."""
    for stmt in tree.body:
        if isinstance(stmt, ast.ImportFrom) and stmt.level == 1 \
                and stmt.module:
            for alias in stmt.names:
                if (alias.asname or alias.name) == name:
                    return stmt.module
    return None


@register
class RegistrationRule(Rule):
    rule_id = "RP005"
    title = "benchmark registration"
    rationale = (
        "A benchmark package that is not imported into REGISTRY, or whose "
        "procedures tuple is empty/duplicated/mis-weighted, silently "
        "disappears from the workload mixture instead of failing loudly.")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.filename == "__init__.py" and \
                Path(ctx.rel).parent.name == "benchmarks":
            yield from self._check_registry(ctx)
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.ClassDef) and \
                    _BASE_CLASS in _base_names(stmt):
                yield from self._check_benchmark_class(ctx, stmt)

    # -- registry file ---------------------------------------------------

    def _check_registry(self, ctx: FileContext) -> Iterator[Diagnostic]:
        imported: dict[str, ast.ImportFrom] = {}  # class name -> import
        imported_pkgs: set[str] = set()
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.ImportFrom) and stmt.level == 1 \
                    and stmt.module:
                imported_pkgs.add(stmt.module)
                for alias in stmt.names:
                    imported[alias.asname or alias.name] = stmt
        registry_value = _module_assign_value(ctx.tree, "REGISTRY")
        registry_names: set[str] = set()
        if registry_value is not None:
            for node in ast.walk(registry_value):
                if isinstance(node, ast.Name):
                    registry_names.add(node.id)
        for entry in sorted(ctx.path.parent.iterdir()):
            if entry.is_dir() and (entry / "__init__.py").exists() and \
                    entry.name not in imported_pkgs:
                yield ctx.diag(
                    ctx.tree, self.rule_id,
                    f"benchmark package {entry.name!r} exists but is not "
                    "imported into the registry module")
        for name, stmt in imported.items():
            if name.endswith("Benchmark") and name not in registry_names:
                yield ctx.diag(
                    stmt, self.rule_id,
                    f"benchmark class {name!r} is imported but never "
                    "listed in REGISTRY")

    # -- benchmark classes -----------------------------------------------

    def _check_benchmark_class(self, ctx: FileContext,
                               cls: ast.ClassDef) -> Iterator[Diagnostic]:
        assign = _class_assign(cls, "procedures")
        if assign is None:
            # The base class default () is fine for abstract helpers that
            # are themselves subclassed; only flag concrete classes that
            # declare a registry name.
            name_assign = _class_assign(cls, "name")
            if name_assign is not None:
                yield ctx.diag(
                    cls, self.rule_id,
                    f"benchmark class {cls.name!r} declares a registry "
                    "name but no procedures")
            return
        value = assign.value
        tree_names = _module_names(ctx.tree)
        if isinstance(value, ast.Name):
            resolved = self._resolve_indirect(ctx, value.id, tree_names)
            if resolved is None:
                return  # dynamically built; outside static reach
            value, tree_names = resolved
        if not isinstance(value, (ast.Tuple, ast.List)):
            return
        if not value.elts:
            yield ctx.diag(
                assign, self.rule_id,
                f"benchmark class {cls.name!r} registers an empty "
                "procedures tuple")
            return
        seen: set[str] = set()
        weights: list[float] = []
        unresolved_weight = False
        for element in value.elts:
            if not isinstance(element, ast.Name):
                unresolved_weight = True
                continue
            if element.id in seen:
                yield ctx.diag(
                    element, self.rule_id,
                    f"procedure {element.id!r} listed twice in "
                    f"{cls.name!r}.procedures")
            seen.add(element.id)
            binding = tree_names.get(element.id)
            if binding is None:
                yield ctx.diag(
                    element, self.rule_id,
                    f"procedure {element.id!r} in {cls.name!r}.procedures "
                    "is neither defined nor imported in its module")
                continue
            if isinstance(binding, ast.ClassDef):
                weight = _default_weight(binding)
                if weight is None:
                    unresolved_weight = True
                elif weight < 0:
                    yield ctx.diag(
                        binding, self.rule_id,
                        f"procedure {element.id!r} has a negative "
                        f"default_weight ({weight})")
                else:
                    weights.append(weight)
            else:
                unresolved_weight = True
        if weights and not unresolved_weight and sum(weights) == 0 \
                and len(weights) > 1:
            # All-zero is only suspicious when explicit weights exist
            # elsewhere; the base class falls back to a uniform mixture,
            # so report as a consistency nudge rather than staying silent.
            yield ctx.diag(
                assign, self.rule_id,
                f"default weight vector of {cls.name!r} sums to 0; the "
                "mixture silently falls back to uniform")

    def _resolve_indirect(self, ctx: FileContext, name: str,
                          tree_names: dict[str, ast.AST]):
        """Follow ``procedures = PROCEDURES`` through a local or sibling
        module assignment; returns (value node, module bindings)."""
        binding = tree_names.get(name)
        if isinstance(binding, ast.Assign):
            return binding.value, tree_names
        source = _import_source(ctx.tree, name)
        if source is None:
            return None
        sibling = ctx.path.parent / f"{source}.py"
        if not sibling.exists():
            return None
        try:
            tree = ast.parse(sibling.read_text(encoding="utf-8"))
        except SyntaxError:
            return None
        sibling_names = _module_names(tree)
        binding = sibling_names.get(name)
        if isinstance(binding, ast.Assign):
            return binding.value, sibling_names
        return None


def _module_assign_value(tree: ast.Module, name: str) -> Optional[ast.expr]:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt.value
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name) and \
                stmt.target.id == name:
            return stmt.value
    return None
