"""RP008 — exception discipline in retry/fault paths.

The resilience layer's whole job is deciding which exceptions are
transient (retry them) and which are verdicts (surface them).  A broad
``except`` inside those modules collapses that distinction: a
programming error or a benchmark-intended ``UserAbort`` gets classified
as retryable, the loop spins on a failure that can never succeed, and
the recorded retry/recovery counters stop meaning anything.  So in the
fault/retry modules — anything under a ``faults/`` package,
``resilience.py``, and the API client — every handler must either name
the exception types it classifies or re-raise what it caught.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from . import Rule, register

#: Files whose handlers classify errors as retryable-or-not.
RETRY_PATH_FILES = {"resilience.py"}
_BROAD = {"Exception", "BaseException"}


def _in_scope(ctx: FileContext) -> bool:
    if ctx.in_directory("faults"):
        return True
    if ctx.filename in RETRY_PATH_FILES:
        return True
    return ctx.filename == "client.py" and ctx.in_directory("api")


def _broad_names(handler: ast.ExceptHandler) -> list[str]:
    node = handler.type
    if node is None:
        return []
    types = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for item in types:
        name = item.id if isinstance(item, ast.Name) else \
            item.attr if isinstance(item, ast.Attribute) else ""
        if name in _BROAD:
            names.append(name)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register
class RetryPathExceptionRule(Rule):
    rule_id = "RP008"
    title = "retry/fault-path exception discipline"
    rationale = (
        "Retry loops and fault injectors classify exceptions as "
        "transient-or-not; a bare or over-broad except there marks "
        "unretryable failures (programming errors, user aborts) as "
        "retryable and corrupts every recovery counter.")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not _in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.diag(
                    node, self.rule_id,
                    "bare except in a retry/fault path treats every "
                    "failure as retryable; name the transient exception "
                    "types")
            elif _broad_names(node) and not _reraises(node):
                yield ctx.diag(
                    node, self.rule_id,
                    "broad except in a retry/fault path without re-raise; "
                    "name the exception types the handler classifies as "
                    "transient")
