"""RP007 — streaming-metrics copy discipline.

The whole point of ``repro.metrics`` is that feedback queries are
O(bins): each sample is folded in once at record time and the raw
sample list is never revisited.  A call to ``Results.samples()`` /
``Results.latencies()`` (both return fresh per-sample list copies) or a
reach into ``_samples`` from inside the streaming layer silently turns
an O(bins) query back into an O(n) rescan — exactly the regression the
``bench_metrics_overhead`` smoke job guards against, caught here
statically so it fails in lint rather than in a perf chart.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from . import Rule, register

#: Methods on Results that materialise a fresh per-sample copy.
_COPYING_CALLS = {"samples", "latencies"}
_RAW_ATTRS = {"_samples"}
_SCOPE_DIR = "metrics"


@register
class StreamingCopyRule(Rule):
    rule_id = "RP007"
    title = "streaming-metrics copy discipline"
    rationale = (
        "The streaming feedback layer (repro.metrics) must consume each "
        "sample once at record time; calling Results.samples()/"
        "latencies() or touching _samples from inside it reintroduces "
        "the O(n)-per-query rescans the layer exists to eliminate.")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_directory(_SCOPE_DIR):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _COPYING_CALLS):
                    yield ctx.diag(
                        node, self.rule_id,
                        f"call to .{func.attr}() inside the streaming "
                        "metrics layer copies the raw sample list; fold "
                        "samples in via observe() at record time instead")
            elif isinstance(node, ast.Attribute) and \
                    node.attr in _RAW_ATTRS:
                yield ctx.diag(
                    node, self.rule_id,
                    "direct access to the raw _samples list inside the "
                    "streaming metrics layer; queries must stay O(bins)")
