"""Rule base class and registry.

A rule is a class with a ``rule_id`` (``RPnnn``), a one-line ``title``, a
``rationale`` (both rendered into docs/lint-rules.md and ``repro lint
--explain``), and a ``check(ctx)`` generator yielding
:class:`~repro.analysis.diagnostics.Diagnostic` objects.  Registration is
by decorator so dropping a new module into this package is all it takes
to ship a rule.
"""

from __future__ import annotations

from typing import Iterator, Type

from ..context import FileContext
from ..diagnostics import Diagnostic

RULES: dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for AST lint rules."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULES[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in id order."""
    return [RULES[rule_id]() for rule_id in sorted(RULES)]


# Importing the modules registers the rules.
from . import (lockdiscipline, registration, retrypath,  # noqa: E402,F401
               rng, sqlvalidity, streamingcopy, swallowed, wallclock,
               workerloop)

__all__ = ["Rule", "RULES", "register", "all_rules"]
