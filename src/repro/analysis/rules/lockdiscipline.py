"""RP002 — lock discipline.

A bare ``something_lock.acquire()`` statement that is not immediately
followed by a ``try/finally`` releasing the lock leaks it on any
exception between acquire and release, deadlocking every other thread
that touches the same primitive.  The reliable idioms are ``with lock:``
or ``lock.acquire()`` directly followed by ``try: ... finally:
lock.release()``.

The rule is heuristic about what "looks like" a threading primitive: the
receiver's final name component must contain ``lock``/``mutex``/``cond``/
``sem``.  The engine's :class:`~repro.engine.locks.LockManager` is
excluded — its resource locks are released by ``release_all`` at
commit/abort, a different (strict-2PL) protocol checked at runtime by
lockwatch instead.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..context import FileContext, iter_statement_lists
from ..diagnostics import Diagnostic
from . import Rule, register

_PRIMITIVE_RE = re.compile(r"lock|mutex|cond|sem", re.IGNORECASE)
_EXCLUDED = {"lock_manager", "lockmanager", "locks"}


def _receiver_name(func: ast.Attribute) -> str:
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return ""


def _is_primitive_acquire(stmt: ast.stmt) -> ast.Call | None:
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
        return None
    func = stmt.value.func
    if not isinstance(func, ast.Attribute) or func.attr != "acquire":
        return None
    name = _receiver_name(func)
    if name.lower().strip("_") in _EXCLUDED:
        return None
    if not _PRIMITIVE_RE.search(name):
        return None
    return stmt.value


def _releases_in_finally(try_stmt: ast.Try) -> bool:
    for node in try_stmt.finalbody:
        for sub in ast.walk(node):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "release"):
                return True
    return False


@register
class LockDisciplineRule(Rule):
    rule_id = "RP002"
    title = "lock discipline"
    rationale = (
        "acquire() on a threading primitive without `with` or an "
        "immediately following try/finally release leaks the lock on any "
        "exception, hanging every other thread.")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for statements in iter_statement_lists(ctx.tree):
            for index, stmt in enumerate(statements):
                call = _is_primitive_acquire(stmt)
                if call is None:
                    continue
                following = statements[index + 1] if \
                    index + 1 < len(statements) else None
                if (isinstance(following, ast.Try)
                        and following.finalbody
                        and _releases_in_finally(following)):
                    continue
                yield ctx.diag(
                    call, self.rule_id,
                    "acquire() without `with` or try/finally release; the "
                    "lock leaks if anything between acquire and release "
                    "raises")
