"""RP001 — wall-clock discipline.

Direct ``time.time()`` / ``time.sleep()`` / ``time.monotonic()`` calls
bypass the :class:`~repro.clock.Clock` abstraction, so the simulated
executor can no longer make the call site deterministic and the threaded
executor cannot be shut down promptly (``time.sleep`` is
uninterruptible).  Only ``clock.py`` — the module that *implements* the
abstraction — may touch the ``time`` module.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from . import Rule, register

_BANNED = {
    "time", "sleep", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns",
}
_ALLOWED_FILES = {"clock.py"}


@register
class WallClockRule(Rule):
    rule_id = "RP001"
    title = "wall-clock discipline"
    rationale = (
        "All time must flow through the injected Clock so simulated runs "
        "stay deterministic and threaded runs stay interruptible; only "
        "clock.py may call the time module directly.")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.filename in _ALLOWED_FILES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _BANNED
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "time"):
                    yield ctx.diag(
                        node, self.rule_id,
                        f"call to time.{func.attr}() outside clock.py; "
                        "use the injected Clock (clock.now()/clock.sleep())")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = [a.name for a in node.names if a.name in _BANNED]
                if bad:
                    yield ctx.diag(
                        node, self.rule_id,
                        f"importing {', '.join(bad)} from time outside "
                        "clock.py; use the injected Clock")
