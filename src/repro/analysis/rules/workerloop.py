"""RP009 — no per-sample lock traffic inside worker loops.

The driver's worker hot path executes thousands of transactions per
second per thread; a call to ``Results.record()`` or
``StreamingMetrics.observe()`` from inside it acquires the shared
results lock *and* the metrics lock once per sample, which is exactly
the cross-worker contention the batched recorders
(:class:`repro.core.results.SampleBuffer`) exist to eliminate.  Worker
loops and per-request execute methods in ``repro.core`` must go through
a worker-local buffered recorder (``recorder.add(...)`` + epoch
flushes); direct per-sample recording is flagged here so the regression
fails in lint, not in a queue-scaling chart.

Scope: functions in ``core/`` whose name contains ``worker`` or is
``_execute`` — the per-request paths of the execution substrates.
Orchestration code (tickers, completion callbacks of the simulated
executor, the manager's control plane) is exempt: it runs per event or
per second, not per sample under contention.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from . import Rule, register

#: Per-sample entry points that take a shared lock on every call.
_PER_SAMPLE_CALLS = {"record", "observe"}
_SCOPE_DIR = "core"


def _in_scope(name: str) -> bool:
    return "worker" in name or name == "_execute"


@register
class WorkerLoopRecordRule(Rule):
    rule_id = "RP009"
    title = "per-sample locking in worker loops"
    rationale = (
        "Worker hot loops must record samples through a worker-local "
        "buffered recorder; calling Results.record()/metrics.observe() "
        "per transaction serialises every worker on two shared locks "
        "and caps delivered throughput.")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_directory(_SCOPE_DIR):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if not _in_scope(node.name):
                continue
            for inner in ast.walk(node):
                if (isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr in _PER_SAMPLE_CALLS):
                    yield ctx.diag(
                        inner, self.rule_id,
                        f"per-sample .{inner.func.attr}() call inside "
                        f"worker-path function {node.name!r}; use a "
                        "worker-local buffered recorder "
                        "(Results.buffered() / recorder.add) and flush "
                        "in epochs")
