"""RP004 — SQL validity.

Raw SQL string literals in benchmark packages must parse under the
engine's own :mod:`repro.engine.sqlparser`.  A typo in a rarely sampled
procedure (a 1 %-weight transaction, an abort-path statement) otherwise
survives until a long run happens to draw it, and then surfaces as an
engine error counted against the benchmark's abort rate.

The rule checks the first argument of ``execute`` / ``executemany``
calls in any file under a ``benchmarks/`` directory.  Plain string
literals are parsed directly.  f-strings are parsed when every
interpolation resolves to a module-level string constant (the common
``f"SELECT {COLS} FROM t"`` pattern); f-strings interpolating runtime
values cannot be checked statically and are skipped.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ...errors import ReproError
from ..context import FileContext
from ..diagnostics import Diagnostic
from . import Rule, register

_EXECUTE_METHODS = {"execute", "executemany"}


def _module_string_constants(tree: ast.Module) -> dict[str, str]:
    """Names bound at module level to plain string literals."""
    constants: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = node.value.value
    return constants


def _resolve_sql(arg: ast.expr, constants: dict[str, str]) -> Optional[str]:
    """Literal SQL text of ``arg``, or None when not statically known."""
    if isinstance(arg, ast.Constant):
        return arg.value if isinstance(arg.value, str) else None
    if isinstance(arg, ast.JoinedStr):
        parts: list[str] = []
        for piece in arg.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            elif isinstance(piece, ast.FormattedValue) and \
                    isinstance(piece.value, ast.Name) and \
                    piece.value.id in constants:
                parts.append(constants[piece.value.id])
            else:
                return None
        return "".join(parts)
    return None


@register
class SqlValidityRule(Rule):
    rule_id = "RP004"
    title = "SQL validity"
    rationale = (
        "SQL literals in benchmark procedures must parse under "
        "engine/sqlparser; a typo in a low-weight transaction otherwise "
        "hides until a long run samples it.")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if not ctx.in_directory("benchmarks"):
            return
        # Import lazily: the parser pulls in the engine package, which the
        # lint framework must not require just to run the other rules.
        from ...engine.sqlparser import parse
        constants = _module_string_constants(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _EXECUTE_METHODS
                    and node.args):
                continue
            sql = _resolve_sql(node.args[0], constants)
            if sql is None or not sql.strip():
                continue
            try:
                parse(sql)
            except ReproError as exc:
                yield ctx.diag(
                    node.args[0], self.rule_id,
                    f"SQL literal does not parse under engine/sqlparser: "
                    f"{exc}")
