"""RP003 — RNG discipline.

Every random draw in the testbed must come from an explicitly seeded
``random.Random`` instance created by :func:`repro.rand.make_rng`, so
identical configurations replay identical workloads (loader data,
transaction mixtures, arrival jitter).  Calling module-level ``random``
functions — or instantiating ``random.Random()`` without a seed — pulls
entropy from interpreter state and silently breaks reproducibility.

``import random`` purely for the ``random.Random`` *type annotation* is
fine and widespread; only *calls* into the module are flagged.  The
``rand.py`` module itself, which implements ``make_rng`` and the
distribution generators, is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from . import Rule, register

_ALLOWED_FILES = {"rand.py"}


@register
class RngDisciplineRule(Rule):
    rule_id = "RP003"
    title = "RNG discipline"
    rationale = (
        "All randomness must come from seeded RNGs built by "
        "repro.rand.make_rng; module-level random.* calls draw from "
        "interpreter state and break workload replay.")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.filename in _ALLOWED_FILES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "random"):
                    yield ctx.diag(
                        node, self.rule_id,
                        f"call to random.{func.attr}() outside rand.py; "
                        "use a seeded rng from repro.rand.make_rng")
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                names = [alias.name for alias in node.names
                         if alias.name != "Random"]
                if names:
                    yield ctx.diag(
                        node, self.rule_id,
                        f"importing {', '.join(names)} from random outside "
                        "rand.py; use a seeded rng from repro.rand.make_rng")
