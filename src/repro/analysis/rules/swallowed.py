"""RP006 — swallowed errors in hot paths.

A bare ``except:`` is always flagged: it catches ``KeyboardInterrupt``
and ``SystemExit`` and turns shutdown into a hang.  ``except
Exception`` / ``except BaseException`` is additionally flagged in the
worker/engine *hot-path* modules when the handler neither re-raises nor
raises something else — there, a silently swallowed engine error is
recorded as a committed transaction and corrupts every downstream
throughput/latency figure.  Handlers that re-raise (cleanup wrappers)
are fine anywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from . import Rule, register

#: Modules whose transaction/locking paths must not swallow errors.
HOT_PATH_FILES = {
    "executors.py", "requestqueue.py", "procexec.py", "executor.py",
    "database.py", "txn.py", "locks.py", "storage.py",
}
_BROAD = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    node = handler.type
    if node is None:
        return True
    types = node.elts if isinstance(node, ast.Tuple) else [node]
    for item in types:
        name = item.id if isinstance(item, ast.Name) else \
            item.attr if isinstance(item, ast.Attribute) else ""
        if name in _BROAD:
            return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


@register
class SwallowedErrorRule(Rule):
    rule_id = "RP006"
    title = "swallowed errors"
    rationale = (
        "Bare excepts hang shutdown; over-broad excepts in worker/engine "
        "hot paths mislabel engine failures as committed work and corrupt "
        "the measured throughput.")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        hot = ctx.filename in HOT_PATH_FILES
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.diag(
                    node, self.rule_id,
                    "bare except catches KeyboardInterrupt/SystemExit and "
                    "turns shutdown into a hang; name the exceptions")
            elif hot and _is_broad(node) and not _reraises(node):
                yield ctx.diag(
                    node, self.rule_id,
                    "over-broad except in a hot-path module without "
                    "re-raise; swallowed engine errors corrupt the "
                    "recorded results")
