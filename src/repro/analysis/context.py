"""Per-file context handed to every lint rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Iterator, Optional

from .diagnostics import SEVERITY_ERROR, Diagnostic


@dataclass
class FileContext:
    """Everything a rule may need about the file under analysis.

    ``rel`` is the path relative to the lint root (posix separators), which
    is what rules match scope heuristics against — e.g. RP004 only fires
    under a ``benchmarks/`` directory.  For files outside the root (golden
    fixtures in temp dirs) ``rel`` falls back to the absolute path.
    """

    path: Path
    rel: str
    tree: ast.Module
    lines: list[str]
    root: Optional[Path] = None

    @property
    def filename(self) -> str:
        return self.path.name

    def in_directory(self, name: str) -> bool:
        """True when ``name`` is one of the path's directory components."""
        return name in PurePosixPath(self.rel).parts[:-1]

    def diag(self, node: ast.AST, rule: str, message: str,
             severity: str = SEVERITY_ERROR) -> Diagnostic:
        return Diagnostic(
            path=str(self.path), line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1, rule=rule,
            message=message, severity=severity)

    def source_segment(self, node: ast.AST) -> str:
        return ast.get_source_segment("\n".join(self.lines), node) or ""


def iter_statement_lists(tree: ast.Module) -> Iterator[list[ast.stmt]]:
    """Yield every statement list (module body, function bodies, etc.).

    Used by rules that need sibling relationships — e.g. "is the statement
    after this ``acquire()`` a ``try/finally``?" — which ``ast.walk`` alone
    cannot answer.
    """
    yield tree.body
    for node in ast.walk(tree):
        for attr in ("body", "orelse", "finalbody", "handlers"):
            value = getattr(node, attr, None)
            if not value:
                continue
            if attr == "handlers":
                for handler in value:
                    yield handler.body
            elif isinstance(value, list) and value and \
                    isinstance(value[0], ast.stmt) and node is not tree:
                yield value
