"""Command-line interface, the analogue of the ``oltpbenchmark`` script.

    python -m repro list
    python -m repro run --benchmark ycsb --rate 500 --duration 30
    python -m repro run --benchmark tpcc --config workload.json --threaded
    python -m repro dump --benchmark tpcc --scale 1 --output tpcc.dump.json
    python -m repro game --benchmark voter --dbms oracle

``run`` executes a workload (simulated virtual time by default, or live
with ``--threaded``), prints the OLTP-Bench summary, and can write the raw
trace with ``--trace``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .benchmarks import benchmark_names, create_benchmark, table1
from .clock import SimClock
from .core import (Phase, SimulatedExecutor, ThreadedExecutor,
                   WorkloadConfiguration, WorkloadManager)
from .engine import Database
from .engine.dump import dump_database, restore_database
from .engine.service import PERSONALITIES
from .trace import TraceAnalyzer, TraceWriter


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OLTP-Bench / BenchPress reproduction testbed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 15 built-in benchmarks")

    run = sub.add_parser("run", help="execute one workload")
    run.add_argument("--benchmark", required=True,
                     choices=benchmark_names())
    run.add_argument("--scale", type=float, default=0.5,
                     help="scale factor (default 0.5)")
    run.add_argument("--rate", default="100",
                     help="target tps, 'unlimited', or 'disabled'")
    run.add_argument("--duration", type=float, default=30.0,
                     help="seconds per phase (default 30)")
    run.add_argument("--workers", type=int, default=8)
    run.add_argument("--dbms", default="mysql",
                     choices=sorted(PERSONALITIES))
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--config", help="JSON workload configuration file "
                                      "(overrides rate/duration)")
    run.add_argument("--queue-shards", type=int, default=None,
                     metavar="N",
                     help="shard the request queue N ways (default: "
                          "$REPRO_QUEUE_SHARDS or 1)")
    run.add_argument("--take-batch", type=int, default=None, metavar="N",
                     help="workers dequeue up to N due requests per queue "
                          "visit (threaded executor only; default: "
                          "$REPRO_TAKE_BATCH or 16)")
    run.add_argument("--threaded", action="store_true",
                     help="run live worker threads instead of simulating")
    run.add_argument("--trace", help="write the raw per-txn trace CSV here")
    run.add_argument("--metrics-out",
                     help="write the final streaming-metrics snapshot "
                          "(windowed throughput, latency quantiles, queue "
                          "accounting) as JSON here")
    run.add_argument("--restore", help="load data from a dump file "
                                       "instead of the generator")
    run.add_argument("--fault-aborts", type=float, default=None,
                     metavar="P",
                     help="inject transient aborts with probability P "
                          "per attempt (also REPRO_CHAOS_ABORTS)")
    run.add_argument("--fault-latency", type=float, default=None,
                     metavar="P",
                     help="inject latency spikes with probability P "
                          "(also REPRO_CHAOS_LATENCY)")
    run.add_argument("--fault-lock-timeouts", type=float, default=None,
                     metavar="P",
                     help="inject lock timeouts with probability P "
                          "(also REPRO_CHAOS_LOCK_TIMEOUTS)")
    run.add_argument("--fault-disconnects", type=float, default=None,
                     metavar="P",
                     help="inject connection drops with probability P "
                          "(also REPRO_CHAOS_DISCONNECTS)")
    run.add_argument("--retries", type=int, default=None, metavar="N",
                     help="retry faulted transactions up to N attempts "
                          "with exponential backoff "
                          "(also REPRO_CHAOS_RETRIES)")

    dump = sub.add_parser("dump", help="load a benchmark and dump its data")
    dump.add_argument("--benchmark", required=True,
                      choices=benchmark_names())
    dump.add_argument("--scale", type=float, default=0.5)
    dump.add_argument("--seed", type=int, default=42)
    dump.add_argument("--output", required=True)

    game = sub.add_parser("game", help="play one BenchPress course "
                                       "(perfect pilot, ASCII frames)")
    game.add_argument("--benchmark", default="voter",
                      choices=benchmark_names())
    game.add_argument("--dbms", default="oracle",
                      choices=sorted(PERSONALITIES))
    game.add_argument("--seed", type=int, default=42)

    serve = sub.add_parser(
        "serve", help="run the v1 control-plane HTTP server; workloads "
                      "are created over POST /v1/workloads")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)

    lint = sub.add_parser(
        "lint", help="run the repo-aware static analysis rules (RP001...)")
    lint.add_argument("paths", nargs="*", default=["src"],
                      help="files or directories to lint (default: src)")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--select", help="comma-separated rule ids to run")
    lint.add_argument("--ignore", help="comma-separated rule ids to skip")
    lint.add_argument("--statistics", action="store_true",
                      help="append a per-rule hit count to the text output")
    lint.add_argument("--explain", action="store_true",
                      help="print the rule table and exit")
    return parser


def _parse_rate(raw: str):
    if raw in ("unlimited", "disabled"):
        return raw
    return float(raw)


def _apply_chaos(manager, args) -> None:
    """Apply the ``--fault-*`` / ``--retries`` flags to one manager.

    The manager already picked up the ``REPRO_CHAOS_*`` environment
    defaults; explicit flags override them field by field.
    """
    fields = {name: value for name, value in (
        ("abort_probability", args.fault_aborts),
        ("latency_probability", args.fault_latency),
        ("lock_timeout_probability", args.fault_lock_timeouts),
        ("disconnect_probability", args.fault_disconnects),
    ) if value is not None}
    if fields:
        manager.set_fault_profile(fields)
    if args.retries is not None:
        manager.set_resilience({"max_attempts": args.retries})


def cmd_list(_args) -> int:
    print(f"{'class':17s}{'benchmark':18s}application domain")
    for row in table1():
        print(f"{row['class']:17s}{row['benchmark']:18s}{row['domain']}")
    return 0


def cmd_run(args) -> int:
    db = Database(args.benchmark)
    if args.restore:
        restore_database(args.restore, into=db)
        bench = create_benchmark(args.benchmark, db,
                                 scale_factor=args.scale, seed=args.seed)
        # The loader already ran when the dump was made; only the derived
        # parameters (row counts, id counters) need rebuilding.
        bench.derive_params()
    else:
        bench = create_benchmark(args.benchmark, db,
                                 scale_factor=args.scale, seed=args.seed)
        bench.load()
    print(f"loaded {args.benchmark}: "
          f"{sum(bench.table_counts().values())} rows", file=sys.stderr)

    if args.config:
        config = WorkloadConfiguration.from_json(args.config)
        config.benchmark = args.benchmark
    else:
        config = WorkloadConfiguration(
            benchmark=args.benchmark, workers=args.workers, seed=args.seed,
            phases=[Phase(duration=args.duration,
                          rate=_parse_rate(args.rate))])

    if args.threaded:
        executor = ThreadedExecutor(db, take_batch=args.take_batch)
        manager = WorkloadManager(bench, config,
                                  queue_shards=args.queue_shards)
        executor.add_workload(manager)
        _apply_chaos(manager, args)
        run_report = executor.run(timeout=config.total_duration() + 30)
        if run_report.get("error"):
            print(f"warning: {run_report['error']}", file=sys.stderr)
    else:
        clock = SimClock()
        manager = WorkloadManager(bench, config, clock=clock,
                                  queue_shards=args.queue_shards)
        executor = SimulatedExecutor(db, args.dbms, clock)
        executor.add_workload(manager)
        _apply_chaos(manager, args)
        executor.run()

    summary = manager.results.summary()
    chaos = {}
    if manager.faults.profile().enabled or args.retries is not None:
        chaos = {"resilience": manager.resilience_payload()}
    print(json.dumps({
        "benchmark": args.benchmark,
        "dbms": args.dbms if not args.threaded else "threaded",
        "committed": summary["committed"],
        "aborted": summary["aborted"],
        "postponed": summary["postponed"],
        "throughput_tps": round(summary["throughput"], 2),
        "jitter": round(TraceAnalyzer(manager.results).jitter(), 4),
        "per_txn": {
            name: {"committed": stats["committed"],
                   "avg_latency_ms": round(
                       stats["latency"].get("avg", 0.0) * 1000, 3)}
            for name, stats in summary["per_txn"].items()
        },
        **chaos,
    }, indent=2))
    if args.trace:
        with TraceWriter(args.trace) as writer:
            count = writer.write_results(manager.results)
        print(f"wrote {count} samples to {args.trace}", file=sys.stderr)
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            json.dumps(manager.metrics(), indent=2, default=str) + "\n")
        print(f"wrote streaming metrics to {args.metrics_out}",
              file=sys.stderr)
    return 0


def cmd_dump(args) -> int:
    db = Database(args.benchmark)
    bench = create_benchmark(args.benchmark, db, scale_factor=args.scale,
                             seed=args.seed)
    bench.load()
    manifest = dump_database(db, args.output)
    print(json.dumps({"output": args.output, "tables": manifest}, indent=2))
    return 0


def cmd_game(args) -> int:
    from .api import ControlApi
    from .benchpress import (Character, Course, GameSession, PerfectPilot,
                             peak, render_frame, sinusoidal, steps, tunnel)

    db = Database(args.benchmark)
    bench = create_benchmark(args.benchmark, db, scale_factor=0.5,
                             seed=args.seed)
    bench.load()
    course = Course.build([
        steps(base=80, step=60, count=4, width=10),
        sinusoidal(center=200, amplitude=100, period=24, duration=48),
        peak(low=120, high=400, lead=10, burst=6, tail=10),
        tunnel(level=180, duration=20),
    ], gap=6, start=8)
    clock = SimClock()
    config = WorkloadConfiguration(
        benchmark=args.benchmark, workers=16, seed=args.seed,
        tenant="player",
        phases=[Phase(duration=course.end + 20, rate=80)])
    manager = WorkloadManager(bench, config, clock=clock)
    executor = SimulatedExecutor(db, args.dbms, clock)
    executor.add_workload(manager)
    control = ControlApi()
    control.register(manager)
    session = GameSession(
        control, "player", course, pilot=PerfectPilot(lookahead=2),
        character=Character(requested_rate=80, jump_boost=40,
                            max_rate=100_000))
    session.run_on(executor)
    for when in range(10, int(course.end), 30):
        executor.at(float(when), lambda w=when: print(
            render_frame(session, float(w)) + "\n"))
    executor.run(until=course.end + 10)
    print(json.dumps(session.summary(), indent=2, default=str))
    return 0


def cmd_serve(args) -> int:
    import threading

    from .api import ApiServer, ControlApi

    control = ControlApi()
    with ApiServer(control, host=args.host, port=args.port) as server:
        print(f"v1 control plane listening on {server.url} "
              f"(POST {server.url}/v1/workloads to create a workload; "
              "Ctrl-C to stop)", file=sys.stderr)
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
    return 0


def cmd_lint(args) -> int:
    from .analysis import Linter
    from .analysis.reporters import render_explain, render_json, render_text

    if args.explain:
        print(render_explain())
        return 0
    split = (lambda raw: [p for p in raw.split(",") if p] if raw else None)
    try:
        linter = Linter(select=split(args.select), ignore=split(args.ignore))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}",
                  file=sys.stderr)
        return 2
    diagnostics = linter.lint_paths(paths)
    if args.format == "json":
        print(render_json(diagnostics))
    else:
        output = render_text(diagnostics, statistics=args.statistics)
        if output:
            print(output)
    return 1 if diagnostics else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"list": cmd_list, "run": cmd_run, "dump": cmd_dump,
                "game": cmd_game, "serve": cmd_serve, "lint": cmd_lint}
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        import os
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
