"""Clock abstraction: real wall-clock time and deterministic virtual time.

OLTP-Bench drives everything off wall-clock time (arrival schedules, phase
durations, latency measurement).  Reproducing its rate-control precision in
Python is awkward under the GIL, so the testbed is built against a ``Clock``
interface with two implementations:

* :class:`RealClock` — thin wrapper over ``time.monotonic`` / ``time.sleep``
  used by the threaded executor and the live control API.
* :class:`SimClock` — a discrete-event virtual clock used by the simulated
  executor.  Time advances only when the event loop pops the next event, so
  experiments are deterministic, exact, and orders of magnitude faster than
  real time.

All timestamps are ``float`` seconds.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Callable, Optional


class Clock:
    """Interface for time sources used throughout the testbed."""

    def now(self) -> float:
        """Return the current time in seconds (monotonic)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block (or virtually wait) for ``seconds``."""
        raise NotImplementedError

    @property
    def is_virtual(self) -> bool:
        return False


class RealClock(Clock):
    """Wall-clock time via ``time.monotonic``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class SimClock(Clock):
    """Virtual clock advanced explicitly by a discrete-event scheduler.

    ``sleep`` is not supported directly: simulated components must schedule
    events instead of blocking.  The clock carries its own event queue so a
    single object serves as both time source and scheduler.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    # -- Clock interface ---------------------------------------------------

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        raise RuntimeError(
            "SimClock components must schedule events via call_at/call_later "
            "instead of sleeping"
        )

    @property
    def is_virtual(self) -> bool:
        return True

    # -- scheduler ---------------------------------------------------------

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at virtual time ``when``.

        Events scheduled in the past run at the current time (FIFO among
        same-time events, preserving scheduling order).
        """
        when = max(when, self._now)
        heapq.heappush(self._events, (when, next(self._counter), callback))

    def call_later(self, delay: float, callback: Callable[[], None]) -> None:
        self.call_at(self._now + max(0.0, delay), callback)

    def pending(self) -> int:
        """Number of scheduled events not yet executed."""
        return len(self._events)

    def step(self) -> bool:
        """Pop and run the next event; return False when the queue is empty."""
        if not self._events:
            return False
        when, _seq, callback = heapq.heappop(self._events)
        self._now = when
        callback()
        return True

    def run_until(self, deadline: float) -> None:
        """Run events until the queue is exhausted or virtual time passes
        ``deadline``.  Leaves events scheduled after the deadline queued and
        advances the clock exactly to ``deadline``."""
        while self._events and self._events[0][0] <= deadline:
            self.step()
        if self._now < deadline:
            self._now = deadline

    def run(self) -> None:
        """Run until no events remain."""
        while self.step():
            pass


class StoppableSleeper:
    """Interruptible sleeping for threaded workers.

    ``time.sleep`` cannot be interrupted, which makes shutting down a worker
    mid think-time slow.  This helper sleeps on an event so that ``wake`` (or
    shutdown) returns immediately.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self._event = threading.Event()
        self._clock = clock or RealClock()

    def sleep(self, seconds: float) -> bool:
        """Sleep up to ``seconds``; return True if interrupted early."""
        if seconds <= 0:
            return False
        interrupted = self._event.wait(seconds)
        self._event.clear()
        return interrupted

    def wake(self) -> None:
        self._event.set()
