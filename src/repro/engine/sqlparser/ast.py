"""Abstract syntax tree nodes for the engine's SQL subset.

Nodes are plain dataclasses: the executor pattern-matches on their types.
Expression nodes all derive from :class:`Expr`; statement nodes from
:class:`Statement`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class Expr:
    """Base class for expression nodes."""


@dataclass(frozen=True)
class Literal(Expr):
    value: object


@dataclass(frozen=True)
class Param(Expr):
    """Positional parameter marker (``?``); ``index`` is 0-based."""
    index: int


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly table-qualified column reference."""
    table: Optional[str]
    column: str

    def display(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # one of + - * / % = <> < <= > >= and or ||
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # '-' or 'not'
    operand: Expr


@dataclass(frozen=True)
class Between(Expr):
    value: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class InList(Expr):
    value: Expr
    options: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class Like(Expr):
    value: Expr
    pattern: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    value: Expr
    negated: bool = False


@dataclass(frozen=True)
class FuncCall(Expr):
    """Function call; aggregates are detected by name in the executor."""
    name: str
    args: tuple[Expr, ...]
    distinct: bool = False
    star: bool = False  # COUNT(*)


@dataclass(frozen=True)
class CaseExpr(Expr):
    """Searched CASE WHEN cond THEN val ... [ELSE val] END."""
    branches: tuple[tuple[Expr, Expr], ...]
    default: Optional[Expr]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Base class for statement nodes."""


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None
    star: bool = False  # SELECT * or t.*
    star_table: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    table: TableRef
    condition: Optional[Expr]  # None for CROSS JOIN
    kind: str = "inner"  # inner | left | cross


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select(Statement):
    items: tuple[SelectItem, ...]
    table: Optional[TableRef]
    joins: tuple[Join, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None
    distinct: bool = False
    for_update: bool = False


@dataclass(frozen=True)
class Insert(Statement):
    table: str
    columns: tuple[str, ...]  # empty = all columns in schema order
    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True)
class Assignment:
    column: str
    value: Expr


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: tuple[Assignment, ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Optional[Expr] = None


@dataclass(frozen=True)
class ColumnDefAst:
    name: str
    type_name: str
    type_args: tuple[int, ...] = ()
    not_null: bool = False
    primary_key: bool = False
    default: Optional[Expr] = None


@dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: tuple[ColumnDefAst, ...]
    primary_key: tuple[str, ...] = ()
    if_not_exists: bool = False
    foreign_keys: tuple[tuple[tuple[str, ...], str, tuple[str, ...]], ...] = ()


@dataclass(frozen=True)
class CreateIndex(Statement):
    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False


@dataclass(frozen=True)
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class TransactionControl(Statement):
    action: str  # begin | commit | rollback


def walk(expr: Expr):
    """Yield ``expr`` and all sub-expressions depth-first."""
    yield expr
    if isinstance(expr, BinaryOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk(expr.operand)
    elif isinstance(expr, Between):
        yield from walk(expr.value)
        yield from walk(expr.low)
        yield from walk(expr.high)
    elif isinstance(expr, InList):
        yield from walk(expr.value)
        for option in expr.options:
            yield from walk(option)
    elif isinstance(expr, Like):
        yield from walk(expr.value)
        yield from walk(expr.pattern)
    elif isinstance(expr, IsNull):
        yield from walk(expr.value)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            yield from walk(arg)
    elif isinstance(expr, CaseExpr):
        for cond, val in expr.branches:
            yield from walk(cond)
            yield from walk(val)
        if expr.default is not None:
            yield from walk(expr.default)


def count_params(stmt: Statement) -> int:
    """Number of positional parameters a statement expects."""
    exprs: list[Expr] = []
    if isinstance(stmt, Select):
        exprs.extend(item.expr for item in stmt.items if not item.star)
        for join in stmt.joins:
            if join.condition is not None:
                exprs.append(join.condition)
        for optional in (stmt.where, stmt.having, stmt.limit, stmt.offset):
            if optional is not None:
                exprs.append(optional)
        exprs.extend(stmt.group_by)
        exprs.extend(item.expr for item in stmt.order_by)
    elif isinstance(stmt, Insert):
        for row in stmt.rows:
            exprs.extend(row)
    elif isinstance(stmt, Update):
        exprs.extend(a.value for a in stmt.assignments)
        if stmt.where is not None:
            exprs.append(stmt.where)
    elif isinstance(stmt, Delete):
        if stmt.where is not None:
            exprs.append(stmt.where)
    count = 0
    for expr in exprs:
        for node in walk(expr):
            if isinstance(node, Param):
                count = max(count, node.index + 1)
    return count
