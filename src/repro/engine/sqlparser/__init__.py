"""SQL lexer, AST, and parser for the engine's SQL subset."""

from . import ast
from .lexer import Token, tokenize
from .parser import Parser, parse

__all__ = ["ast", "Token", "tokenize", "Parser", "parse"]
