"""SQL tokenizer for the engine's SQL subset.

The lexer is deliberately simple: it recognises identifiers (optionally
double-quoted), keywords, numeric and string literals, parameter markers
(``?``), operators, and punctuation.  Comments (``--`` and ``/* */``) are
skipped.  Keywords are case-insensitive; identifiers are normalised to lower
case unless quoted, matching common DBMS behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ProgrammingError

KEYWORDS = frozenset({
    "select", "from", "where", "insert", "into", "values", "update", "set",
    "delete", "create", "drop", "table", "index", "unique", "primary", "key",
    "not", "null", "and", "or", "in", "between", "like", "is", "as", "on",
    "join", "inner", "left", "outer", "cross", "order", "by", "asc", "desc",
    "limit", "offset", "group", "having", "distinct", "if", "exists",
    "for", "begin", "commit", "rollback", "true", "false", "case", "when",
    "then", "else", "end", "references", "foreign", "default",
})

TWO_CHAR_OPS = ("<=", ">=", "<>", "!=", "||")
ONE_CHAR_OPS = "+-*/%<>=(),.?;"


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``kind`` is one of ``keyword``, ``ident``, ``number``, ``string``,
    ``param``, ``op``, or ``eof``.  ``value`` holds the normalised text (or
    the parsed numeric value for numbers).
    """

    kind: str
    value: object
    pos: int

    def matches(self, kind: str, value: object = None) -> bool:
        return self.kind == kind and (value is None or self.value == value)


def tokenize(sql: str) -> list[Token]:
    """Convert ``sql`` into a token list terminated by an ``eof`` token."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise ProgrammingError(f"unterminated comment at {i}")
            i = end + 2
            continue
        if ch == "'":
            value, i = _read_string(sql, i)
            tokens.append(Token("string", value, i))
            continue
        if ch == '"':
            end = sql.find('"', i + 1)
            if end < 0:
                raise ProgrammingError(f"unterminated quoted identifier at {i}")
            tokens.append(Token("ident", sql[i + 1:end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            value, i = _read_number(sql, i)
            tokens.append(Token("number", value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            lower = word.lower()
            if lower in KEYWORDS:
                tokens.append(Token("keyword", lower, start))
            else:
                tokens.append(Token("ident", lower, start))
            continue
        two = sql[i:i + 2]
        if two in TWO_CHAR_OPS:
            tokens.append(Token("op", two, i))
            i += 2
            continue
        if ch == "?":
            tokens.append(Token("param", "?", i))
            i += 1
            continue
        if ch in ONE_CHAR_OPS:
            tokens.append(Token("op", ch, i))
            i += 1
            continue
        raise ProgrammingError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("eof", None, n))
    return tokens


def _read_string(sql: str, i: int) -> tuple[str, int]:
    """Read a single-quoted string literal with '' escaping."""
    parts: list[str] = []
    i += 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise ProgrammingError("unterminated string literal")


def _read_number(sql: str, i: int) -> tuple[object, int]:
    start = i
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and sql[i] in "+-":
                i += 1
        else:
            break
    text = sql[start:i]
    if seen_dot or seen_exp:
        return float(text), i
    return int(text), i
