"""Recursive-descent parser for the engine's SQL subset.

Grammar (informal):

    stmt        := select | insert | update | delete | create_table
                 | create_index | drop_table | txn_control
    select      := SELECT [DISTINCT] items FROM table_ref join* [WHERE expr]
                   [GROUP BY exprs [HAVING expr]] [ORDER BY order_items]
                   [LIMIT expr [OFFSET expr]] [FOR UPDATE]
    expr        := or_expr with the usual precedence
                   (OR < AND < NOT < comparison < additive < multiplicative)

Parsed statements are cached by the database facade, so the parser favours
clarity over raw speed.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ...errors import ProgrammingError
from . import ast
from .lexer import Token, tokenize

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class Parser:
    """Single-use parser over a token stream."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0
        self._param_counter = itertools.count()

    # -- token helpers -------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _next(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def _accept(self, kind: str, value: object = None) -> Optional[Token]:
        if self._peek().matches(kind, value):
            return self._next()
        return None

    def _expect(self, kind: str, value: object = None) -> Token:
        token = self._peek()
        if not token.matches(kind, value):
            want = value if value is not None else kind
            raise ProgrammingError(
                f"expected {want!r} but found {token.value!r} "
                f"at position {token.pos} in: {self.sql!r}"
            )
        return self._next()

    def _accept_keyword(self, *words: str) -> bool:
        """Consume a keyword sequence if it matches entirely."""
        save = self.pos
        for word in words:
            if not self._accept("keyword", word):
                self.pos = save
                return False
        return True

    # -- entry point -----------------------------------------------------

    def parse(self) -> ast.Statement:
        token = self._peek()
        if token.kind != "keyword":
            raise ProgrammingError(f"cannot parse statement: {self.sql!r}")
        handlers = {
            "select": self._parse_select,
            "insert": self._parse_insert,
            "update": self._parse_update,
            "delete": self._parse_delete,
            "create": self._parse_create,
            "drop": self._parse_drop,
            "begin": lambda: self._parse_txn("begin"),
            "commit": lambda: self._parse_txn("commit"),
            "rollback": lambda: self._parse_txn("rollback"),
        }
        handler = handlers.get(token.value)
        if handler is None:
            raise ProgrammingError(f"unsupported statement: {token.value!r}")
        stmt = handler()
        self._accept("op", ";")
        self._expect("eof")
        return stmt

    # -- statements ------------------------------------------------------

    def _parse_txn(self, action: str) -> ast.TransactionControl:
        self._next()
        return ast.TransactionControl(action)

    def _parse_select(self) -> ast.Select:
        self._expect("keyword", "select")
        distinct = bool(self._accept("keyword", "distinct"))
        items = [self._parse_select_item()]
        while self._accept("op", ","):
            items.append(self._parse_select_item())

        table: Optional[ast.TableRef] = None
        joins: list[ast.Join] = []
        if self._accept("keyword", "from"):
            table = self._parse_table_ref()
            while True:
                if self._accept("op", ","):
                    joins.append(ast.Join(self._parse_table_ref(), None, "cross"))
                    continue
                kind = self._parse_join_kind()
                if kind is None:
                    break
                joined = self._parse_table_ref()
                condition = None
                if kind != "cross":
                    self._expect("keyword", "on")
                    condition = self._parse_expr()
                joins.append(ast.Join(joined, condition, kind))

        where = self._parse_expr() if self._accept("keyword", "where") else None

        group_by: list[ast.Expr] = []
        having = None
        if self._accept_keyword("group", "by"):
            group_by.append(self._parse_expr())
            while self._accept("op", ","):
                group_by.append(self._parse_expr())
            if self._accept("keyword", "having"):
                having = self._parse_expr()

        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("order", "by"):
            order_by.append(self._parse_order_item())
            while self._accept("op", ","):
                order_by.append(self._parse_order_item())

        limit = offset = None
        if self._accept("keyword", "limit"):
            limit = self._parse_expr()
            if self._accept("keyword", "offset"):
                offset = self._parse_expr()

        for_update = self._accept_keyword("for", "update")

        return ast.Select(
            items=tuple(items), table=table, joins=tuple(joins), where=where,
            group_by=tuple(group_by), having=having, order_by=tuple(order_by),
            limit=limit, offset=offset, distinct=distinct,
            for_update=bool(for_update),
        )

    def _parse_join_kind(self) -> Optional[str]:
        if self._accept_keyword("inner", "join") or self._accept("keyword", "join"):
            return "inner"
        if self._accept_keyword("left", "outer", "join") or \
                self._accept_keyword("left", "join"):
            return "left"
        if self._accept_keyword("cross", "join"):
            return "cross"
        return None

    def _parse_select_item(self) -> ast.SelectItem:
        if self._accept("op", "*"):
            return ast.SelectItem(ast.Literal(None), star=True)
        # t.* form
        save = self.pos
        ident = self._accept("ident")
        if ident and self._accept("op", ".") and self._accept("op", "*"):
            return ast.SelectItem(ast.Literal(None), star=True,
                                  star_table=str(ident.value))
        self.pos = save
        expr = self._parse_expr()
        alias = None
        if self._accept("keyword", "as"):
            alias = str(self._expect("ident").value)
        elif self._peek().kind == "ident":
            alias = str(self._next().value)
        return ast.SelectItem(expr, alias=alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self._parse_expr()
        descending = False
        if self._accept("keyword", "desc"):
            descending = True
        else:
            self._accept("keyword", "asc")
        return ast.OrderItem(expr, descending)

    def _parse_table_ref(self) -> ast.TableRef:
        name = str(self._expect("ident").value)
        alias = None
        if self._accept("keyword", "as"):
            alias = str(self._expect("ident").value)
        elif self._peek().kind == "ident":
            alias = str(self._next().value)
        return ast.TableRef(name, alias)

    def _parse_insert(self) -> ast.Insert:
        self._expect("keyword", "insert")
        self._expect("keyword", "into")
        table = str(self._expect("ident").value)
        columns: list[str] = []
        if self._accept("op", "("):
            columns.append(str(self._expect("ident").value))
            while self._accept("op", ","):
                columns.append(str(self._expect("ident").value))
            self._expect("op", ")")
        self._expect("keyword", "values")
        rows = [self._parse_value_row()]
        while self._accept("op", ","):
            rows.append(self._parse_value_row())
        return ast.Insert(table, tuple(columns), tuple(rows))

    def _parse_value_row(self) -> tuple[ast.Expr, ...]:
        self._expect("op", "(")
        values = [self._parse_expr()]
        while self._accept("op", ","):
            values.append(self._parse_expr())
        self._expect("op", ")")
        return tuple(values)

    def _parse_update(self) -> ast.Update:
        self._expect("keyword", "update")
        table = str(self._expect("ident").value)
        self._expect("keyword", "set")
        assignments = [self._parse_assignment()]
        while self._accept("op", ","):
            assignments.append(self._parse_assignment())
        where = self._parse_expr() if self._accept("keyword", "where") else None
        return ast.Update(table, tuple(assignments), where)

    def _parse_assignment(self) -> ast.Assignment:
        column = str(self._expect("ident").value)
        self._expect("op", "=")
        return ast.Assignment(column, self._parse_expr())

    def _parse_delete(self) -> ast.Delete:
        self._expect("keyword", "delete")
        self._expect("keyword", "from")
        table = str(self._expect("ident").value)
        where = self._parse_expr() if self._accept("keyword", "where") else None
        return ast.Delete(table, where)

    def _parse_drop(self) -> ast.DropTable:
        self._expect("keyword", "drop")
        self._expect("keyword", "table")
        if_exists = self._accept_keyword("if", "exists")
        name = str(self._expect("ident").value)
        return ast.DropTable(name, bool(if_exists))

    def _parse_create(self) -> ast.Statement:
        self._expect("keyword", "create")
        if self._accept("keyword", "table"):
            return self._parse_create_table()
        unique = bool(self._accept("keyword", "unique"))
        self._expect("keyword", "index")
        name = str(self._expect("ident").value)
        self._expect("keyword", "on")
        table = str(self._expect("ident").value)
        self._expect("op", "(")
        columns = [str(self._expect("ident").value)]
        while self._accept("op", ","):
            columns.append(str(self._expect("ident").value))
        self._expect("op", ")")
        return ast.CreateIndex(name, table, tuple(columns), unique)

    def _parse_create_table(self) -> ast.CreateTable:
        if_not_exists = False
        if self._accept("keyword", "if"):
            self._expect("keyword", "not")
            self._expect("keyword", "exists")
            if_not_exists = True
        name = str(self._expect("ident").value)
        self._expect("op", "(")
        columns: list[ast.ColumnDefAst] = []
        pk: tuple[str, ...] = ()
        fks: list[tuple[tuple[str, ...], str, tuple[str, ...]]] = []
        while True:
            if self._accept_keyword("primary", "key"):
                pk = self._parse_paren_name_list()
            elif self._accept_keyword("foreign", "key"):
                local = self._parse_paren_name_list()
                self._expect("keyword", "references")
                ref_table = str(self._expect("ident").value)
                remote: tuple[str, ...] = ()
                if self._peek().matches("op", "("):
                    remote = self._parse_paren_name_list()
                fks.append((local, ref_table, remote))
            else:
                columns.append(self._parse_column_def())
            if not self._accept("op", ","):
                break
        self._expect("op", ")")
        inline_pk = tuple(c.name for c in columns if c.primary_key)
        if inline_pk and pk:
            raise ProgrammingError("duplicate PRIMARY KEY specification")
        return ast.CreateTable(name, tuple(columns), pk or inline_pk,
                               if_not_exists, tuple(fks))

    def _parse_paren_name_list(self) -> tuple[str, ...]:
        self._expect("op", "(")
        names = [str(self._expect("ident").value)]
        while self._accept("op", ","):
            names.append(str(self._expect("ident").value))
        self._expect("op", ")")
        return tuple(names)

    def _parse_column_def(self) -> ast.ColumnDefAst:
        name = str(self._expect("ident").value)
        type_token = self._next()
        if type_token.kind not in ("ident", "keyword"):
            raise ProgrammingError(f"expected a type name after column {name!r}")
        type_name = str(type_token.value)
        type_args: list[int] = []
        if self._accept("op", "("):
            type_args.append(int(self._expect("number").value))
            while self._accept("op", ","):
                type_args.append(int(self._expect("number").value))
            self._expect("op", ")")
        not_null = False
        primary_key = False
        default: Optional[ast.Expr] = None
        while True:
            if self._accept_keyword("not", "null"):
                not_null = True
            elif self._accept_keyword("primary", "key"):
                primary_key = True
                not_null = True
            elif self._accept("keyword", "default"):
                default = self._parse_primary()
            elif self._accept("keyword", "null"):
                continue
            elif self._accept("keyword", "references"):
                self._expect("ident")
                if self._peek().matches("op", "("):
                    self._parse_paren_name_list()
            else:
                break
        return ast.ColumnDefAst(name, type_name.lower(), tuple(type_args),
                                not_null, primary_key, default)

    # -- expressions -------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._accept("keyword", "or"):
            left = ast.BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._accept("keyword", "and"):
            left = ast.BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._accept("keyword", "not"):
            return ast.UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "op" and token.value in _COMPARISONS:
            op = str(self._next().value)
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self._parse_additive())
        negated = bool(self._accept("keyword", "not"))
        if self._accept("keyword", "between"):
            low = self._parse_additive()
            self._expect("keyword", "and")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated)
        if self._accept("keyword", "in"):
            self._expect("op", "(")
            options = [self._parse_expr()]
            while self._accept("op", ","):
                options.append(self._parse_expr())
            self._expect("op", ")")
            return ast.InList(left, tuple(options), negated)
        if self._accept("keyword", "like"):
            return ast.Like(left, self._parse_additive(), negated)
        if self._accept("keyword", "is"):
            is_negated = bool(self._accept("keyword", "not"))
            self._expect("keyword", "null")
            return ast.IsNull(left, is_negated)
        if negated:
            raise ProgrammingError("dangling NOT in expression")
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("+", "-", "||"):
                op = str(self._next().value)
                left = ast.BinaryOp(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("*", "/", "%"):
                op = str(self._next().value)
                left = ast.BinaryOp(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        if self._accept("op", "-"):
            return ast.UnaryOp("-", self._parse_unary())
        if self._accept("op", "+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "number" or token.kind == "string":
            self._next()
            return ast.Literal(token.value)
        if token.kind == "param":
            self._next()
            return ast.Param(next(self._param_counter))
        if token.matches("keyword", "null"):
            self._next()
            return ast.Literal(None)
        if token.matches("keyword", "true"):
            self._next()
            return ast.Literal(True)
        if token.matches("keyword", "false"):
            self._next()
            return ast.Literal(False)
        if token.matches("keyword", "case"):
            return self._parse_case()
        if token.matches("op", "("):
            self._next()
            expr = self._parse_expr()
            self._expect("op", ")")
            return expr
        if token.kind == "ident":
            return self._parse_name_or_call()
        raise ProgrammingError(
            f"unexpected token {token.value!r} at position {token.pos} "
            f"in: {self.sql!r}"
        )

    def _parse_case(self) -> ast.Expr:
        self._expect("keyword", "case")
        branches: list[tuple[ast.Expr, ast.Expr]] = []
        while self._accept("keyword", "when"):
            cond = self._parse_expr()
            self._expect("keyword", "then")
            branches.append((cond, self._parse_expr()))
        default = self._parse_expr() if self._accept("keyword", "else") else None
        self._expect("keyword", "end")
        if not branches:
            raise ProgrammingError("CASE requires at least one WHEN branch")
        return ast.CaseExpr(tuple(branches), default)

    def _parse_name_or_call(self) -> ast.Expr:
        name = str(self._expect("ident").value)
        if self._accept("op", "("):
            distinct = bool(self._accept("keyword", "distinct"))
            if self._accept("op", "*"):
                self._expect("op", ")")
                return ast.FuncCall(name, (), star=True)
            args: list[ast.Expr] = []
            if not self._peek().matches("op", ")"):
                args.append(self._parse_expr())
                while self._accept("op", ","):
                    args.append(self._parse_expr())
            self._expect("op", ")")
            return ast.FuncCall(name, tuple(args), distinct=distinct)
        if self._accept("op", "."):
            column = str(self._expect("ident").value)
            return ast.ColumnRef(name, column)
        return ast.ColumnRef(None, name)


def parse(sql: str) -> ast.Statement:
    """Parse a single SQL statement."""
    return Parser(sql).parse()
