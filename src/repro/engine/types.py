"""SQL type system: declared types, coercion, and comparison semantics.

The engine is dynamically typed like SQLite — values are stored as Python
``int``/``float``/``str``/``bool``/``None`` — but columns carry a declared
type used for input coercion (so ``VARCHAR(16)`` truncation and integer
affinity behave like a conventional DBMS) and for metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import DataError

# Canonical affinity names.
INTEGER = "integer"
FLOAT = "float"
TEXT = "text"
BOOLEAN = "boolean"
TIMESTAMP = "timestamp"

_TYPE_AFFINITY = {
    "int": INTEGER, "integer": INTEGER, "bigint": INTEGER,
    "smallint": INTEGER, "tinyint": INTEGER, "serial": INTEGER,
    "float": FLOAT, "double": FLOAT, "real": FLOAT, "decimal": FLOAT,
    "numeric": FLOAT, "number": FLOAT,
    "varchar": TEXT, "char": TEXT, "character": TEXT, "text": TEXT,
    "clob": TEXT, "string": TEXT, "longvarchar": TEXT,
    "bool": BOOLEAN, "boolean": BOOLEAN,
    "timestamp": TIMESTAMP, "datetime": TIMESTAMP, "date": TIMESTAMP,
    "time": TIMESTAMP,
    "blob": TEXT, "binary": TEXT, "varbinary": TEXT,
}


@dataclass(frozen=True)
class SqlType:
    """A declared column type: name plus optional length/precision args."""

    name: str
    args: tuple[int, ...] = ()

    @property
    def affinity(self) -> str:
        try:
            return _TYPE_AFFINITY[self.name]
        except KeyError:
            raise DataError(f"unknown SQL type: {self.name!r}") from None

    @property
    def max_length(self) -> Optional[int]:
        """Declared length for character types, if any."""
        if self.affinity == TEXT and self.args:
            return self.args[0]
        return None

    def coerce(self, value: object) -> object:
        """Coerce an input ``value`` to this type's affinity.

        ``None`` passes through (NULL).  Raises :class:`DataError` when the
        value cannot be represented.
        """
        if value is None:
            return None
        affinity = self.affinity
        if affinity == INTEGER:
            return _coerce_int(value, self.name)
        if affinity == FLOAT:
            return _coerce_float(value, self.name)
        if affinity == BOOLEAN:
            return _coerce_bool(value, self.name)
        if affinity == TIMESTAMP:
            return _coerce_timestamp(value, self.name)
        # TEXT: stringify and enforce declared length by truncation,
        # mirroring the permissive behaviour of MySQL in non-strict mode.
        text = value if isinstance(value, str) else str(value)
        limit = self.max_length
        if limit is not None and len(text) > limit:
            return text[:limit]
        return text

    def render(self) -> str:
        if self.args:
            return f"{self.name}({','.join(str(a) for a in self.args)})"
        return self.name


def _coerce_int(value: object, type_name: str) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        raise DataError(f"cannot store non-integral {value!r} in {type_name}")
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            raise DataError(
                f"cannot store string {value!r} in {type_name}") from None
    raise DataError(f"cannot store {type(value).__name__} in {type_name}")


def _coerce_float(value: object, type_name: str) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            raise DataError(
                f"cannot store string {value!r} in {type_name}") from None
    raise DataError(f"cannot store {type(value).__name__} in {type_name}")


def _coerce_bool(value: object, type_name: str) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value != 0
    if isinstance(value, str):
        lowered = value.lower()
        if lowered in ("true", "t", "1", "yes"):
            return True
        if lowered in ("false", "f", "0", "no"):
            return False
    raise DataError(f"cannot store {value!r} in {type_name}")


def _coerce_timestamp(value: object, type_name: str) -> float:
    """Timestamps are stored as POSIX float seconds for simplicity."""
    if isinstance(value, bool):
        raise DataError(f"cannot store bool in {type_name}")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            raise DataError(
                f"timestamp strings must be numeric seconds, got {value!r}"
            ) from None
    raise DataError(f"cannot store {type(value).__name__} in {type_name}")


def compare_values(a: object, b: object) -> Optional[int]:
    """Three-way compare with SQL semantics.

    Returns -1/0/1, or ``None`` when either side is NULL (SQL UNKNOWN).
    Numeric values compare numerically across int/float/bool; strings
    compare lexicographically; mixed string/number comparisons attempt a
    numeric interpretation of the string and fall back to string compare.
    """
    if a is None or b is None:
        return None
    a = _comparable(a)
    b = _comparable(b)
    if isinstance(a, str) != isinstance(b, str):
        # Mixed compare: try to bring the string to a number.
        if isinstance(a, str):
            try:
                a = float(a)
            except ValueError:
                b = str(b)
        else:
            try:
                b = float(b)
            except ValueError:
                a = str(a)
    if a < b:  # type: ignore[operator]
        return -1
    if a > b:  # type: ignore[operator]
        return 1
    return 0


def _comparable(value: object) -> object:
    if isinstance(value, bool):
        return int(value)
    return value
