"""Compile-once query plans for the embedded engine's hot path.

The interpreted :class:`~repro.engine.executor.Executor` re-derives
sources, access paths, and projections on every call, and
``expr.evaluate`` walks the AST with ``isinstance`` dispatch plus
per-row column-name resolution.  This module pays that analysis cost
once per ``(sql, catalog_version)``:

* every ``ColumnRef`` is resolved at compile time to a fixed
  ``(source slot, tuple index)`` pair;
* predicates, projections, order keys, and aggregate arguments are
  compiled into nested Python closures with the exact three-valued
  semantics of the interpreter (shared via ``expr.apply_binary`` /
  ``apply_unary`` / ``apply_scalar_func``);
* each source's access path — equality-index probe, integer-PK range
  unroll, or full scan — is chosen once, with the same runtime
  fallback cascade the interpreter uses when a probe key cannot be
  evaluated.

A compiled closure takes ``(rows, params)`` where ``rows`` is an
indexable sequence of per-slot row tuples (``None`` for a missed LEFT
JOIN side) and returns a plain value; NULL is ``None`` throughout.

Semantic errors (unknown/ambiguous columns, unknown tables, bad
aggregate usage) surface here at *prepare* time as
:class:`ProgrammingError` with the same messages the interpreter
raises mid-scan.  Statement shapes the compiler does not understand
raise :class:`Unsupported`, which callers treat as "run interpreted".

The module also hosts the generic :class:`LruCache` (statement cache)
and :class:`PlanCache` (plans keyed by ``(sql, catalog_version)``,
invalidated wholesale on DDL) with hit/miss/evict/invalidation
counters surfaced through the monitoring stack.
"""

from __future__ import annotations

import operator
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Optional, Sequence

from ..errors import ProgrammingError
from .catalog import Catalog, ColumnDef, IndexDef, TableSchema
from .expr import (AGGREGATES, _SCALAR_FUNCS, _compare_bool, _kleene_and,
                   _stringify, apply_binary, apply_scalar_func, apply_unary,
                   evaluate, like_match)
from .sqlparser import ast

#: A compiled expression: ``fn(rows, params) -> value``.
ExprFn = Callable[[Sequence[Optional[tuple]], Sequence[object]], object]

#: A compiled aggregate-context expression:
#: ``fn(agg_values, first_rows, params) -> value``.
AggFn = Callable[["LazyAggs", Optional[Sequence[Optional[tuple]]],
                  Sequence[object]], object]


class Unsupported(Exception):
    """Statement shape the plan compiler cannot handle; run interpreted.

    Deliberately *not* a DatabaseError subclass: it must never escape
    to callers — :meth:`Database.prepare_exec` catches it and falls
    back to the tree-walking executor.
    """


class Scope:
    """Compile-time column resolution over the plan's source slots.

    Mirrors :class:`repro.engine.expr.RowContext` resolution — same
    lookup rules, same error messages — but resolves once, to a fixed
    ``(slot, position)`` pair, instead of per row.
    """

    __slots__ = ("slots",)

    def __init__(self, slots: Sequence[tuple[str, TableSchema]]) -> None:
        self.slots = list(slots)

    def resolve(self, table: Optional[str], column: str) -> tuple[int, int]:
        if table is not None:
            for slot, (binding, schema) in enumerate(self.slots):
                if binding == table:
                    return slot, schema.position(column)
            raise ProgrammingError(f"unknown table binding {table!r}")
        owners = [
            (slot, schema.position(column))
            for slot, (_binding, schema) in enumerate(self.slots)
            if schema.has_column(column)
        ]
        if not owners:
            raise ProgrammingError(f"unknown column {column!r}")
        if len(owners) > 1:
            raise ProgrammingError(f"ambiguous column {column!r}")
        return owners[0]


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------


_DIRECT_CMP = {
    "=": operator.eq, "<>": operator.ne, "<": operator.lt,
    "<=": operator.le, ">": operator.gt, ">=": operator.ge,
}


def tuple_fn(fns: Sequence[ExprFn]) -> ExprFn:
    """Fuse closures into one ``(rows, params) -> tuple`` builder.

    Small arities are unrolled so the per-row cost is plain calls with
    no generator object; this sits on every projection, index-probe
    key, and GROUP BY key evaluation.
    """
    if len(fns) == 1:
        f0, = fns
        return lambda rows, params: (f0(rows, params),)
    if len(fns) == 2:
        f0, f1 = fns
        return lambda rows, params: (f0(rows, params), f1(rows, params))
    if len(fns) == 3:
        f0, f1, f2 = fns
        return lambda rows, params: (
            f0(rows, params), f1(rows, params), f2(rows, params))
    if len(fns) == 4:
        f0, f1, f2, f3 = fns
        return lambda rows, params: (
            f0(rows, params), f1(rows, params), f2(rows, params),
            f3(rows, params))
    frozen = tuple(fns)
    return lambda rows, params: tuple(f(rows, params) for f in frozen)


def compile_expr(expr: ast.Expr, scope: Scope) -> ExprFn:
    """Compile ``expr`` into a closure with ``evaluate``'s semantics."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda rows, params: value
    if isinstance(expr, ast.Param):
        index = expr.index
        def param_fn(rows, params):
            try:
                return params[index]
            except IndexError:
                raise ProgrammingError(
                    f"statement expects at least {index + 1} parameters, "
                    f"got {len(params)}") from None
        return param_fn
    if isinstance(expr, ast.ColumnRef):
        slot, position = scope.resolve(expr.table, expr.column)
        def column_fn(rows, params):
            values = rows[slot]
            return values[position] if values is not None else None
        return column_fn
    if isinstance(expr, ast.BinaryOp):
        op = expr.op
        left = compile_expr(expr.left, scope)
        right = compile_expr(expr.right, scope)
        if op in _DIRECT_CMP:
            # Same-type int/str operands compare identically under
            # ``compare_values`` (``_comparable`` is the identity and
            # both sides take the same branch), so the native operator
            # is safe; everything else keeps the full coercion chain.
            # bool is excluded because ``type(x) is int`` rejects it.
            direct = _DIRECT_CMP[op]
            def cmp_fn(rows, params):
                lv = left(rows, params)
                rv = right(rows, params)
                if lv is None or rv is None:
                    return None
                kind = type(lv)
                if kind is type(rv) and (kind is int or kind is str):
                    return direct(lv, rv)
                return _compare_bool(lv, rv, op)
            return cmp_fn
        # AND/OR stay eager over both operands, exactly like the
        # interpreter (errors and NULLs from either side are observed).
        return lambda rows, params: apply_binary(
            op, left(rows, params), right(rows, params))
    if isinstance(expr, ast.UnaryOp):
        op = expr.op
        operand = compile_expr(expr.operand, scope)
        return lambda rows, params: apply_unary(op, operand(rows, params))
    if isinstance(expr, ast.Between):
        value_fn = compile_expr(expr.value, scope)
        low_fn = compile_expr(expr.low, scope)
        high_fn = compile_expr(expr.high, scope)
        negated = expr.negated
        def between_fn(rows, params):
            value = value_fn(rows, params)
            result = _kleene_and(
                _compare_bool(value, low_fn(rows, params), ">="),
                _compare_bool(value, high_fn(rows, params), "<="))
            if result is None or not negated:
                return result
            return not result
        return between_fn
    if isinstance(expr, ast.InList):
        value_fn = compile_expr(expr.value, scope)
        option_fns = tuple(compile_expr(o, scope) for o in expr.options)
        negated = expr.negated
        def in_fn(rows, params):
            value = value_fn(rows, params)
            if value is None:
                return None
            saw_null = False
            for option_fn in option_fns:
                result = _compare_bool(value, option_fn(rows, params), "=")
                if result is True:
                    return not negated
                if result is None:
                    saw_null = True
            if saw_null:
                return None
            return negated
        return in_fn
    if isinstance(expr, ast.Like):
        value_fn = compile_expr(expr.value, scope)
        pattern_fn = compile_expr(expr.pattern, scope)
        negated = expr.negated
        def like_fn(rows, params):
            value = value_fn(rows, params)
            pattern = pattern_fn(rows, params)
            if value is None or pattern is None:
                return None
            return like_match(_stringify(value),
                              _stringify(pattern)) != negated
        return like_fn
    if isinstance(expr, ast.IsNull):
        value_fn = compile_expr(expr.value, scope)
        negated = expr.negated
        return lambda rows, params: (value_fn(rows, params) is None) != negated
    if isinstance(expr, ast.FuncCall):
        name = expr.name
        if name in AGGREGATES:
            raise ProgrammingError(
                f"aggregate {name!r} used outside aggregation context")
        if name not in _SCALAR_FUNCS:
            raise ProgrammingError(f"unknown function {name!r}")
        arg_fns = tuple(compile_expr(arg, scope) for arg in expr.args)
        return lambda rows, params: apply_scalar_func(
            name, [fn(rows, params) for fn in arg_fns])
    if isinstance(expr, ast.CaseExpr):
        branch_fns = tuple(
            (compile_expr(cond, scope), compile_expr(val, scope))
            for cond, val in expr.branches)
        default_fn = (compile_expr(expr.default, scope)
                      if expr.default is not None else None)
        def case_fn(rows, params):
            for cond_fn, val_fn in branch_fns:
                if cond_fn(rows, params) is True:
                    return val_fn(rows, params)
            if default_fn is not None:
                return default_fn(rows, params)
            return None
        return case_fn
    raise ProgrammingError(f"cannot evaluate expression node {expr!r}")


def _compile_conjunction(predicates: Sequence[ast.Expr],
                         scope: Scope) -> Optional[ExprFn]:
    """Compile residual predicates into one ``is_true``-folded test."""
    if not predicates:
        return None
    fns = tuple(compile_expr(p, scope) for p in predicates)
    if len(fns) == 1:
        single = fns[0]
        return lambda rows, params: single(rows, params) is True
    def conjunction_fn(rows, params):
        # Matches all(is_true(evaluate(p)) ...): stop at the first
        # non-TRUE conjunct.
        for fn in fns:
            if fn(rows, params) is not True:
                return False
        return True
    return conjunction_fn


# ---------------------------------------------------------------------------
# Access paths
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IndexProbe:
    """Equality probe: evaluate the fused key closure, look up the index."""

    index_name: str
    key_fn: ExprFn  # (rows, params) -> key tuple


@dataclass(frozen=True)
class PkRangeProbe:
    """Integer single-column-PK range unrolled into point lookups.

    ``bound_fns`` mirror the interpreter's ``_pk_bound``: each returns
    ``("lo", v)``, ``("hi", v)``, ``("between", (lo, hi))``, or ``None``
    when its operand is non-integer or not evaluable yet.
    """

    bound_fns: tuple[Callable[..., Optional[tuple[str, object]]], ...]

    def resolve(self, rows: Sequence[Optional[tuple]],
                params: Sequence[object],
                max_unroll: int) -> Optional[range]:
        lo: Optional[int] = None
        hi: Optional[int] = None  # exclusive
        for bound_fn in self.bound_fns:
            bound = bound_fn(rows, params)
            if bound is None:
                continue
            kind, value = bound
            if kind == "lo":
                lo = value if lo is None else max(lo, value)
            elif kind == "hi":
                hi = value if hi is None else min(hi, value)
            else:  # between: (lo, hi) inclusive pair
                b_lo, b_hi = value
                lo = b_lo if lo is None else max(lo, b_lo)
                hi = b_hi + 1 if hi is None else min(hi, b_hi + 1)
        if lo is None or hi is None:
            return None
        if hi - lo > max_unroll or hi <= lo:
            return None if hi > lo else range(0)
        return range(lo, hi)


def _compile_const(expr: ast.Expr, prefix_scope: Scope) -> Optional[ExprFn]:
    """Compile an expression evaluable before this source's row binds.

    Returns None when the expression references bindings not yet in
    scope — the interpreter's runtime ``ProgrammingError`` → give-up
    path, decided here once at compile time.
    """
    try:
        return compile_expr(expr, prefix_scope)
    except ProgrammingError:
        return None


def _compile_int_const(expr: ast.Expr,
                       prefix_scope: Scope) -> Optional[Callable]:
    """``_pk_bound.const_value``: evaluate, reject non-int, swallow errors."""
    fn = _compile_const(expr, prefix_scope)
    if fn is None:
        return None
    def const_fn(rows, params):
        try:
            value = fn(rows, params)
        except ProgrammingError:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            return None
        return value
    return const_fn


def _references_binding(expr: ast.Expr, binding: str,
                        schema: TableSchema) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.ColumnRef):
            if node.table == binding:
                return True
            if node.table is None and schema.has_column(node.column):
                return True
    return False


def _equality_pair(predicate: ast.Expr, binding: str, schema: TableSchema
                   ) -> Optional[tuple[str, ast.Expr]]:
    if not (isinstance(predicate, ast.BinaryOp) and predicate.op == "="):
        return None
    for own, other in ((predicate.left, predicate.right),
                       (predicate.right, predicate.left)):
        if (isinstance(own, ast.ColumnRef)
                and (own.table is None or own.table == binding)
                and schema.has_column(own.column)
                and not _references_binding(other, binding, schema)):
            return own.column, other
    return None


def _index_defs(schema: TableSchema) -> list[IndexDef]:
    """The index set TableData maintains: synthetic ``__pk__`` first."""
    defs: list[IndexDef] = []
    if schema.primary_key:
        defs.append(IndexDef("__pk__", schema.name, schema.primary_key,
                             unique=True))
    defs.extend(schema.indexes.values())
    return defs


def _find_index(schema: TableSchema,
                columns: Iterable[str]) -> Optional[IndexDef]:
    wanted = set(columns)
    best: Optional[IndexDef] = None
    for index in _index_defs(schema):
        if all(c in wanted for c in index.columns):
            if best is None or len(index.columns) > len(best.columns):
                best = index
    return best


def _compile_index_probe(predicates: Sequence[ast.Expr], binding: str,
                         schema: TableSchema,
                         prefix_scope: Scope) -> Optional[IndexProbe]:
    equalities: dict[str, ast.Expr] = {}
    for predicate in predicates:
        pair = _equality_pair(predicate, binding, schema)
        if pair is not None:
            equalities.setdefault(pair[0], pair[1])
    if not equalities:
        return None
    index = _find_index(schema, equalities.keys())
    if index is None:
        return None
    key_fns = []
    for column in index.columns:
        key_fn = _compile_const(equalities[column], prefix_scope)
        if key_fn is None:
            return None
        key_fns.append(key_fn)
    return IndexProbe(index.name, tuple_fn(key_fns))


def _compile_pk_bound(predicate: ast.Expr, binding: str, schema: TableSchema,
                      pk_col: str, prefix_scope: Scope
                      ) -> Optional[tuple[str, Callable]]:
    """One predicate's contribution to the PK range, pre-classified.

    Returns ``(kind, bound_fn)`` where ``kind`` records the static
    capability ("lo", "hi", "between") used to decide whether a range
    probe is worth emitting at all, and ``bound_fn(rows, params)``
    performs the interpreter's runtime evaluation and checks.
    """
    def is_pk_ref(expr: ast.Expr) -> bool:
        return (isinstance(expr, ast.ColumnRef)
                and expr.column == pk_col
                and expr.table in (None, binding))

    def usable_const(expr: ast.Expr) -> Optional[Callable]:
        if _references_binding(expr, binding, schema):
            return None
        return _compile_int_const(expr, prefix_scope)

    if isinstance(predicate, ast.Between) and not predicate.negated \
            and is_pk_ref(predicate.value):
        low_fn = usable_const(predicate.low)
        high_fn = usable_const(predicate.high)
        if low_fn is None or high_fn is None:
            return None
        def between_bound(rows, params):
            low = low_fn(rows, params)
            high = high_fn(rows, params)
            if low is None or high is None:
                return None
            return "between", (low, high)
        return "between", between_bound
    if not isinstance(predicate, ast.BinaryOp):
        return None
    op = predicate.op
    if op not in (">", ">=", "<", "<="):
        return None
    left, right = predicate.left, predicate.right
    if is_pk_ref(left):
        value_fn = usable_const(right)
        direction = {"<": ("hi", 0), "<=": ("hi", 1),
                     ">": ("lo", 1), ">=": ("lo", 0)}[op]
    elif is_pk_ref(right):
        value_fn = usable_const(left)
        # value OP pk -> flip the comparison.
        direction = {"<": ("lo", 1), "<=": ("lo", 0),
                     ">": ("hi", 0), ">=": ("hi", 1)}[op]
    else:
        return None
    if value_fn is None:
        return None
    kind, delta = direction
    def comparison_bound(rows, params):
        value = value_fn(rows, params)
        if value is None:
            return None
        return kind, value + delta
    return kind, comparison_bound


def _compile_pk_range(predicates: Sequence[ast.Expr], binding: str,
                      schema: TableSchema,
                      prefix_scope: Scope) -> Optional[PkRangeProbe]:
    if len(schema.primary_key) != 1:
        return None
    pk_col = schema.primary_key[0]
    kinds: set[str] = set()
    bound_fns = []
    for predicate in predicates:
        compiled = _compile_pk_bound(predicate, binding, schema, pk_col,
                                     prefix_scope)
        if compiled is None:
            continue
        kind, bound_fn = compiled
        kinds.add(kind)
        bound_fns.append(bound_fn)
    # A range needs both ends; a probe that can never produce them
    # would just be a slower full scan.
    if "between" not in kinds and not {"lo", "hi"} <= kinds:
        return None
    return PkRangeProbe(tuple(bound_fns))


# ---------------------------------------------------------------------------
# Compiled plan nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompiledSource:
    """One FROM-clause table: slot, access-path cascade, residual filter."""

    slot: int
    binding: str
    table: str
    schema: TableSchema
    join_kind: str
    index_probe: Optional[IndexProbe]
    pk_range: Optional[PkRangeProbe]
    #: Residual filter over (rows, params) -> bool; None accepts all.
    #: Always re-checks every predicate — index candidates are
    #: conservative supersets.
    filter: Optional[ExprFn]


@dataclass(frozen=True)
class OrderKey:
    """One ORDER BY key: output position, row closure, or aggregate fn."""

    descending: bool
    position: Optional[int] = None
    fn: Optional[ExprFn] = None
    agg_fn: Optional[AggFn] = None
    error: Optional[str] = None

    def value(self, rows: Sequence[Optional[tuple]], row: tuple,
              params: Sequence[object]) -> object:
        if self.error is not None:
            raise ProgrammingError(self.error)
        if self.position is not None:
            return row[self.position]
        return self.fn(rows, params)

    def agg_value(self, aggs: "LazyAggs",
                  rows0: Optional[Sequence[Optional[tuple]]], row: tuple,
                  params: Sequence[object]) -> object:
        if self.position is not None:
            return row[self.position]
        return self.agg_fn(aggs, rows0, params)


@dataclass(frozen=True)
class CompiledAggregate:
    """One unique aggregate call within a grouped SELECT."""

    name: str
    star: bool
    distinct: bool
    arg_fn: Optional[ExprFn]

    def compute(self, contexts: Sequence[Sequence[Optional[tuple]]],
                params: Sequence[object]) -> object:
        if self.star:
            return len(contexts)
        values = [self.arg_fn(rows, params) for rows in contexts]
        values = [v for v in values if v is not None]
        if self.distinct:
            values = list(dict.fromkeys(values))
        if self.name == "count":
            return len(values)
        if not values:
            return None
        if self.name == "sum":
            return sum(values)
        if self.name == "avg":
            return sum(values) / len(values)
        if self.name == "min":
            return min(values)
        return max(values)  # compile_statement validated the name


class LazyAggs:
    """Per-group aggregate values, computed on demand and memoised.

    HAVING runs before the select items, so aggregates it rejects are
    never computed — same laziness as the interpreter, minus its
    recomputation per reference.
    """

    __slots__ = ("_aggs", "_contexts", "_params", "_cache")

    def __init__(self, aggs: Sequence[CompiledAggregate],
                 contexts: Sequence[Sequence[Optional[tuple]]],
                 params: Sequence[object]) -> None:
        self._aggs = aggs
        self._contexts = contexts
        self._params = params
        self._cache: dict[int, object] = {}

    def __getitem__(self, index: int) -> object:
        try:
            return self._cache[index]
        except KeyError:
            value = self._aggs[index].compute(self._contexts, self._params)
            self._cache[index] = value
            return value


@dataclass(frozen=True)
class CompiledAggregation:
    """Grouping/aggregation section of a compiled SELECT."""

    group_fn: Optional[ExprFn]  # fused (rows, params) -> group-key tuple
    aggs: tuple[CompiledAggregate, ...]
    item_fns: tuple[AggFn, ...]
    having_fn: Optional[AggFn]
    order_keys: tuple[OrderKey, ...]


@dataclass(frozen=True)
class CompiledSelect:
    scalar: bool
    sources: tuple[CompiledSource, ...]
    for_update: bool
    columns: list[str]
    project_fn: Optional[ExprFn]  # fused (rows, params) -> output tuple
    aggregation: Optional[CompiledAggregation]
    order_keys: tuple[OrderKey, ...]
    distinct: bool
    limit_fn: Optional[ExprFn]
    offset_fn: Optional[ExprFn]


@dataclass(frozen=True)
class ColumnFinalizer:
    """Post-evaluation column handling shared by INSERT and UPDATE."""

    position: int
    name: str
    coerce: Callable[[object], object]
    not_null: bool


@dataclass(frozen=True)
class CompiledInsert:
    table: str
    schema: TableSchema
    positions: tuple[int, ...]
    row_fns: tuple[tuple[ExprFn, ...], ...]
    defaults: tuple[tuple[int, object], ...]
    finalizers: tuple[ColumnFinalizer, ...]


@dataclass(frozen=True)
class CompiledAssignment:
    finalizer: ColumnFinalizer
    value_fn: ExprFn


@dataclass(frozen=True)
class CompiledUpdate:
    table: str
    schema: TableSchema
    source: CompiledSource
    assignments: tuple[CompiledAssignment, ...]


@dataclass(frozen=True)
class CompiledDelete:
    table: str
    schema: TableSchema
    source: CompiledSource


CompiledPlan = (CompiledSelect, CompiledInsert, CompiledUpdate, CompiledDelete)


# ---------------------------------------------------------------------------
# Statement compilation
# ---------------------------------------------------------------------------


def compile_statement(stmt: ast.Statement, catalog: Catalog):
    """Compile a DML/query statement, or raise :class:`Unsupported`.

    Semantic errors (unknown tables/columns, bad aggregates, arity
    mismatches) raise :class:`ProgrammingError` — the same type and
    message the interpreter produces at execute time, surfaced at
    prepare time instead.
    """
    if isinstance(stmt, ast.Select):
        return _compile_select(stmt, catalog)
    if isinstance(stmt, ast.Insert):
        return _compile_insert(stmt, catalog)
    if isinstance(stmt, ast.Update):
        return _compile_update(stmt, catalog)
    if isinstance(stmt, ast.Delete):
        return _compile_delete(stmt, catalog)
    raise Unsupported(f"cannot compile {type(stmt).__name__}")


def _item_name(item: ast.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, ast.ColumnRef):
        return item.expr.column
    if isinstance(item.expr, ast.FuncCall):
        return item.expr.name
    return f"col{index}"


def _expand_items(stmt: ast.Select,
                  pairs: Sequence[tuple[str, TableSchema]]
                  ) -> list[tuple[ast.Expr, str]]:
    expanded: list[tuple[ast.Expr, str]] = []
    for i, item in enumerate(stmt.items):
        if item.star:
            targets = ([(b, s) for b, s in pairs if b == item.star_table]
                       if item.star_table else list(pairs))
            if item.star_table and not targets:
                raise ProgrammingError(
                    f"unknown binding {item.star_table!r} in select list")
            for binding, schema in targets:
                for column in schema.column_names:
                    expanded.append((ast.ColumnRef(binding, column), column))
        else:
            expanded.append((item.expr, _item_name(item, i)))
    return expanded


def _contains_aggregate(expr: ast.Expr) -> bool:
    return any(isinstance(node, ast.FuncCall) and node.name in AGGREGATES
               for node in ast.walk(expr))


def _split_conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _build_sources(stmt: ast.Select, catalog: Catalog
                   ) -> tuple[list[tuple[str, TableSchema, str, str]],
                              list[list[ast.Expr]]]:
    """Source list plus per-source predicate placement, as interpreted."""
    refs = [(stmt.table, "inner")]
    refs.extend((join.table, join.kind) for join in stmt.joins)
    pairs: list[tuple[str, TableSchema, str, str]] = []
    seen: set[str] = set()
    for table_ref, kind in refs:
        schema = catalog.get(table_ref.name)
        binding = table_ref.binding
        if binding in seen:
            raise ProgrammingError(f"duplicate table binding {binding!r}")
        seen.add(binding)
        pairs.append((binding, schema, table_ref.name, kind))

    conjuncts: list[ast.Expr] = []
    if stmt.where is not None:
        conjuncts.extend(_split_conjuncts(stmt.where))
    for join in stmt.joins:
        if join.condition is not None:
            conjuncts.extend(_split_conjuncts(join.condition))

    slot_of = {binding: i for i, (binding, _s, _t, _k) in enumerate(pairs)}
    placed: list[list[ast.Expr]] = [[] for _ in pairs]
    for conjunct in conjuncts:
        needed = _bindings_of(conjunct, pairs)
        slots = [slot_of[name] for name in needed if name in slot_of]
        if len(slots) != len(needed):
            raise ProgrammingError(
                f"predicate references unknown bindings: {needed}")
        placed[max(slots, default=0)].append(conjunct)
    return pairs, placed


def _bindings_of(expr: ast.Expr,
                 pairs: Sequence[tuple[str, TableSchema, str, str]]
                 ) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.ColumnRef):
            if node.table is not None:
                names.add(node.table)
            else:
                owners = [binding for binding, schema, _t, _k in pairs
                          if schema.has_column(node.column)]
                if not owners:
                    raise ProgrammingError(f"unknown column {node.column!r}")
                if len(owners) > 1:
                    raise ProgrammingError(f"ambiguous column {node.column!r}")
                names.add(owners[0])
    return names


def _compile_source(slot: int, binding: str, schema: TableSchema,
                    table_name: str, join_kind: str,
                    predicates: Sequence[ast.Expr], prefix_scope: Scope,
                    full_scope: Scope) -> CompiledSource:
    index_probe = _compile_index_probe(predicates, binding, schema,
                                       prefix_scope)
    pk_range = _compile_pk_range(predicates, binding, schema, prefix_scope)
    return CompiledSource(
        slot=slot, binding=binding, table=table_name, schema=schema,
        join_kind=join_kind, index_probe=index_probe, pk_range=pk_range,
        filter=_compile_conjunction(predicates, full_scope))


def _compile_order_key(order: ast.OrderItem, scope: Scope,
                       columns: Sequence[str]) -> OrderKey:
    expr = order.expr
    if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
        position = expr.value - 1
        if 0 <= position < len(columns):
            return OrderKey(order.descending, position=position)
        return OrderKey(order.descending, error=(
            f"ORDER BY position {expr.value} out of range"))
    if (isinstance(expr, ast.ColumnRef) and expr.table is None
            and expr.column in columns):
        return OrderKey(order.descending, position=columns.index(expr.column))
    return OrderKey(order.descending, fn=compile_expr(expr, scope))


def _compile_select(stmt: ast.Select, catalog: Catalog) -> CompiledSelect:
    empty_scope = Scope([])
    if stmt.table is None:
        # Scalar SELECT: the interpreter projects one row and ignores
        # WHERE/ORDER BY/LIMIT entirely; mirror that (including never
        # compiling, hence never erroring on, the ignored clauses).
        project_fn = tuple_fn([compile_expr(item.expr, empty_scope)
                               for item in stmt.items])
        columns = [_item_name(item, i) for i, item in enumerate(stmt.items)]
        return CompiledSelect(
            scalar=True, sources=(), for_update=False, columns=columns,
            project_fn=project_fn, aggregation=None, order_keys=(),
            distinct=False, limit_fn=None, offset_fn=None)

    limit_fn = (compile_expr(stmt.limit, empty_scope)
                if stmt.limit is not None else None)
    offset_fn = (compile_expr(stmt.offset, empty_scope)
                 if stmt.offset is not None else None)

    pairs, placed = _build_sources(stmt, catalog)
    scope_slots = [(binding, schema) for binding, schema, _t, _k in pairs]
    full_scope = Scope(scope_slots)
    sources = tuple(
        _compile_source(slot, binding, schema, table_name, kind,
                        placed[slot], Scope(scope_slots[:slot]), full_scope)
        for slot, (binding, schema, table_name, kind) in enumerate(pairs))

    items = _expand_items(stmt, [(b, s) for b, s, _t, _k in pairs])
    columns = [name for _, name in items]
    is_grouped = bool(stmt.group_by) or any(
        _contains_aggregate(item.expr) for item in stmt.items if not item.star)

    if is_grouped:
        aggregation = _compile_aggregation(stmt, items, columns, full_scope)
        project_fn = None
        order_keys: tuple[OrderKey, ...] = ()
    else:
        aggregation = None
        project_fn = tuple_fn([compile_expr(expr, full_scope)
                               for expr, _ in items])
        order_keys = tuple(_compile_order_key(order, full_scope, columns)
                           for order in stmt.order_by)
    return CompiledSelect(
        scalar=False, sources=sources, for_update=stmt.for_update,
        columns=columns, project_fn=project_fn, aggregation=aggregation,
        order_keys=order_keys, distinct=stmt.distinct, limit_fn=limit_fn,
        offset_fn=offset_fn)


def _compile_aggregation(stmt: ast.Select,
                         items: Sequence[tuple[ast.Expr, str]],
                         columns: Sequence[str],
                         scope: Scope) -> CompiledAggregation:
    registry: dict[ast.Expr, int] = {}
    aggs: list[CompiledAggregate] = []

    def register(call: ast.FuncCall) -> int:
        index = registry.get(call)
        if index is not None:
            return index
        if call.star:
            if call.name != "count":
                raise ProgrammingError(f"{call.name}(*) is not valid")
            arg_fn = None
        else:
            if len(call.args) != 1:
                raise ProgrammingError(
                    f"aggregate {call.name} expects exactly one argument")
            arg_fn = compile_expr(call.args[0], scope)
        index = len(aggs)
        registry[call] = index
        aggs.append(CompiledAggregate(call.name, call.star, call.distinct,
                                      arg_fn))
        return index

    item_fns = tuple(_compile_aggregated(expr, scope, register)
                     for expr, _ in items)
    group_fn = (tuple_fn([compile_expr(expr, scope)
                          for expr in stmt.group_by])
                if stmt.group_by else None)
    having_fn = (_compile_aggregated(stmt.having, scope, register)
                 if stmt.having is not None else None)
    order_keys = tuple(
        _compile_agg_order_key(order, scope, columns, register)
        for order in stmt.order_by)
    return CompiledAggregation(
        group_fn=group_fn, aggs=tuple(aggs), item_fns=item_fns,
        having_fn=having_fn, order_keys=order_keys)


def _compile_agg_order_key(order: ast.OrderItem, scope: Scope,
                           columns: Sequence[str],
                           register: Callable[[ast.FuncCall], int]
                           ) -> OrderKey:
    expr = order.expr
    if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
        position = expr.value - 1
        if 0 <= position < len(columns):
            return OrderKey(order.descending, position=position)
    if (isinstance(expr, ast.ColumnRef) and expr.table is None
            and expr.column in columns):
        return OrderKey(order.descending, position=columns.index(expr.column))
    # Everything else sorts by the aggregate-context value, including
    # out-of-range positions (the interpreter's caught-error path makes
    # them constant keys in aggregate queries).
    return OrderKey(order.descending,
                    agg_fn=_compile_aggregated(expr, scope, register))


def _compile_aggregated(expr: ast.Expr, scope: Scope,
                        register: Callable[[ast.FuncCall], int]) -> AggFn:
    """Compile an expression evaluated once per group."""
    if isinstance(expr, ast.FuncCall) and expr.name in AGGREGATES:
        index = register(expr)
        return lambda aggs, rows0, params: aggs[index]
    if isinstance(expr, ast.BinaryOp):
        op = expr.op
        left = _compile_aggregated(expr.left, scope, register)
        right = _compile_aggregated(expr.right, scope, register)
        return lambda aggs, rows0, params: apply_binary(
            op, left(aggs, rows0, params), right(aggs, rows0, params))
    if isinstance(expr, ast.UnaryOp):
        op = expr.op
        operand = _compile_aggregated(expr.operand, scope, register)
        return lambda aggs, rows0, params: apply_unary(
            op, operand(aggs, rows0, params))
    if _contains_aggregate(expr):
        raise ProgrammingError(
            "aggregates may only appear at the top level or inside "
            "arithmetic expressions")
    fn = compile_expr(expr, scope)
    # Bare expressions over an *empty* group: the interpreter evaluates
    # against the empty context, where outcomes depend on evaluation
    # order (a CASE may never touch its column refs).  Empty groups are
    # cold — at most the single global group — so defer to the
    # interpreter there for exact behaviour.
    def leaf_fn(aggs, rows0, params):
        if rows0 is None:
            return evaluate(expr, None, params)
        return fn(rows0, params)
    return leaf_fn


def _column_finalizer(position: int, column: ColumnDef) -> ColumnFinalizer:
    return ColumnFinalizer(position=position, name=column.name,
                           coerce=column.sql_type.coerce,
                           not_null=column.not_null)


def _compile_insert(stmt: ast.Insert, catalog: Catalog) -> CompiledInsert:
    schema = catalog.get(stmt.table)
    columns = stmt.columns or schema.column_names
    positions = tuple(schema.position(c) for c in columns)
    scope = Scope([])
    row_fns = []
    for row_exprs in stmt.rows:
        if len(row_exprs) != len(columns):
            raise ProgrammingError(
                f"INSERT into {stmt.table!r} expects {len(columns)} "
                f"values, got {len(row_exprs)}")
        row_fns.append(tuple(compile_expr(expr, scope)
                             for expr in row_exprs))
    provided = set(positions)
    defaults = tuple(
        (i, column.default) for i, column in enumerate(schema.columns)
        if i not in provided and column.has_default)
    finalizers = tuple(_column_finalizer(i, column)
                       for i, column in enumerate(schema.columns))
    return CompiledInsert(
        table=stmt.table, schema=schema, positions=positions,
        row_fns=tuple(row_fns), defaults=defaults, finalizers=finalizers)


def _compile_write_source(table: str, schema: TableSchema,
                          where: Optional[ast.Expr]) -> CompiledSource:
    predicates = _split_conjuncts(where) if where is not None else []
    scope = Scope([(table, schema)])
    return _compile_source(0, table, schema, table, "inner", predicates,
                           Scope([]), scope)


def _compile_update(stmt: ast.Update, catalog: Catalog) -> CompiledUpdate:
    schema = catalog.get(stmt.table)
    source = _compile_write_source(stmt.table, schema, stmt.where)
    scope = Scope([(stmt.table, schema)])
    assignments = tuple(
        CompiledAssignment(
            finalizer=_column_finalizer(schema.position(a.column),
                                        schema.columns[
                                            schema.position(a.column)]),
            value_fn=compile_expr(a.value, scope))
        for a in stmt.assignments)
    return CompiledUpdate(table=stmt.table, schema=schema, source=source,
                          assignments=assignments)


def _compile_delete(stmt: ast.Delete, catalog: Catalog) -> CompiledDelete:
    schema = catalog.get(stmt.table)
    source = _compile_write_source(stmt.table, schema, stmt.where)
    return CompiledDelete(table=stmt.table, schema=schema, source=source)


# ---------------------------------------------------------------------------
# Caches
# ---------------------------------------------------------------------------


class LruCache:
    """Thread-safe LRU mapping with hit/miss/eviction counters.

    Used for the statement (parse) cache and subclassed by
    :class:`PlanCache`.  ``lookup`` preserves identity: repeated hits
    return the same cached object, which the facade tests rely on.
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = max(1, int(capacity))
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: Hashable) -> tuple[bool, object]:
        """Return ``(hit, value)``; ``value`` is None on a miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            if key in self._entries:
                self._entries[key] = value
                self._entries.move_to_end(key)
                return
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class PlanCache(LruCache):
    """Compiled plans keyed by ``(sql, catalog_version)``.

    The version key already makes stale plans unreachable after DDL;
    ``invalidate_all`` additionally drops them eagerly so the cache
    does not carry dead weight, counting the dropped entries.
    """

    def __init__(self, capacity: int = 256) -> None:
        super().__init__(capacity)
        self.invalidations = 0

    def invalidate_all(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.invalidations += dropped
        return dropped

    def snapshot(self) -> dict[str, int]:
        snap = super().snapshot()
        with self._lock:
            snap["invalidations"] = self.invalidations
        return snap
