"""DBMS personalities: per-server performance models.

In the BenchPress demo every target DBMS is a different game "stage" with a
different feel: each engine saturates at a different throughput, responds to
load changes with different lag, and suffers differently under write
contention.  We reproduce that with :class:`DbmsPersonality`, an analytic
service-time model layered over the real SQL engine:

* the SQL engine provides *semantics* (real rows, locks, aborts);
* the personality provides *timing* — how long the simulated server takes
  to run a transaction given its read/write footprint and the load around
  it.

The model for one transaction with ``r`` rows read and ``w`` rows written
executing while ``n`` transactions are active (``n_w`` of them writers):

    base = overhead + r * read_row + w * write_row
    cpu  = max(1, n / cpu_cores)                  # processor sharing
    lock = 1 + write_contention * n_w * min(1, w) # writer interference
    service_time = base * cpu * lock * jitter

``jitter`` is lognormal with configurable sigma, so noisy personalities
(Derby in the demo) produce oscillating throughput that fails the Tunnel
challenge, while tight ones (Oracle) pass it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class DbmsPersonality:
    """Analytic performance profile of one simulated DBMS product."""

    name: str
    stage: str  # the BenchPress game stage themed after this DBMS
    overhead_ms: float = 0.5
    read_row_ms: float = 0.01
    write_row_ms: float = 0.05
    cpu_cores: int = 8
    write_contention: float = 0.015
    jitter_sigma: float = 0.08
    ramp_lag: float = 0.3  # seconds of exponential lag tracking load changes
    max_connections: int = 512

    def service_time(self, rng: random.Random, rows_read: int,
                     rows_written: int, active: int,
                     active_writers: int) -> float:
        """Sampled execution time (seconds) for one transaction."""
        base_ms = (self.overhead_ms
                   + rows_read * self.read_row_ms
                   + rows_written * self.write_row_ms)
        cpu_factor = max(1.0, active / max(1, self.cpu_cores))
        lock_factor = 1.0
        if rows_written > 0 and active_writers > 1:
            lock_factor += self.write_contention * (active_writers - 1)
        jitter = math.exp(rng.gauss(0.0, self.jitter_sigma))
        return (base_ms / 1000.0) * cpu_factor * lock_factor * jitter

    def saturation_tps(self, avg_rows_read: float = 10.0,
                       avg_rows_written: float = 2.0) -> float:
        """Back-of-envelope saturation throughput for planning challenges.

        The processor-sharing model caps total service capacity at
        ``cpu_cores`` transaction-seconds per second, so saturation is
        approximately cores / mean base service time.
        """
        base_ms = (self.overhead_ms
                   + avg_rows_read * self.read_row_ms
                   + avg_rows_written * self.write_row_ms)
        return self.cpu_cores / (base_ms / 1000.0)


#: Built-in personalities named after the demo's selectable DBMSs.  The
#: numbers are not vendor measurements — they are chosen to make the stages
#: *feel* different in the ways the paper describes (cf. DESIGN.md).
PERSONALITIES: dict[str, DbmsPersonality] = {
    "mysql": DbmsPersonality(
        name="mysql", stage="forest",
        overhead_ms=0.35, read_row_ms=0.010, write_row_ms=0.060,
        cpu_cores=8, write_contention=0.030, jitter_sigma=0.10),
    "postgres": DbmsPersonality(
        name="postgres", stage="mountain",
        overhead_ms=0.40, read_row_ms=0.012, write_row_ms=0.045,
        cpu_cores=8, write_contention=0.018, jitter_sigma=0.06),
    "oracle": DbmsPersonality(
        name="oracle", stage="city",
        overhead_ms=0.30, read_row_ms=0.008, write_row_ms=0.040,
        cpu_cores=16, write_contention=0.012, jitter_sigma=0.04),
    "derby": DbmsPersonality(
        name="derby", stage="cave",
        overhead_ms=1.20, read_row_ms=0.030, write_row_ms=0.150,
        cpu_cores=4, write_contention=0.060, jitter_sigma=0.22),
    "inmem": DbmsPersonality(
        name="inmem", stage="void",
        overhead_ms=0.05, read_row_ms=0.001, write_row_ms=0.002,
        cpu_cores=64, write_contention=0.001, jitter_sigma=0.01),
}


def get_personality(name: str) -> DbmsPersonality:
    try:
        return PERSONALITIES[name]
    except KeyError:
        known = ", ".join(sorted(PERSONALITIES))
        raise KeyError(
            f"unknown DBMS personality {name!r}; available: {known}"
        ) from None


@dataclass
class LoadTracker:
    """Tracks in-flight transactions for the personality's load inputs."""

    active: int = 0
    active_writers: int = 0
    peak_active: int = 0
    _writer_flags: dict[int, bool] = field(default_factory=dict)

    def started(self, token: int, is_writer: bool) -> None:
        self.active += 1
        self.peak_active = max(self.peak_active, self.active)
        if is_writer:
            self.active_writers += 1
        self._writer_flags[token] = is_writer

    def finished(self, token: int) -> None:
        was_writer = self._writer_flags.pop(token, False)
        self.active = max(0, self.active - 1)
        if was_writer:
            self.active_writers = max(0, self.active_writers - 1)
