"""Versioned row storage and index maintenance.

Each table stores rows as *version chains*: ``rowid -> [Version, ...]`` with
versions ordered by their creating commit timestamp.  A transaction reading
at snapshot timestamp ``S`` sees the newest version with ``begin_ts <= S``;
strict-2PL readers use ``S = +inf`` (latest committed), which is safe because
they hold shared locks.

Indexes (the primary key and secondary indexes) are maintained as
*conservative supersets*: an index entry maps a key to every rowid that had
that key in any still-retained version.  Scans therefore always re-verify
key predicates against the version actually visible to the reader, and
pruning removes stale entries once no active snapshot can see them.  This
keeps index maintenance simple and correct under both 2PL and snapshot
isolation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..errors import IntegrityError
from .catalog import IndexDef, TableSchema

#: Snapshot timestamp meaning "read the latest committed version".
READ_LATEST = float("inf")


@dataclass(frozen=True)
class Version:
    """One committed version of a row; ``values is None`` is a tombstone."""

    begin_ts: float
    values: Optional[tuple]

    @property
    def is_tombstone(self) -> bool:
        return self.values is None


class TableData:
    """Row storage plus indexes for a single table."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._versions: dict[int, list[Version]] = {}
        self._rowid_counter = itertools.count(1)
        # index name -> {key tuple -> set of rowids}; the primary key uses
        # the reserved name "__pk__" when the table declares one.
        self._indexes: dict[str, dict[tuple, set[int]]] = {}
        self._index_defs: dict[str, IndexDef] = {}
        self._multiversion_rows: set[int] = set()
        if schema.primary_key:
            self._index_defs["__pk__"] = IndexDef(
                "__pk__", schema.name, schema.primary_key, unique=True)
            self._indexes["__pk__"] = {}
        for index in schema.indexes.values():
            self.add_index(index)

    # -- index management --------------------------------------------------

    def add_index(self, index: IndexDef) -> None:
        """Register a new index and backfill it from retained versions."""
        self._index_defs[index.name] = index
        entries: dict[tuple, set[int]] = {}
        positions = tuple(self.schema.position(c) for c in index.columns)
        for rowid, chain in self._versions.items():
            for version in chain:
                if version.values is not None:
                    key = tuple(version.values[p] for p in positions)
                    entries.setdefault(key, set()).add(rowid)
        self._indexes[index.name] = entries

    def index_defs(self) -> list[IndexDef]:
        return list(self._index_defs.values())

    def _index_key(self, index: IndexDef, values: tuple) -> tuple:
        return tuple(values[self.schema.position(c)] for c in index.columns)

    # -- reads ---------------------------------------------------------------

    def visible_version(self, rowid: int, snapshot_ts: float) -> Optional[Version]:
        """Newest version of ``rowid`` visible at ``snapshot_ts``."""
        chain = self._versions.get(rowid)
        if not chain:
            return None
        for version in reversed(chain):
            if version.begin_ts <= snapshot_ts:
                return version
        return None

    def latest_version(self, rowid: int) -> Optional[Version]:
        chain = self._versions.get(rowid)
        return chain[-1] if chain else None

    def all_rowids(self) -> Iterator[int]:
        return iter(list(self._versions.keys()))

    def index_lookup(self, index_name: str, key: tuple) -> set[int]:
        """Candidate rowids for an equality key (conservative superset)."""
        entries = self._indexes.get(index_name)
        if entries is None:
            return set()
        return set(entries.get(key, ()))

    def find_index(self, columns: Iterable[str]) -> Optional[IndexDef]:
        """An index whose column list is a prefix-match of ``columns``.

        Used by the planner: returns the index covering the largest number
        of the given equality columns (all index columns must be present).
        """
        wanted = set(columns)
        best: Optional[IndexDef] = None
        for index in self._index_defs.values():
            if all(c in wanted for c in index.columns):
                if best is None or len(index.columns) > len(best.columns):
                    best = index
        return best

    def pk_lookup_latest(self, key: tuple) -> Optional[int]:
        """Rowid whose *latest committed* version is live with this PK."""
        for rowid in self.index_lookup("__pk__", key):
            version = self.latest_version(rowid)
            if (version is not None and not version.is_tombstone
                    and self.schema.pk_key(version.values) == key):
                return rowid
        return None

    def count_live(self) -> int:
        """Number of rows live in the latest committed state."""
        count = 0
        for rowid in self._versions:
            version = self.latest_version(rowid)
            if version is not None and not version.is_tombstone:
                count += 1
        return count

    # -- writes (called while holding the database latch) -------------------

    def new_rowid(self) -> int:
        return next(self._rowid_counter)

    def apply_insert(self, rowid: int, values: tuple, commit_ts: float) -> None:
        if self.schema.primary_key:
            key = self.schema.pk_key(values)
            existing = self.pk_lookup_latest(key)
            if existing is not None and existing != rowid:
                raise IntegrityError(
                    f"duplicate primary key {key!r} in {self.schema.name!r}")
        self._append_version(rowid, Version(commit_ts, values))

    def apply_update(self, rowid: int, values: tuple, commit_ts: float) -> None:
        self._append_version(rowid, Version(commit_ts, values))

    def apply_delete(self, rowid: int, commit_ts: float) -> None:
        self._append_version(rowid, Version(commit_ts, None))

    def _append_version(self, rowid: int, version: Version) -> None:
        chain = self._versions.setdefault(rowid, [])
        chain.append(version)
        if len(chain) > 1:
            self._multiversion_rows.add(rowid)
        if version.values is not None:
            for index in self._index_defs.values():
                key = self._index_key(index, version.values)
                self._indexes[index.name].setdefault(key, set()).add(rowid)

    # -- garbage collection --------------------------------------------------

    def prune(self, min_active_snapshot: float) -> int:
        """Drop versions no active snapshot can see; clean index entries.

        Returns the number of versions discarded.  A version may be dropped
        when a newer version also satisfies ``begin_ts <= min_active_snapshot``
        (the newer one shadows it for every current and future reader).
        """
        dropped = 0
        finished: list[int] = []
        for rowid in list(self._multiversion_rows):
            chain = self._versions.get(rowid)
            if not chain or len(chain) == 1:
                finished.append(rowid)
                continue
            # Find the newest version visible at the oldest snapshot.
            keep_from = 0
            for i, version in enumerate(chain):
                if version.begin_ts <= min_active_snapshot:
                    keep_from = i
            removed, kept = chain[:keep_from], chain[keep_from:]
            if removed:
                self._versions[rowid] = kept
                dropped += len(removed)
                self._clean_index_entries(rowid, removed, kept)
            if len(kept) == 1:
                if kept[0].is_tombstone:
                    # Row fully dead: remove storage and any index entries.
                    self._clean_index_entries(rowid, kept, [])
                    del self._versions[rowid]
                finished.append(rowid)
        for rowid in finished:
            self._multiversion_rows.discard(rowid)
        return dropped

    def _clean_index_entries(self, rowid: int, removed: list[Version],
                             kept: list[Version]) -> None:
        for index in self._index_defs.values():
            kept_keys = {
                self._index_key(index, v.values)
                for v in kept if v.values is not None
            }
            entries = self._indexes[index.name]
            for version in removed:
                if version.values is None:
                    continue
                key = self._index_key(index, version.values)
                if key in kept_keys:
                    continue
                bucket = entries.get(key)
                if bucket is not None:
                    bucket.discard(rowid)
                    if not bucket:
                        del entries[key]

    # -- stats ----------------------------------------------------------------

    def version_count(self) -> int:
        return sum(len(chain) for chain in self._versions.values())
