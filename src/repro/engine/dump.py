"""Data dumps: persist and restore a loaded database (Fig. 1, "Data Dumps").

OLTP-Bench ships pre-generated data dumps so experiments skip the loader.
This module serialises a :class:`Database`'s schema and committed rows to a
single JSON file and restores it into a fresh instance — typically 5-20x
faster than re-running a benchmark loader, and exactly reproducible.

    dump_database(db, "tpcc_sf2.dump.json")
    db2 = restore_database("tpcc_sf2.dump.json")

Only committed latest versions are dumped; in-flight transactions and
version history are not (a dump is a clean snapshot, like the original's
SQL dumps).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from ..errors import DataError
from .catalog import ColumnDef, IndexDef, TableSchema
from .database import Database
from .storage import READ_LATEST
from .types import SqlType

FORMAT_VERSION = 1


def dump_database(db: Database, path: str | Path) -> dict:
    """Write ``db``'s schema and committed data to ``path``.

    Returns a manifest dict (table -> row count) for logging.
    """
    manifest: dict[str, int] = {}
    payload: dict[str, object] = {
        "format": FORMAT_VERSION,
        "name": db.name,
        "tables": [],
    }
    with db.latch:
        for table_name in db.table_names():
            schema = db.catalog.get(table_name)
            data = db.table_data(table_name)
            rows = []
            for rowid in data.all_rowids():
                version = data.visible_version(rowid, READ_LATEST)
                if version is not None and not version.is_tombstone:
                    rows.append(list(version.values))
            payload["tables"].append({
                "name": table_name,
                "columns": [
                    {
                        "name": column.name,
                        "type": column.sql_type.name,
                        "args": list(column.sql_type.args),
                        "not_null": column.not_null,
                        "default": column.default,
                        "has_default": column.has_default,
                    }
                    for column in schema.columns
                ],
                "primary_key": list(schema.primary_key),
                "indexes": [
                    {"name": index.name, "columns": list(index.columns),
                     "unique": index.unique}
                    for index in schema.indexes.values()
                ],
                "rows": rows,
            })
            manifest[table_name] = len(rows)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return manifest


def restore_database(path: str | Path,
                     into: Optional[Database] = None) -> Database:
    """Rebuild a database from a dump file; returns the instance."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("format") != FORMAT_VERSION:
        raise DataError(
            f"unsupported dump format {payload.get('format')!r}")
    db = into or Database(payload.get("name", "restored"))
    for table in payload["tables"]:
        columns = tuple(
            ColumnDef(
                name=column["name"],
                sql_type=SqlType(column["type"], tuple(column["args"])),
                not_null=column["not_null"],
                default=column["default"],
                has_default=column["has_default"],
            )
            for column in table["columns"]
        )
        schema = TableSchema(table["name"], columns,
                             tuple(table["primary_key"]))
        db.catalog.create_table(schema)
        from .storage import TableData
        db._tables[table["name"]] = TableData(schema)
        for index in table["indexes"]:
            index_def = IndexDef(index["name"], table["name"],
                                 tuple(index["columns"]), index["unique"])
            db.catalog.add_index(index_def)
            db.table_data(table["name"]).add_index(index_def)
        if table["rows"]:
            db.bulk_insert(table["name"],
                           [tuple(row) for row in table["rows"]])
    return db
