"""Transactions: private workspaces, snapshots, and commit validation.

A transaction buffers all of its writes in a private workspace and applies
them atomically at commit under the database's structural latch.  Two
isolation levels are offered, matching what the OLTP-Bench benchmarks need:

* ``serializable`` — strict two-phase locking.  Readers take shared row
  locks, writers exclusive ones, all held to commit/rollback.  Reads see
  the latest committed version (safe under 2PL).
* ``snapshot`` — snapshot isolation.  Reads see the database as of the
  transaction's begin timestamp without locking; writes are validated with
  first-committer-wins at commit (:class:`SerializationError` on conflict).
  This is what SIBench exercises: SI permits write skew, 2PL does not.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Optional

from ..errors import ProgrammingError, SerializationError
from .storage import READ_LATEST, TableData, Version

SERIALIZABLE = "serializable"
SNAPSHOT = "snapshot"

INSERT = "insert"
UPDATE = "update"
DELETE = "delete"


@dataclass
class WriteOp:
    """A buffered write against one row."""

    kind: str  # insert | update | delete
    values: Optional[tuple]  # None for delete


@dataclass
class TxnStats:
    rows_read: int = 0
    rows_written: int = 0
    rows_inserted: int = 0
    rows_deleted: int = 0
    index_lookups: int = 0
    full_scans: int = 0

    @property
    def write_footprint(self) -> int:
        return self.rows_written + self.rows_inserted + self.rows_deleted


class Transaction:
    """Execution context for one in-flight transaction."""

    _ids = itertools.count(1)

    def __init__(self, isolation: str, snapshot_ts: float) -> None:
        if isolation not in (SERIALIZABLE, SNAPSHOT):
            raise ProgrammingError(f"unknown isolation level {isolation!r}")
        self.txn_id = next(self._ids)
        self.isolation = isolation
        self.snapshot_ts = snapshot_ts
        self.active = True
        # (table name, rowid) -> WriteOp; insertion order preserved so that
        # commit application replays writes deterministically.
        self.workspace: dict[tuple[str, int], WriteOp] = {}
        # table -> rowids this txn inserted (scan overlay)
        self.inserted: dict[str, set[int]] = {}
        self.stats = TxnStats()

    # -- workspace helpers -------------------------------------------------

    def pending_write(self, table: str, rowid: int) -> Optional[WriteOp]:
        return self.workspace.get((table, rowid))

    def buffer_insert(self, table: str, rowid: int, values: tuple) -> None:
        self.workspace[(table, rowid)] = WriteOp(INSERT, values)
        self.inserted.setdefault(table, set()).add(rowid)
        self.stats.rows_inserted += 1

    def buffer_update(self, table: str, rowid: int, values: tuple) -> None:
        existing = self.workspace.get((table, rowid))
        if existing is not None and existing.kind == INSERT:
            existing.values = values
        else:
            self.workspace[(table, rowid)] = WriteOp(UPDATE, values)
        self.stats.rows_written += 1

    def buffer_delete(self, table: str, rowid: int) -> None:
        existing = self.workspace.get((table, rowid))
        if existing is not None and existing.kind == INSERT:
            # Inserting then deleting inside one txn cancels out.
            del self.workspace[(table, rowid)]
            self.inserted.get(table, set()).discard(rowid)
        else:
            self.workspace[(table, rowid)] = WriteOp(DELETE, None)
        self.stats.rows_deleted += 1

    def effective_version(self, table: str, data: TableData,
                          rowid: int) -> Optional[Version]:
        """Row state as seen by this transaction (workspace overlay)."""
        pending = self.workspace.get((table, rowid))
        if pending is not None:
            return Version(self.snapshot_ts, pending.values)
        return data.visible_version(rowid, self.snapshot_ts)

    @property
    def read_only(self) -> bool:
        return not self.workspace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Transaction {self.txn_id} {self.isolation}>"


class TransactionManager:
    """Issues begin/commit timestamps and applies commit workspaces."""

    PRUNE_INTERVAL = 256

    def __init__(self) -> None:
        self._latch = threading.RLock()
        self._commit_counter = itertools.count(1)
        self._last_commit_ts = 0.0
        self._active_snapshots: dict[int, float] = {}
        self._commits_since_prune = 0
        self.committed = 0
        self.aborted = 0

    @property
    def latch(self) -> threading.RLock:
        return self._latch

    def begin(self, isolation: str) -> Transaction:
        with self._latch:
            snapshot_ts = (self._last_commit_ts if isolation == SNAPSHOT
                           else READ_LATEST)
            txn = Transaction(isolation, snapshot_ts)
            if isolation == SNAPSHOT:
                self._active_snapshots[txn.txn_id] = snapshot_ts
            return txn

    def commit(self, txn: Transaction,
               tables: dict[str, TableData]) -> float:
        """Validate and apply ``txn``'s workspace; returns the commit ts.

        Raises :class:`SerializationError` for snapshot-isolation conflicts
        (the workspace is left intact so the caller can roll back cleanly).
        """
        with self._latch:
            if not txn.active:
                raise ProgrammingError("transaction is not active")
            if txn.isolation == SNAPSHOT:
                self._validate_snapshot(txn, tables)
            commit_ts = float(next(self._commit_counter))
            self._last_commit_ts = commit_ts
            for (table_name, rowid), op in txn.workspace.items():
                data = tables[table_name]
                if op.kind == INSERT:
                    data.apply_insert(rowid, op.values, commit_ts)
                elif op.kind == UPDATE:
                    data.apply_update(rowid, op.values, commit_ts)
                else:
                    data.apply_delete(rowid, commit_ts)
            self._finish(txn)
            self.committed += 1
            self._commits_since_prune += 1
            if self._commits_since_prune >= self.PRUNE_INTERVAL:
                self._commits_since_prune = 0
                self._prune(tables)
            return commit_ts

    def rollback(self, txn: Transaction) -> None:
        with self._latch:
            if txn.active:
                txn.workspace.clear()
                txn.inserted.clear()
                self._finish(txn)
                self.aborted += 1

    def _finish(self, txn: Transaction) -> None:
        txn.active = False
        self._active_snapshots.pop(txn.txn_id, None)

    def _validate_snapshot(self, txn: Transaction,
                           tables: dict[str, TableData]) -> None:
        """First-committer-wins: abort if any touched row moved on."""
        for (table_name, rowid), op in txn.workspace.items():
            data = tables[table_name]
            latest = data.latest_version(rowid)
            if op.kind == INSERT:
                # Another committer may have claimed the same primary key.
                if data.schema.primary_key and op.values is not None:
                    key = data.schema.pk_key(op.values)
                    existing = data.pk_lookup_latest(key)
                    if existing is not None and existing != rowid:
                        raise SerializationError(
                            f"concurrent insert of key {key!r} "
                            f"into {table_name!r}")
                continue
            if latest is not None and latest.begin_ts > txn.snapshot_ts:
                raise SerializationError(
                    f"write-write conflict on {table_name!r} row {rowid}")

    def min_active_snapshot(self) -> float:
        with self._latch:
            if not self._active_snapshots:
                return READ_LATEST
            return min(self._active_snapshots.values())

    def _prune(self, tables: dict[str, TableData]) -> None:
        horizon = self.min_active_snapshot()
        for data in tables.values():
            data.prune(horizon)
