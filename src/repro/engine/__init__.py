"""In-memory relational engine: the DBMS substrate under test.

This package replaces the real DBMS servers (MySQL, PostgreSQL, Oracle,
Derby) that OLTP-Bench drives over JDBC.  It provides:

* a SQL subset (DDL + DML with joins, aggregates, ORDER BY/LIMIT);
* strict two-phase locking with deadlock detection, and snapshot isolation
  with first-committer-wins validation;
* a PEP 249 DB-API 2.0 driver (``connect``/``Connection``/``Cursor``);
* :class:`DbmsPersonality` performance models that make different simulated
  servers saturate and jitter differently (the game's "stages").
"""

from .catalog import Catalog, ColumnDef, IndexDef, TableSchema
from .database import Database, EngineCounters, PreparedStatement
from .dbapi import Connection, Cursor, connect
from .locks import EXCLUSIVE, SHARED, LockManager
from .plan import LruCache, PlanCache, compile_statement
from .service import PERSONALITIES, DbmsPersonality, get_personality
from .storage import TableData, Version
from .txn import SERIALIZABLE, SNAPSHOT, Transaction, TransactionManager
from .types import SqlType, compare_values

__all__ = [
    "Catalog", "ColumnDef", "IndexDef", "TableSchema",
    "Database", "EngineCounters", "PreparedStatement",
    "Connection", "Cursor", "connect",
    "EXCLUSIVE", "SHARED", "LockManager",
    "LruCache", "PlanCache", "compile_statement",
    "PERSONALITIES", "DbmsPersonality", "get_personality",
    "TableData", "Version",
    "SERIALIZABLE", "SNAPSHOT", "Transaction", "TransactionManager",
    "SqlType", "compare_values",
]
