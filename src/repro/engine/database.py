"""The database facade: catalog + storage + concurrency + SQL front end.

A :class:`Database` is the in-process stand-in for a DBMS server instance.
Connections from the DB-API layer share its catalog, row storage, lock
manager, and transaction manager — exactly the role a MySQL or PostgreSQL
server plays for OLTP-Bench's JDBC workers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import ProgrammingError
from .catalog import Catalog, ColumnDef, IndexDef, TableSchema
from .executor import Executor, Result
from .plan import LruCache, PlanCache, Unsupported, compile_statement
from .sqlparser import ast, parse
from .storage import TableData
from .txn import SERIALIZABLE, Transaction, TransactionManager
from .locks import LockManager
from .types import SqlType


@dataclass
class EngineCounters:
    """Server-side activity counters, the dstat analogue for monitoring."""

    rows_read: int = 0
    rows_inserted: int = 0
    rows_updated: int = 0
    rows_deleted: int = 0
    statements: int = 0
    plan_executions: int = 0
    interpreted_executions: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "rows_read": self.rows_read,
            "rows_inserted": self.rows_inserted,
            "rows_updated": self.rows_updated,
            "rows_deleted": self.rows_deleted,
            "statements": self.statements,
            "plan_executions": self.plan_executions,
            "interpreted_executions": self.interpreted_executions,
        }


class PreparedStatement:
    """A parsed statement plus its compiled plan (None = interpret).

    Produced by :meth:`Database.prepare_exec`; the DB-API layer holds
    one per ``executemany`` call so the parse/plan cost is paid once.
    """

    __slots__ = ("sql", "stmt", "plan", "is_ddl")

    def __init__(self, sql: str, stmt: ast.Statement, plan: object) -> None:
        self.sql = sql
        self.stmt = stmt
        self.plan = plan
        self.is_ddl = isinstance(
            stmt, (ast.CreateTable, ast.CreateIndex, ast.DropTable))


class Database:
    """One logical database instance shared by many connections."""

    def __init__(self, name: str = "main",
                 lock_timeout: float = 5.0, clock=None, *,
                 stmt_cache_size: int = 512,
                 plan_cache_size: int = 256,
                 use_compiled_plans: bool = True) -> None:
        self.name = name
        self.catalog = Catalog()
        # ``clock`` (a repro.clock.Clock or monotonic callable) feeds the
        # lock manager's wait deadlines; injected so simulated databases
        # never consult the wall clock.
        self.lock_manager = LockManager(timeout=lock_timeout, clock=clock)
        self.txn_manager = TransactionManager()
        self.counters = EngineCounters()
        self._tables: dict[str, TableData] = {}
        self._executor = Executor(self)
        self._stmt_cache = LruCache(stmt_cache_size)
        self.plan_cache = PlanCache(plan_cache_size)
        self.use_compiled_plans = use_compiled_plans

    # -- storage access ----------------------------------------------------

    @property
    def latch(self) -> threading.RLock:
        return self.txn_manager.latch

    def table_data(self, name: str) -> TableData:
        try:
            return self._tables[name]
        except KeyError:
            raise ProgrammingError(f"no table named {name!r}") from None

    def table_names(self) -> list[str]:
        return self.catalog.table_names()

    def row_count(self, table: str) -> int:
        with self.latch:
            return self.table_data(table).count_live()

    # -- SQL front end -------------------------------------------------------

    def prepare(self, sql: str) -> ast.Statement:
        hit, stmt = self._stmt_cache.lookup(sql)
        if not hit:
            stmt = parse(sql)
            self._stmt_cache.put(sql, stmt)
        return stmt

    def prepare_exec(self, sql: str) -> PreparedStatement:
        """Parse and plan ``sql`` once; both steps are cached.

        The plan cache is keyed by ``(sql, catalog_version)``, so plans
        compiled before a DDL statement can never be served after it.
        Statements the compiler cannot handle cache a ``None`` plan and
        run interpreted.
        """
        stmt = self.prepare(sql)
        return PreparedStatement(sql, stmt, self._plan_for(sql, stmt))

    def _plan_for(self, sql: str, stmt: ast.Statement):
        if not self.use_compiled_plans:
            return None
        if not isinstance(stmt, (ast.Select, ast.Insert, ast.Update,
                                 ast.Delete)):
            return None
        key = (sql, self.catalog.version)
        hit, plan = self.plan_cache.lookup(key)
        if hit:
            return plan
        try:
            plan = compile_statement(stmt, self.catalog)
        except Unsupported:
            plan = None
        # Semantic ProgrammingErrors propagate uncached: the statement
        # is broken, not merely uncompilable.
        self.plan_cache.put(key, plan)
        return plan

    def execute(self, txn: Optional[Transaction], sql: str,
                params: Sequence[object] = ()) -> Result:
        """Execute ``sql``; DDL runs outside any transaction."""
        return self.execute_prepared(txn, self.prepare_exec(sql), params)

    def execute_prepared(self, txn: Optional[Transaction],
                         prepared: PreparedStatement,
                         params: Sequence[object] = ()) -> Result:
        self.counters.statements += 1
        if prepared.is_ddl:
            return self._execute_ddl(prepared.stmt)
        if isinstance(prepared.stmt, ast.TransactionControl):
            raise ProgrammingError(
                "use the connection's commit()/rollback() methods")
        if txn is None or not txn.active:
            raise ProgrammingError("no active transaction")
        if prepared.plan is not None:
            self.counters.plan_executions += 1
            return self._executor.execute_plan(txn, prepared.plan, params)
        self.counters.interpreted_executions += 1
        return self._executor.execute(txn, prepared.stmt, params)

    # -- transactions ---------------------------------------------------------

    def begin(self, isolation: str = SERIALIZABLE) -> Transaction:
        return self.txn_manager.begin(isolation)

    def commit(self, txn: Transaction) -> None:
        try:
            self.txn_manager.commit(txn, self._tables)
        except Exception:
            self.txn_manager.rollback(txn)
            self.lock_manager.release_all(txn)
            raise
        self.lock_manager.release_all(txn)

    def rollback(self, txn: Transaction) -> None:
        self.txn_manager.rollback(txn)
        self.lock_manager.release_all(txn)

    # -- DDL ----------------------------------------------------------------

    def _execute_ddl(self, stmt: ast.Statement) -> Result:
        version_before = self.catalog.version
        with self.latch:
            if isinstance(stmt, ast.CreateTable):
                self._create_table(stmt)
            elif isinstance(stmt, ast.CreateIndex):
                self._create_index(stmt)
            elif isinstance(stmt, ast.DropTable):
                self._drop_table(stmt)
        if self.catalog.version != version_before:
            # The version key already strands old plans; drop them
            # eagerly so the cache carries no dead entries.
            self.plan_cache.invalidate_all()
        return Result(rowcount=0)

    def _create_table(self, stmt: ast.CreateTable) -> None:
        if self.catalog.has(stmt.name):
            if stmt.if_not_exists:
                return
            raise ProgrammingError(f"table {stmt.name!r} already exists")
        columns = []
        for col in stmt.columns:
            default = None
            has_default = col.default is not None
            if has_default:
                if not isinstance(col.default, ast.Literal):
                    raise ProgrammingError(
                        "only literal DEFAULT values are supported")
                default = col.default.value
            columns.append(ColumnDef(
                name=col.name,
                sql_type=SqlType(col.type_name, col.type_args),
                not_null=col.not_null,
                default=default,
                has_default=has_default,
            ))
        schema = TableSchema(stmt.name, tuple(columns), stmt.primary_key,
                             foreign_keys=stmt.foreign_keys)
        self.catalog.create_table(schema)
        self._tables[stmt.name] = TableData(schema)

    def _create_index(self, stmt: ast.CreateIndex) -> None:
        index = IndexDef(stmt.name, stmt.table, stmt.columns, stmt.unique)
        self.catalog.add_index(index)
        self.table_data(stmt.table).add_index(index)

    def _drop_table(self, stmt: ast.DropTable) -> None:
        if not self.catalog.has(stmt.name):
            if stmt.if_exists:
                return
            raise ProgrammingError(f"no table named {stmt.name!r}")
        self.catalog.drop_table(stmt.name)
        del self._tables[stmt.name]

    # -- bulk load (loader fast path) ------------------------------------------

    def bulk_insert(self, table: str, rows: list[tuple]) -> int:
        """Insert pre-validated rows directly, bypassing SQL and locking.

        Loaders use this to populate tables quickly; values are still
        type-coerced and primary keys checked.
        """
        schema = self.catalog.get(table)
        data = self.table_data(table)
        with self.latch:
            txn = self.txn_manager.begin(SERIALIZABLE)
            for raw in rows:
                if len(raw) != len(schema.columns):
                    raise ProgrammingError(
                        f"bulk insert into {table!r} expects "
                        f"{len(schema.columns)} values, got {len(raw)}")
                values = tuple(
                    column.sql_type.coerce(value)
                    for column, value in zip(schema.columns, raw))
                rowid = data.new_rowid()
                txn.buffer_insert(table, rowid, values)
            self.txn_manager.commit(txn, self._tables)
        self.lock_manager.release_all(txn)
        self.counters.rows_inserted += len(rows)
        return len(rows)

    # -- statistics -------------------------------------------------------------

    def cache_stats(self) -> dict[str, object]:
        """Plan/statement cache health for the monitoring stack."""
        return {
            "plan_cache": self.plan_cache.snapshot(),
            "stmt_cache": self._stmt_cache.snapshot(),
            "catalog_version": self.catalog.version,
        }

    def stats(self) -> dict[str, object]:
        with self.latch:
            table_stats = {
                name: self._tables[name].count_live()
                for name in self.catalog.table_names()
            }
        return {
            "name": self.name,
            "tables": table_stats,
            "counters": self.counters.snapshot(),
            "locks": self.lock_manager.stats.snapshot(),
            "caches": self.cache_stats(),
            "committed": self.txn_manager.committed,
            "aborted": self.txn_manager.aborted,
        }
