"""The database facade: catalog + storage + concurrency + SQL front end.

A :class:`Database` is the in-process stand-in for a DBMS server instance.
Connections from the DB-API layer share its catalog, row storage, lock
manager, and transaction manager — exactly the role a MySQL or PostgreSQL
server plays for OLTP-Bench's JDBC workers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..errors import ProgrammingError
from .catalog import Catalog, ColumnDef, IndexDef, TableSchema
from .executor import Executor, Result
from .sqlparser import ast, parse
from .storage import TableData
from .txn import SERIALIZABLE, Transaction, TransactionManager
from .locks import LockManager
from .types import SqlType


@dataclass
class EngineCounters:
    """Server-side activity counters, the dstat analogue for monitoring."""

    rows_read: int = 0
    rows_inserted: int = 0
    rows_updated: int = 0
    rows_deleted: int = 0
    statements: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "rows_read": self.rows_read,
            "rows_inserted": self.rows_inserted,
            "rows_updated": self.rows_updated,
            "rows_deleted": self.rows_deleted,
            "statements": self.statements,
        }


class Database:
    """One logical database instance shared by many connections."""

    def __init__(self, name: str = "main",
                 lock_timeout: float = 5.0, clock=None) -> None:
        self.name = name
        self.catalog = Catalog()
        # ``clock`` (a repro.clock.Clock or monotonic callable) feeds the
        # lock manager's wait deadlines; injected so simulated databases
        # never consult the wall clock.
        self.lock_manager = LockManager(timeout=lock_timeout, clock=clock)
        self.txn_manager = TransactionManager()
        self.counters = EngineCounters()
        self._tables: dict[str, TableData] = {}
        self._executor = Executor(self)
        self._stmt_cache: dict[str, ast.Statement] = {}
        self._cache_lock = threading.Lock()

    # -- storage access ----------------------------------------------------

    @property
    def latch(self) -> threading.RLock:
        return self.txn_manager.latch

    def table_data(self, name: str) -> TableData:
        try:
            return self._tables[name]
        except KeyError:
            raise ProgrammingError(f"no table named {name!r}") from None

    def table_names(self) -> list[str]:
        return self.catalog.table_names()

    def row_count(self, table: str) -> int:
        with self.latch:
            return self.table_data(table).count_live()

    # -- SQL front end -------------------------------------------------------

    def prepare(self, sql: str) -> ast.Statement:
        with self._cache_lock:
            stmt = self._stmt_cache.get(sql)
        if stmt is None:
            stmt = parse(sql)
            with self._cache_lock:
                self._stmt_cache[sql] = stmt
        return stmt

    def execute(self, txn: Optional[Transaction], sql: str,
                params: Sequence[object] = ()) -> Result:
        """Execute ``sql``; DDL runs outside any transaction."""
        stmt = self.prepare(sql)
        self.counters.statements += 1
        if isinstance(stmt, (ast.CreateTable, ast.CreateIndex, ast.DropTable)):
            return self._execute_ddl(stmt)
        if isinstance(stmt, ast.TransactionControl):
            raise ProgrammingError(
                "use the connection's commit()/rollback() methods")
        if txn is None or not txn.active:
            raise ProgrammingError("no active transaction")
        return self._executor.execute(txn, stmt, params)

    # -- transactions ---------------------------------------------------------

    def begin(self, isolation: str = SERIALIZABLE) -> Transaction:
        return self.txn_manager.begin(isolation)

    def commit(self, txn: Transaction) -> None:
        try:
            self.txn_manager.commit(txn, self._tables)
        except Exception:
            self.txn_manager.rollback(txn)
            self.lock_manager.release_all(txn)
            raise
        self.lock_manager.release_all(txn)

    def rollback(self, txn: Transaction) -> None:
        self.txn_manager.rollback(txn)
        self.lock_manager.release_all(txn)

    # -- DDL ----------------------------------------------------------------

    def _execute_ddl(self, stmt: ast.Statement) -> Result:
        with self.latch:
            if isinstance(stmt, ast.CreateTable):
                self._create_table(stmt)
            elif isinstance(stmt, ast.CreateIndex):
                self._create_index(stmt)
            elif isinstance(stmt, ast.DropTable):
                self._drop_table(stmt)
        return Result(rowcount=0)

    def _create_table(self, stmt: ast.CreateTable) -> None:
        if self.catalog.has(stmt.name):
            if stmt.if_not_exists:
                return
            raise ProgrammingError(f"table {stmt.name!r} already exists")
        columns = []
        for col in stmt.columns:
            default = None
            has_default = col.default is not None
            if has_default:
                if not isinstance(col.default, ast.Literal):
                    raise ProgrammingError(
                        "only literal DEFAULT values are supported")
                default = col.default.value
            columns.append(ColumnDef(
                name=col.name,
                sql_type=SqlType(col.type_name, col.type_args),
                not_null=col.not_null,
                default=default,
                has_default=has_default,
            ))
        schema = TableSchema(stmt.name, tuple(columns), stmt.primary_key,
                             foreign_keys=stmt.foreign_keys)
        self.catalog.create_table(schema)
        self._tables[stmt.name] = TableData(schema)

    def _create_index(self, stmt: ast.CreateIndex) -> None:
        index = IndexDef(stmt.name, stmt.table, stmt.columns, stmt.unique)
        self.catalog.add_index(index)
        self.table_data(stmt.table).add_index(index)

    def _drop_table(self, stmt: ast.DropTable) -> None:
        if not self.catalog.has(stmt.name):
            if stmt.if_exists:
                return
            raise ProgrammingError(f"no table named {stmt.name!r}")
        self.catalog.drop_table(stmt.name)
        del self._tables[stmt.name]

    # -- bulk load (loader fast path) ------------------------------------------

    def bulk_insert(self, table: str, rows: list[tuple]) -> int:
        """Insert pre-validated rows directly, bypassing SQL and locking.

        Loaders use this to populate tables quickly; values are still
        type-coerced and primary keys checked.
        """
        schema = self.catalog.get(table)
        data = self.table_data(table)
        with self.latch:
            txn = self.txn_manager.begin(SERIALIZABLE)
            for raw in rows:
                if len(raw) != len(schema.columns):
                    raise ProgrammingError(
                        f"bulk insert into {table!r} expects "
                        f"{len(schema.columns)} values, got {len(raw)}")
                values = tuple(
                    column.sql_type.coerce(value)
                    for column, value in zip(schema.columns, raw))
                rowid = data.new_rowid()
                txn.buffer_insert(table, rowid, values)
            self.txn_manager.commit(txn, self._tables)
        self.lock_manager.release_all(txn)
        self.counters.rows_inserted += len(rows)
        return len(rows)

    # -- statistics -------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        with self.latch:
            table_stats = {
                name: self._tables[name].count_live()
                for name in self.catalog.table_names()
            }
        return {
            "name": self.name,
            "tables": table_stats,
            "counters": self.counters.snapshot(),
            "locks": self.lock_manager.stats.snapshot(),
            "committed": self.txn_manager.committed,
            "aborted": self.txn_manager.aborted,
        }
