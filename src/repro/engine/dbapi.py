"""PEP 249 (DB-API 2.0) driver for the in-memory engine.

Benchmark transaction code talks to the engine exactly the way OLTP-Bench's
Java procedures talk to JDBC: open a connection, execute parameterised
statements with ``?`` markers, then commit or roll back.

    conn = connect(db)
    cur = conn.cursor()
    cur.execute("SELECT bal FROM accounts WHERE id = ?", (42,))
    row = cur.fetchone()
    conn.commit()

Transactions begin implicitly at the first statement.  ``autocommit`` mode
is available for loaders and ad-hoc queries.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..errors import (
    DatabaseError, DataError, Error, IntegrityError, InterfaceError,
    InternalError, NotSupportedError, OperationalError, ProgrammingError,
    Warning,
)
from .database import Database
from .txn import SERIALIZABLE, SNAPSHOT, Transaction

apilevel = "2.0"
threadsafety = 2  # threads may share the module and connections' Database
paramstyle = "qmark"

__all__ = [
    "connect", "Connection", "Cursor", "apilevel", "threadsafety",
    "paramstyle", "Warning", "Error", "InterfaceError", "DatabaseError",
    "DataError", "OperationalError", "IntegrityError", "InternalError",
    "ProgrammingError", "NotSupportedError",
]


def connect(database: Database, isolation: str = SERIALIZABLE,
            autocommit: bool = False) -> "Connection":
    """Open a connection to an engine :class:`Database` instance."""
    return Connection(database, isolation, autocommit)


class Connection:
    """One client session; not safe for concurrent use by many threads."""

    def __init__(self, database: Database, isolation: str = SERIALIZABLE,
                 autocommit: bool = False) -> None:
        if isolation not in (SERIALIZABLE, SNAPSHOT):
            raise NotSupportedError(
                f"isolation must be {SERIALIZABLE!r} or {SNAPSHOT!r}")
        self._db = database
        self.isolation = isolation
        self.autocommit = autocommit
        self._txn: Optional[Transaction] = None
        self._closed = False
        #: Read/write footprint of the most recently finished transaction;
        #: the simulated executor feeds this to the DBMS personality model.
        self.last_txn_stats = None

    # -- PEP 249 interface ---------------------------------------------------

    def cursor(self) -> "Cursor":
        self._check_open()
        return Cursor(self)

    def commit(self) -> None:
        self._check_open()
        if self._txn is not None and self._txn.active:
            try:
                self.last_txn_stats = self._txn.stats
                self._db.commit(self._txn)
            finally:
                self._txn = None
        else:
            self._txn = None

    def rollback(self) -> None:
        self._check_open()
        if self._txn is not None and self._txn.active:
            self.last_txn_stats = self._txn.stats
            self._db.rollback(self._txn)
        self._txn = None

    def close(self) -> None:
        if not self._closed:
            if self._txn is not None and self._txn.active:
                self._db.rollback(self._txn)
            self._txn = None
            self._closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is None:
            try:
                self.commit()
            finally:
                self.close()
        else:
            self.close()

    # -- internals ------------------------------------------------------------

    @property
    def database(self) -> Database:
        return self._db

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None and self._txn.active

    @property
    def transaction(self) -> Optional[Transaction]:
        return self._txn

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def _ensure_txn(self) -> Transaction:
        if self._txn is None or not self._txn.active:
            self._txn = self._db.begin(self.isolation)
        return self._txn

    def _prepare(self, sql: str):
        self._check_open()
        return self._db.prepare_exec(sql)

    def _execute(self, sql: str, params: Sequence[object]):
        self._check_open()
        return self._execute_prepared(self._db.prepare_exec(sql), params)

    def _execute_prepared(self, prepared, params: Sequence[object]):
        if prepared.is_ddl:
            if self._txn is not None and self._txn.active:
                raise ProgrammingError(
                    "DDL is not allowed inside an open transaction")
            return self._db.execute_prepared(None, prepared, params)
        txn = self._ensure_txn()
        try:
            result = self._db.execute_prepared(txn, prepared, params)
        except OperationalError:
            # Engine-initiated aborts (deadlock, timeout, serialization)
            # leave the transaction dead; roll back so the next statement
            # starts fresh, mirroring JDBC driver behaviour.
            self.rollback()
            raise
        if self.autocommit:
            self.commit()
        return result


class Cursor:
    """PEP 249 cursor over a connection."""

    arraysize = 1

    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        self._rows: list[tuple] = []
        self._pos = 0
        self.description: Optional[list[tuple]] = None
        self.rowcount = -1
        self._closed = False

    # -- execution --------------------------------------------------------

    def execute(self, sql: str, params: Sequence[object] = ()) -> "Cursor":
        self._check_open()
        if isinstance(params, (str, bytes)):
            raise ProgrammingError("params must be a sequence, not a string")
        result = self.connection._execute(sql, tuple(params))
        self._load(result)
        return self

    def executemany(self, sql: str,
                    seq_of_params: Sequence[Sequence[object]]) -> "Cursor":
        """Prepare/plan once, then loop executions over the parameters.

        Per-item transaction semantics are identical to calling
        :meth:`execute` in a loop (autocommit commits each item;
        engine aborts roll back); only the per-item parse/plan work
        is hoisted out.
        """
        self._check_open()
        prepared = self.connection._prepare(sql)
        total = 0
        for params in seq_of_params:
            if isinstance(params, (str, bytes)):
                raise ProgrammingError(
                    "params must be a sequence, not a string")
            self._check_open()
            result = self.connection._execute_prepared(prepared,
                                                       tuple(params))
            self._load(result)
            if self.rowcount > 0:
                total += self.rowcount
        self.rowcount = total
        return self

    def _load(self, result) -> None:
        self._rows = result.rows
        self._pos = 0
        self.rowcount = result.rowcount
        if result.columns:
            self.description = [
                (name, None, None, None, None, None, None)
                for name in result.columns
            ]
        else:
            self.description = None

    # -- fetching -----------------------------------------------------------

    def fetchone(self) -> Optional[tuple]:
        self._check_open()
        if self._pos >= len(self._rows):
            return None
        row = self._rows[self._pos]
        self._pos += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        self._check_open()
        if size is None:
            size = self.arraysize
        chunk = self._rows[self._pos:self._pos + size]
        self._pos += len(chunk)
        return chunk

    def fetchall(self) -> list[tuple]:
        self._check_open()
        remaining = self._rows[self._pos:]
        self._pos = len(self._rows)
        return remaining

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- misc ------------------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._rows = []

    def setinputsizes(self, sizes) -> None:  # noqa: D102 - PEP 249 no-op
        pass

    def setoutputsize(self, size, column=None) -> None:  # noqa: D102
        pass

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection._check_open()
