"""Expression evaluation with SQL three-valued logic.

The evaluator works over a :class:`RowContext` that maps table bindings
(alias or table name) to ``(schema, row values)`` pairs.  ``None`` results
represent SQL NULL / UNKNOWN and propagate through comparisons; AND/OR
follow Kleene logic.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import DataError, ProgrammingError
from .catalog import TableSchema
from .sqlparser import ast
from .types import compare_values


class RowContext:
    """Column-name resolution over the rows currently in scope."""

    __slots__ = ("bindings",)

    def __init__(self, bindings: dict[str, tuple[TableSchema, Optional[tuple]]]):
        self.bindings = bindings

    def resolve(self, table: Optional[str], column: str) -> object:
        if table is not None:
            try:
                schema, values = self.bindings[table]
            except KeyError:
                raise ProgrammingError(f"unknown table binding {table!r}") from None
            if values is None:
                return None
            return values[schema.position(column)]
        matches = [
            (schema, values) for schema, values in self.bindings.values()
            if schema.has_column(column)
        ]
        if not matches:
            raise ProgrammingError(f"unknown column {column!r}")
        if len(matches) > 1:
            raise ProgrammingError(f"ambiguous column {column!r}")
        schema, values = matches[0]
        if values is None:
            return None
        return values[schema.position(column)]


_EMPTY_CONTEXT = RowContext({})

_ARITHMETIC = {"+", "-", "*", "/", "%"}
_COMPARISON = {"=", "<>", "<", "<=", ">", ">="}


def evaluate(expr: ast.Expr, ctx: Optional[RowContext],
             params: Sequence[object] = ()) -> object:
    """Evaluate ``expr`` against ``ctx``; returns a Python value or None."""
    if ctx is None:
        ctx = _EMPTY_CONTEXT
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Param):
        try:
            return params[expr.index]
        except IndexError:
            raise ProgrammingError(
                f"statement expects at least {expr.index + 1} parameters, "
                f"got {len(params)}") from None
    if isinstance(expr, ast.ColumnRef):
        return ctx.resolve(expr.table, expr.column)
    if isinstance(expr, ast.BinaryOp):
        return _eval_binary(expr, ctx, params)
    if isinstance(expr, ast.UnaryOp):
        return _eval_unary(expr, ctx, params)
    if isinstance(expr, ast.Between):
        value = evaluate(expr.value, ctx, params)
        low = evaluate(expr.low, ctx, params)
        high = evaluate(expr.high, ctx, params)
        ge = _compare_bool(value, low, ">=")
        le = _compare_bool(value, high, "<=")
        result = _kleene_and(ge, le)
        return _maybe_negate(result, expr.negated)
    if isinstance(expr, ast.InList):
        return _eval_in(expr, ctx, params)
    if isinstance(expr, ast.Like):
        return _eval_like(expr, ctx, params)
    if isinstance(expr, ast.IsNull):
        value = evaluate(expr.value, ctx, params)
        return (value is None) != expr.negated
    if isinstance(expr, ast.FuncCall):
        return _eval_scalar_func(expr, ctx, params)
    if isinstance(expr, ast.CaseExpr):
        for cond, val in expr.branches:
            if evaluate(cond, ctx, params) is True:
                return evaluate(val, ctx, params)
        if expr.default is not None:
            return evaluate(expr.default, ctx, params)
        return None
    raise ProgrammingError(f"cannot evaluate expression node {expr!r}")


def is_true(value: object) -> bool:
    """SQL WHERE acceptance: only TRUE passes (NULL/UNKNOWN filters out)."""
    return value is True


def _maybe_negate(value: Optional[bool], negated: bool) -> Optional[bool]:
    if value is None or not negated:
        return value
    return not value


def apply_binary(op: str, left: object, right: object) -> object:
    """Apply a binary operator to already-evaluated operands.

    Shared by the tree-walking evaluator and the compiled-plan closures
    (``repro.engine.plan``) so both paths have identical SQL semantics.
    Note AND/OR are *eager* over evaluated operands, matching the
    interpreter (no short-circuit).
    """
    if op == "and":
        return _kleene_and(_as_bool(left), _as_bool(right))
    if op == "or":
        return _kleene_or(_as_bool(left), _as_bool(right))
    if op in _COMPARISON:
        return _compare_bool(left, right, op)
    if op == "||":
        if left is None or right is None:
            return None
        return _stringify(left) + _stringify(right)
    if op in _ARITHMETIC:
        if left is None or right is None:
            return None
        return _arith(op, left, right)
    raise ProgrammingError(f"unknown binary operator {op!r}")


def apply_unary(op: str, value: object) -> object:
    """Apply a unary operator to an already-evaluated operand."""
    if op == "not":
        as_bool = _as_bool(value)
        return None if as_bool is None else (not as_bool)
    if op == "-":
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise DataError(f"cannot negate {value!r}")
        return -value
    raise ProgrammingError(f"unknown unary operator {op!r}")


def _eval_binary(expr: ast.BinaryOp, ctx: RowContext,
                 params: Sequence[object]) -> object:
    return apply_binary(expr.op, evaluate(expr.left, ctx, params),
                        evaluate(expr.right, ctx, params))


def _eval_unary(expr: ast.UnaryOp, ctx: RowContext,
                params: Sequence[object]) -> object:
    return apply_unary(expr.op, evaluate(expr.operand, ctx, params))


def _eval_in(expr: ast.InList, ctx: RowContext,
             params: Sequence[object]) -> object:
    value = evaluate(expr.value, ctx, params)
    if value is None:
        return None
    saw_null = False
    for option in expr.options:
        candidate = evaluate(option, ctx, params)
        result = _compare_bool(value, candidate, "=")
        if result is True:
            return not expr.negated
        if result is None:
            saw_null = True
    if saw_null:
        return None
    return expr.negated


def _eval_like(expr: ast.Like, ctx: RowContext,
               params: Sequence[object]) -> object:
    value = evaluate(expr.value, ctx, params)
    pattern = evaluate(expr.pattern, ctx, params)
    if value is None or pattern is None:
        return None
    matched = like_match(_stringify(value), _stringify(pattern))
    return matched != expr.negated


def like_match(text: str, pattern: str) -> bool:
    """SQL LIKE matching with ``%`` and ``_`` wildcards (case-sensitive).

    Iterative two-pointer algorithm with backtracking on the last ``%``,
    avoiding regex compilation in the hot path.
    """
    ti = pi = 0
    star_pi = star_ti = -1
    while ti < len(text):
        if pi < len(pattern) and pattern[pi] == "%":
            # Wildcard first: a literal '%' in the text must not consume
            # the pattern's '%' as an ordinary character match.
            star_pi = pi
            star_ti = ti
            pi += 1
        elif pi < len(pattern) and (pattern[pi] == "_"
                                    or pattern[pi] == text[ti]):
            ti += 1
            pi += 1
        elif star_pi >= 0:
            star_ti += 1
            ti = star_ti
            pi = star_pi + 1
        else:
            return False
    while pi < len(pattern) and pattern[pi] == "%":
        pi += 1
    return pi == len(pattern)


_SCALAR_FUNCS = frozenset({
    "abs", "length", "lower", "upper", "substr", "substring", "mod",
    "coalesce", "nullif", "round", "floor", "ceil", "ceiling", "sign",
})

AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})


def is_aggregate_call(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.FuncCall) and expr.name in AGGREGATES


def _eval_scalar_func(expr: ast.FuncCall, ctx: RowContext,
                      params: Sequence[object]) -> object:
    name = expr.name
    if name in AGGREGATES:
        raise ProgrammingError(
            f"aggregate {name!r} used outside aggregation context")
    if name not in _SCALAR_FUNCS:
        raise ProgrammingError(f"unknown function {name!r}")
    return apply_scalar_func(
        name, [evaluate(arg, ctx, params) for arg in expr.args])


def apply_scalar_func(name: str, args: list) -> object:
    """Apply a known scalar function to already-evaluated arguments.

    Shared by the tree-walking evaluator and compiled-plan closures;
    callers have already validated that ``name`` is in
    :data:`_SCALAR_FUNCS`.
    """
    if name == "coalesce":
        for arg in args:
            if arg is not None:
                return arg
        return None
    if name == "nullif":
        _require_args(name, args, 2)
        return None if _compare_bool(args[0], args[1], "=") is True else args[0]
    if any(arg is None for arg in args):
        return None
    if name == "abs":
        _require_args(name, args, 1)
        return abs(args[0])
    if name == "length":
        _require_args(name, args, 1)
        return len(_stringify(args[0]))
    if name == "lower":
        _require_args(name, args, 1)
        return _stringify(args[0]).lower()
    if name == "upper":
        _require_args(name, args, 1)
        return _stringify(args[0]).upper()
    if name in ("substr", "substring"):
        if len(args) not in (2, 3):
            raise ProgrammingError(f"{name} expects 2 or 3 arguments")
        text = _stringify(args[0])
        start = max(int(args[1]) - 1, 0)
        if len(args) == 3:
            return text[start:start + int(args[2])]
        return text[start:]
    if name == "mod":
        _require_args(name, args, 2)
        return _arith("%", args[0], args[1])
    if name == "round":
        if len(args) == 1:
            return round(float(args[0]))
        return round(float(args[0]), int(args[1]))
    if name == "floor":
        _require_args(name, args, 1)
        return int(args[0] // 1)
    if name in ("ceil", "ceiling"):
        _require_args(name, args, 1)
        return int(-((-args[0]) // 1))
    if name == "sign":
        _require_args(name, args, 1)
        return (args[0] > 0) - (args[0] < 0)
    raise ProgrammingError(f"unknown function {name!r}")


def _require_args(name: str, args: list, count: int) -> None:
    if len(args) != count:
        raise ProgrammingError(f"{name} expects {count} arguments")


def _compare_bool(left: object, right: object, op: str) -> Optional[bool]:
    cmp = compare_values(left, right)
    if cmp is None:
        return None
    if op == "=":
        return cmp == 0
    if op == "<>":
        return cmp != 0
    if op == "<":
        return cmp < 0
    if op == "<=":
        return cmp <= 0
    if op == ">":
        return cmp > 0
    if op == ">=":
        return cmp >= 0
    raise ProgrammingError(f"unknown comparison {op!r}")


def _kleene_and(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def _kleene_or(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def _as_bool(value: object) -> Optional[bool]:
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise DataError(f"cannot use {value!r} as a boolean")


def _arith(op: str, left: object, right: object) -> object:
    if isinstance(left, bool):
        left = int(left)
    if isinstance(right, bool):
        right = int(right)
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise DataError(f"cannot apply {op!r} to {left!r} and {right!r}")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise DataError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            # SQL integer division truncates toward zero.
            quotient = abs(left) // abs(right)
            return quotient if (left >= 0) == (right >= 0) else -quotient
        return left / right
    if op == "%":
        if right == 0:
            raise DataError("modulo by zero")
        return left - right * int(left / right)
    raise ProgrammingError(f"unknown arithmetic operator {op!r}")


def _stringify(value: object) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)
