"""Statement execution: scans, joins, aggregation, and DML.

The executor is a straightforward iterator pipeline:

* single-table access paths choose between an equality-index lookup and a
  full scan (``planner`` logic is inlined in :meth:`_choose_access_path`);
* joins are nested loops, with equality join predicates pushed down so the
  inner side can use its indexes per outer row;
* strict-2PL transactions acquire shared locks on qualifying rows (exclusive
  for ``FOR UPDATE`` and DML); snapshot transactions read without locks;
* aggregation/grouping, DISTINCT, ORDER BY, and LIMIT/OFFSET are applied to
  the materialised row set.

Like most lightweight engines, predicate locks are not implemented, so
phantom protection is limited to primary-key locking on inserts; this is
documented in DESIGN.md and does not affect any of the 15 workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, TYPE_CHECKING

from ..errors import IntegrityError, ProgrammingError
from .catalog import TableSchema
from .expr import AGGREGATES, RowContext, evaluate, is_true
from .locks import EXCLUSIVE, SHARED
from .plan import (CompiledAggregation, CompiledDelete, CompiledInsert,
                   CompiledSelect, CompiledSource, CompiledUpdate, LazyAggs)
from .sqlparser import ast
from .txn import SERIALIZABLE, Transaction

if TYPE_CHECKING:  # pragma: no cover
    from .database import Database


@dataclass
class Result:
    """Outcome of one statement execution."""

    rows: list[tuple] = field(default_factory=list)
    columns: list[str] = field(default_factory=list)
    rowcount: int = -1


@dataclass
class _Source:
    """One table in the FROM clause with its pushed-down predicates."""

    binding: str
    table_name: str
    schema: TableSchema
    predicates: list[ast.Expr] = field(default_factory=list)
    join_kind: str = "inner"


class Executor:
    """Executes parsed statements against a database on behalf of a txn."""

    def __init__(self, db: "Database") -> None:
        self.db = db

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def execute(self, txn: Transaction, stmt: ast.Statement,
                params: Sequence[object]) -> Result:
        if isinstance(stmt, ast.Select):
            return self._execute_select(txn, stmt, params)
        if isinstance(stmt, ast.Insert):
            return self._execute_insert(txn, stmt, params)
        if isinstance(stmt, ast.Update):
            return self._execute_update(txn, stmt, params)
        if isinstance(stmt, ast.Delete):
            return self._execute_delete(txn, stmt, params)
        raise ProgrammingError(f"executor cannot handle {type(stmt).__name__}")

    def execute_plan(self, txn: Transaction, plan,
                     params: Sequence[object]) -> Result:
        """Run a :mod:`repro.engine.plan` compiled plan.

        Same observable semantics as :meth:`execute` on the statement
        the plan was compiled from — row values/order, errors, locking,
        and stats counters all match the interpreted path.
        """
        if isinstance(plan, CompiledSelect):
            return self._select_plan(txn, plan, params)
        if isinstance(plan, CompiledInsert):
            return self._insert_plan(txn, plan, params)
        if isinstance(plan, CompiledUpdate):
            return self._update_plan(txn, plan, params)
        if isinstance(plan, CompiledDelete):
            return self._delete_plan(txn, plan, params)
        raise ProgrammingError(
            f"executor cannot handle plan {type(plan).__name__}")

    # ------------------------------------------------------------------
    # compiled-plan runtime
    # ------------------------------------------------------------------

    def _select_plan(self, txn: Transaction, plan: CompiledSelect,
                     params: Sequence[object]) -> Result:
        if plan.scalar:
            row = plan.project_fn((), params)
            return Result([row], list(plan.columns), rowcount=1)
        lock_mode = EXCLUSIVE if plan.for_update else SHARED
        take_locks = (txn.isolation == SERIALIZABLE
                      or lock_mode == EXCLUSIVE)
        sources = plan.sources
        n_sources = len(sources)
        rows: list[Optional[tuple]] = [None] * n_sources
        contexts: list[tuple] = []

        plan_scan = self._plan_scan

        def recurse(level: int) -> None:
            if level == n_sources:
                contexts.append(tuple(rows))
                return
            source = sources[level]
            slot = source.slot
            matched = plan_scan(txn, source, rows, params, lock_mode,
                                take_locks, count_db_reads=True)
            for _rowid, values in matched:
                rows[slot] = values
                recurse(level + 1)
            if source.join_kind == "left" and not matched:
                rows[slot] = None
                recurse(level + 1)
            rows[slot] = None

        recurse(0)

        if plan.aggregation is not None:
            out = self._aggregate_plan(plan.aggregation, contexts, params)
        else:
            project = plan.project_fn
            out = [project(ctx, params) for ctx in contexts]
            if plan.order_keys:
                keyed = [
                    ([_SortKey(key.value(ctx, row, params), key.descending)
                      for key in plan.order_keys], row)
                    for ctx, row in zip(contexts, out)]
                keyed.sort(key=lambda pair: pair[0])
                out = [row for _, row in keyed]
        if plan.distinct:
            out = _distinct(out)
        out = _apply_plan_limit(out, plan, params)
        return Result(out, list(plan.columns), rowcount=len(out))

    def _plan_scan(self, txn: Transaction, source: CompiledSource,
                   rows: list, params: Sequence[object], lock_mode: str,
                   take_locks: bool, count_db_reads: bool
                   ) -> list[tuple[int, tuple]]:
        """Compiled scan: batched visibility read, closure filtering.

        Candidate gathering and all visibility checks happen under a
        single latch acquisition (the interpreter re-enters the latch
        per row); the authoritative post-lock re-read per qualifying
        row is kept, so 2PL semantics are unchanged.  Locks are never
        acquired while holding the latch.
        """
        table = source.table
        data = self.db.table_data(table)
        slot = source.slot
        row_filter = source.filter
        latch = self.db.latch
        effective = txn.effective_version
        with latch:
            candidates = self._plan_candidates(txn, source, rows, params,
                                               data)
            inserted = txn.inserted.get(table)
            if inserted:
                candidates |= inserted
            visible = []
            append = visible.append
            for rowid in candidates:
                version = effective(table, data, rowid)
                if version is not None and not version.is_tombstone:
                    append((rowid, version.values))
        acquire = self.db.lock_manager.acquire
        stats = txn.stats
        counters = self.db.counters
        out: list[tuple[int, tuple]] = []
        emit = out.append
        for rowid, values in visible:
            if row_filter is not None:
                rows[slot] = values
                if not row_filter(rows, params):
                    continue
            if take_locks:
                acquire(txn, ("row", table, rowid), lock_mode)
                # Re-read after a potential wait: the row may have changed.
                with latch:
                    version = effective(table, data, rowid)
                if version is None or version.is_tombstone:
                    continue
                # Only re-filter when the wait actually replaced the
                # version: same tuple object means the predicate's
                # inputs are unchanged, so its verdict is too.
                if version.values is not values:
                    values = version.values
                    if row_filter is not None:
                        rows[slot] = values
                        if not row_filter(rows, params):
                            continue
            stats.rows_read += 1
            emit((rowid, values))
        if count_db_reads:
            counters.rows_read += len(out)
        return out

    def _plan_candidates(self, txn: Transaction, source: CompiledSource,
                         rows: list, params: Sequence[object],
                         data) -> set[int]:
        """Access-path cascade: index probe, PK range unroll, full scan.

        The caller holds the storage latch; key closures are pure, so
        evaluating them under it is safe (and no locks are taken here).
        """
        probe = source.index_probe
        if probe is not None:
            try:
                key = probe.key_fn(rows, params)
            except ProgrammingError:
                # Matches the interpreter: an unevaluable probe key
                # falls through to the next access path.
                key = None
            if key is not None:
                txn.stats.index_lookups += 1
                return data.index_lookup(probe.index_name, key)
        if source.pk_range is not None:
            keys = source.pk_range.resolve(rows, params,
                                           self.MAX_RANGE_UNROLL)
            if keys is not None:
                txn.stats.index_lookups += 1
                candidates: set[int] = set()
                for k in keys:
                    candidates |= data.index_lookup("__pk__", (k,))
                return candidates
        txn.stats.full_scans += 1
        return set(data.all_rowids())

    def _aggregate_plan(self, agg: CompiledAggregation, contexts: list,
                        params: Sequence[object]) -> list[tuple]:
        groups: dict[tuple, list] = {}
        if agg.group_fn is not None:
            group_fn = agg.group_fn
            for ctx in contexts:
                groups.setdefault(group_fn(ctx, params), []).append(ctx)
        else:
            groups[()] = contexts  # single global group (may be empty)
        out_rows: list[tuple] = []
        order_keys: list[list] = []
        for group in groups.values():
            rows0 = group[0] if group else None
            aggs = LazyAggs(agg.aggs, group, params)
            if agg.having_fn is not None and not is_true(
                    agg.having_fn(aggs, rows0, params)):
                continue
            row = tuple(fn(aggs, rows0, params) for fn in agg.item_fns)
            out_rows.append(row)
            if agg.order_keys:
                order_keys.append([
                    _SortKey(key.agg_value(aggs, rows0, row, params),
                             key.descending)
                    for key in agg.order_keys])
        if agg.order_keys:
            paired = sorted(zip(order_keys, out_rows),
                            key=lambda pair: pair[0])
            out_rows = [row for _, row in paired]
        return out_rows

    def _insert_plan(self, txn: Transaction, plan: CompiledInsert,
                     params: Sequence[object]) -> Result:
        schema = plan.schema
        data = self.db.table_data(plan.table)
        n_columns = len(schema.columns)
        inserted = 0
        for row_fns in plan.row_fns:
            values: list[object] = [None] * n_columns
            for position, fn in zip(plan.positions, row_fns):
                values[position] = fn((), params)
            for position, default in plan.defaults:
                values[position] = default
            for final in plan.finalizers:
                value = final.coerce(values[final.position])
                if value is None and final.not_null:
                    raise IntegrityError(
                        f"column {final.name!r} of {plan.table!r} "
                        "is NOT NULL")
                values[final.position] = value
            row = tuple(values)
            if schema.primary_key:
                key = schema.pk_key(row)
                if any(v is None for v in key):
                    raise IntegrityError(
                        f"NULL in primary key of {plan.table!r}")
                if txn.isolation == SERIALIZABLE:
                    self.db.lock_manager.acquire(
                        txn, ("key", plan.table, key), EXCLUSIVE)
                if self._visible_pk_exists(txn, plan.table, data, key):
                    raise IntegrityError(
                        f"duplicate primary key {key!r} in {plan.table!r}")
            with self.db.latch:
                rowid = data.new_rowid()
            if txn.isolation == SERIALIZABLE:
                self.db.lock_manager.acquire(
                    txn, ("row", plan.table, rowid), EXCLUSIVE)
            txn.buffer_insert(plan.table, rowid, row)
            self.db.counters.rows_inserted += 1
            inserted += 1
        return Result(rowcount=inserted)

    def _update_plan(self, txn: Transaction, plan: CompiledUpdate,
                     params: Sequence[object]) -> Result:
        schema = plan.schema
        data = self.db.table_data(plan.table)
        rows: list[Optional[tuple]] = [None]
        # Matches are materialised first (Halloween problem), as interpreted.
        matches = self._plan_scan(
            txn, plan.source, rows, params, EXCLUSIVE,
            take_locks=(txn.isolation == SERIALIZABLE),
            count_db_reads=False)
        updated = 0
        for rowid, old_values in matches:
            rows[0] = old_values
            new_values = list(old_values)
            for assignment in plan.assignments:
                final = assignment.finalizer
                value = final.coerce(assignment.value_fn(rows, params))
                if value is None and final.not_null:
                    raise IntegrityError(
                        f"column {final.name!r} of {plan.table!r} "
                        "is NOT NULL")
                new_values[final.position] = value
            new_row = tuple(new_values)
            if schema.primary_key:
                old_key = schema.pk_key(old_values)
                new_key = schema.pk_key(new_row)
                if new_key != old_key:
                    if txn.isolation == SERIALIZABLE:
                        self.db.lock_manager.acquire(
                            txn, ("key", plan.table, new_key), EXCLUSIVE)
                    if self._visible_pk_exists(txn, plan.table, data,
                                               new_key):
                        raise IntegrityError(
                            f"duplicate primary key {new_key!r} "
                            f"in {plan.table!r}")
            txn.buffer_update(plan.table, rowid, new_row)
            self.db.counters.rows_updated += 1
            updated += 1
        return Result(rowcount=updated)

    def _delete_plan(self, txn: Transaction, plan: CompiledDelete,
                     params: Sequence[object]) -> Result:
        rows: list[Optional[tuple]] = [None]
        deleted = 0
        for rowid, _values in self._plan_scan(
                txn, plan.source, rows, params, EXCLUSIVE,
                take_locks=(txn.isolation == SERIALIZABLE),
                count_db_reads=False):
            txn.buffer_delete(plan.table, rowid)
            self.db.counters.rows_deleted += 1
            deleted += 1
        return Result(rowcount=deleted)

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def _execute_select(self, txn: Transaction, stmt: ast.Select,
                        params: Sequence[object]) -> Result:
        if stmt.table is None:
            ctx = RowContext({})
            row = tuple(evaluate(item.expr, ctx, params) for item in stmt.items)
            columns = [self._item_name(item, i) for i, item in
                       enumerate(stmt.items)]
            return Result([row], columns, rowcount=1)

        sources = self._build_sources(stmt, params)
        lock_mode = EXCLUSIVE if stmt.for_update else SHARED
        contexts = list(self._join_rows(txn, sources, params, lock_mode))

        is_grouped = bool(stmt.group_by) or any(
            self._contains_aggregate(item.expr)
            for item in stmt.items if not item.star)
        if is_grouped:
            rows, columns = self._aggregate(stmt, sources, contexts, params)
        else:
            rows, columns = self._project(stmt, sources, contexts, params)
            if stmt.order_by:
                rows = self._order_rows(stmt, sources, contexts, rows,
                                        columns, params)
        if stmt.distinct:
            rows = _distinct(rows)
        rows = _apply_limit(rows, stmt, params)
        return Result(rows, columns, rowcount=len(rows))

    def _build_sources(self, stmt: ast.Select,
                       params: Sequence[object]) -> list[_Source]:
        refs = [(stmt.table, "inner")]
        refs.extend((join.table, join.kind) for join in stmt.joins)
        sources: list[_Source] = []
        seen: set[str] = set()
        for table_ref, kind in refs:
            schema = self.db.catalog.get(table_ref.name)
            binding = table_ref.binding
            if binding in seen:
                raise ProgrammingError(f"duplicate table binding {binding!r}")
            seen.add(binding)
            sources.append(_Source(binding, table_ref.name, schema,
                                   join_kind=kind))
        # Distribute WHERE and JOIN-ON conjuncts to the earliest source at
        # which every referenced binding is available.
        conjuncts: list[ast.Expr] = []
        if stmt.where is not None:
            conjuncts.extend(_split_conjuncts(stmt.where))
        for join in stmt.joins:
            if join.condition is not None:
                conjuncts.extend(_split_conjuncts(join.condition))
        available: list[set[str]] = []
        running: set[str] = set()
        for source in sources:
            running = running | {source.binding}
            available.append(set(running))
        for conjunct in conjuncts:
            needed = self._bindings_of(conjunct, sources)
            placed = False
            for i, names in enumerate(available):
                if needed <= names:
                    sources[i].predicates.append(conjunct)
                    placed = True
                    break
            if not placed:
                raise ProgrammingError(
                    f"predicate references unknown bindings: {needed}")
        return sources

    def _bindings_of(self, expr: ast.Expr,
                     sources: list[_Source]) -> set[str]:
        by_binding = {s.binding: s.schema for s in sources}
        names: set[str] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.ColumnRef):
                if node.table is not None:
                    names.add(node.table)
                else:
                    owners = [b for b, schema in by_binding.items()
                              if schema.has_column(node.column)]
                    if not owners:
                        raise ProgrammingError(
                            f"unknown column {node.column!r}")
                    if len(owners) > 1:
                        raise ProgrammingError(
                            f"ambiguous column {node.column!r}")
                    names.add(owners[0])
        return names

    def _join_rows(self, txn: Transaction, sources: list[_Source],
                   params: Sequence[object],
                   lock_mode: str) -> Iterator[RowContext]:
        """Nested-loop join producing a RowContext per qualifying row."""

        def recurse(level: int,
                    bindings: dict[str, tuple[TableSchema, Optional[tuple]]]
                    ) -> Iterator[RowContext]:
            if level == len(sources):
                yield RowContext(dict(bindings))
                return
            source = sources[level]
            outer_ctx = RowContext(dict(bindings))
            matched = False
            for values in self._scan(txn, source, outer_ctx, params,
                                     lock_mode):
                matched = True
                bindings[source.binding] = (source.schema, values)
                yield from recurse(level + 1, bindings)
            if source.join_kind == "left" and not matched:
                bindings[source.binding] = (source.schema, None)
                yield from recurse(level + 1, bindings)
            bindings.pop(source.binding, None)

        yield from recurse(0, {})

    def _scan(self, txn: Transaction, source: _Source, outer_ctx: RowContext,
              params: Sequence[object], lock_mode: str) -> Iterator[tuple]:
        """Scan one table, using an index when equality predicates allow."""
        data = self.db.table_data(source.table_name)
        candidates = self._candidate_rowids(txn, source, outer_ctx, params,
                                            data)
        candidates |= txn.inserted.get(source.table_name, set())

        take_locks = (txn.isolation == SERIALIZABLE
                      or lock_mode == EXCLUSIVE)
        for rowid in candidates:
            with self.db.latch:
                version = txn.effective_version(source.table_name, data, rowid)
            if version is None or version.is_tombstone:
                continue
            if not self._row_matches(source, outer_ctx, version.values, params):
                continue
            if take_locks:
                self.db.lock_manager.acquire(
                    txn, ("row", source.table_name, rowid), lock_mode)
                # Re-read after a potential wait: the row may have changed.
                with self.db.latch:
                    version = txn.effective_version(
                        source.table_name, data, rowid)
                if version is None or version.is_tombstone:
                    continue
                if not self._row_matches(source, outer_ctx, version.values,
                                         params):
                    continue
            txn.stats.rows_read += 1
            self.db.counters.rows_read += 1
            yield version.values

    def _row_matches(self, source: _Source, outer_ctx: RowContext,
                     values: tuple, params: Sequence[object]) -> bool:
        if not source.predicates:
            return True
        bindings = dict(outer_ctx.bindings)
        bindings[source.binding] = (source.schema, values)
        ctx = RowContext(bindings)
        return all(is_true(evaluate(p, ctx, params))
                   for p in source.predicates)

    def _candidate_rowids(self, txn: Transaction, source: _Source,
                          outer_ctx: RowContext, params: Sequence[object],
                          data) -> set[int]:
        """Candidate rowids for a scan: index, integer PK range, or full."""
        index, key = self._choose_access_path(source, outer_ctx, params)
        if index is not None:
            txn.stats.index_lookups += 1
            with self.db.latch:
                return data.index_lookup(index, key)
        keys = self._integer_pk_range(source, outer_ctx, params)
        if keys is not None:
            txn.stats.index_lookups += 1
            candidates: set[int] = set()
            with self.db.latch:
                for k in keys:
                    candidates |= data.index_lookup("__pk__", (k,))
            return candidates
        txn.stats.full_scans += 1
        with self.db.latch:
            return set(data.all_rowids())

    #: Widest integer PK range unrolled into point lookups.
    MAX_RANGE_UNROLL = 2048

    def _integer_pk_range(self, source: _Source, outer_ctx: RowContext,
                          params: Sequence[object]) -> Optional[range]:
        """Unroll ``pk >= lo AND pk < hi`` into point lookups.

        Applies when the table has a single-column primary key and the
        predicates bound it to a small integer interval — the hash-indexed
        answer to YCSB-style range scans.
        """
        schema = source.schema
        if len(schema.primary_key) != 1:
            return None
        pk_col = schema.primary_key[0]
        lo: Optional[int] = None
        hi: Optional[int] = None  # exclusive
        for predicate in source.predicates:
            bound = self._pk_bound(predicate, source, pk_col, outer_ctx,
                                   params)
            if bound is None:
                continue
            kind, value = bound
            if kind == "lo":
                lo = value if lo is None else max(lo, value)
            elif kind == "hi":
                hi = value if hi is None else min(hi, value)
            else:  # between: (lo, hi) inclusive pair
                b_lo, b_hi = value
                lo = b_lo if lo is None else max(lo, b_lo)
                hi = b_hi + 1 if hi is None else min(hi, b_hi + 1)
        if lo is None or hi is None:
            return None
        if hi - lo > self.MAX_RANGE_UNROLL or hi <= lo:
            return None if hi > lo else range(0)
        return range(lo, hi)

    def _pk_bound(self, predicate: ast.Expr, source: _Source, pk_col: str,
                  outer_ctx: RowContext, params: Sequence[object]
                  ) -> Optional[tuple[str, object]]:
        def is_pk_ref(expr: ast.Expr) -> bool:
            return (isinstance(expr, ast.ColumnRef)
                    and expr.column == pk_col
                    and expr.table in (None, source.binding))

        def const_value(expr: ast.Expr) -> Optional[int]:
            if self._references_binding(expr, source.binding, source.schema):
                return None
            try:
                value = evaluate(expr, outer_ctx, params)
            except ProgrammingError:
                return None
            if isinstance(value, bool) or not isinstance(value, int):
                return None
            return value

        if isinstance(predicate, ast.Between) and not predicate.negated \
                and is_pk_ref(predicate.value):
            low = const_value(predicate.low)
            high = const_value(predicate.high)
            if low is not None and high is not None:
                return "between", (low, high)
            return None
        if not isinstance(predicate, ast.BinaryOp):
            return None
        op = predicate.op
        if op not in (">", ">=", "<", "<="):
            return None
        left, right = predicate.left, predicate.right
        if is_pk_ref(left):
            value = const_value(right)
            if value is None:
                return None
            if op == ">=":
                return "lo", value
            if op == ">":
                return "lo", value + 1
            if op == "<":
                return "hi", value
            return "hi", value + 1  # <=
        if is_pk_ref(right):
            value = const_value(left)
            if value is None:
                return None
            # value OP pk  ->  flip the comparison.
            if op == "<=":
                return "lo", value
            if op == "<":
                return "lo", value + 1
            if op == ">":
                return "hi", value
            return "hi", value + 1  # >=
        return None

    def _choose_access_path(self, source: _Source, outer_ctx: RowContext,
                            params: Sequence[object]
                            ) -> tuple[Optional[str], Optional[tuple]]:
        """Pick an index for the source's equality predicates, if any.

        An equality predicate ``col = expr`` is usable when ``expr`` can be
        evaluated without the source's own row (literals, parameters, or
        columns of already-bound outer tables).
        """
        equalities: dict[str, ast.Expr] = {}
        for predicate in source.predicates:
            pair = self._equality_pair(predicate, source)
            if pair is not None:
                column, value_expr = pair
                equalities.setdefault(column, value_expr)
        if not equalities:
            return None, None
        data = self.db.table_data(source.table_name)
        index = data.find_index(equalities.keys())
        if index is None:
            return None, None
        try:
            key = tuple(evaluate(equalities[c], outer_ctx, params)
                        for c in index.columns)
        except ProgrammingError:
            # References a binding not yet available (self-reference edge
            # cases); fall back to a full scan.
            return None, None
        index_name = "__pk__" if index.name == "__pk__" else index.name
        return index_name, key

    def _equality_pair(self, predicate: ast.Expr, source: _Source
                       ) -> Optional[tuple[str, ast.Expr]]:
        if not (isinstance(predicate, ast.BinaryOp) and predicate.op == "="):
            return None
        for own, other in ((predicate.left, predicate.right),
                           (predicate.right, predicate.left)):
            if (isinstance(own, ast.ColumnRef)
                    and (own.table is None or own.table == source.binding)
                    and source.schema.has_column(own.column)
                    and not self._references_binding(other, source.binding,
                                                     source.schema)):
                return own.column, other
        return None

    def _references_binding(self, expr: ast.Expr, binding: str,
                            schema: TableSchema) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, ast.ColumnRef):
                if node.table == binding:
                    return True
                if node.table is None and schema.has_column(node.column):
                    return True
        return False

    # -- projection / aggregation ----------------------------------------

    def _expand_items(self, stmt: ast.Select,
                      sources: list[_Source]) -> list[tuple[ast.Expr, str]]:
        expanded: list[tuple[ast.Expr, str]] = []
        for i, item in enumerate(stmt.items):
            if item.star:
                targets = ([s for s in sources
                            if s.binding == item.star_table]
                           if item.star_table else sources)
                if item.star_table and not targets:
                    raise ProgrammingError(
                        f"unknown binding {item.star_table!r} in select list")
                for source in targets:
                    for column in source.schema.column_names:
                        expanded.append(
                            (ast.ColumnRef(source.binding, column), column))
            else:
                expanded.append((item.expr, self._item_name(item, i)))
        return expanded

    @staticmethod
    def _item_name(item: ast.SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.column
        if isinstance(item.expr, ast.FuncCall):
            return item.expr.name
        return f"col{index}"

    def _project(self, stmt: ast.Select, sources: list[_Source],
                 contexts: list[RowContext], params: Sequence[object]
                 ) -> tuple[list[tuple], list[str]]:
        items = self._expand_items(stmt, sources)
        columns = [name for _, name in items]
        rows = [
            tuple(evaluate(expr, ctx, params) for expr, _ in items)
            for ctx in contexts
        ]
        return rows, columns

    def _order_rows(self, stmt: ast.Select, sources: list[_Source],
                    contexts: list[RowContext], rows: list[tuple],
                    columns: list[str], params: Sequence[object]
                    ) -> list[tuple]:
        """Sort projected rows by ORDER BY keys evaluated per context."""
        keyed = []
        for ctx, row in zip(contexts, rows):
            keys = []
            for order in stmt.order_by:
                value = self._order_key(order.expr, ctx, row, columns, params)
                keys.append(_SortKey(value, order.descending))
            keyed.append((keys, row))
        keyed.sort(key=lambda pair: pair[0])
        return [row for _, row in keyed]

    def _order_key(self, expr: ast.Expr, ctx: Optional[RowContext],
                   row: tuple, columns: list[str],
                   params: Sequence[object]) -> object:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < len(row):
                raise ProgrammingError(
                    f"ORDER BY position {expr.value} out of range")
            return row[position]
        if (isinstance(expr, ast.ColumnRef) and expr.table is None
                and expr.column in columns):
            return row[columns.index(expr.column)]
        if ctx is None:
            raise ProgrammingError(
                "ORDER BY in aggregate queries must reference output columns")
        return evaluate(expr, ctx, params)

    def _contains_aggregate(self, expr: ast.Expr) -> bool:
        return any(isinstance(node, ast.FuncCall) and node.name in AGGREGATES
                   for node in ast.walk(expr))

    def _aggregate(self, stmt: ast.Select, sources: list[_Source],
                   contexts: list[RowContext], params: Sequence[object]
                   ) -> tuple[list[tuple], list[str]]:
        items = self._expand_items(stmt, sources)
        columns = [name for _, name in items]

        groups: dict[tuple, list[RowContext]] = {}
        if stmt.group_by:
            for ctx in contexts:
                key = tuple(evaluate(expr, ctx, params)
                            for expr in stmt.group_by)
                groups.setdefault(key, []).append(ctx)
        else:
            groups[()] = contexts  # single global group (may be empty)

        rows: list[tuple] = []
        order_keys: list[list] = []
        for group_contexts in groups.values():
            if stmt.having is not None:
                accepted = self._eval_aggregated(
                    stmt.having, group_contexts, params)
                if not is_true(accepted):
                    continue
            row = tuple(self._eval_aggregated(expr, group_contexts, params)
                        for expr, _ in items)
            rows.append(row)
            if stmt.order_by:
                keys = []
                for order in stmt.order_by:
                    try:
                        value = self._order_key(order.expr, None, row,
                                                columns, params)
                    except ProgrammingError:
                        value = self._eval_aggregated(
                            order.expr, group_contexts, params)
                    keys.append(_SortKey(value, order.descending))
                order_keys.append(keys)
        if stmt.order_by:
            paired = sorted(zip(order_keys, rows), key=lambda pair: pair[0])
            rows = [row for _, row in paired]
        return rows, columns

    def _eval_aggregated(self, expr: ast.Expr, contexts: list[RowContext],
                         params: Sequence[object]) -> object:
        """Evaluate an expression that may contain aggregate calls."""
        if isinstance(expr, ast.FuncCall) and expr.name in AGGREGATES:
            return self._compute_aggregate(expr, contexts, params)
        if isinstance(expr, ast.BinaryOp):
            left = self._eval_aggregated(expr.left, contexts, params)
            right = self._eval_aggregated(expr.right, contexts, params)
            return evaluate(ast.BinaryOp(expr.op, ast.Literal(left),
                                         ast.Literal(right)), None, params)
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval_aggregated(expr.operand, contexts, params)
            return evaluate(ast.UnaryOp(expr.op, ast.Literal(operand)),
                            None, params)
        if self._contains_aggregate(expr):
            raise ProgrammingError(
                "aggregates may only appear at the top level or inside "
                "arithmetic expressions")
        if contexts:
            return evaluate(expr, contexts[0], params)
        return evaluate(expr, None, params)

    def _compute_aggregate(self, call: ast.FuncCall,
                           contexts: list[RowContext],
                           params: Sequence[object]) -> object:
        if call.star:
            if call.name != "count":
                raise ProgrammingError(f"{call.name}(*) is not valid")
            return len(contexts)
        if len(call.args) != 1:
            raise ProgrammingError(
                f"aggregate {call.name} expects exactly one argument")
        values = [evaluate(call.args[0], ctx, params) for ctx in contexts]
        values = [v for v in values if v is not None]
        if call.distinct:
            values = list(dict.fromkeys(values))
        if call.name == "count":
            return len(values)
        if not values:
            return None
        if call.name == "sum":
            return sum(values)
        if call.name == "avg":
            return sum(values) / len(values)
        if call.name == "min":
            return min(values)
        if call.name == "max":
            return max(values)
        raise ProgrammingError(f"unknown aggregate {call.name!r}")

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _execute_insert(self, txn: Transaction, stmt: ast.Insert,
                        params: Sequence[object]) -> Result:
        schema = self.db.catalog.get(stmt.table)
        data = self.db.table_data(stmt.table)
        columns = stmt.columns or schema.column_names
        positions = [schema.position(c) for c in columns]
        inserted = 0
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(columns):
                raise ProgrammingError(
                    f"INSERT into {stmt.table!r} expects {len(columns)} "
                    f"values, got {len(row_exprs)}")
            values: list[object] = [None] * len(schema.columns)
            provided = set()
            for position, expr in zip(positions, row_exprs):
                values[position] = evaluate(expr, None, params)
                provided.add(position)
            for i, column in enumerate(schema.columns):
                if i not in provided and column.has_default:
                    values[i] = column.default
                values[i] = column.sql_type.coerce(values[i])
                if values[i] is None and column.not_null:
                    raise IntegrityError(
                        f"column {column.name!r} of {stmt.table!r} "
                        "is NOT NULL")
            row = tuple(values)
            if schema.primary_key:
                key = schema.pk_key(row)
                if any(v is None for v in key):
                    raise IntegrityError(
                        f"NULL in primary key of {stmt.table!r}")
                if txn.isolation == SERIALIZABLE:
                    # Key-range surrogate lock: serialises concurrent
                    # inserts/lookups of the same key.
                    self.db.lock_manager.acquire(
                        txn, ("key", stmt.table, key), EXCLUSIVE)
                if self._visible_pk_exists(txn, stmt.table, data, key):
                    raise IntegrityError(
                        f"duplicate primary key {key!r} in {stmt.table!r}")
            with self.db.latch:
                rowid = data.new_rowid()
            if txn.isolation == SERIALIZABLE:
                self.db.lock_manager.acquire(
                    txn, ("row", stmt.table, rowid), EXCLUSIVE)
            txn.buffer_insert(stmt.table, rowid, row)
            self.db.counters.rows_inserted += 1
            inserted += 1
        return Result(rowcount=inserted)

    def _visible_pk_exists(self, txn: Transaction, table: str,
                           data, key: tuple) -> bool:
        schema = data.schema
        with self.db.latch:
            candidates = data.index_lookup("__pk__", key)
            candidates |= txn.inserted.get(table, set())
            for rowid in candidates:
                version = txn.effective_version(table, data, rowid)
                if (version is not None and not version.is_tombstone
                        and schema.pk_key(version.values) == key):
                    return True
        return False

    def _execute_update(self, txn: Transaction, stmt: ast.Update,
                        params: Sequence[object]) -> Result:
        schema = self.db.catalog.get(stmt.table)
        data = self.db.table_data(stmt.table)
        source = _Source(stmt.table, stmt.table, schema)
        if stmt.where is not None:
            source.predicates.extend(_split_conjuncts(stmt.where))
        assignments = [(schema.position(a.column),
                        schema.columns[schema.position(a.column)], a.value)
                       for a in stmt.assignments]
        updated = 0
        # Materialise matches first: buffered writes must not feed back
        # into the ongoing scan (Halloween problem).
        matches = list(self._scan_for_write(txn, source, params))
        for rowid, old_values in matches:
            bindings = {source.binding: (schema, old_values)}
            ctx = RowContext(bindings)
            new_values = list(old_values)
            for position, column, value_expr in assignments:
                value = column.sql_type.coerce(
                    evaluate(value_expr, ctx, params))
                if value is None and column.not_null:
                    raise IntegrityError(
                        f"column {column.name!r} of {stmt.table!r} "
                        "is NOT NULL")
                new_values[position] = value
            new_row = tuple(new_values)
            if schema.primary_key:
                old_key = schema.pk_key(old_values)
                new_key = schema.pk_key(new_row)
                if new_key != old_key:
                    if txn.isolation == SERIALIZABLE:
                        self.db.lock_manager.acquire(
                            txn, ("key", stmt.table, new_key), EXCLUSIVE)
                    if self._visible_pk_exists(txn, stmt.table, data, new_key):
                        raise IntegrityError(
                            f"duplicate primary key {new_key!r} "
                            f"in {stmt.table!r}")
            txn.buffer_update(stmt.table, rowid, new_row)
            self.db.counters.rows_updated += 1
            updated += 1
        return Result(rowcount=updated)

    def _execute_delete(self, txn: Transaction, stmt: ast.Delete,
                        params: Sequence[object]) -> Result:
        schema = self.db.catalog.get(stmt.table)
        source = _Source(stmt.table, stmt.table, schema)
        if stmt.where is not None:
            source.predicates.extend(_split_conjuncts(stmt.where))
        deleted = 0
        for rowid, _values in list(self._scan_for_write(txn, source, params)):
            txn.buffer_delete(stmt.table, rowid)
            self.db.counters.rows_deleted += 1
            deleted += 1
        return Result(rowcount=deleted)

    def _scan_for_write(self, txn: Transaction, source: _Source,
                        params: Sequence[object]
                        ) -> Iterator[tuple[int, tuple]]:
        """Scan yielding (rowid, values) with exclusive locks taken."""
        data = self.db.table_data(source.table_name)
        outer_ctx = RowContext({})
        candidates = self._candidate_rowids(txn, source, outer_ctx, params,
                                            data)
        candidates |= txn.inserted.get(source.table_name, set())
        # Snapshot transactions write optimistically: conflicts surface at
        # commit via first-committer-wins validation, so no X locks here.
        take_locks = txn.isolation == SERIALIZABLE
        for rowid in candidates:
            with self.db.latch:
                version = txn.effective_version(source.table_name, data, rowid)
            if version is None or version.is_tombstone:
                continue
            if not self._row_matches(source, outer_ctx, version.values, params):
                continue
            if take_locks:
                self.db.lock_manager.acquire(
                    txn, ("row", source.table_name, rowid), EXCLUSIVE)
                with self.db.latch:
                    version = txn.effective_version(
                        source.table_name, data, rowid)
                if version is None or version.is_tombstone:
                    continue
                if not self._row_matches(source, outer_ctx, version.values,
                                         params):
                    continue
            txn.stats.rows_read += 1
            yield rowid, version.values


class _SortKey:
    """Orderable wrapper handling NULLs (sorted last) and DESC."""

    __slots__ = ("value", "descending")

    def __init__(self, value: object, descending: bool) -> None:
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return False  # NULLs last in ascending order
        if b is None:
            return True
        if isinstance(a, bool):
            a = int(a)
        if isinstance(b, bool):
            b = int(b)
        if isinstance(a, str) != isinstance(b, str):
            a, b = str(a), str(b)
        if self.descending:
            return b < a  # type: ignore[operator]
        return a < b  # type: ignore[operator]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value


def _split_conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _distinct(rows: list[tuple]) -> list[tuple]:
    seen: set = set()
    unique: list[tuple] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            unique.append(row)
    return unique


def _apply_plan_limit(rows: list[tuple], plan: CompiledSelect,
                      params: Sequence[object]) -> list[tuple]:
    offset = 0
    if plan.offset_fn is not None:
        offset = int(plan.offset_fn((), params))
        if offset < 0:
            raise ProgrammingError("OFFSET must be non-negative")
    if plan.limit_fn is not None:
        limit = int(plan.limit_fn((), params))
        if limit < 0:
            raise ProgrammingError("LIMIT must be non-negative")
        return rows[offset:offset + limit]
    if offset:
        return rows[offset:]
    return rows


def _apply_limit(rows: list[tuple], stmt: ast.Select,
                 params: Sequence[object]) -> list[tuple]:
    offset = 0
    if stmt.offset is not None:
        offset = int(evaluate(stmt.offset, None, params))
        if offset < 0:
            raise ProgrammingError("OFFSET must be non-negative")
    if stmt.limit is not None:
        limit = int(evaluate(stmt.limit, None, params))
        if limit < 0:
            raise ProgrammingError("LIMIT must be non-negative")
        return rows[offset:offset + limit]
    if offset:
        return rows[offset:]
    return rows
