"""Strict two-phase-locking lock manager with deadlock detection.

Locks are taken on opaque hashable resource ids (the executor uses
``("row", table, rowid)`` and ``("key", table, key)`` granules) in shared
(``S``) or exclusive (``X``) mode.  Grants follow a FIFO wait queue with
lock-upgrade priority.  A waits-for graph is maintained; when a request
would close a cycle the *requester* is chosen as the deadlock victim and
receives :class:`DeadlockError` — the cheapest victim policy and the one
that makes worker retry loops exercise realistic abort paths.

The manager also exposes counters (waits, wait time, deadlocks) that feed
the server-side monitoring component and the DBMS personality contention
model.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional, Union

from ..clock import Clock, RealClock
from ..errors import DeadlockError, LockTimeoutError

SHARED = "S"
EXCLUSIVE = "X"


def _compatible(held: str, requested: str) -> bool:
    return held == SHARED and requested == SHARED


@dataclass
class _LockEntry:
    """State of one resource: current holders and the wait queue."""

    holders: dict[object, str] = field(default_factory=dict)  # txn -> mode
    waiters: list[tuple[object, str]] = field(default_factory=list)


@dataclass
class LockStats:
    acquisitions: int = 0
    waits: int = 0
    wait_time: float = 0.0
    deadlocks: int = 0
    timeouts: int = 0

    def snapshot(self) -> dict[str, float]:
        return {
            "acquisitions": self.acquisitions,
            "waits": self.waits,
            "wait_time": self.wait_time,
            "deadlocks": self.deadlocks,
            "timeouts": self.timeouts,
        }


class LockManager:
    """Table/row lock manager shared by every connection of one database."""

    def __init__(self, timeout: float = 5.0,
                 clock: Union[Clock, Callable[[], float], None] = None
                 ) -> None:
        self.timeout = timeout
        # Wait deadlines and wait-time accounting go through an injected
        # monotonic time source so simulated runs stay deterministic; a
        # Clock or a bare callable returning seconds are both accepted.
        if clock is None:
            clock = RealClock()
        self._now: Callable[[], float] = (
            clock.now if isinstance(clock, Clock) else clock)
        self._mutex = threading.Lock()
        self._condition = threading.Condition(self._mutex)
        self._entries: dict[Hashable, _LockEntry] = {}
        self._held: dict[object, set[Hashable]] = {}
        # waits-for edges: waiting txn -> set of txns it waits on
        self._waits_for: dict[object, set[object]] = {}
        self._txn_thread: dict[object, int] = {}
        self.stats = LockStats()

    # -- public API -----------------------------------------------------

    def acquire(self, txn: object, resource: Hashable, mode: str,
                timeout: Optional[float] = None) -> bool:
        """Acquire ``resource`` in ``mode`` for ``txn``; blocks if needed.

        Returns True if the lock was newly acquired or upgraded, False when
        the transaction already held a sufficient lock.  Raises
        :class:`DeadlockError` when the wait would close a cycle and
        :class:`LockTimeoutError` on timeout.
        """
        if timeout is None:
            timeout = self.timeout
        deadline = self._now() + timeout
        with self._condition:
            self._txn_thread[txn] = threading.get_ident()
            entry = self._entries.setdefault(resource, _LockEntry())
            held_mode = entry.holders.get(txn)
            if held_mode == EXCLUSIVE or held_mode == mode:
                return False
            if self._grantable(entry, txn, mode):
                self._grant(entry, txn, resource, mode)
                return True
            # Must wait.
            self.stats.waits += 1
            entry.waiters.append((txn, mode))
            wait_started = self._now()
            try:
                while True:
                    blockers = self._blockers(entry, txn, mode)
                    self._waits_for[txn] = blockers
                    if self._creates_cycle(txn):
                        self.stats.deadlocks += 1
                        raise DeadlockError(
                            f"deadlock detected acquiring {mode} on {resource!r}")
                    if self._would_self_block(txn, blockers):
                        self.stats.deadlocks += 1
                        raise DeadlockError(
                            f"self-wait acquiring {mode} on {resource!r} "
                            "(conflicting transaction on the same thread)")
                    remaining = deadline - self._now()
                    if remaining <= 0:
                        self.stats.timeouts += 1
                        raise LockTimeoutError(
                            f"timed out acquiring {mode} on {resource!r}")
                    self._condition.wait(remaining)
                    if self._grantable(entry, txn, mode):
                        self._grant(entry, txn, resource, mode)
                        return True
            finally:
                self._waits_for.pop(txn, None)
                try:
                    entry.waiters.remove((txn, mode))
                except ValueError:
                    pass
                self.stats.wait_time += self._now() - wait_started
                self._condition.notify_all()

    def try_acquire(self, txn: object, resource: Hashable, mode: str) -> bool:
        """Non-blocking acquire; returns False instead of waiting."""
        with self._condition:
            self._txn_thread[txn] = threading.get_ident()
            entry = self._entries.setdefault(resource, _LockEntry())
            held_mode = entry.holders.get(txn)
            if held_mode == EXCLUSIVE or held_mode == mode:
                return True
            if self._grantable(entry, txn, mode):
                self._grant(entry, txn, resource, mode)
                return True
            return False

    def release_all(self, txn: object) -> None:
        """Release every lock held by ``txn`` (strict 2PL release point)."""
        with self._condition:
            for resource in self._held.pop(txn, set()):
                entry = self._entries.get(resource)
                if entry is None:
                    continue
                entry.holders.pop(txn, None)
                if not entry.holders and not entry.waiters:
                    del self._entries[resource]
            self._waits_for.pop(txn, None)
            self._txn_thread.pop(txn, None)
            self._condition.notify_all()

    def held_by(self, txn: object) -> set[Hashable]:
        with self._mutex:
            return set(self._held.get(txn, ()))

    def holds(self, txn: object, resource: Hashable, mode: str) -> bool:
        with self._mutex:
            entry = self._entries.get(resource)
            if entry is None:
                return False
            held = entry.holders.get(txn)
            return held == EXCLUSIVE or held == mode

    def active_lock_count(self) -> int:
        with self._mutex:
            return sum(len(e.holders) for e in self._entries.values())

    # -- internals --------------------------------------------------------

    def _grantable(self, entry: _LockEntry, txn: object, mode: str) -> bool:
        for holder, held_mode in entry.holders.items():
            if holder is txn:
                continue
            if not _compatible(held_mode, mode):
                return False
        if mode == EXCLUSIVE:
            # Upgrades bypass the queue; fresh X requests respect FIFO
            # among waiters ahead of them to avoid starvation.
            if txn not in entry.holders:
                for waiter, _waiter_mode in entry.waiters:
                    if waiter is txn:
                        break
                    if waiter not in entry.holders:
                        return False
        return True

    def _grant(self, entry: _LockEntry, txn: object, resource: Hashable,
               mode: str) -> None:
        entry.holders[txn] = mode
        self._held.setdefault(txn, set()).add(resource)
        self.stats.acquisitions += 1

    def _blockers(self, entry: _LockEntry, txn: object, mode: str) -> set[object]:
        blockers = {
            holder for holder, held_mode in entry.holders.items()
            if holder is not txn and not _compatible(held_mode, mode)
        }
        if mode == EXCLUSIVE and txn not in entry.holders:
            for waiter, _waiter_mode in entry.waiters:
                if waiter is txn:
                    break
                if waiter is not txn and waiter not in entry.holders:
                    blockers.add(waiter)
        return blockers

    def _creates_cycle(self, start: object) -> bool:
        """DFS over the waits-for graph looking for a cycle through start."""
        stack = list(self._waits_for.get(start, ()))
        seen: set[object] = set()
        while stack:
            node = stack.pop()
            if node is start:
                return True
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.extend(self._waits_for.get(node, ()))
        return False

    def _would_self_block(self, txn: object, blockers: set[object]) -> bool:
        """True when a blocker runs on this thread: waiting would hang it."""
        me = threading.get_ident()
        for blocker in blockers:
            if self._txn_thread.get(blocker) == me:
                return True
        return False
