"""Schema catalog: tables, columns, and index definitions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ProgrammingError
from .types import SqlType


@dataclass(frozen=True)
class ColumnDef:
    name: str
    sql_type: SqlType
    not_null: bool = False
    default: object = None
    has_default: bool = False


@dataclass(frozen=True)
class IndexDef:
    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False


@dataclass
class TableSchema:
    """Columns plus the primary key and secondary indexes of one table."""

    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: tuple[str, ...] = ()
    indexes: dict[str, IndexDef] = field(default_factory=dict)
    foreign_keys: tuple[tuple[tuple[str, ...], str, tuple[str, ...]], ...] = ()

    def __post_init__(self) -> None:
        self._positions = {col.name: i for i, col in enumerate(self.columns)}
        if len(self._positions) != len(self.columns):
            raise ProgrammingError(f"duplicate column in table {self.name!r}")
        for key_col in self.primary_key:
            if key_col not in self._positions:
                raise ProgrammingError(
                    f"primary key column {key_col!r} not in table {self.name!r}")

    def position(self, column: str) -> int:
        try:
            return self._positions[column]
        except KeyError:
            raise ProgrammingError(
                f"no column {column!r} in table {self.name!r}") from None

    def has_column(self, column: str) -> bool:
        return column in self._positions

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    @property
    def pk_positions(self) -> tuple[int, ...]:
        return tuple(self.position(c) for c in self.primary_key)

    def pk_key(self, row: tuple) -> tuple:
        """Extract the primary-key tuple from a full row tuple."""
        return tuple(row[i] for i in self.pk_positions)


class Catalog:
    """All table schemas of one database.

    ``version`` increments on every successful schema change (CREATE
    TABLE, DROP TABLE, CREATE INDEX).  Compiled plans are keyed by
    ``(sql, version)`` so stale plans die naturally after DDL.
    """

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}
        self.version = 0

    def create_table(self, schema: TableSchema) -> None:
        if schema.name in self._tables:
            raise ProgrammingError(f"table {schema.name!r} already exists")
        self._tables[schema.name] = schema
        self.version += 1

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise ProgrammingError(f"no table named {name!r}")
        del self._tables[name]
        self.version += 1

    def get(self, name: str) -> TableSchema:
        try:
            return self._tables[name]
        except KeyError:
            raise ProgrammingError(f"no table named {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def add_index(self, index: IndexDef) -> None:
        schema = self.get(index.table)
        if index.name in schema.indexes:
            raise ProgrammingError(f"index {index.name!r} already exists")
        for column in index.columns:
            schema.position(column)  # validates existence
        schema.indexes[index.name] = index
        self.version += 1
