"""Voter schema: the talent-show telephone voting benchmark (H-Store)."""

NUM_CONTESTANTS = 6
MAX_VOTES_PER_PHONE = 2

#: Area codes mapped to US states (subset; enough for realistic skew).
AREA_CODE_STATES = [
    (212, "NY"), (213, "CA"), (312, "IL"), (412, "PA"), (415, "CA"),
    (512, "TX"), (602, "AZ"), (617, "MA"), (702, "NV"), (713, "TX"),
    (305, "FL"), (404, "GA"), (206, "WA"), (303, "CO"), (503, "OR"),
    (614, "OH"), (615, "TN"), (704, "NC"), (816, "MO"), (504, "LA"),
]

CONTESTANT_NAMES = [
    "Edwina Burnam", "Tabatha Gehling", "Kelly Clauss", "Jessie Alloway",
    "Alana Bregman", "Jessie Eichman",
]

DDL = [
    """
    CREATE TABLE contestants (
        contestant_number INT PRIMARY KEY,
        contestant_name   VARCHAR(50) NOT NULL
    )
    """,
    """
    CREATE TABLE area_code_state (
        area_code SMALLINT PRIMARY KEY,
        state     VARCHAR(2) NOT NULL
    )
    """,
    """
    CREATE TABLE votes (
        vote_id           BIGINT PRIMARY KEY,
        phone_number      BIGINT NOT NULL,
        state             VARCHAR(2) NOT NULL,
        contestant_number INT NOT NULL,
        created           TIMESTAMP NOT NULL
    )
    """,
    "CREATE INDEX idx_votes_phone ON votes (phone_number)",
    "CREATE INDEX idx_votes_contestant ON votes (contestant_number)",
]
