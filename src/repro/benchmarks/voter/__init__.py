"""Voter: talent-show telephone voting (H-Store's "Japanese idol" app).

Paper Table 1 class: Transactional — "Talent Show Voting".  A single
transaction type (``Vote``) with validation logic and a per-phone vote cap;
throughput-bound inserts make it the canonical high-rate workload for the
game's character.
"""

from __future__ import annotations

import itertools
import random

from ...core.benchmark import BenchmarkModule, CLASS_TRANSACTIONAL
from ...core.procedure import Procedure, UserAbort
from .schema import (AREA_CODE_STATES, CONTESTANT_NAMES, DDL,
                     MAX_VOTES_PER_PHONE, NUM_CONTESTANTS)


class Vote(Procedure):
    """Validate and record one phone vote."""

    name = "Vote"
    default_weight = 100

    def run(self, conn, rng: random.Random):
        contestant = rng.randint(1, int(self.params["contestant_count"]))
        area_code, state = AREA_CODE_STATES[
            rng.randrange(len(AREA_CODE_STATES))]
        phone = area_code * 10_000_000 + rng.randrange(10_000_000)
        cur = conn.cursor()
        cur.execute(
            "SELECT contestant_number FROM contestants "
            "WHERE contestant_number = ?", (contestant,))
        if cur.fetchone() is None:
            raise UserAbort(f"unknown contestant {contestant}")
        cur.execute(
            "SELECT COUNT(*) FROM votes WHERE phone_number = ?", (phone,))
        votes_cast = cur.fetchone()[0]
        if votes_cast >= int(self.params["max_votes_per_phone"]):
            raise UserAbort(f"phone {phone} exceeded the vote limit")
        vote_id = next(self.params["vote_id_counter"])
        cur.execute(
            "INSERT INTO votes (vote_id, phone_number, state, "
            "contestant_number, created) VALUES (?, ?, ?, ?, ?)",
            (vote_id, phone, state, contestant, 0.0))
        conn.commit()
        return vote_id


class VoterBenchmark(BenchmarkModule):
    """Single-transaction voting workload."""

    name = "voter"
    domain = "Talent Show Voting"
    benchmark_class = CLASS_TRANSACTIONAL
    procedures = (Vote,)

    def ddl(self):
        return DDL

    def load_data(self, rng: random.Random) -> None:
        contestant_count = NUM_CONTESTANTS
        self.database.bulk_insert("contestants", [
            (i + 1, CONTESTANT_NAMES[i % len(CONTESTANT_NAMES)])
            for i in range(contestant_count)
        ])
        self.database.bulk_insert("area_code_state", AREA_CODE_STATES)
        self.params["contestant_count"] = contestant_count
        self.params["max_votes_per_phone"] = MAX_VOTES_PER_PHONE
        # itertools.count().__next__ is atomic under the GIL, so concurrent
        # workers never mint the same vote id.
        self.params["vote_id_counter"] = itertools.count(1)

    def leaderboard(self) -> list[tuple[str, int]]:
        """Contestants ranked by vote count (the demo's results screen)."""
        txn = self.database.begin()
        try:
            result = self.database.execute(txn, """
                SELECT c.contestant_name, COUNT(v.vote_id) AS total
                FROM contestants c LEFT JOIN votes v
                  ON v.contestant_number = c.contestant_number
                GROUP BY c.contestant_name
                ORDER BY total DESC, c.contestant_name
            """)
            return [(row[0], row[1]) for row in result.rows]
        finally:
            self.database.rollback(txn)

    def _derive_params(self) -> None:
        import itertools
        self.params["contestant_count"] = int(
            self.scalar("SELECT COUNT(*) FROM contestants") or 0) or 1
        self.params["max_votes_per_phone"] = MAX_VOTES_PER_PHONE
        next_vote = int(self.scalar(
            "SELECT MAX(vote_id) FROM votes") or 0) + 1
        self.params["vote_id_counter"] = itertools.count(next_vote)
