"""SEATS schema: the Stonebraker airline ticketing benchmark (subset).

Flights, customers with frequent-flyer ties, and seat reservations.  Seat
counts per flight follow the original's 150-seat cabins.
"""

AIRPORTS = 20
AIRLINES = 5
CUSTOMERS_PER_SF = 500
FLIGHTS_PER_SF = 100
SEATS_PER_FLIGHT = 150
INITIAL_OCCUPANCY = 0.6
FLIGHT_HORIZON_HOURS = 24 * 14  # two weeks of departures

DDL = [
    """
    CREATE TABLE country (
        co_id   INT PRIMARY KEY,
        co_name VARCHAR(64) NOT NULL,
        co_code CHAR(3) NOT NULL
    )
    """,
    """
    CREATE TABLE airport (
        ap_id    INT PRIMARY KEY,
        ap_code  CHAR(3) NOT NULL,
        ap_name  VARCHAR(128) NOT NULL,
        ap_co_id INT NOT NULL
    )
    """,
    "CREATE UNIQUE INDEX idx_airport_code ON airport (ap_code)",
    """
    CREATE TABLE airline (
        al_id   INT PRIMARY KEY,
        al_name VARCHAR(128) NOT NULL,
        al_co_id INT NOT NULL
    )
    """,
    """
    CREATE TABLE customer (
        c_id         BIGINT PRIMARY KEY,
        c_id_str     VARCHAR(64) NOT NULL,
        c_base_ap_id INT NOT NULL,
        c_balance    FLOAT NOT NULL
    )
    """,
    "CREATE UNIQUE INDEX idx_customer_idstr ON customer (c_id_str)",
    """
    CREATE TABLE frequent_flyer (
        ff_c_id  BIGINT NOT NULL,
        ff_al_id INT NOT NULL,
        ff_c_id_str VARCHAR(64) NOT NULL,
        PRIMARY KEY (ff_c_id, ff_al_id)
    )
    """,
    "CREATE INDEX idx_ff_customer ON frequent_flyer (ff_c_id)",
    """
    CREATE TABLE flight (
        f_id           BIGINT PRIMARY KEY,
        f_al_id        INT NOT NULL,
        f_depart_ap_id INT NOT NULL,
        f_arrive_ap_id INT NOT NULL,
        f_depart_time  TIMESTAMP NOT NULL,
        f_arrive_time  TIMESTAMP NOT NULL,
        f_base_price   FLOAT NOT NULL,
        f_seats_total  INT NOT NULL,
        f_seats_left   INT NOT NULL
    )
    """,
    "CREATE INDEX idx_flight_route ON flight (f_depart_ap_id, f_arrive_ap_id)",
    """
    CREATE TABLE reservation (
        r_id    BIGINT PRIMARY KEY,
        r_c_id  BIGINT NOT NULL,
        r_f_id  BIGINT NOT NULL,
        r_seat  INT NOT NULL,
        r_price FLOAT NOT NULL
    )
    """,
    "CREATE INDEX idx_reservation_flight ON reservation (r_f_id)",
    "CREATE UNIQUE INDEX idx_reservation_seat ON reservation (r_f_id, r_seat)",
    "CREATE INDEX idx_reservation_customer ON reservation (r_c_id)",
]
