"""SEATS: on-line airline ticketing (Transactional, paper Table 1).

Reservations hold a per-flight seat-uniqueness invariant which the test
suite checks: ``f_seats_total - f_seats_left`` must equal the reservation
count of the flight at all times.
"""

from __future__ import annotations

import itertools
import random

from ...core.benchmark import BenchmarkModule, CLASS_TRANSACTIONAL
from ...rand import random_string
from .procedures import PROCEDURES
from .schema import (AIRLINES, AIRPORTS, CUSTOMERS_PER_SF, DDL,
                     FLIGHTS_PER_SF, FLIGHT_HORIZON_HOURS,
                     INITIAL_OCCUPANCY, SEATS_PER_FLIGHT)


class SeatsBenchmark(BenchmarkModule):
    """Airline booking workload."""

    name = "seats"
    domain = "On-line Airline Ticketing"
    benchmark_class = CLASS_TRANSACTIONAL
    procedures = PROCEDURES

    def ddl(self):
        return DDL

    def load_data(self, rng: random.Random) -> None:
        customers = max(2, int(CUSTOMERS_PER_SF * self.scale_factor))
        flights = max(2, int(FLIGHTS_PER_SF * self.scale_factor))
        horizon = FLIGHT_HORIZON_HOURS * 3600.0

        self.database.bulk_insert("country", [
            (0, "United States", "USA"), (1, "Canada", "CAN")])
        self.database.bulk_insert("airport", [
            (ap, f"A{ap:02d}", f"Airport {ap}", ap % 2)
            for ap in range(AIRPORTS)])
        self.database.bulk_insert("airline", [
            (al, f"Airline {al}", al % 2) for al in range(AIRLINES)])
        self.database.bulk_insert("customer", [
            (c, f"C{c:012d}", rng.randrange(AIRPORTS),
             rng.uniform(100.0, 1000.0))
            for c in range(customers)])
        ff_rows = []
        for c in range(customers):
            for al in rng.sample(range(AIRLINES), rng.randint(0, 2)):
                ff_rows.append((c, al, f"C{c:012d}"))
        if ff_rows:
            self.database.bulk_insert("frequent_flyer", ff_rows)

        flight_rows = []
        for f_id in range(flights):
            depart_ap = rng.randrange(AIRPORTS)
            arrive_ap = rng.randrange(AIRPORTS)
            while arrive_ap == depart_ap:
                arrive_ap = rng.randrange(AIRPORTS)
            depart_time = rng.uniform(0, horizon)
            flight_rows.append((
                f_id, rng.randrange(AIRLINES), depart_ap, arrive_ap,
                depart_time, depart_time + rng.uniform(3600, 6 * 3600),
                rng.uniform(100.0, 1000.0), SEATS_PER_FLIGHT,
                SEATS_PER_FLIGHT))
        self.database.bulk_insert("flight", flight_rows)

        reservation_counter = itertools.count(1)
        reservations = []
        seats_left: dict[int, int] = {f: SEATS_PER_FLIGHT
                                      for f in range(flights)}
        for f_id in range(flights):
            occupied = rng.sample(
                range(SEATS_PER_FLIGHT),
                int(SEATS_PER_FLIGHT * INITIAL_OCCUPANCY))
            for seat in occupied:
                reservations.append((
                    next(reservation_counter), rng.randrange(customers),
                    f_id, seat, rng.uniform(100.0, 1000.0)))
                seats_left[f_id] -= 1
            if len(reservations) >= 2000:
                self.database.bulk_insert("reservation", reservations)
                reservations = []
        if reservations:
            self.database.bulk_insert("reservation", reservations)
        # Reconcile the denormalised seat counters with actual bookings.
        txn = self.database.begin()
        try:
            for f_id, left in seats_left.items():
                self.database.execute(
                    txn, "UPDATE flight SET f_seats_left = ? WHERE f_id = ?",
                    (left, f_id))
            self.database.commit(txn)
        except Exception:
            self.database.rollback(txn)
            raise

        self.params.update({
            "customer_count": customers,
            "flight_count": flights,
            "airport_count": AIRPORTS,
            "horizon": horizon,
            "reservation_id_counter": reservation_counter,
        })

    def check_seat_invariant(self) -> bool:
        """Every flight: seats_total - seats_left == reservation count."""
        txn = self.database.begin()
        try:
            result = self.database.execute(
                txn,
                "SELECT f.f_id, f.f_seats_total, f.f_seats_left, "
                "COUNT(r.r_id) AS booked "
                "FROM flight f LEFT JOIN reservation r ON r.r_f_id = f.f_id "
                "GROUP BY f.f_id, f.f_seats_total, f.f_seats_left")
            return all(total - left == booked
                       for _f, total, left, booked in result.rows)
        finally:
            self.database.rollback(txn)

    def _derive_params(self) -> None:
        self.params["customer_count"] = int(
            self.scalar("SELECT COUNT(*) FROM customer") or 0) or 2
        self.params["flight_count"] = int(
            self.scalar("SELECT COUNT(*) FROM flight") or 0) or 2
        self.params["airport_count"] = int(
            self.scalar("SELECT COUNT(*) FROM airport") or 0) or 2
        self.params["horizon"] = float(self.scalar(
            "SELECT MAX(f_depart_time) FROM flight") or 3600.0)
        self.params["reservation_id_counter"] = itertools.count(
            int(self.scalar("SELECT MAX(r_id) FROM reservation") or 0) + 1)
