"""SEATS' six transactions over flights and reservations."""

from __future__ import annotations

import random

from ...core.procedure import Procedure, UserAbort
from ...errors import IntegrityError
from .schema import SEATS_PER_FLIGHT


class _SeatsProcedure(Procedure):

    def _flight(self, rng: random.Random) -> int:
        return rng.randrange(int(self.params["flight_count"]))

    def _customer(self, rng: random.Random) -> int:
        return rng.randrange(int(self.params["customer_count"]))

    def _airport(self, rng: random.Random) -> int:
        return rng.randrange(int(self.params["airport_count"]))


class FindFlights(_SeatsProcedure):
    """Search flights between two airports inside a departure window."""

    name = "FindFlights"
    read_only = True
    default_weight = 10

    def run(self, conn, rng):
        depart = self._airport(rng)
        arrive = self._airport(rng)
        window_start = rng.uniform(0, float(self.params["horizon"]))
        window_end = window_start + 6 * 3600.0
        cur = conn.cursor()
        cur.execute(
            "SELECT f_id, f_al_id, f_depart_time, f_base_price, f_seats_left "
            "FROM flight "
            "WHERE f_depart_ap_id = ? AND f_arrive_ap_id = ? "
            "  AND f_depart_time BETWEEN ? AND ? "
            "ORDER BY f_depart_time", (depart, arrive, window_start,
                                       window_end))
        rows = cur.fetchall()
        conn.commit()
        return rows


class FindOpenSeats(_SeatsProcedure):
    """List the unreserved seat numbers of one flight."""

    name = "FindOpenSeats"
    read_only = True
    default_weight = 35

    def run(self, conn, rng):
        f_id = self._flight(rng)
        cur = conn.cursor()
        cur.execute("SELECT f_seats_total, f_base_price FROM flight "
                    "WHERE f_id = ?", (f_id,))
        total, _price = self.fetch_one(cur, "missing flight")
        cur.execute("SELECT r_seat FROM reservation WHERE r_f_id = ?",
                    (f_id,))
        taken = {row[0] for row in cur.fetchall()}
        conn.commit()
        return [seat for seat in range(total) if seat not in taken]


class NewReservation(_SeatsProcedure):
    """Book a seat; the unique (flight, seat) index arbitrates races."""

    name = "NewReservation"
    default_weight = 20

    def run(self, conn, rng):
        f_id = self._flight(rng)
        c_id = self._customer(rng)
        seat = rng.randrange(SEATS_PER_FLIGHT)
        r_id = next(self.params["reservation_id_counter"])
        cur = conn.cursor()
        cur.execute(
            "SELECT f_seats_left, f_base_price FROM flight "
            "WHERE f_id = ? FOR UPDATE", (f_id,))
        seats_left, price = self.fetch_one(cur, "missing flight")
        if seats_left <= 0:
            raise UserAbort("flight is full")
        cur.execute(
            "SELECT r_id FROM reservation WHERE r_f_id = ? AND r_seat = ?",
            (f_id, seat))
        if cur.fetchone() is not None:
            raise UserAbort("seat already reserved")
        cur.execute(
            "INSERT INTO reservation (r_id, r_c_id, r_f_id, r_seat, r_price) "
            "VALUES (?, ?, ?, ?, ?)", (r_id, c_id, f_id, seat, price))
        cur.execute(
            "UPDATE flight SET f_seats_left = f_seats_left - 1 "
            "WHERE f_id = ?", (f_id,))
        conn.commit()
        return r_id


class UpdateCustomer(_SeatsProcedure):
    """Refresh a customer's balance and read their frequent-flyer ties."""

    name = "UpdateCustomer"
    default_weight = 10

    def run(self, conn, rng):
        c_id = self._customer(rng)
        cur = conn.cursor()
        cur.execute("SELECT c_balance FROM customer WHERE c_id = ? "
                    "FOR UPDATE", (c_id,))
        self.fetch_one(cur, "missing customer")
        cur.execute("SELECT ff_al_id FROM frequent_flyer WHERE ff_c_id = ?",
                    (c_id,))
        cur.fetchall()
        cur.execute(
            "UPDATE customer SET c_balance = c_balance + ? WHERE c_id = ?",
            (rng.uniform(-50.0, 50.0), c_id))
        conn.commit()


class UpdateReservation(_SeatsProcedure):
    """Move an existing reservation to a different seat."""

    name = "UpdateReservation"
    default_weight = 15

    def run(self, conn, rng):
        f_id = self._flight(rng)
        new_seat = rng.randrange(SEATS_PER_FLIGHT)
        cur = conn.cursor()
        cur.execute(
            "SELECT r_id, r_seat FROM reservation WHERE r_f_id = ? "
            "LIMIT 1 FOR UPDATE", (f_id,))
        row = cur.fetchone()
        if row is None:
            raise UserAbort("flight has no reservations")
        r_id, old_seat = row
        if new_seat == old_seat:
            conn.commit()
            return
        cur.execute(
            "SELECT r_id FROM reservation WHERE r_f_id = ? AND r_seat = ?",
            (f_id, new_seat))
        if cur.fetchone() is not None:
            raise UserAbort("target seat occupied")
        try:
            cur.execute("UPDATE reservation SET r_seat = ? WHERE r_id = ?",
                        (new_seat, r_id))
        except IntegrityError as exc:
            raise UserAbort(str(exc)) from exc
        conn.commit()


class DeleteReservation(_SeatsProcedure):
    """Cancel a reservation and release the seat."""

    name = "DeleteReservation"
    default_weight = 10

    def run(self, conn, rng):
        c_id = self._customer(rng)
        cur = conn.cursor()
        cur.execute(
            "SELECT r_id, r_f_id, r_price FROM reservation "
            "WHERE r_c_id = ? LIMIT 1 FOR UPDATE", (c_id,))
        row = cur.fetchone()
        if row is None:
            raise UserAbort("customer has no reservations")
        r_id, f_id, price = row
        cur.execute("DELETE FROM reservation WHERE r_id = ?", (r_id,))
        cur.execute(
            "UPDATE flight SET f_seats_left = f_seats_left + 1 "
            "WHERE f_id = ?", (f_id,))
        cur.execute(
            "UPDATE customer SET c_balance = c_balance + ? WHERE c_id = ?",
            (price, c_id))
        conn.commit()


PROCEDURES = (DeleteReservation, FindFlights, FindOpenSeats, NewReservation,
              UpdateCustomer, UpdateReservation)
