"""AuctionMark's seven core transactions."""

from __future__ import annotations

import random

from ...core.procedure import Procedure, UserAbort
from ...rand import random_string
from .schema import (ITEM_STATUS_CLOSED, ITEM_STATUS_OPEN,
                     ITEM_STATUS_WAITING_FOR_PURCHASE)


class _AuctionProcedure(Procedure):

    def _item(self, rng: random.Random) -> int:
        return rng.randrange(int(self.params["item_count"]))

    def _user(self, rng: random.Random) -> int:
        return rng.randrange(int(self.params["user_count"]))

    def _category(self, rng: random.Random) -> int:
        return rng.randrange(int(self.params["category_count"]))


class GetItem(_AuctionProcedure):
    """Item page: listing plus its seller profile."""

    name = "GetItem"
    read_only = True
    default_weight = 45

    def run(self, conn, rng):
        i_id = self._item(rng)
        cur = conn.cursor()
        cur.execute(
            "SELECT i.i_name, i.i_current_price, i.i_num_bids, i.i_status, "
            "u.u_rating FROM item i JOIN useracct u ON u.u_id = i.i_u_id "
            "WHERE i.i_id = ?", (i_id,))
        row = cur.fetchone()
        conn.commit()
        return row


class GetUserInfo(_AuctionProcedure):
    """Seller profile: user row, their listings, and feedback comments."""

    name = "GetUserInfo"
    read_only = True
    default_weight = 10

    def run(self, conn, rng):
        u_id = self._user(rng)
        cur = conn.cursor()
        cur.execute(
            "SELECT u_rating, u_balance, u_created FROM useracct "
            "WHERE u_id = ?", (u_id,))
        self.fetch_one(cur, "missing user")
        cur.execute(
            "SELECT i_id, i_name, i_current_price, i_status FROM item "
            "WHERE i_u_id = ? LIMIT 25", (u_id,))
        items = cur.fetchall()
        conn.commit()
        return items


class NewBid(_AuctionProcedure):
    """Place a bid; only higher bids on open items are accepted."""

    name = "NewBid"
    default_weight = 15

    def run(self, conn, rng):
        i_id = self._item(rng)
        u_id = self._user(rng)
        cur = conn.cursor()
        cur.execute(
            "SELECT i_current_price, i_num_bids, i_status, i_u_id "
            "FROM item WHERE i_id = ? FOR UPDATE", (i_id,))
        price, num_bids, status, seller = self.fetch_one(
            cur, "missing item")
        if status != ITEM_STATUS_OPEN:
            raise UserAbort("auction is not open")
        if seller == u_id:
            raise UserAbort("sellers cannot bid on their own items")
        bid = price * rng.uniform(1.01, 1.25)
        ib_id = next(self.params["bid_id_counter"])
        cur.execute(
            "INSERT INTO item_bid (ib_id, ib_i_id, ib_u_id, ib_bid, "
            "ib_max_bid, ib_created) VALUES (?, ?, ?, ?, ?, ?)",
            (ib_id, i_id, u_id, bid, bid * rng.uniform(1.0, 1.5), 0.0))
        cur.execute(
            "UPDATE item SET i_current_price = ?, i_num_bids = ? "
            "WHERE i_id = ?", (bid, num_bids + 1, i_id))
        conn.commit()
        return ib_id


class NewComment(_AuctionProcedure):
    name = "NewComment"
    default_weight = 2

    def run(self, conn, rng):
        ic_id = next(self.params["comment_id_counter"])
        cur = conn.cursor()
        cur.execute(
            "INSERT INTO item_comment (ic_id, ic_i_id, ic_u_id, "
            "ic_question, ic_response) VALUES (?, ?, ?, ?, ?)",
            (ic_id, self._item(rng), self._user(rng),
             random_string(rng, 16, 128), None))
        conn.commit()


class NewItem(_AuctionProcedure):
    """List a new item for auction."""

    name = "NewItem"
    default_weight = 10

    def run(self, conn, rng):
        i_id = next(self.params["item_id_counter"])
        price = rng.uniform(1.0, 500.0)
        cur = conn.cursor()
        cur.execute(
            "INSERT INTO item (i_id, i_u_id, i_c_id, i_name, "
            "i_description, i_initial_price, i_current_price, i_num_bids, "
            "i_end_date, i_status) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (i_id, self._user(rng), self._category(rng),
             random_string(rng, 8, 64), random_string(rng, 32, 255),
             price, price, 0, 7 * 86400.0, ITEM_STATUS_OPEN))
        conn.commit()
        return i_id


class NewPurchase(_AuctionProcedure):
    """Buyer completes a won auction (waiting-for-purchase -> closed)."""

    name = "NewPurchase"
    default_weight = 3

    def run(self, conn, rng):
        i_id = self._item(rng)
        cur = conn.cursor()
        cur.execute(
            "SELECT i_status, i_num_bids FROM item WHERE i_id = ? "
            "FOR UPDATE", (i_id,))
        status, num_bids = self.fetch_one(cur, "missing item")
        if status != ITEM_STATUS_WAITING_FOR_PURCHASE or num_bids == 0:
            raise UserAbort("item is not awaiting purchase")
        cur.execute(
            "SELECT ib_id FROM item_bid WHERE ib_i_id = ? "
            "ORDER BY ib_bid DESC LIMIT 1", (i_id,))
        winning = self.fetch_one(cur, "no winning bid")[0]
        ip_id = next(self.params["purchase_id_counter"])
        cur.execute(
            "INSERT INTO item_purchase (ip_id, ip_ib_id, ip_i_id, ip_date) "
            "VALUES (?, ?, ?, ?)", (ip_id, winning, i_id, 0.0))
        cur.execute("UPDATE item SET i_status = ? WHERE i_id = ?",
                    (ITEM_STATUS_CLOSED, i_id))
        conn.commit()
        return ip_id


class UpdateItem(_AuctionProcedure):
    """Seller edits an open listing's description."""

    name = "UpdateItem"
    default_weight = 15

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute(
            "UPDATE item SET i_description = ? "
            "WHERE i_id = ? AND i_status = ?",
            (random_string(rng, 32, 255), self._item(rng),
             ITEM_STATUS_OPEN))
        conn.commit()


PROCEDURES = (GetItem, GetUserInfo, NewBid, NewComment, NewItem,
              NewPurchase, UpdateItem)
