"""AuctionMark schema: the core tables of the on-line auction benchmark."""

USERS_PER_SF = 200
ITEMS_PER_SF = 100
CATEGORIES = 20
BIDS_PER_ITEM = 5

ITEM_STATUS_OPEN = 0
ITEM_STATUS_ENDING_SOON = 1
ITEM_STATUS_WAITING_FOR_PURCHASE = 2
ITEM_STATUS_CLOSED = 3

DDL = [
    """
    CREATE TABLE region (
        r_id   INT PRIMARY KEY,
        r_name VARCHAR(32) NOT NULL
    )
    """,
    """
    CREATE TABLE useracct (
        u_id      BIGINT PRIMARY KEY,
        u_rating  INT NOT NULL,
        u_balance FLOAT NOT NULL,
        u_created TIMESTAMP NOT NULL,
        u_r_id    INT NOT NULL
    )
    """,
    """
    CREATE TABLE category (
        c_id        INT PRIMARY KEY,
        c_name      VARCHAR(50) NOT NULL,
        c_parent_id INT
    )
    """,
    """
    CREATE TABLE item (
        i_id            BIGINT PRIMARY KEY,
        i_u_id          BIGINT NOT NULL,
        i_c_id          INT NOT NULL,
        i_name          VARCHAR(100) NOT NULL,
        i_description   VARCHAR(255) NOT NULL,
        i_initial_price FLOAT NOT NULL,
        i_current_price FLOAT NOT NULL,
        i_num_bids      INT NOT NULL,
        i_end_date      TIMESTAMP NOT NULL,
        i_status        INT NOT NULL
    )
    """,
    "CREATE INDEX idx_item_seller ON item (i_u_id)",
    "CREATE INDEX idx_item_category ON item (i_c_id)",
    """
    CREATE TABLE item_bid (
        ib_id      BIGINT PRIMARY KEY,
        ib_i_id    BIGINT NOT NULL,
        ib_u_id    BIGINT NOT NULL,
        ib_bid     FLOAT NOT NULL,
        ib_max_bid FLOAT NOT NULL,
        ib_created TIMESTAMP NOT NULL
    )
    """,
    "CREATE INDEX idx_item_bid_item ON item_bid (ib_i_id)",
    "CREATE INDEX idx_item_bid_user ON item_bid (ib_u_id)",
    """
    CREATE TABLE item_comment (
        ic_id       BIGINT PRIMARY KEY,
        ic_i_id     BIGINT NOT NULL,
        ic_u_id     BIGINT NOT NULL,
        ic_question VARCHAR(128) NOT NULL,
        ic_response VARCHAR(128)
    )
    """,
    "CREATE INDEX idx_item_comment_item ON item_comment (ic_i_id)",
    """
    CREATE TABLE item_purchase (
        ip_id    BIGINT PRIMARY KEY,
        ip_ib_id BIGINT NOT NULL,
        ip_i_id  BIGINT NOT NULL,
        ip_date  TIMESTAMP NOT NULL
    )
    """,
    "CREATE INDEX idx_item_purchase_item ON item_purchase (ip_i_id)",
]
