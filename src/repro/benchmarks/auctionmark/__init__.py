"""AuctionMark: on-line auction site workload (Transactional, Table 1)."""

from __future__ import annotations

import itertools
import random

from ...core.benchmark import BenchmarkModule, CLASS_TRANSACTIONAL
from ...rand import ZipfGenerator, random_string
from .procedures import PROCEDURES
from .schema import (BIDS_PER_ITEM, CATEGORIES, DDL, ITEMS_PER_SF,
                     ITEM_STATUS_CLOSED, ITEM_STATUS_OPEN,
                     ITEM_STATUS_WAITING_FOR_PURCHASE, USERS_PER_SF)

_REGIONS = ["Americas", "Europe", "Asia", "Africa", "Oceania"]


class AuctionMarkBenchmark(BenchmarkModule):
    """Auctions with sellers, bidders, comments, and purchases."""

    name = "auctionmark"
    domain = "On-line Auctions"
    benchmark_class = CLASS_TRANSACTIONAL
    procedures = PROCEDURES

    def ddl(self):
        return DDL

    def load_data(self, rng: random.Random) -> None:
        users = max(2, int(USERS_PER_SF * self.scale_factor))
        items = max(2, int(ITEMS_PER_SF * self.scale_factor))

        self.database.bulk_insert("region", list(enumerate(_REGIONS)))
        self.database.bulk_insert("useracct", [
            (u, rng.randint(0, 10_000), rng.uniform(0.0, 1000.0), 0.0,
             rng.randrange(len(_REGIONS)))
            for u in range(users)])
        self.database.bulk_insert("category", [
            (c, f"Category {c}", None if c < 5 else rng.randrange(5))
            for c in range(CATEGORIES)])

        bid_counter = itertools.count(1)
        seller = ZipfGenerator(users, theta=0.8)
        item_rows, bid_rows = [], []
        # ~70% open, 10% waiting for purchase, 20% closed.
        for i_id in range(items):
            roll = rng.random()
            if roll < 0.70:
                status = ITEM_STATUS_OPEN
            elif roll < 0.80:
                status = ITEM_STATUS_WAITING_FOR_PURCHASE
            else:
                status = ITEM_STATUS_CLOSED
            initial = rng.uniform(1.0, 500.0)
            price = initial
            num_bids = rng.randint(0, BIDS_PER_ITEM)
            if status == ITEM_STATUS_WAITING_FOR_PURCHASE:
                num_bids = max(1, num_bids)
            for _ in range(num_bids):
                price *= rng.uniform(1.01, 1.25)
                bid_rows.append((
                    next(bid_counter), i_id, rng.randrange(users), price,
                    price * rng.uniform(1.0, 1.5), 0.0))
            item_rows.append((
                i_id, seller.next(rng), rng.randrange(CATEGORIES),
                random_string(rng, 8, 64), random_string(rng, 32, 255),
                initial, price, num_bids, 7 * 86400.0, status))
            if len(item_rows) >= 1000:
                self.database.bulk_insert("item", item_rows)
                self.database.bulk_insert("item_bid", bid_rows)
                item_rows, bid_rows = [], []
        if item_rows:
            self.database.bulk_insert("item", item_rows)
        if bid_rows:
            self.database.bulk_insert("item_bid", bid_rows)

        self.params.update({
            "user_count": users,
            "item_count": items,
            "category_count": CATEGORIES,
            "item_id_counter": itertools.count(items),
            "bid_id_counter": bid_counter,
            "comment_id_counter": itertools.count(1),
            "purchase_id_counter": itertools.count(1),
        })

    def _derive_params(self) -> None:
        self.params["user_count"] = int(
            self.scalar("SELECT COUNT(*) FROM useracct") or 0) or 2
        self.params["item_count"] = int(
            self.scalar("SELECT MAX(i_id) FROM item") or 0) + 1
        self.params["category_count"] = int(
            self.scalar("SELECT COUNT(*) FROM category") or 0) or 1
        self.params["item_id_counter"] = itertools.count(
            self.params["item_count"])
        self.params["bid_id_counter"] = itertools.count(
            int(self.scalar("SELECT MAX(ib_id) FROM item_bid") or 0) + 1)
        self.params["comment_id_counter"] = itertools.count(
            int(self.scalar(
                "SELECT MAX(ic_id) FROM item_comment") or 0) + 1)
        self.params["purchase_id_counter"] = itertools.count(
            int(self.scalar(
                "SELECT MAX(ip_id) FROM item_purchase") or 0) + 1)
