"""YCSB transaction procedures.

Key selection follows YCSB's request distributions: a scrambled-Zipfian
chooser over the loaded key space (hotspot/latest variants are available
through the benchmark's ``request_distribution`` parameter).  Inserts append
at the tail of the key space like YCSB's transactional insert sequence.
"""

from __future__ import annotations

import random

from ...core.procedure import Procedure, UserAbort
from ...rand import (HotspotGenerator, LatestGenerator,
                     ScrambledZipfGenerator, random_string)
from .schema import FIELD_COUNT, FIELD_LENGTH

ALL_FIELDS = ", ".join(f"field{i}" for i in range(1, FIELD_COUNT + 1))
_PLACEHOLDERS = ", ".join("?" for _ in range(FIELD_COUNT))


class _YcsbProcedure(Procedure):
    """Shared key-chooser logic."""

    def _chooser(self):
        dist = self.params.get("request_distribution", "zipfian")
        record_count = int(self.params["record_count"])
        cache = self.params.setdefault("_chooser_cache", {})
        key = (dist, record_count)
        chooser = cache.get(key)
        if chooser is None:
            if dist == "zipfian":
                chooser = ScrambledZipfGenerator(record_count)
            elif dist == "latest":
                chooser = LatestGenerator(record_count)
            elif dist == "hotspot":
                chooser = HotspotGenerator(record_count)
            elif dist == "uniform":
                chooser = None
            else:
                raise ValueError(f"unknown distribution {dist!r}")
            cache[key] = chooser
        return chooser

    def _pick_key(self, rng: random.Random) -> int:
        chooser = self._chooser()
        if chooser is None:
            return rng.randrange(int(self.params["record_count"]))
        return chooser.next(rng)

    @staticmethod
    def _random_fields(rng: random.Random) -> list[str]:
        return [random_string(rng, FIELD_LENGTH)
                for _ in range(FIELD_COUNT)]


class ReadRecord(_YcsbProcedure):
    name = "ReadRecord"
    read_only = True
    default_weight = 50

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute(
            f"SELECT ycsb_key, {ALL_FIELDS} FROM usertable WHERE ycsb_key = ?",
            (self._pick_key(rng),))
        cur.fetchall()
        conn.commit()


class UpdateRecord(_YcsbProcedure):
    name = "UpdateRecord"
    default_weight = 20

    def run(self, conn, rng):
        field = rng.randint(1, FIELD_COUNT)
        cur = conn.cursor()
        cur.execute(
            f"UPDATE usertable SET field{field} = ? WHERE ycsb_key = ?",
            (random_string(rng, FIELD_LENGTH), self._pick_key(rng)))
        conn.commit()


class ScanRecord(_YcsbProcedure):
    name = "ScanRecord"
    read_only = True
    default_weight = 10

    MAX_SCAN = 20

    def run(self, conn, rng):
        start = self._pick_key(rng)
        length = rng.randint(1, self.MAX_SCAN)
        cur = conn.cursor()
        cur.execute(
            "SELECT ycsb_key FROM usertable "
            "WHERE ycsb_key >= ? AND ycsb_key < ? ORDER BY ycsb_key",
            (start, start + length))
        cur.fetchall()
        conn.commit()


class InsertRecord(_YcsbProcedure):
    name = "InsertRecord"
    default_weight = 10

    def run(self, conn, rng):
        # Claim the next key past the tail; retry window keeps concurrent
        # inserters from colliding deterministically.
        tail = int(self.params["record_count"])
        key = tail + rng.randrange(1_000_000)
        cur = conn.cursor()
        cur.execute(
            f"INSERT INTO usertable (ycsb_key, {ALL_FIELDS}) "
            f"VALUES (?, {_PLACEHOLDERS})",
            (key, *self._random_fields(rng)))
        conn.commit()


class DeleteRecord(_YcsbProcedure):
    name = "DeleteRecord"
    default_weight = 5

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute("DELETE FROM usertable WHERE ycsb_key = ?",
                    (self._pick_key(rng),))
        conn.commit()


class ReadModifyWriteRecord(_YcsbProcedure):
    name = "ReadModifyWriteRecord"
    default_weight = 5

    def run(self, conn, rng):
        key = self._pick_key(rng)
        cur = conn.cursor()
        cur.execute(
            f"SELECT {ALL_FIELDS} FROM usertable WHERE ycsb_key = ? "
            "FOR UPDATE", (key,))
        row = cur.fetchone()
        if row is not None:
            field = rng.randint(1, FIELD_COUNT)
            cur.execute(
                f"UPDATE usertable SET field{field} = ? WHERE ycsb_key = ?",
                (random_string(rng, FIELD_LENGTH), key))
        conn.commit()


PROCEDURES = (ReadRecord, InsertRecord, ScanRecord, UpdateRecord,
              DeleteRecord, ReadModifyWriteRecord)
