"""YCSB schema: the classic single USERTABLE with ten payload fields."""

FIELD_COUNT = 10
FIELD_LENGTH = 100

#: Rows per unit of scale factor (OLTP-Bench loads 1,000 * SF records).
RECORDS_PER_SF = 1_000

DDL = [
    """
    CREATE TABLE usertable (
        ycsb_key INT PRIMARY KEY,
        field1  VARCHAR(100) NOT NULL,
        field2  VARCHAR(100) NOT NULL,
        field3  VARCHAR(100) NOT NULL,
        field4  VARCHAR(100) NOT NULL,
        field5  VARCHAR(100) NOT NULL,
        field6  VARCHAR(100) NOT NULL,
        field7  VARCHAR(100) NOT NULL,
        field8  VARCHAR(100) NOT NULL,
        field9  VARCHAR(100) NOT NULL,
        field10 VARCHAR(100) NOT NULL
    )
    """,
]
