"""YCSB: the Yahoo! Cloud Serving Benchmark (key-value CRUD over SQL).

Paper Table 1 class: Feature Testing — "Scalable Key-value Store".
"""

from __future__ import annotations

import random

from ...core.benchmark import BenchmarkModule, CLASS_FEATURE
from ...rand import random_string
from .procedures import ALL_FIELDS, PROCEDURES
from .schema import DDL, FIELD_COUNT, FIELD_LENGTH, RECORDS_PER_SF


class YcsbBenchmark(BenchmarkModule):
    """YCSB with zipfian/uniform/latest/hotspot request distributions."""

    name = "ycsb"
    domain = "Scalable Key-value Store"
    benchmark_class = CLASS_FEATURE
    procedures = PROCEDURES

    def __init__(self, database, scale_factor=1.0, seed=None,
                 request_distribution: str = "zipfian") -> None:
        super().__init__(database, scale_factor, seed)
        self.params["request_distribution"] = request_distribution

    def ddl(self):
        return DDL

    def load_data(self, rng: random.Random) -> None:
        record_count = max(1, int(RECORDS_PER_SF * self.scale_factor))
        batch: list[tuple] = []
        for key in range(record_count):
            fields = tuple(random_string(rng, FIELD_LENGTH)
                           for _ in range(FIELD_COUNT))
            batch.append((key, *fields))
            if len(batch) >= 1000:
                self.database.bulk_insert("usertable", batch)
                batch = []
        if batch:
            self.database.bulk_insert("usertable", batch)
        self.params["record_count"] = record_count

    def _derive_params(self) -> None:
        self.params["record_count"] = int(
            self.scalar("SELECT COUNT(*) FROM usertable") or 0) or 1
