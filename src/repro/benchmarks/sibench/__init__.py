"""SIBench: a micro-benchmark for transactional isolation (Cahill et al.).

Paper Table 1 class: Feature Testing — "Transactional Isolation".

Two tiny transactions stress the snapshot-isolation anomaly surface:

* ``MinRecord`` reads the minimum value over the table;
* ``UpdateRecord`` increments the value of the current minimum row.

Under snapshot isolation, concurrent UpdateRecords targeting the same
minimum conflict (first-committer-wins) or, with disjoint rows, exhibit the
read-skew the benchmark is designed to surface; under serializable 2PL the
lock manager serialises them.  The test suite uses this benchmark to verify
both isolation levels behave per the literature.
"""

from __future__ import annotations

import random

from ...core.benchmark import BenchmarkModule, CLASS_FEATURE
from ...core.procedure import Procedure, UserAbort

ROWS_PER_SF = 100

DDL = [
    """
    CREATE TABLE sitest (
        id    INT PRIMARY KEY,
        value INT NOT NULL
    )
    """,
]


class MinRecord(Procedure):
    """Return the minimum value currently in the table."""

    name = "MinRecord"
    read_only = True
    default_weight = 50

    def run(self, conn, rng: random.Random):
        cur = conn.cursor()
        cur.execute("SELECT MIN(value) FROM sitest")
        minimum = cur.fetchone()[0]
        conn.commit()
        return minimum


class UpdateRecord(Procedure):
    """Increment the value of one row (chosen uniformly)."""

    name = "UpdateRecord"
    default_weight = 50

    def run(self, conn, rng: random.Random):
        row_id = rng.randrange(int(self.params["row_count"]))
        cur = conn.cursor()
        cur.execute("UPDATE sitest SET value = value + 1 WHERE id = ?",
                    (row_id,))
        if cur.rowcount == 0:
            raise UserAbort(f"row {row_id} missing")
        conn.commit()


class SiBenchmark(BenchmarkModule):
    """Isolation-level micro-benchmark."""

    name = "sibench"
    domain = "Transactional Isolation"
    benchmark_class = CLASS_FEATURE
    procedures = (MinRecord, UpdateRecord)

    def ddl(self):
        return DDL

    def load_data(self, rng: random.Random) -> None:
        count = max(2, int(ROWS_PER_SF * self.scale_factor))
        self.database.bulk_insert(
            "sitest", [(i, i) for i in range(count)])
        self.params["row_count"] = count

    def _derive_params(self) -> None:
        self.params["row_count"] = int(
            self.scalar("SELECT COUNT(*) FROM sitest") or 0) or 2
