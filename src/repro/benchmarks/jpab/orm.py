"""A miniature JPA-style object-relational mapper.

JPAB (the JPA Performance Benchmark) measures persistence providers, not
hand-written SQL.  To keep the benchmark faithful in spirit, transactions
go through this small entity manager — persist/find/merge/remove with an
identity map and optimistic version columns — which generates the SQL
underneath, exactly the indirection an ORM adds over JDBC.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional, Type, TypeVar

from ...errors import OperationalError, TransactionAborted


@dataclass
class Entity:
    """Base class for mapped entities.

    Subclasses define ``__table__`` plus dataclass fields; the first field
    must be ``id`` (the primary key) and the last ``version`` (optimistic
    concurrency control counter).
    """

    __table__ = ""

    id: int = 0
    version: int = 0


@dataclass
class Employee(Entity):
    """The JPAB "basic test" entity."""

    __table__ = "jpab_employee"

    first_name: str = ""
    last_name: str = ""
    street: str = ""
    city: str = ""
    salary: float = 0.0


def entity_columns(entity_cls: Type[Entity]) -> list[str]:
    return [f.name for f in fields(entity_cls)]


E = TypeVar("E", bound=Entity)


class EntityManager:
    """Per-transaction persistence context with an identity map."""

    def __init__(self, conn) -> None:
        self._conn = conn
        self._identity: dict[tuple[str, int], Entity] = {}

    # -- JPA-style operations ------------------------------------------------

    def persist(self, entity: Entity) -> None:
        columns = entity_columns(type(entity))
        placeholders = ", ".join("?" for _ in columns)
        cur = self._conn.cursor()
        cur.execute(
            f"INSERT INTO {entity.__table__} ({', '.join(columns)}) "
            f"VALUES ({placeholders})",
            tuple(getattr(entity, c) for c in columns))
        self._identity[(entity.__table__, entity.id)] = entity

    def find(self, entity_cls: Type[E], entity_id: int) -> Optional[E]:
        key = (entity_cls.__table__, entity_id)
        cached = self._identity.get(key)
        if cached is not None:
            return cached  # identity map hit: no SQL issued
        columns = entity_columns(entity_cls)
        cur = self._conn.cursor()
        cur.execute(
            f"SELECT {', '.join(columns)} FROM {entity_cls.__table__} "
            "WHERE id = ?", (entity_id,))
        row = cur.fetchone()
        if row is None:
            return None
        entity = entity_cls(**dict(zip(columns, row)))
        self._identity[key] = entity
        return entity

    def merge(self, entity: Entity) -> None:
        """Flush changes with an optimistic version check."""
        columns = [c for c in entity_columns(type(entity))
                   if c not in ("id", "version")]
        assignments = ", ".join(f"{c} = ?" for c in columns)
        cur = self._conn.cursor()
        cur.execute(
            f"UPDATE {entity.__table__} SET {assignments}, "
            "version = version + 1 WHERE id = ? AND version = ?",
            (*(getattr(entity, c) for c in columns),
             entity.id, entity.version))
        if cur.rowcount == 0:
            raise TransactionAborted(
                f"optimistic lock failure on {entity.__table__} "
                f"id={entity.id}")
        entity.version += 1

    def remove(self, entity: Entity) -> None:
        cur = self._conn.cursor()
        cur.execute(f"DELETE FROM {entity.__table__} WHERE id = ?",
                    (entity.id,))
        self._identity.pop((entity.__table__, entity.id), None)

    def query_count(self, entity_cls: Type[Entity]) -> int:
        cur = self._conn.cursor()
        cur.execute(f"SELECT COUNT(*) FROM {entity_cls.__table__}")
        return cur.fetchone()[0]

    # -- transaction demarcation ----------------------------------------------

    def commit(self) -> None:
        self._conn.commit()
        self._identity.clear()

    def rollback(self) -> None:
        self._conn.rollback()
        self._identity.clear()
