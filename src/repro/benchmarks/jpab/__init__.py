"""JPAB: the JPA Performance Benchmark (Feature Testing, Table 1).

Exercises an ORM persistence layer — entity CRUD through an entity manager
with identity map and optimistic versioning — rather than hand-written SQL.
The four procedures mirror JPAB's "basic test" operations.
"""

from __future__ import annotations

import itertools
import random

from ...core.benchmark import BenchmarkModule, CLASS_FEATURE
from ...core.procedure import Procedure, UserAbort
from ...rand import random_string
from .orm import Employee, EntityManager

EMPLOYEES_PER_SF = 500
BATCH_SIZE = 5

DDL = [
    """
    CREATE TABLE jpab_employee (
        id         BIGINT PRIMARY KEY,
        version    INT NOT NULL,
        first_name VARCHAR(32) NOT NULL,
        last_name  VARCHAR(32) NOT NULL,
        street     VARCHAR(64) NOT NULL,
        city       VARCHAR(32) NOT NULL,
        salary     FLOAT NOT NULL
    )
    """,
]


def _random_employee(rng: random.Random, employee_id: int) -> Employee:
    return Employee(
        id=employee_id, version=0,
        first_name=random_string(rng, 4, 12),
        last_name=random_string(rng, 4, 16),
        street=random_string(rng, 12, 32),
        city=random_string(rng, 4, 16),
        salary=rng.uniform(30_000, 150_000))


class _JpabProcedure(Procedure):

    def _existing_id(self, rng: random.Random) -> int:
        return rng.randrange(int(self.params["employee_count"]))


class PersistTest(_JpabProcedure):
    """Persist a small batch of new entities."""

    name = "PersistTest"
    default_weight = 25

    def run(self, conn, rng):
        em = EntityManager(conn)
        for _ in range(BATCH_SIZE):
            em.persist(_random_employee(
                rng, next(self.params["employee_id_counter"])))
        em.commit()


class RetrieveTest(_JpabProcedure):
    """Find entities by id; repeated finds hit the identity map."""

    name = "RetrieveTest"
    read_only = True
    default_weight = 25

    def run(self, conn, rng):
        em = EntityManager(conn)
        found = 0
        for _ in range(BATCH_SIZE):
            entity_id = self._existing_id(rng)
            if em.find(Employee, entity_id) is not None:
                # Second find must be served by the persistence context.
                em.find(Employee, entity_id)
                found += 1
        em.commit()
        return found


class UpdateTest(_JpabProcedure):
    """Find-then-merge with optimistic version increment."""

    name = "UpdateTest"
    default_weight = 25

    def run(self, conn, rng):
        em = EntityManager(conn)
        for _ in range(BATCH_SIZE):
            entity = em.find(Employee, self._existing_id(rng))
            if entity is None:
                continue
            entity.salary *= rng.uniform(0.95, 1.10)
            entity.city = random_string(rng, 4, 16)
            em.merge(entity)
        em.commit()


class DeleteTest(_JpabProcedure):
    """Remove entities from the tail of the persisted range."""

    name = "DeleteTest"
    default_weight = 25

    def run(self, conn, rng):
        em = EntityManager(conn)
        removed = 0
        for _ in range(BATCH_SIZE):
            entity = em.find(Employee, self._existing_id(rng))
            if entity is not None:
                em.remove(entity)
                removed += 1
        em.commit()
        return removed


class JpabBenchmark(BenchmarkModule):
    """ORM CRUD workload through the mini entity manager."""

    name = "jpab"
    domain = "Object-Relational Mapping"
    benchmark_class = CLASS_FEATURE
    procedures = (PersistTest, RetrieveTest, UpdateTest, DeleteTest)

    def ddl(self):
        return DDL

    def load_data(self, rng: random.Random) -> None:
        count = max(1, int(EMPLOYEES_PER_SF * self.scale_factor))
        rows = []
        for employee_id in range(count):
            employee = _random_employee(rng, employee_id)
            rows.append((employee.id, employee.version, employee.first_name,
                         employee.last_name, employee.street, employee.city,
                         employee.salary))
        self.database.bulk_insert("jpab_employee", rows)
        self.params["employee_count"] = count
        self.params["employee_id_counter"] = itertools.count(count)

    def _derive_params(self) -> None:
        next_id = int(self.scalar(
            "SELECT MAX(id) FROM jpab_employee") or 0) + 1
        self.params["employee_count"] = next_id
        self.params["employee_id_counter"] = itertools.count(next_id)
