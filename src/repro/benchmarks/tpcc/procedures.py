"""TPC-C's five transactions (spec §2), 45/43/4/4/4 default mixture."""

from __future__ import annotations

import random

from ...core.procedure import Procedure, UserAbort
from ...rand import nu_rand, random_string, tpcc_last_name
from .schema import nurand_a


class _TpccProcedure(Procedure):

    def _w_id(self, rng: random.Random) -> int:
        return rng.randint(1, int(self.params["warehouses"]))

    def _d_id(self, rng: random.Random) -> int:
        return rng.randint(1, int(self.params["districts"]))

    def _c_id(self, rng: random.Random) -> int:
        customers = int(self.params["customers_per_district"])
        a = nurand_a(customers, 3000, 1023)
        return nu_rand(rng, a, 1, customers)

    def _i_id(self, rng: random.Random) -> int:
        items = int(self.params["items"])
        a = nurand_a(items, 100_000, 8191)
        return nu_rand(rng, a, 1, items)

    def _last_name(self, rng: random.Random) -> str:
        customers = int(self.params["customers_per_district"])
        a = nurand_a(min(1000, customers), 1000, 255)
        return tpcc_last_name(nu_rand(rng, a, 0, min(999, customers - 1)))

    def _customer_by_last_name(self, cur, w_id: int, d_id: int,
                               last: str) -> tuple:
        """Spec §2.5.2.2: pick the middle row ordered by first name."""
        cur.execute(
            "SELECT c_id, c_first, c_balance FROM customer "
            "WHERE c_w_id = ? AND c_d_id = ? AND c_last = ? "
            "ORDER BY c_first", (w_id, d_id, last))
        rows = cur.fetchall()
        if not rows:
            raise UserAbort(f"no customer with last name {last!r}")
        return rows[len(rows) // 2]


class NewOrder(_TpccProcedure):
    """Enter a new order of 5-15 lines; 1% roll back on an invalid item."""

    name = "NewOrder"
    default_weight = 45

    def run(self, conn, rng):
        w_id = self._w_id(rng)
        d_id = self._d_id(rng)
        c_id = self._c_id(rng)
        ol_cnt = rng.randint(5, 15)
        warehouses = int(self.params["warehouses"])
        rollback_line = ol_cnt if rng.random() < 0.01 else 0

        cur = conn.cursor()
        cur.execute("SELECT w_tax FROM warehouse WHERE w_id = ?", (w_id,))
        w_tax = self.fetch_one(cur, "missing warehouse")[0]
        cur.execute(
            "SELECT c_discount, c_last, c_credit FROM customer "
            "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
            (w_id, d_id, c_id))
        c_discount = self.fetch_one(cur, "missing customer")[0]
        cur.execute(
            "SELECT d_next_o_id, d_tax FROM district "
            "WHERE d_w_id = ? AND d_id = ? FOR UPDATE", (w_id, d_id))
        o_id, d_tax = self.fetch_one(cur, "missing district")
        cur.execute(
            "UPDATE district SET d_next_o_id = ? "
            "WHERE d_w_id = ? AND d_id = ?", (o_id + 1, w_id, d_id))

        all_local = 1
        lines = []
        for number in range(1, ol_cnt + 1):
            if number == rollback_line:
                i_id = -1  # unused item id: forces the spec's 1% rollback
            else:
                i_id = self._i_id(rng)
            supply_w_id = w_id
            if warehouses > 1 and rng.random() < 0.01:
                supply_w_id = rng.choice(
                    [w for w in range(1, warehouses + 1) if w != w_id])
                all_local = 0
            lines.append((number, i_id, supply_w_id, rng.randint(1, 10)))

        cur.execute(
            "INSERT INTO oorder (o_id, o_d_id, o_w_id, o_c_id, o_entry_d, "
            "o_carrier_id, o_ol_cnt, o_all_local) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (o_id, d_id, w_id, c_id, 0.0, None, ol_cnt, all_local))
        cur.execute(
            "INSERT INTO new_order (no_o_id, no_d_id, no_w_id) "
            "VALUES (?, ?, ?)", (o_id, d_id, w_id))

        total = 0.0
        for number, i_id, supply_w_id, quantity in lines:
            cur.execute("SELECT i_price, i_name, i_data FROM item "
                        "WHERE i_id = ?", (i_id,))
            item = cur.fetchone()
            if item is None:
                raise UserAbort("invalid item id (spec 1% rollback)")
            price = item[0]
            cur.execute(
                "SELECT s_quantity, s_ytd, s_order_cnt, s_remote_cnt, "
                f"s_dist_{d_id:02d}, s_data FROM stock "
                "WHERE s_w_id = ? AND s_i_id = ? FOR UPDATE",
                (supply_w_id, i_id))
            stock = self.fetch_one(cur, "missing stock row")
            s_quantity = stock[0]
            if s_quantity - quantity >= 10:
                s_quantity -= quantity
            else:
                s_quantity = s_quantity - quantity + 91
            remote = 1 if supply_w_id != w_id else 0
            cur.execute(
                "UPDATE stock SET s_quantity = ?, s_ytd = s_ytd + ?, "
                "s_order_cnt = s_order_cnt + 1, "
                "s_remote_cnt = s_remote_cnt + ? "
                "WHERE s_w_id = ? AND s_i_id = ?",
                (s_quantity, quantity, remote, supply_w_id, i_id))
            amount = quantity * price
            total += amount
            cur.execute(
                "INSERT INTO order_line (ol_o_id, ol_d_id, ol_w_id, "
                "ol_number, ol_i_id, ol_supply_w_id, ol_delivery_d, "
                "ol_quantity, ol_amount, ol_dist_info) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (o_id, d_id, w_id, number, i_id, supply_w_id, None,
                 quantity, amount, stock[4]))
        conn.commit()
        return total * (1 - c_discount) * (1 + w_tax + d_tax)


class Payment(_TpccProcedure):
    """Record a customer payment; 60% address the customer by last name."""

    name = "Payment"
    default_weight = 43

    def run(self, conn, rng):
        w_id = self._w_id(rng)
        d_id = self._d_id(rng)
        amount = rng.uniform(1.0, 5000.0)
        warehouses = int(self.params["warehouses"])
        # 85% local customer; 15% pay through a remote warehouse.
        if warehouses > 1 and rng.random() < 0.15:
            c_w_id = rng.choice(
                [w for w in range(1, warehouses + 1) if w != w_id])
            c_d_id = self._d_id(rng)
        else:
            c_w_id, c_d_id = w_id, d_id

        cur = conn.cursor()
        cur.execute(
            "UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?",
            (amount, w_id))
        cur.execute("SELECT w_name FROM warehouse WHERE w_id = ?", (w_id,))
        w_name = self.fetch_one(cur, "missing warehouse")[0]
        cur.execute(
            "UPDATE district SET d_ytd = d_ytd + ? "
            "WHERE d_w_id = ? AND d_id = ?", (amount, w_id, d_id))
        cur.execute(
            "SELECT d_name FROM district WHERE d_w_id = ? AND d_id = ?",
            (w_id, d_id))
        d_name = self.fetch_one(cur, "missing district")[0]

        if rng.random() < 0.60:
            c_id = self._customer_by_last_name(
                cur, c_w_id, c_d_id, self._last_name(rng))[0]
        else:
            c_id = self._c_id(rng)
        cur.execute(
            "SELECT c_balance, c_ytd_payment, c_payment_cnt, c_credit, "
            "c_data FROM customer "
            "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ? FOR UPDATE",
            (c_w_id, c_d_id, c_id))
        row = self.fetch_one(cur, "missing customer")
        balance, ytd_payment, payment_cnt, credit, data = row
        balance -= amount
        ytd_payment += amount
        payment_cnt += 1
        if credit == "BC":
            # Bad-credit customers get the payment recorded in c_data.
            data = (f"{c_id} {c_d_id} {c_w_id} {d_id} {w_id} "
                    f"{amount:.2f}|" + data)[:500]
            cur.execute(
                "UPDATE customer SET c_balance = ?, c_ytd_payment = ?, "
                "c_payment_cnt = ?, c_data = ? "
                "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
                (balance, ytd_payment, payment_cnt, data,
                 c_w_id, c_d_id, c_id))
        else:
            cur.execute(
                "UPDATE customer SET c_balance = ?, c_ytd_payment = ?, "
                "c_payment_cnt = ? "
                "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
                (balance, ytd_payment, payment_cnt, c_w_id, c_d_id, c_id))
        h_id = next(self.params["history_id_counter"])
        cur.execute(
            "INSERT INTO history (h_c_id, h_c_d_id, h_c_w_id, h_d_id, "
            "h_w_id, h_date, h_amount, h_data, h_id) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (c_id, c_d_id, c_w_id, d_id, w_id, 0.0, amount,
             f"{w_name}    {d_name}"[:24], h_id))
        conn.commit()


class OrderStatus(_TpccProcedure):
    """Query a customer's most recent order and its lines (read only)."""

    name = "OrderStatus"
    read_only = True
    default_weight = 4

    def run(self, conn, rng):
        w_id = self._w_id(rng)
        d_id = self._d_id(rng)
        cur = conn.cursor()
        if rng.random() < 0.60:
            c_id = self._customer_by_last_name(
                cur, w_id, d_id, self._last_name(rng))[0]
        else:
            c_id = self._c_id(rng)
            cur.execute(
                "SELECT c_balance, c_first, c_middle, c_last FROM customer "
                "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
                (w_id, d_id, c_id))
            self.fetch_one(cur, "missing customer")
        cur.execute(
            "SELECT o_id, o_carrier_id, o_entry_d FROM oorder "
            "WHERE o_w_id = ? AND o_d_id = ? AND o_c_id = ? "
            "ORDER BY o_id DESC LIMIT 1", (w_id, d_id, c_id))
        order = cur.fetchone()
        if order is None:
            conn.commit()
            return None
        cur.execute(
            "SELECT ol_i_id, ol_supply_w_id, ol_quantity, ol_amount, "
            "ol_delivery_d FROM order_line "
            "WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
            (w_id, d_id, order[0]))
        lines = cur.fetchall()
        conn.commit()
        return order[0], lines


class Delivery(_TpccProcedure):
    """Deliver the oldest undelivered order of every district (batch)."""

    name = "Delivery"
    default_weight = 4

    def run(self, conn, rng):
        w_id = self._w_id(rng)
        carrier = rng.randint(1, 10)
        cur = conn.cursor()
        delivered = 0
        for d_id in range(1, int(self.params["districts"]) + 1):
            cur.execute(
                "SELECT no_o_id FROM new_order "
                "WHERE no_w_id = ? AND no_d_id = ? "
                "ORDER BY no_o_id ASC LIMIT 1 FOR UPDATE", (w_id, d_id))
            row = cur.fetchone()
            if row is None:
                continue  # skipped district: no pending orders
            o_id = row[0]
            cur.execute(
                "DELETE FROM new_order "
                "WHERE no_w_id = ? AND no_d_id = ? AND no_o_id = ?",
                (w_id, d_id, o_id))
            if cur.rowcount == 0:
                continue  # another terminal delivered it first
            cur.execute(
                "SELECT o_c_id FROM oorder "
                "WHERE o_w_id = ? AND o_d_id = ? AND o_id = ?",
                (w_id, d_id, o_id))
            c_id = self.fetch_one(cur, "order row vanished")[0]
            cur.execute(
                "UPDATE oorder SET o_carrier_id = ? "
                "WHERE o_w_id = ? AND o_d_id = ? AND o_id = ?",
                (carrier, w_id, d_id, o_id))
            cur.execute(
                "UPDATE order_line SET ol_delivery_d = ? "
                "WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
                (0.0, w_id, d_id, o_id))
            cur.execute(
                "SELECT SUM(ol_amount) FROM order_line "
                "WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
                (w_id, d_id, o_id))
            total = cur.fetchone()[0] or 0.0
            cur.execute(
                "UPDATE customer SET c_balance = c_balance + ?, "
                "c_delivery_cnt = c_delivery_cnt + 1 "
                "WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
                (total, w_id, d_id, c_id))
            delivered += 1
        conn.commit()
        return delivered


class StockLevel(_TpccProcedure):
    """Count recently sold items below a stock threshold (read only)."""

    name = "StockLevel"
    read_only = True
    default_weight = 4

    def run(self, conn, rng):
        w_id = self._w_id(rng)
        d_id = self._d_id(rng)
        threshold = rng.randint(10, 20)
        cur = conn.cursor()
        cur.execute(
            "SELECT d_next_o_id FROM district "
            "WHERE d_w_id = ? AND d_id = ?", (w_id, d_id))
        next_o_id = self.fetch_one(cur, "missing district")[0]
        cur.execute(
            "SELECT COUNT(DISTINCT ol.ol_i_id) "
            "FROM order_line ol JOIN stock s "
            "  ON s.s_w_id = ol.ol_w_id AND s.s_i_id = ol.ol_i_id "
            "WHERE ol.ol_w_id = ? AND ol.ol_d_id = ? "
            "  AND ol.ol_o_id < ? AND ol.ol_o_id >= ? "
            "  AND s.s_quantity < ?",
            (w_id, d_id, next_o_id, next_o_id - 20, threshold))
        count = cur.fetchone()[0]
        conn.commit()
        return count


PROCEDURES = (NewOrder, Payment, OrderStatus, Delivery, StockLevel)
