"""TPC-C schema: the nine tables of the order-processing benchmark.

Column sets follow the TPC-C specification (v5.11).  The scale factor is
the warehouse count, as in OLTP-Bench; per-warehouse population sizes are
configurable so Python-speed test runs can shrink the dataset while keeping
the spec's ratios.
"""

#: Specification population sizes (per warehouse unless noted).
DISTRICTS_PER_WAREHOUSE = 10
CUSTOMERS_PER_DISTRICT = 3_000
ITEMS = 100_000
INITIAL_ORDERS_PER_DISTRICT = 3_000
INITIAL_NEW_ORDER_FRACTION = 0.30  # last 900 of 3000 orders are undelivered

DDL = [
    """
    CREATE TABLE warehouse (
        w_id       INT PRIMARY KEY,
        w_name     VARCHAR(10) NOT NULL,
        w_street_1 VARCHAR(20) NOT NULL,
        w_street_2 VARCHAR(20) NOT NULL,
        w_city     VARCHAR(20) NOT NULL,
        w_state    CHAR(2) NOT NULL,
        w_zip      CHAR(9) NOT NULL,
        w_tax      FLOAT NOT NULL,
        w_ytd      FLOAT NOT NULL
    )
    """,
    """
    CREATE TABLE district (
        d_id        INT NOT NULL,
        d_w_id      INT NOT NULL,
        d_name      VARCHAR(10) NOT NULL,
        d_street_1  VARCHAR(20) NOT NULL,
        d_street_2  VARCHAR(20) NOT NULL,
        d_city      VARCHAR(20) NOT NULL,
        d_state     CHAR(2) NOT NULL,
        d_zip       CHAR(9) NOT NULL,
        d_tax       FLOAT NOT NULL,
        d_ytd       FLOAT NOT NULL,
        d_next_o_id INT NOT NULL,
        PRIMARY KEY (d_w_id, d_id)
    )
    """,
    """
    CREATE TABLE customer (
        c_id           INT NOT NULL,
        c_d_id         INT NOT NULL,
        c_w_id         INT NOT NULL,
        c_first        VARCHAR(16) NOT NULL,
        c_middle       CHAR(2) NOT NULL,
        c_last         VARCHAR(16) NOT NULL,
        c_street_1     VARCHAR(20) NOT NULL,
        c_street_2     VARCHAR(20) NOT NULL,
        c_city         VARCHAR(20) NOT NULL,
        c_state        CHAR(2) NOT NULL,
        c_zip          CHAR(9) NOT NULL,
        c_phone        CHAR(16) NOT NULL,
        c_since        TIMESTAMP NOT NULL,
        c_credit       CHAR(2) NOT NULL,
        c_credit_lim   FLOAT NOT NULL,
        c_discount     FLOAT NOT NULL,
        c_balance      FLOAT NOT NULL,
        c_ytd_payment  FLOAT NOT NULL,
        c_payment_cnt  INT NOT NULL,
        c_delivery_cnt INT NOT NULL,
        c_data         VARCHAR(500) NOT NULL,
        PRIMARY KEY (c_w_id, c_d_id, c_id)
    )
    """,
    "CREATE INDEX idx_customer_name ON customer (c_w_id, c_d_id, c_last)",
    """
    CREATE TABLE history (
        h_c_id   INT NOT NULL,
        h_c_d_id INT NOT NULL,
        h_c_w_id INT NOT NULL,
        h_d_id   INT NOT NULL,
        h_w_id   INT NOT NULL,
        h_date   TIMESTAMP NOT NULL,
        h_amount FLOAT NOT NULL,
        h_data   VARCHAR(24) NOT NULL,
        h_id     BIGINT PRIMARY KEY
    )
    """,
    """
    CREATE TABLE new_order (
        no_o_id INT NOT NULL,
        no_d_id INT NOT NULL,
        no_w_id INT NOT NULL,
        PRIMARY KEY (no_w_id, no_d_id, no_o_id)
    )
    """,
    "CREATE INDEX idx_new_order_district ON new_order (no_w_id, no_d_id)",
    """
    CREATE TABLE oorder (
        o_id         INT NOT NULL,
        o_d_id       INT NOT NULL,
        o_w_id       INT NOT NULL,
        o_c_id       INT NOT NULL,
        o_entry_d    TIMESTAMP NOT NULL,
        o_carrier_id INT,
        o_ol_cnt     INT NOT NULL,
        o_all_local  INT NOT NULL,
        PRIMARY KEY (o_w_id, o_d_id, o_id)
    )
    """,
    "CREATE INDEX idx_oorder_customer ON oorder (o_w_id, o_d_id, o_c_id)",
    """
    CREATE TABLE order_line (
        ol_o_id        INT NOT NULL,
        ol_d_id        INT NOT NULL,
        ol_w_id        INT NOT NULL,
        ol_number      INT NOT NULL,
        ol_i_id        INT NOT NULL,
        ol_supply_w_id INT NOT NULL,
        ol_delivery_d  TIMESTAMP,
        ol_quantity    INT NOT NULL,
        ol_amount      FLOAT NOT NULL,
        ol_dist_info   CHAR(24) NOT NULL,
        PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number)
    )
    """,
    "CREATE INDEX idx_order_line_order ON order_line (ol_w_id, ol_d_id, ol_o_id)",
    "CREATE INDEX idx_order_line_district ON order_line (ol_w_id, ol_d_id)",
    """
    CREATE TABLE item (
        i_id    INT PRIMARY KEY,
        i_im_id INT NOT NULL,
        i_name  VARCHAR(24) NOT NULL,
        i_price FLOAT NOT NULL,
        i_data  VARCHAR(50) NOT NULL
    )
    """,
    """
    CREATE TABLE stock (
        s_i_id       INT NOT NULL,
        s_w_id       INT NOT NULL,
        s_quantity   INT NOT NULL,
        s_dist_01    CHAR(24) NOT NULL,
        s_dist_02    CHAR(24) NOT NULL,
        s_dist_03    CHAR(24) NOT NULL,
        s_dist_04    CHAR(24) NOT NULL,
        s_dist_05    CHAR(24) NOT NULL,
        s_dist_06    CHAR(24) NOT NULL,
        s_dist_07    CHAR(24) NOT NULL,
        s_dist_08    CHAR(24) NOT NULL,
        s_dist_09    CHAR(24) NOT NULL,
        s_dist_10    CHAR(24) NOT NULL,
        s_ytd        FLOAT NOT NULL,
        s_order_cnt  INT NOT NULL,
        s_remote_cnt INT NOT NULL,
        s_data       VARCHAR(50) NOT NULL,
        PRIMARY KEY (s_w_id, s_i_id)
    )
    """,
]


def nurand_a(count: int, spec_count: int, spec_a: int) -> int:
    """NURand A constant scaled to a reduced population.

    Returns the spec value when the population matches the spec, otherwise
    the largest ``2^k - 1`` not exceeding half the population, preserving
    the spec's skew shape on shrunken datasets.
    """
    if count >= spec_count:
        return spec_a
    if count <= 2:
        return 1
    return (1 << (max(1, (count // 2)).bit_length() - 1)) - 1
