"""TPC-C data generator following the spec's population rules (§4.3)."""

from __future__ import annotations

import itertools
import random

from ...engine.database import Database
from ...rand import nu_rand, random_string, tpcc_last_name
from .schema import nurand_a


class TpccLoader:
    """Loads warehouses with the spec ratios at configurable sizes."""

    def __init__(self, database: Database, warehouses: int, districts: int,
                 customers_per_district: int, items: int,
                 initial_orders: int, rng: random.Random) -> None:
        self.db = database
        self.warehouses = warehouses
        self.districts = districts
        self.customers = customers_per_district
        self.items = items
        self.initial_orders = min(initial_orders, customers_per_district)
        self.rng = rng
        self._history_ids = itertools.count(1)
        self._lastname_a = nurand_a(
            min(1000, customers_per_district), 1000, 255)

    # -- helpers -----------------------------------------------------------

    def _zip(self) -> str:
        return "".join(str(self.rng.randint(0, 9)) for _ in range(4)) + "11111"

    def _address(self) -> tuple[str, str, str, str, str]:
        rng = self.rng
        return (random_string(rng, 10, 20), random_string(rng, 10, 20),
                random_string(rng, 10, 20),
                random_string(rng, 2, 2).upper(), self._zip())

    def _data_string(self, min_len: int, max_len: int) -> str:
        """Payload data; 10% contain "ORIGINAL" per spec §4.3.3.1."""
        data = random_string(self.rng, min_len, max_len)
        if self.rng.random() < 0.10:
            pos = self.rng.randint(0, max(0, len(data) - 8))
            data = data[:pos] + "ORIGINAL" + data[pos + 8:]
        return data

    def _customer_last_name(self, c_id: int) -> str:
        if c_id <= 1000:
            return tpcc_last_name(c_id - 1)
        return tpcc_last_name(
            nu_rand(self.rng, self._lastname_a, 0,
                    min(999, self.customers - 1)))

    # -- load phases ---------------------------------------------------------

    def load(self) -> None:
        self._load_items()
        for w_id in range(1, self.warehouses + 1):
            self._load_warehouse(w_id)

    def _load_items(self) -> None:
        rng = self.rng
        batch = []
        for i_id in range(1, self.items + 1):
            batch.append((
                i_id, rng.randint(1, 10_000), random_string(rng, 14, 24),
                rng.uniform(1.0, 100.0), self._data_string(26, 50)))
            if len(batch) >= 2000:
                self.db.bulk_insert("item", batch)
                batch = []
        if batch:
            self.db.bulk_insert("item", batch)

    def _load_warehouse(self, w_id: int) -> None:
        rng = self.rng
        street_1, street_2, city, state, zip_code = self._address()
        self.db.bulk_insert("warehouse", [(
            w_id, random_string(rng, 6, 10), street_1, street_2, city,
            state, zip_code, rng.uniform(0.0, 0.2), 300_000.0)])
        self._load_stock(w_id)
        for d_id in range(1, self.districts + 1):
            self._load_district(w_id, d_id)

    def _load_stock(self, w_id: int) -> None:
        rng = self.rng
        batch = []
        for i_id in range(1, self.items + 1):
            dists = tuple(random_string(rng, 24) for _ in range(10))
            batch.append((
                i_id, w_id, rng.randint(10, 100), *dists,
                0.0, 0, 0, self._data_string(26, 50)))
            if len(batch) >= 2000:
                self.db.bulk_insert("stock", batch)
                batch = []
        if batch:
            self.db.bulk_insert("stock", batch)

    def _load_district(self, w_id: int, d_id: int) -> None:
        rng = self.rng
        street_1, street_2, city, state, zip_code = self._address()
        next_o_id = self.initial_orders + 1
        self.db.bulk_insert("district", [(
            d_id, w_id, random_string(rng, 6, 10), street_1, street_2,
            city, state, zip_code, rng.uniform(0.0, 0.2), 30_000.0,
            next_o_id)])
        self._load_customers(w_id, d_id)
        self._load_orders(w_id, d_id)

    def _load_customers(self, w_id: int, d_id: int) -> None:
        rng = self.rng
        customers, history = [], []
        for c_id in range(1, self.customers + 1):
            street_1, street_2, city, state, zip_code = self._address()
            credit = "BC" if rng.random() < 0.10 else "GC"
            customers.append((
                c_id, d_id, w_id, random_string(rng, 8, 16), "OE",
                self._customer_last_name(c_id), street_1, street_2, city,
                state, zip_code,
                "".join(str(rng.randint(0, 9)) for _ in range(16)),
                0.0, credit, 50_000.0, rng.uniform(0.0, 0.5),
                -10.0, 10.0, 1, 0, random_string(rng, 300, 500)))
            history.append((
                c_id, d_id, w_id, d_id, w_id, 0.0, 10.0,
                random_string(rng, 12, 24), next(self._history_ids)))
            if len(customers) >= 1000:
                self.db.bulk_insert("customer", customers)
                self.db.bulk_insert("history", history)
                customers, history = [], []
        if customers:
            self.db.bulk_insert("customer", customers)
            self.db.bulk_insert("history", history)

    def _load_orders(self, w_id: int, d_id: int) -> None:
        rng = self.rng
        # Every initial order belongs to a distinct customer (random perm).
        c_ids = list(range(1, self.customers + 1))
        rng.shuffle(c_ids)
        new_order_start = int(self.initial_orders * 0.70) + 1
        orders, lines, new_orders = [], [], []
        for o_id in range(1, self.initial_orders + 1):
            is_new = o_id >= new_order_start
            ol_cnt = rng.randint(5, 15)
            carrier = None if is_new else rng.randint(1, 10)
            orders.append((
                o_id, d_id, w_id, c_ids[o_id - 1], 0.0, carrier, ol_cnt, 1))
            if is_new:
                new_orders.append((o_id, d_id, w_id))
            for number in range(1, ol_cnt + 1):
                amount = 0.0 if not is_new else rng.uniform(0.01, 9999.99)
                delivery = None if is_new else 0.0
                lines.append((
                    o_id, d_id, w_id, number, rng.randint(1, self.items),
                    w_id, delivery, 5, amount, random_string(rng, 24)))
            if len(lines) >= 2000:
                self.db.bulk_insert("oorder", orders)
                self.db.bulk_insert("order_line", lines)
                if new_orders:
                    self.db.bulk_insert("new_order", new_orders)
                orders, lines, new_orders = [], [], []
        if orders:
            self.db.bulk_insert("oorder", orders)
            self.db.bulk_insert("order_line", lines)
            if new_orders:
                self.db.bulk_insert("new_order", new_orders)
