"""TPC-C: the industry-standard order-processing benchmark.

Paper Table 1 class: Transactional — "Order Processing".  The scale factor
is the warehouse count.  Population sizes per warehouse default to the
spec's (10 districts, 3,000 customers/district, 100,000 items) and can be
reduced for fast Python-speed runs while preserving the spec's ratios and
skew (NURand constants are rescaled, see ``schema.nurand_a``).
"""

from __future__ import annotations

import itertools
import random

from ...core.benchmark import BenchmarkModule, CLASS_TRANSACTIONAL
from .loader import TpccLoader
from .procedures import (Delivery, NewOrder, OrderStatus, Payment,
                         PROCEDURES, StockLevel)
from .schema import (CUSTOMERS_PER_DISTRICT, DDL, DISTRICTS_PER_WAREHOUSE,
                     INITIAL_ORDERS_PER_DISTRICT, ITEMS)

__all__ = ["TpccBenchmark", "NewOrder", "Payment", "OrderStatus",
           "Delivery", "StockLevel"]


class TpccBenchmark(BenchmarkModule):
    """TPC-C with configurable per-warehouse population."""

    name = "tpcc"
    domain = "Order Processing"
    benchmark_class = CLASS_TRANSACTIONAL
    procedures = PROCEDURES

    def __init__(self, database, scale_factor=1.0, seed=None,
                 districts: int = DISTRICTS_PER_WAREHOUSE,
                 customers_per_district: int = CUSTOMERS_PER_DISTRICT,
                 items: int = ITEMS,
                 initial_orders: int = INITIAL_ORDERS_PER_DISTRICT) -> None:
        super().__init__(database, scale_factor, seed)
        self.warehouses = max(1, int(round(scale_factor)))
        self.districts = districts
        self.customers_per_district = customers_per_district
        self.items = items
        self.initial_orders = min(initial_orders, customers_per_district)

    def ddl(self):
        return DDL

    def load_data(self, rng: random.Random) -> None:
        loader = TpccLoader(
            self.database, self.warehouses, self.districts,
            self.customers_per_district, self.items, self.initial_orders,
            rng)
        loader.load()
        self.params.update({
            "warehouses": self.warehouses,
            "districts": self.districts,
            "customers_per_district": self.customers_per_district,
            "items": self.items,
            # Continue history ids past what the loader consumed.
            "history_id_counter": loader._history_ids,
        })

    # -- consistency checks (spec §3.3.2, subset) -----------------------------

    def check_consistency(self) -> dict[str, bool]:
        """Spec consistency conditions 1-3 over the loaded/modified data."""
        txn = self.database.begin()
        try:
            ok_next_o_id = True
            ok_new_order = True
            for w_id in range(1, self.warehouses + 1):
                for d_id in range(1, self.districts + 1):
                    result = self.database.execute(
                        txn, "SELECT d_next_o_id FROM district "
                        "WHERE d_w_id = ? AND d_id = ?", (w_id, d_id))
                    next_o_id = result.rows[0][0]
                    result = self.database.execute(
                        txn, "SELECT MAX(o_id) FROM oorder "
                        "WHERE o_w_id = ? AND o_d_id = ?", (w_id, d_id))
                    max_o_id = result.rows[0][0] or 0
                    if max_o_id >= next_o_id:
                        ok_next_o_id = False
                    result = self.database.execute(
                        txn, "SELECT COUNT(*), MIN(no_o_id), MAX(no_o_id) "
                        "FROM new_order WHERE no_w_id = ? AND no_d_id = ?",
                        (w_id, d_id))
                    count, lo, hi = result.rows[0]
                    if count and hi - lo + 1 != count:
                        ok_new_order = False
            return {"d_next_o_id": ok_next_o_id,
                    "new_order_contiguous": ok_new_order}
        finally:
            self.database.rollback(txn)

    def _derive_params(self) -> None:
        import itertools
        warehouses = int(
            self.scalar("SELECT COUNT(*) FROM warehouse") or 0) or 1
        districts = int(
            self.scalar("SELECT MAX(d_id) FROM district") or 0) or 1
        customers = int(
            self.scalar("SELECT MAX(c_id) FROM customer") or 0) or 1
        items = int(self.scalar("SELECT COUNT(*) FROM item") or 0) or 1
        self.warehouses = warehouses
        self.districts = districts
        self.customers_per_district = customers
        self.items = items
        self.params.update({
            "warehouses": warehouses,
            "districts": districts,
            "customers_per_district": customers,
            "items": items,
            "history_id_counter": itertools.count(
                int(self.scalar("SELECT MAX(h_id) FROM history") or 0) + 1),
        })
