"""Wikipedia: MediaWiki page-serving workload (Web-Oriented, Table 1)."""

from __future__ import annotations

import itertools
import random

from ...core.benchmark import BenchmarkModule, CLASS_WEB
from ...rand import random_string
from .procedures import PROCEDURES
from .schema import (DDL, NAMESPACES, PAGES_PER_SF, REVISIONS_PER_PAGE,
                     USERS_PER_SF)


class WikipediaBenchmark(BenchmarkModule):
    """Page views (anonymous + authenticated), watchlists, and edits."""

    name = "wikipedia"
    domain = "On-line Encyclopedia"
    benchmark_class = CLASS_WEB
    procedures = PROCEDURES

    def ddl(self):
        return DDL

    def load_data(self, rng: random.Random) -> None:
        users = max(2, int(USERS_PER_SF * self.scale_factor))
        pages = max(2, int(PAGES_PER_SF * self.scale_factor))

        self.database.bulk_insert("useracct", [
            (user_id, f"User_{user_id:08d}", 0.0, rng.randint(0, 100))
            for user_id in range(users)])

        rev_counter = itertools.count(1)
        text_counter = itertools.count(1)
        page_rows, revision_rows, text_rows, watch_rows = [], [], [], []
        for page_id in range(pages):
            namespace = page_id % NAMESPACES
            title = f"Page_{page_id:08d}"
            latest = 0
            for _ in range(rng.randint(1, REVISIONS_PER_PAGE)):
                rev_id = next(rev_counter)
                text_id = next(text_counter)
                text_rows.append(
                    (text_id, random_string(rng, 200, 1000), page_id))
                revision_rows.append(
                    (rev_id, page_id, text_id, rng.randrange(users), 0.0))
                latest = rev_id
            page_rows.append((page_id, namespace, title, latest, 0.0))
            for user_id in rng.sample(range(users), rng.randint(0, 2)):
                watch_rows.append((user_id, namespace, title, None))
            if len(text_rows) >= 1000:
                self._flush(page_rows, revision_rows, text_rows, watch_rows)
                page_rows, revision_rows, text_rows, watch_rows = \
                    [], [], [], []
        self._flush(page_rows, revision_rows, text_rows, watch_rows)

        self.params.update({
            "user_count": users,
            "page_count": pages,
            "namespaces": NAMESPACES,
            "revision_id_counter": rev_counter,
            "text_id_counter": text_counter,
        })

    def _flush(self, pages, revisions, texts, watches) -> None:
        if pages:
            self.database.bulk_insert("page", pages)
        if revisions:
            self.database.bulk_insert("revision", revisions)
        if texts:
            self.database.bulk_insert("text", texts)
        if watches:
            self.database.bulk_insert("watchlist", watches)

    def _derive_params(self) -> None:
        self.params["user_count"] = int(
            self.scalar("SELECT COUNT(*) FROM useracct") or 0) or 2
        self.params["page_count"] = int(
            self.scalar("SELECT COUNT(*) FROM page") or 0) or 2
        self.params["namespaces"] = NAMESPACES
        self.params["revision_id_counter"] = itertools.count(
            int(self.scalar("SELECT MAX(rev_id) FROM revision") or 0) + 1)
        self.params["text_id_counter"] = itertools.count(
            int(self.scalar("SELECT MAX(old_id) FROM text") or 0) + 1)
