"""Wikipedia's five transactions; page reads dominate (trace-derived mix)."""

from __future__ import annotations

import random

from ...core.procedure import Procedure, UserAbort
from ...errors import IntegrityError
from ...rand import ZipfGenerator, random_string


class _WikipediaProcedure(Procedure):

    def _page_zipf(self) -> ZipfGenerator:
        cache = self.params.setdefault("_zipf_cache", {})
        count = int(self.params["page_count"])
        zipf = cache.get(count)
        if zipf is None:
            zipf = ZipfGenerator(count, theta=0.8)
            cache[count] = zipf
        return zipf

    def _pick_page(self, rng: random.Random) -> tuple[int, str]:
        page_id = self._page_zipf().next(rng)
        namespace = page_id % int(self.params["namespaces"])
        return namespace, f"Page_{page_id:08d}"

    def _pick_user(self, rng: random.Random) -> int:
        return rng.randrange(int(self.params["user_count"]))

    def _fetch_page(self, cur, namespace: int, title: str):
        cur.execute(
            "SELECT page_id, page_latest FROM page "
            "WHERE page_namespace = ? AND page_title = ?",
            (namespace, title))
        return self.fetch_one(cur, f"no page {title!r}")


class GetPageAnonymous(_WikipediaProcedure):
    """Anonymous page view: page -> latest revision -> text."""

    name = "GetPageAnonymous"
    read_only = True
    default_weight = 92

    def run(self, conn, rng):
        namespace, title = self._pick_page(rng)
        cur = conn.cursor()
        page_id, latest = self._fetch_page(cur, namespace, title)
        cur.execute(
            "SELECT rev_text_id FROM revision WHERE rev_id = ?", (latest,))
        text_id = self.fetch_one(cur, "missing latest revision")[0]
        cur.execute("SELECT old_text FROM text WHERE old_id = ?", (text_id,))
        text = self.fetch_one(cur, "missing revision text")[0]
        conn.commit()
        return len(text)


class GetPageAuthenticated(_WikipediaProcedure):
    """Logged-in page view: also touches the user row and watchlist."""

    name = "GetPageAuthenticated"
    read_only = True
    default_weight = 5

    def run(self, conn, rng):
        user_id = self._pick_user(rng)
        namespace, title = self._pick_page(rng)
        cur = conn.cursor()
        cur.execute("SELECT user_name FROM useracct WHERE user_id = ?",
                    (user_id,))
        self.fetch_one(cur, "missing user")
        page_id, latest = self._fetch_page(cur, namespace, title)
        cur.execute(
            "SELECT wl_notificationtimestamp FROM watchlist "
            "WHERE wl_user = ? AND wl_namespace = ? AND wl_title = ?",
            (user_id, namespace, title))
        cur.fetchall()
        cur.execute(
            "SELECT rev_text_id FROM revision WHERE rev_id = ?", (latest,))
        text_id = self.fetch_one(cur, "missing latest revision")[0]
        cur.execute("SELECT old_text FROM text WHERE old_id = ?", (text_id,))
        self.fetch_one(cur, "missing revision text")
        conn.commit()


class AddWatchList(_WikipediaProcedure):
    name = "AddWatchList"
    default_weight = 1

    def run(self, conn, rng):
        user_id = self._pick_user(rng)
        namespace, title = self._pick_page(rng)
        cur = conn.cursor()
        try:
            cur.execute(
                "INSERT INTO watchlist (wl_user, wl_namespace, wl_title, "
                "wl_notificationtimestamp) VALUES (?, ?, ?, ?)",
                (user_id, namespace, title, None))
        except IntegrityError as exc:
            raise UserAbort("already watching") from exc
        cur.execute(
            "UPDATE useracct SET user_touched = ? WHERE user_id = ?",
            (0.0, user_id))
        conn.commit()


class RemoveWatchList(_WikipediaProcedure):
    name = "RemoveWatchList"
    default_weight = 1

    def run(self, conn, rng):
        user_id = self._pick_user(rng)
        namespace, title = self._pick_page(rng)
        cur = conn.cursor()
        cur.execute(
            "DELETE FROM watchlist "
            "WHERE wl_user = ? AND wl_namespace = ? AND wl_title = ?",
            (user_id, namespace, title))
        cur.execute(
            "UPDATE useracct SET user_touched = ? WHERE user_id = ?",
            (0.0, user_id))
        conn.commit()


class UpdatePage(_WikipediaProcedure):
    """Edit: insert new text + revision, bump page_latest and editcount."""

    name = "UpdatePage"
    default_weight = 1

    def run(self, conn, rng):
        user_id = self._pick_user(rng)
        namespace, title = self._pick_page(rng)
        cur = conn.cursor()
        page_id, _latest = self._fetch_page(cur, namespace, title)
        rev_id = next(self.params["revision_id_counter"])
        text_id = next(self.params["text_id_counter"])
        cur.execute(
            "INSERT INTO text (old_id, old_text, old_page) VALUES (?, ?, ?)",
            (text_id, random_string(rng, 200, 1000), page_id))
        cur.execute(
            "INSERT INTO revision (rev_id, rev_page, rev_text_id, rev_user, "
            "rev_timestamp) VALUES (?, ?, ?, ?, ?)",
            (rev_id, page_id, text_id, user_id, 0.0))
        cur.execute(
            "UPDATE page SET page_latest = ?, page_touched = ? "
            "WHERE page_id = ?", (rev_id, 0.0, page_id))
        cur.execute(
            "UPDATE useracct SET user_editcount = user_editcount + 1, "
            "user_touched = ? WHERE user_id = ?", (0.0, user_id))
        conn.commit()
        return rev_id


PROCEDURES = (AddWatchList, GetPageAnonymous, GetPageAuthenticated,
              RemoveWatchList, UpdatePage)
