"""Wikipedia schema: the MediaWiki core tables OLTP-Bench exercises."""

USERS_PER_SF = 100
PAGES_PER_SF = 200
REVISIONS_PER_PAGE = 3
NAMESPACES = 4

DDL = [
    """
    CREATE TABLE useracct (
        user_id      INT PRIMARY KEY,
        user_name    VARCHAR(255) NOT NULL,
        user_touched TIMESTAMP NOT NULL,
        user_editcount INT NOT NULL
    )
    """,
    "CREATE UNIQUE INDEX idx_useracct_name ON useracct (user_name)",
    """
    CREATE TABLE page (
        page_id        INT PRIMARY KEY,
        page_namespace INT NOT NULL,
        page_title     VARCHAR(255) NOT NULL,
        page_latest    INT NOT NULL,
        page_touched   TIMESTAMP NOT NULL
    )
    """,
    "CREATE UNIQUE INDEX idx_page_title ON page (page_namespace, page_title)",
    """
    CREATE TABLE watchlist (
        wl_user      INT NOT NULL,
        wl_namespace INT NOT NULL,
        wl_title     VARCHAR(255) NOT NULL,
        wl_notificationtimestamp TIMESTAMP,
        PRIMARY KEY (wl_user, wl_namespace, wl_title)
    )
    """,
    "CREATE INDEX idx_watchlist_user ON watchlist (wl_user)",
    """
    CREATE TABLE revision (
        rev_id        INT PRIMARY KEY,
        rev_page      INT NOT NULL,
        rev_text_id   INT NOT NULL,
        rev_user      INT NOT NULL,
        rev_timestamp TIMESTAMP NOT NULL
    )
    """,
    "CREATE INDEX idx_revision_page ON revision (rev_page)",
    """
    CREATE TABLE text (
        old_id   INT PRIMARY KEY,
        old_text VARCHAR(4096) NOT NULL,
        old_page INT NOT NULL
    )
    """,
]
