"""ResourceStresser: isolated resource micro-stressers (Feature Testing).

Each transaction targets exactly one server resource so an administrator
can tell which resource saturates first (paper Table 1: "Isolated Resource
Stresser"):

* ``CPU1``/``CPU2`` — expression-heavy scans that burn engine CPU;
* ``IO1``/``IO2`` — wide-row and many-row update traffic (buffer/IO);
* ``Contention1``/``Contention2`` — exclusive locks on a single hot row,
  respectively a pair of rows taken in *random* order (deadlock bait).
"""

from __future__ import annotations

import random

from ...core.benchmark import BenchmarkModule, CLASS_FEATURE
from ...core.procedure import Procedure, UserAbort
from ...rand import random_string

ROWS_PER_SF = 200
HOT_ROWS = 4

DDL = [
    """
    CREATE TABLE iotable (
        empid BIGINT PRIMARY KEY,
        data1 VARCHAR(255) NOT NULL,
        data2 VARCHAR(255) NOT NULL,
        data3 VARCHAR(255) NOT NULL,
        data4 VARCHAR(255) NOT NULL
    )
    """,
    """
    CREATE TABLE iotablesmallrow (
        empid BIGINT PRIMARY KEY,
        flag1 INT NOT NULL
    )
    """,
    """
    CREATE TABLE cputable (
        empid  BIGINT PRIMARY KEY,
        passwd VARCHAR(255) NOT NULL
    )
    """,
    """
    CREATE TABLE locktable (
        empid  BIGINT PRIMARY KEY,
        salary INT NOT NULL
    )
    """,
]


class _StressProcedure(Procedure):

    def _row(self, rng: random.Random) -> int:
        return rng.randrange(int(self.params["row_count"]))


class CPU1(_StressProcedure):
    """String-function-heavy scan over the whole cputable."""

    name = "CPU1"
    read_only = True
    default_weight = 17

    def run(self, conn, rng):
        cur = conn.cursor()
        for _ in range(2):
            cur.execute(
                "SELECT COUNT(*) FROM cputable "
                "WHERE LENGTH(UPPER(passwd || passwd)) > 0")
            cur.fetchall()
        conn.commit()


class CPU2(_StressProcedure):
    """Arithmetic-heavy aggregate (lighter than CPU1)."""

    name = "CPU2"
    read_only = True
    default_weight = 17

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute(
            "SELECT SUM(empid * 3 + empid % 7), AVG(empid * empid) "
            "FROM cputable")
        cur.fetchall()
        conn.commit()


class IO1(_StressProcedure):
    """Rewrite all four wide columns of 10 random rows."""

    name = "IO1"
    default_weight = 17

    def run(self, conn, rng):
        cur = conn.cursor()
        for _ in range(10):
            cur.execute(
                "UPDATE iotable SET data1 = ?, data2 = ?, data3 = ?, "
                "data4 = ? WHERE empid = ?",
                (random_string(rng, 255), random_string(rng, 255),
                 random_string(rng, 255), random_string(rng, 255),
                 self._row(rng)))
        conn.commit()


class IO2(_StressProcedure):
    """Flip the flag of a contiguous batch of 20 small rows."""

    name = "IO2"
    default_weight = 17

    def run(self, conn, rng):
        start = self._row(rng)
        cur = conn.cursor()
        cur.execute(
            "UPDATE iotablesmallrow SET flag1 = 1 - flag1 "
            "WHERE empid >= ? AND empid < ?", (start, start + 20))
        conn.commit()


class Contention1(_StressProcedure):
    """Update a single globally hot row: pure lock queueing."""

    name = "Contention1"
    default_weight = 16

    def run(self, conn, rng):
        hot = rng.randrange(min(HOT_ROWS, int(self.params["row_count"])))
        cur = conn.cursor()
        cur.execute("UPDATE locktable SET salary = salary + 1 "
                    "WHERE empid = ?", (hot,))
        if cur.rowcount == 0:
            raise UserAbort("hot row missing")
        conn.commit()


class Contention2(_StressProcedure):
    """Update two hot rows in random order: classic deadlock generator."""

    name = "Contention2"
    default_weight = 16

    def run(self, conn, rng):
        rows = rng.sample(
            range(min(HOT_ROWS, int(self.params["row_count"]))), 2)
        cur = conn.cursor()
        for empid in rows:
            cur.execute("UPDATE locktable SET salary = salary + 1 "
                        "WHERE empid = ?", (empid,))
        conn.commit()


class ResourceStresserBenchmark(BenchmarkModule):
    """Per-resource stress transactions."""

    name = "resourcestresser"
    domain = "Isolated Resource Stresser"
    benchmark_class = CLASS_FEATURE
    procedures = (CPU1, CPU2, IO1, IO2, Contention1, Contention2)

    def ddl(self):
        return DDL

    def load_data(self, rng: random.Random) -> None:
        count = max(HOT_ROWS + 1, int(ROWS_PER_SF * self.scale_factor))
        self.database.bulk_insert("iotable", [
            (i, random_string(rng, 255), random_string(rng, 255),
             random_string(rng, 255), random_string(rng, 255))
            for i in range(count)])
        self.database.bulk_insert("iotablesmallrow", [
            (i, 0) for i in range(count)])
        self.database.bulk_insert("cputable", [
            (i, random_string(rng, 32, 255)) for i in range(count)])
        self.database.bulk_insert("locktable", [
            (i, 10_000) for i in range(count)])
        self.params["row_count"] = count

    def _derive_params(self) -> None:
        self.params["row_count"] = int(
            self.scalar("SELECT COUNT(*) FROM cputable") or 0) or 5
