"""SmallBank: a contention-heavy banking workload.

Paper Table 1 class: Transactional — "Banking System".
"""

from __future__ import annotations

import random

from ...core.benchmark import BenchmarkModule, CLASS_TRANSACTIONAL
from .procedures import PROCEDURES
from .schema import (ACCOUNTS_PER_SF, DDL, HOTSPOT_PROBABILITY,
                     INITIAL_BALANCE_MAX, INITIAL_BALANCE_MIN)


class SmallBankBenchmark(BenchmarkModule):
    """Six short banking transactions over a hotspot-skewed account set."""

    name = "smallbank"
    domain = "Banking System"
    benchmark_class = CLASS_TRANSACTIONAL
    procedures = PROCEDURES

    def __init__(self, database, scale_factor=1.0, seed=None,
                 hotspot_probability: float = HOTSPOT_PROBABILITY) -> None:
        super().__init__(database, scale_factor, seed)
        self.params["hotspot_probability"] = hotspot_probability

    def ddl(self):
        return DDL

    def load_data(self, rng: random.Random) -> None:
        count = max(2, int(ACCOUNTS_PER_SF * self.scale_factor))
        accounts, savings, checking = [], [], []
        for custid in range(count):
            accounts.append((custid, f"customer{custid:09d}"))
            savings.append(
                (custid, rng.uniform(INITIAL_BALANCE_MIN,
                                     INITIAL_BALANCE_MAX)))
            checking.append(
                (custid, rng.uniform(INITIAL_BALANCE_MIN,
                                     INITIAL_BALANCE_MAX)))
            if len(accounts) >= 1000:
                self.database.bulk_insert("accounts", accounts)
                self.database.bulk_insert("savings", savings)
                self.database.bulk_insert("checking", checking)
                accounts, savings, checking = [], [], []
        if accounts:
            self.database.bulk_insert("accounts", accounts)
            self.database.bulk_insert("savings", savings)
            self.database.bulk_insert("checking", checking)
        self.params["account_count"] = count

    def total_money(self) -> float:
        """Invariant check: SendPayment/Amalgamate conserve total money."""
        conn_txn = self.database.begin()
        try:
            result = self.database.execute(
                conn_txn, "SELECT SUM(bal) FROM savings")
            savings = result.rows[0][0] or 0.0
            result = self.database.execute(
                conn_txn, "SELECT SUM(bal) FROM checking")
            checking = result.rows[0][0] or 0.0
        finally:
            self.database.rollback(conn_txn)
        return savings + checking

    def _derive_params(self) -> None:
        self.params["account_count"] = int(
            self.scalar("SELECT COUNT(*) FROM accounts") or 0) or 2
        self.params.setdefault("hotspot_probability", 0.9)
