"""SmallBank schema: accounts plus savings/checking balance tables."""

#: Accounts per unit of scale factor.
ACCOUNTS_PER_SF = 1_000

#: The hot set: a small range of accounts taking a large share of traffic,
#: which is what makes SmallBank a lock-contention workload.
HOTSPOT_SIZE = 100
HOTSPOT_PROBABILITY = 0.9

INITIAL_BALANCE_MIN = 10_000
INITIAL_BALANCE_MAX = 50_000

DDL = [
    """
    CREATE TABLE accounts (
        custid BIGINT PRIMARY KEY,
        name   VARCHAR(64) NOT NULL
    )
    """,
    "CREATE UNIQUE INDEX idx_accounts_name ON accounts (name)",
    """
    CREATE TABLE savings (
        custid BIGINT PRIMARY KEY,
        bal    FLOAT NOT NULL
    )
    """,
    """
    CREATE TABLE checking (
        custid BIGINT PRIMARY KEY,
        bal    FLOAT NOT NULL
    )
    """,
]
