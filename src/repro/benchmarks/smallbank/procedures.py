"""SmallBank transaction procedures (Cahill et al. / H-Store variant).

All six transactions touch one or two customers; customer selection is
hotspot-skewed, concentrating writes on a small account range — the
workload the paper's §4.1.1 claim ("read-heavy boosts throughput due to
reduced lock contention") is easiest to observe on.
"""

from __future__ import annotations

import random

from ...core.procedure import Procedure, UserAbort
from .schema import HOTSPOT_PROBABILITY, HOTSPOT_SIZE


class _SmallBankProcedure(Procedure):

    def _pick_customer(self, rng: random.Random) -> int:
        count = int(self.params["account_count"])
        hot = min(HOTSPOT_SIZE, count)
        if rng.random() < float(self.params.get(
                "hotspot_probability", HOTSPOT_PROBABILITY)):
            return rng.randrange(hot)
        if count <= hot:
            return rng.randrange(count)
        return rng.randrange(hot, count)

    def _pick_two_customers(self, rng: random.Random) -> tuple[int, int]:
        first = self._pick_customer(rng)
        second = self._pick_customer(rng)
        while second == first:
            second = self._pick_customer(rng)
        return first, second


class Balance(_SmallBankProcedure):
    """Read a customer's total balance (savings + checking)."""

    name = "Balance"
    read_only = True
    default_weight = 15

    def run(self, conn, rng):
        custid = self._pick_customer(rng)
        cur = conn.cursor()
        cur.execute("SELECT bal FROM savings WHERE custid = ?", (custid,))
        savings = self.fetch_one(cur, f"no savings row for {custid}")[0]
        cur.execute("SELECT bal FROM checking WHERE custid = ?", (custid,))
        checking = self.fetch_one(cur, f"no checking row for {custid}")[0]
        conn.commit()
        return savings + checking


class DepositChecking(_SmallBankProcedure):
    """Add money to a checking account."""

    name = "DepositChecking"
    default_weight = 15

    def run(self, conn, rng):
        custid = self._pick_customer(rng)
        amount = rng.uniform(1.0, 100.0)
        cur = conn.cursor()
        cur.execute("UPDATE checking SET bal = bal + ? WHERE custid = ?",
                    (amount, custid))
        if cur.rowcount == 0:
            raise UserAbort(f"no checking account for customer {custid}")
        conn.commit()


class TransactSavings(_SmallBankProcedure):
    """Apply a deposit/withdrawal to savings; aborts on overdraft."""

    name = "TransactSavings"
    default_weight = 15

    def run(self, conn, rng):
        custid = self._pick_customer(rng)
        amount = rng.uniform(-200.0, 200.0)
        cur = conn.cursor()
        cur.execute("SELECT bal FROM savings WHERE custid = ? FOR UPDATE",
                    (custid,))
        balance = self.fetch_one(cur, f"no savings row for {custid}")[0]
        if balance + amount < 0:
            raise UserAbort("savings overdraft")
        cur.execute("UPDATE savings SET bal = bal + ? WHERE custid = ?",
                    (amount, custid))
        conn.commit()


class Amalgamate(_SmallBankProcedure):
    """Move all funds of customer A into customer B's checking account."""

    name = "Amalgamate"
    default_weight = 15

    def run(self, conn, rng):
        source, target = self._pick_two_customers(rng)
        cur = conn.cursor()
        cur.execute("SELECT bal FROM savings WHERE custid = ? FOR UPDATE",
                    (source,))
        savings = self.fetch_one(cur, f"no savings row for {source}")[0]
        cur.execute("SELECT bal FROM checking WHERE custid = ? FOR UPDATE",
                    (source,))
        checking = self.fetch_one(cur, f"no checking row for {source}")[0]
        total = savings + checking
        cur.execute("UPDATE savings SET bal = 0 WHERE custid = ?", (source,))
        cur.execute("UPDATE checking SET bal = 0 WHERE custid = ?", (source,))
        cur.execute("UPDATE checking SET bal = bal + ? WHERE custid = ?",
                    (total, target))
        if cur.rowcount == 0:
            raise UserAbort(f"no checking account for customer {target}")
        conn.commit()


class SendPayment(_SmallBankProcedure):
    """Transfer between two checking accounts; aborts on insufficiency."""

    name = "SendPayment"
    default_weight = 25

    def run(self, conn, rng):
        sender, receiver = self._pick_two_customers(rng)
        amount = rng.uniform(1.0, 100.0)
        cur = conn.cursor()
        cur.execute("SELECT bal FROM checking WHERE custid = ? FOR UPDATE",
                    (sender,))
        balance = self.fetch_one(cur, f"no checking row for {sender}")[0]
        if balance < amount:
            raise UserAbort("insufficient funds for payment")
        cur.execute("UPDATE checking SET bal = bal - ? WHERE custid = ?",
                    (amount, sender))
        cur.execute("UPDATE checking SET bal = bal + ? WHERE custid = ?",
                    (amount, receiver))
        if cur.rowcount == 0:
            raise UserAbort(f"no checking account for customer {receiver}")
        conn.commit()


class WriteCheck(_SmallBankProcedure):
    """Cash a check; overdrafts incur a $1 penalty (classic write skew)."""

    name = "WriteCheck"
    default_weight = 15

    def run(self, conn, rng):
        custid = self._pick_customer(rng)
        amount = rng.uniform(1.0, 200.0)
        cur = conn.cursor()
        cur.execute("SELECT bal FROM savings WHERE custid = ?", (custid,))
        savings = self.fetch_one(cur, f"no savings row for {custid}")[0]
        cur.execute("SELECT bal FROM checking WHERE custid = ?", (custid,))
        checking = self.fetch_one(cur, f"no checking row for {custid}")[0]
        if savings + checking < amount:
            amount += 1.0  # overdraft penalty
        cur.execute("UPDATE checking SET bal = bal - ? WHERE custid = ?",
                    (amount, custid))
        conn.commit()


PROCEDURES = (Amalgamate, Balance, DepositChecking, SendPayment,
              TransactSavings, WriteCheck)
