"""Twitter schema: profiles, the follow graph, and tweets."""

USERS_PER_SF = 500
TWEETS_PER_SF = 2_000
MAX_FOLLOWERS_PER_USER = 20

TWEET_LENGTH = 140

DDL = [
    """
    CREATE TABLE user_profiles (
        uid            INT PRIMARY KEY,
        name           VARCHAR(32) NOT NULL,
        email          VARCHAR(64) NOT NULL,
        partitionid    INT,
        partitionid2   INT,
        followers      INT NOT NULL
    )
    """,
    """
    CREATE TABLE followers (
        f1 INT NOT NULL,
        f2 INT NOT NULL,
        PRIMARY KEY (f1, f2)
    )
    """,
    "CREATE INDEX idx_followers_f1 ON followers (f1)",
    """
    CREATE TABLE follows (
        f1 INT NOT NULL,
        f2 INT NOT NULL,
        PRIMARY KEY (f1, f2)
    )
    """,
    "CREATE INDEX idx_follows_f1 ON follows (f1)",
    """
    CREATE TABLE tweets (
        id         BIGINT PRIMARY KEY,
        uid        INT NOT NULL,
        text       VARCHAR(140) NOT NULL,
        createdate TIMESTAMP
    )
    """,
    "CREATE INDEX idx_tweets_uid ON tweets (uid)",
    """
    CREATE TABLE added_tweets (
        id         BIGINT PRIMARY KEY,
        uid        INT NOT NULL,
        text       VARCHAR(140) NOT NULL,
        createdate TIMESTAMP
    )
    """,
    "CREATE INDEX idx_added_tweets_uid ON added_tweets (uid)",
]
