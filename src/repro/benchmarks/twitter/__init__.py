"""Twitter: micro-blogging workload from an anonymised trace (Web-Oriented).

The follow graph is preferential-attachment-ish: follower counts are
Zipf-distributed so a few celebrity users dominate both storage and reads.
"""

from __future__ import annotations

import itertools
import random

from ...core.benchmark import BenchmarkModule, CLASS_WEB
from ...rand import ZipfGenerator, random_string
from .procedures import PROCEDURES
from .schema import (DDL, MAX_FOLLOWERS_PER_USER, TWEETS_PER_SF,
                     TWEET_LENGTH, USERS_PER_SF)


class TwitterBenchmark(BenchmarkModule):
    """Tweet/timeline workload over a skewed follow graph."""

    name = "twitter"
    domain = "Social Networking"
    benchmark_class = CLASS_WEB
    procedures = PROCEDURES

    def ddl(self):
        return DDL

    def load_data(self, rng: random.Random) -> None:
        users = max(2, int(USERS_PER_SF * self.scale_factor))
        tweets = max(1, int(TWEETS_PER_SF * self.scale_factor))

        follow_rows: set[tuple[int, int]] = set()
        celebrity = ZipfGenerator(users, theta=0.8)
        for follower in range(users):
            for _ in range(rng.randint(0, MAX_FOLLOWERS_PER_USER)):
                followee = celebrity.next(rng)
                if followee != follower:
                    follow_rows.add((follower, followee))

        followers_of: dict[int, int] = {}
        for _f1, f2 in follow_rows:
            followers_of[f2] = followers_of.get(f2, 0) + 1

        self.database.bulk_insert("user_profiles", [
            (uid, random_string(rng, 4, 16),
             random_string(rng, 8, 24) + "@example.com",
             None, None, followers_of.get(uid, 0))
            for uid in range(users)])
        # ``follows``: who I follow; ``followers``: who follows me.
        self.database.bulk_insert(
            "follows", sorted(follow_rows))
        self.database.bulk_insert(
            "followers", sorted((f2, f1) for f1, f2 in follow_rows))

        author = ZipfGenerator(users, theta=0.8)
        batch = []
        for tweet_id in range(tweets):
            batch.append((tweet_id, author.next(rng),
                          random_string(rng, 20, TWEET_LENGTH), 0.0))
            if len(batch) >= 2000:
                self.database.bulk_insert("tweets", batch)
                batch = []
        if batch:
            self.database.bulk_insert("tweets", batch)

        self.params["user_count"] = users
        self.params["tweet_count"] = tweets
        self.params["tweet_id_counter"] = itertools.count(tweets)

    def _derive_params(self) -> None:
        self.params["user_count"] = int(
            self.scalar("SELECT COUNT(*) FROM user_profiles") or 0) or 2
        self.params["tweet_count"] = int(
            self.scalar("SELECT COUNT(*) FROM tweets") or 0) or 1
        next_id = max(
            int(self.scalar("SELECT MAX(id) FROM tweets") or -1),
            int(self.scalar("SELECT MAX(id) FROM added_tweets") or -1)) + 1
        self.params["tweet_id_counter"] = itertools.count(next_id)
