"""Twitter's five transactions with the trace-derived default mixture.

The OLTP-Bench Twitter workload was derived from a real Twitter trace:
timeline reads dominate (GetUserTweets ~90%), tweet insertion is ~1%.
User selection is Zipf-skewed — celebrity accounts absorb most traffic.
"""

from __future__ import annotations

import itertools
import random

from ...core.procedure import Procedure, UserAbort
from ...rand import ZipfGenerator, random_string
from .schema import TWEET_LENGTH


class _TwitterProcedure(Procedure):

    def _user_zipf(self) -> ZipfGenerator:
        cache = self.params.setdefault("_zipf_cache", {})
        count = int(self.params["user_count"])
        zipf = cache.get(count)
        if zipf is None:
            zipf = ZipfGenerator(count, theta=0.8)
            cache[count] = zipf
        return zipf

    def _pick_user(self, rng: random.Random) -> int:
        return self._user_zipf().next(rng)

    def _pick_tweet(self, rng: random.Random) -> int:
        return rng.randrange(int(self.params["tweet_count"]))


class GetTweet(_TwitterProcedure):
    name = "GetTweet"
    read_only = True
    default_weight = 1

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute("SELECT id, uid, text FROM tweets WHERE id = ?",
                    (self._pick_tweet(rng),))
        row = cur.fetchone()
        conn.commit()
        return row


class GetTweetsFromFollowing(_TwitterProcedure):
    """Home timeline: tweets from everyone the user follows."""

    name = "GetTweetsFromFollowing"
    read_only = True
    default_weight = 1

    def run(self, conn, rng):
        uid = self._pick_user(rng)
        cur = conn.cursor()
        cur.execute(
            "SELECT t.id, t.uid, t.text "
            "FROM follows f JOIN tweets t ON t.uid = f.f2 "
            "WHERE f.f1 = ? LIMIT 100", (uid,))
        rows = cur.fetchall()
        conn.commit()
        return rows


class GetFollowers(_TwitterProcedure):
    name = "GetFollowers"
    read_only = True
    default_weight = 7

    def run(self, conn, rng):
        uid = self._pick_user(rng)
        cur = conn.cursor()
        cur.execute(
            "SELECT u.uid, u.name FROM followers f "
            "JOIN user_profiles u ON u.uid = f.f2 "
            "WHERE f.f1 = ? LIMIT 100", (uid,))
        rows = cur.fetchall()
        conn.commit()
        return rows


class GetUserTweets(_TwitterProcedure):
    """Profile timeline: a user's own recent tweets (~90% of traffic)."""

    name = "GetUserTweets"
    read_only = True
    default_weight = 90

    def run(self, conn, rng):
        uid = self._pick_user(rng)
        cur = conn.cursor()
        cur.execute(
            "SELECT id, text, createdate FROM tweets WHERE uid = ? "
            "ORDER BY id DESC LIMIT 10", (uid,))
        rows = cur.fetchall()
        conn.commit()
        return rows


class InsertTweet(_TwitterProcedure):
    name = "InsertTweet"
    default_weight = 1

    def run(self, conn, rng):
        uid = self._pick_user(rng)
        tweet_id = next(self.params["tweet_id_counter"])
        cur = conn.cursor()
        cur.execute(
            "INSERT INTO added_tweets (id, uid, text, createdate) "
            "VALUES (?, ?, ?, ?)",
            (tweet_id, uid, random_string(rng, 20, TWEET_LENGTH), 0.0))
        conn.commit()
        return tweet_id


PROCEDURES = (GetTweet, GetTweetsFromFollowing, GetFollowers,
              GetUserTweets, InsertTweet)
