"""LinkBench schema: Facebook's social-graph storage benchmark."""

NODES_PER_SF = 500
LINKS_PER_NODE = 5

VISIBILITY_DEFAULT = 1
VISIBILITY_HIDDEN = 0

LINK_TYPE_COUNT = 3

DDL = [
    """
    CREATE TABLE nodetable (
        id      BIGINT PRIMARY KEY,
        type    INT NOT NULL,
        version BIGINT NOT NULL,
        time    INT NOT NULL,
        data    VARCHAR(255) NOT NULL
    )
    """,
    """
    CREATE TABLE linktable (
        id1        BIGINT NOT NULL,
        id2        BIGINT NOT NULL,
        link_type  BIGINT NOT NULL,
        visibility TINYINT NOT NULL,
        data       VARCHAR(255) NOT NULL,
        time       BIGINT NOT NULL,
        version    INT NOT NULL,
        PRIMARY KEY (id1, id2, link_type)
    )
    """,
    "CREATE INDEX idx_linktable_id1_type ON linktable (id1, link_type)",
    """
    CREATE TABLE counttable (
        id        BIGINT NOT NULL,
        link_type BIGINT NOT NULL,
        count     BIGINT NOT NULL,
        time      BIGINT NOT NULL,
        version   BIGINT NOT NULL,
        PRIMARY KEY (id, link_type)
    )
    """,
]
