"""LinkBench's node and link operations with the published default mix."""

from __future__ import annotations

import random

from ...core.procedure import Procedure, UserAbort
from ...rand import ZipfGenerator, random_string
from .schema import LINK_TYPE_COUNT, VISIBILITY_DEFAULT, VISIBILITY_HIDDEN


class _LinkBenchProcedure(Procedure):

    def _node_zipf(self) -> ZipfGenerator:
        cache = self.params.setdefault("_zipf_cache", {})
        count = int(self.params["node_count"])
        zipf = cache.get(count)
        if zipf is None:
            zipf = ZipfGenerator(count, theta=0.85)
            cache[count] = zipf
        return zipf

    def _pick_node(self, rng: random.Random) -> int:
        return self._node_zipf().next(rng)

    def _link_type(self, rng: random.Random) -> int:
        return rng.randrange(LINK_TYPE_COUNT)

    @staticmethod
    def _bump_count(cur, id1: int, link_type: int, delta: int) -> None:
        cur.execute(
            "UPDATE counttable SET count = count + ?, version = version + 1 "
            "WHERE id = ? AND link_type = ?", (delta, id1, link_type))
        if cur.rowcount == 0:
            cur.execute(
                "INSERT INTO counttable (id, link_type, count, time, "
                "version) VALUES (?, ?, ?, ?, ?)",
                (id1, link_type, max(0, delta), 0, 0))


class GetNode(_LinkBenchProcedure):
    name = "GetNode"
    read_only = True
    default_weight = 13

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute("SELECT id, type, version, data FROM nodetable "
                    "WHERE id = ?", (self._pick_node(rng),))
        row = cur.fetchone()
        conn.commit()
        return row


class AddNode(_LinkBenchProcedure):
    name = "AddNode"
    default_weight = 3

    def run(self, conn, rng):
        node_id = next(self.params["node_id_counter"])
        cur = conn.cursor()
        cur.execute(
            "INSERT INTO nodetable (id, type, version, time, data) "
            "VALUES (?, ?, ?, ?, ?)",
            (node_id, rng.randint(0, 4), 0, 0,
             random_string(rng, 32, 255)))
        conn.commit()
        return node_id


class UpdateNode(_LinkBenchProcedure):
    name = "UpdateNode"
    default_weight = 7

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute(
            "UPDATE nodetable SET version = version + 1, data = ? "
            "WHERE id = ?",
            (random_string(rng, 32, 255), self._pick_node(rng)))
        if cur.rowcount == 0:
            raise UserAbort("node missing")
        conn.commit()


class DeleteNode(_LinkBenchProcedure):
    """Insert a throwaway node and delete it: exercises the delete path
    without shrinking the base graph other workers depend on."""

    name = "DeleteNode"
    default_weight = 1

    def run(self, conn, rng):
        node_id = next(self.params["node_id_counter"])
        cur = conn.cursor()
        cur.execute(
            "INSERT INTO nodetable (id, type, version, time, data) "
            "VALUES (?, ?, ?, ?, ?)",
            (node_id, 0, 0, 0, random_string(rng, 16, 64)))
        cur.execute("DELETE FROM nodetable WHERE id = ?", (node_id,))
        if cur.rowcount != 1:
            raise UserAbort("tail node vanished")
        conn.commit()


class GetLink(_LinkBenchProcedure):
    name = "GetLink"
    read_only = True
    default_weight = 2

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute(
            "SELECT id1, id2, link_type, visibility FROM linktable "
            "WHERE id1 = ? AND id2 = ? AND link_type = ?",
            (self._pick_node(rng), self._pick_node(rng),
             self._link_type(rng)))
        row = cur.fetchone()
        conn.commit()
        return row


class GetLinkList(_LinkBenchProcedure):
    """The dominant operation: a node's outgoing links of one type."""

    name = "GetLinkList"
    read_only = True
    default_weight = 50

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute(
            "SELECT id2, time, data FROM linktable "
            "WHERE id1 = ? AND link_type = ? AND visibility = ? "
            "ORDER BY time DESC LIMIT 50",
            (self._pick_node(rng), self._link_type(rng),
             VISIBILITY_DEFAULT))
        rows = cur.fetchall()
        conn.commit()
        return rows


class CountLink(_LinkBenchProcedure):
    name = "CountLink"
    read_only = True
    default_weight = 5

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute(
            "SELECT count FROM counttable WHERE id = ? AND link_type = ?",
            (self._pick_node(rng), self._link_type(rng)))
        row = cur.fetchone()
        conn.commit()
        return row[0] if row else 0


class AddLink(_LinkBenchProcedure):
    name = "AddLink"
    default_weight = 9

    def run(self, conn, rng):
        id1 = self._pick_node(rng)
        id2 = self._pick_node(rng)
        link_type = self._link_type(rng)
        cur = conn.cursor()
        cur.execute(
            "SELECT visibility FROM linktable "
            "WHERE id1 = ? AND id2 = ? AND link_type = ? FOR UPDATE",
            (id1, id2, link_type))
        existing = cur.fetchone()
        if existing is None:
            cur.execute(
                "INSERT INTO linktable (id1, id2, link_type, visibility, "
                "data, time, version) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (id1, id2, link_type, VISIBILITY_DEFAULT,
                 random_string(rng, 16, 255), 0, 0))
            self._bump_count(cur, id1, link_type, 1)
        elif existing[0] == VISIBILITY_HIDDEN:
            cur.execute(
                "UPDATE linktable SET visibility = ?, version = version + 1 "
                "WHERE id1 = ? AND id2 = ? AND link_type = ?",
                (VISIBILITY_DEFAULT, id1, id2, link_type))
            self._bump_count(cur, id1, link_type, 1)
        conn.commit()


class DeleteLink(_LinkBenchProcedure):
    """LinkBench deletes hide the link rather than removing the row."""

    name = "DeleteLink"
    default_weight = 3

    def run(self, conn, rng):
        id1 = self._pick_node(rng)
        id2 = self._pick_node(rng)
        link_type = self._link_type(rng)
        cur = conn.cursor()
        cur.execute(
            "UPDATE linktable SET visibility = ?, version = version + 1 "
            "WHERE id1 = ? AND id2 = ? AND link_type = ? "
            "AND visibility = ?",
            (VISIBILITY_HIDDEN, id1, id2, link_type, VISIBILITY_DEFAULT))
        if cur.rowcount:
            self._bump_count(cur, id1, link_type, -1)
        conn.commit()


class UpdateLink(_LinkBenchProcedure):
    name = "UpdateLink"
    default_weight = 7

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute(
            "UPDATE linktable SET data = ?, version = version + 1, "
            "time = time + 1 WHERE id1 = ? AND id2 = ? AND link_type = ?",
            (random_string(rng, 16, 255), self._pick_node(rng),
             self._pick_node(rng), self._link_type(rng)))
        conn.commit()


PROCEDURES = (AddLink, AddNode, CountLink, DeleteLink, DeleteNode, GetLink,
              GetLinkList, GetNode, UpdateLink, UpdateNode)
