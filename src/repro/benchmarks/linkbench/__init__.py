"""LinkBench: Facebook's social-graph workload (Web-Oriented, Table 1).

The count table is denormalised: ``counttable.count`` must always equal the
number of *visible* links with that (id1, link_type) — the invariant the
test suite verifies after concurrent runs.
"""

from __future__ import annotations

import itertools
import random

from ...core.benchmark import BenchmarkModule, CLASS_WEB
from ...rand import ZipfGenerator, random_string
from .procedures import PROCEDURES
from .schema import (DDL, LINKS_PER_NODE, LINK_TYPE_COUNT, NODES_PER_SF,
                     VISIBILITY_DEFAULT)


class LinkBenchBenchmark(BenchmarkModule):
    """Graph store workload: nodes, typed links, and link counts."""

    name = "linkbench"
    domain = "Social Networking"
    benchmark_class = CLASS_WEB
    procedures = PROCEDURES

    def ddl(self):
        return DDL

    def load_data(self, rng: random.Random) -> None:
        nodes = max(2, int(NODES_PER_SF * self.scale_factor))
        self.database.bulk_insert("nodetable", [
            (node_id, rng.randint(0, 4), 0, 0, random_string(rng, 32, 255))
            for node_id in range(nodes)])

        target = ZipfGenerator(nodes, theta=0.85)
        links: set[tuple[int, int, int]] = set()
        for id1 in range(nodes):
            for _ in range(rng.randint(0, LINKS_PER_NODE)):
                id2 = target.next(rng)
                if id2 != id1:
                    links.add((id1, id2, rng.randrange(LINK_TYPE_COUNT)))

        counts: dict[tuple[int, int], int] = {}
        link_rows = []
        for id1, id2, link_type in sorted(links):
            link_rows.append((id1, id2, link_type, VISIBILITY_DEFAULT,
                              random_string(rng, 16, 255), 0, 0))
            counts[(id1, link_type)] = counts.get((id1, link_type), 0) + 1
            if len(link_rows) >= 2000:
                self.database.bulk_insert("linktable", link_rows)
                link_rows = []
        if link_rows:
            self.database.bulk_insert("linktable", link_rows)
        self.database.bulk_insert("counttable", [
            (id1, link_type, count, 0, 0)
            for (id1, link_type), count in sorted(counts.items())])

        self.params["node_count"] = nodes
        self.params["node_id_counter"] = itertools.count(nodes)

    def check_count_invariant(self) -> bool:
        """counttable.count equals the number of visible links per key."""
        txn = self.database.begin()
        try:
            result = self.database.execute(
                txn,
                "SELECT id1, link_type, COUNT(*) FROM linktable "
                "WHERE visibility = 1 GROUP BY id1, link_type")
            actual = {(r[0], r[1]): r[2] for r in result.rows}
            result = self.database.execute(
                txn, "SELECT id, link_type, count FROM counttable")
            for id1, link_type, count in result.rows:
                if actual.get((id1, link_type), 0) != count:
                    return False
            # Every visible link key must be represented in the counts.
            counted = {(r[0], r[1]) for r in result.rows}
            return all(key in counted for key in actual)
        finally:
            self.database.rollback(txn)

    def _derive_params(self) -> None:
        self.params["node_count"] = int(
            self.scalar("SELECT COUNT(*) FROM nodetable") or 0) or 2
        self.params["node_id_counter"] = itertools.count(
            int(self.scalar("SELECT MAX(id) FROM nodetable") or 0) + 1)
