"""TATP schema: the Telecom Application Transaction Processing benchmark.

Four tables modelling a Home Location Register: SUBSCRIBER with its 30+
flag/hex/byte columns, ACCESS_INFO, SPECIAL_FACILITY, and CALL_FORWARDING.
"""

SUBSCRIBERS_PER_SF = 1_000

_SUBSCRIBER_FLAGS = "\n".join(
    f"        bit_{i} TINYINT NOT NULL," for i in range(1, 11))
_SUBSCRIBER_HEX = "\n".join(
    f"        hex_{i} TINYINT NOT NULL," for i in range(1, 11))
_SUBSCRIBER_BYTES = "\n".join(
    f"        byte2_{i} SMALLINT NOT NULL," for i in range(1, 11))

DDL = [
    f"""
    CREATE TABLE subscriber (
        s_id INT PRIMARY KEY,
        sub_nbr VARCHAR(15) NOT NULL,
{_SUBSCRIBER_FLAGS}
{_SUBSCRIBER_HEX}
{_SUBSCRIBER_BYTES}
        msc_location INT NOT NULL,
        vlr_location INT NOT NULL
    )
    """,
    "CREATE UNIQUE INDEX idx_subscriber_sub_nbr ON subscriber (sub_nbr)",
    """
    CREATE TABLE access_info (
        s_id    INT NOT NULL,
        ai_type TINYINT NOT NULL,
        data1   SMALLINT NOT NULL,
        data2   SMALLINT NOT NULL,
        data3   CHAR(3) NOT NULL,
        data4   CHAR(5) NOT NULL,
        PRIMARY KEY (s_id, ai_type)
    )
    """,
    "CREATE INDEX idx_access_info_sid ON access_info (s_id)",
    """
    CREATE TABLE special_facility (
        s_id        INT NOT NULL,
        sf_type     TINYINT NOT NULL,
        is_active   TINYINT NOT NULL,
        error_cntrl SMALLINT NOT NULL,
        data_a      SMALLINT NOT NULL,
        data_b      CHAR(5) NOT NULL,
        PRIMARY KEY (s_id, sf_type)
    )
    """,
    "CREATE INDEX idx_special_facility_sid ON special_facility (s_id)",
    """
    CREATE TABLE call_forwarding (
        s_id       INT NOT NULL,
        sf_type    TINYINT NOT NULL,
        start_time TINYINT NOT NULL,
        end_time   TINYINT NOT NULL,
        numberx    VARCHAR(15) NOT NULL,
        PRIMARY KEY (s_id, sf_type, start_time)
    )
    """,
    "CREATE INDEX idx_call_forwarding_sid ON call_forwarding (s_id)",
]
