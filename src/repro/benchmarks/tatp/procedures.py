"""TATP's seven transactions with the standard 80/16/4 read/update mix."""

from __future__ import annotations

import random

from ...core.procedure import Procedure, UserAbort
from ...errors import IntegrityError
from ...rand import random_numeric_string


class _TatpProcedure(Procedure):

    def _pick_sid(self, rng: random.Random) -> int:
        return rng.randrange(int(self.params["subscriber_count"]))

    def _sub_nbr(self, s_id: int) -> str:
        return f"{s_id:015d}"


class GetSubscriberData(_TatpProcedure):
    """Read a subscriber's full HLR profile."""

    name = "GetSubscriberData"
    read_only = True
    default_weight = 35

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute("SELECT * FROM subscriber WHERE s_id = ?",
                    (self._pick_sid(rng),))
        row = self.fetch_one(cur, "missing subscriber")
        conn.commit()
        return row


class GetAccessData(_TatpProcedure):
    """Read one access-info record; ~37.5% miss rate by design."""

    name = "GetAccessData"
    read_only = True
    default_weight = 35

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute(
            "SELECT data1, data2, data3, data4 FROM access_info "
            "WHERE s_id = ? AND ai_type = ?",
            (self._pick_sid(rng), rng.randint(1, 4)))
        row = cur.fetchone()  # a miss is a valid outcome, not an abort
        conn.commit()
        return row


class GetNewDestination(_TatpProcedure):
    """Look up the forwarding number for an active special facility."""

    name = "GetNewDestination"
    read_only = True
    default_weight = 10

    def run(self, conn, rng):
        s_id = self._pick_sid(rng)
        sf_type = rng.randint(1, 4)
        start_time = rng.choice((0, 8, 16))
        end_time = rng.randint(1, 24)
        cur = conn.cursor()
        cur.execute(
            "SELECT cf.numberx "
            "FROM special_facility sf JOIN call_forwarding cf "
            "  ON sf.s_id = cf.s_id AND sf.sf_type = cf.sf_type "
            "WHERE sf.s_id = ? AND sf.sf_type = ? AND sf.is_active = 1 "
            "  AND cf.start_time <= ? AND cf.end_time > ?",
            (s_id, sf_type, start_time, end_time))
        rows = cur.fetchall()
        conn.commit()
        return rows


class UpdateSubscriberData(_TatpProcedure):
    """Update subscriber flags plus a special-facility attribute."""

    name = "UpdateSubscriberData"
    default_weight = 2

    def run(self, conn, rng):
        s_id = self._pick_sid(rng)
        cur = conn.cursor()
        cur.execute("UPDATE subscriber SET bit_1 = ? WHERE s_id = ?",
                    (rng.randint(0, 1), s_id))
        cur.execute(
            "UPDATE special_facility SET data_a = ? "
            "WHERE s_id = ? AND sf_type = ?",
            (rng.randint(0, 255), s_id, rng.randint(1, 4)))
        if cur.rowcount == 0:
            raise UserAbort("no such special facility")  # ~62.5% per spec
        conn.commit()


class UpdateLocation(_TatpProcedure):
    """Update a subscriber's VLR location, addressed by phone number."""

    name = "UpdateLocation"
    default_weight = 14

    def run(self, conn, rng):
        sub_nbr = self._sub_nbr(self._pick_sid(rng))
        cur = conn.cursor()
        cur.execute("UPDATE subscriber SET vlr_location = ? "
                    "WHERE sub_nbr = ?",
                    (rng.randrange(2 ** 31), sub_nbr))
        if cur.rowcount == 0:
            raise UserAbort("unknown subscriber number")
        conn.commit()


class InsertCallForwarding(_TatpProcedure):
    """Add a forwarding entry; duplicate periods abort (PK violation)."""

    name = "InsertCallForwarding"
    default_weight = 2

    def run(self, conn, rng):
        sub_nbr = self._sub_nbr(self._pick_sid(rng))
        cur = conn.cursor()
        cur.execute("SELECT s_id FROM subscriber WHERE sub_nbr = ?",
                    (sub_nbr,))
        s_id = self.fetch_one(cur, "unknown subscriber number")[0]
        cur.execute("SELECT sf_type FROM special_facility WHERE s_id = ?",
                    (s_id,))
        sf_rows = cur.fetchall()
        if not sf_rows:
            raise UserAbort("subscriber has no special facilities")
        sf_type = sf_rows[rng.randrange(len(sf_rows))][0]
        start_time = rng.choice((0, 8, 16))
        try:
            cur.execute(
                "INSERT INTO call_forwarding "
                "(s_id, sf_type, start_time, end_time, numberx) "
                "VALUES (?, ?, ?, ?, ?)",
                (s_id, sf_type, start_time, start_time + rng.randint(1, 8),
                 random_numeric_string(rng, 15)))
        except IntegrityError as exc:
            raise UserAbort(str(exc)) from exc
        conn.commit()


class DeleteCallForwarding(_TatpProcedure):
    """Remove a forwarding entry; a miss aborts per the TATP spec."""

    name = "DeleteCallForwarding"
    default_weight = 2

    def run(self, conn, rng):
        sub_nbr = self._sub_nbr(self._pick_sid(rng))
        cur = conn.cursor()
        cur.execute("SELECT s_id FROM subscriber WHERE sub_nbr = ?",
                    (sub_nbr,))
        s_id = self.fetch_one(cur, "unknown subscriber number")[0]
        cur.execute(
            "DELETE FROM call_forwarding "
            "WHERE s_id = ? AND sf_type = ? AND start_time = ?",
            (s_id, rng.randint(1, 4), rng.choice((0, 8, 16))))
        if cur.rowcount == 0:
            raise UserAbort("no forwarding entry to delete")
        conn.commit()


PROCEDURES = (DeleteCallForwarding, GetAccessData, GetNewDestination,
              GetSubscriberData, InsertCallForwarding, UpdateLocation,
              UpdateSubscriberData)
