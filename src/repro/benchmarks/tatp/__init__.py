"""TATP: Telecom Application Transaction Processing ("Caller Location App").

Paper Table 1 class: Transactional.  Models a Home Location Register under
the standard 80% read / 16% update / 4% insert-delete mix.
"""

from __future__ import annotations

import random

from ...core.benchmark import BenchmarkModule, CLASS_TRANSACTIONAL
from ...rand import random_string
from .procedures import PROCEDURES
from .schema import DDL, SUBSCRIBERS_PER_SF


class TatpBenchmark(BenchmarkModule):
    """HLR lookup/update workload."""

    name = "tatp"
    domain = "Caller Location App"
    benchmark_class = CLASS_TRANSACTIONAL
    procedures = PROCEDURES

    def ddl(self):
        return DDL

    def load_data(self, rng: random.Random) -> None:
        count = max(1, int(SUBSCRIBERS_PER_SF * self.scale_factor))
        subscribers, access, facilities, forwards = [], [], [], []
        for s_id in range(count):
            flags = [rng.randint(0, 1) for _ in range(10)]
            hexes = [rng.randint(0, 15) for _ in range(10)]
            bytes2 = [rng.randint(0, 255) for _ in range(10)]
            subscribers.append((
                s_id, f"{s_id:015d}", *flags, *hexes, *bytes2,
                rng.randrange(2 ** 31), rng.randrange(2 ** 31)))
            # 1..4 access-info records with distinct ai_types.
            ai_types = rng.sample((1, 2, 3, 4), rng.randint(1, 4))
            for ai_type in ai_types:
                access.append((
                    s_id, ai_type, rng.randint(0, 255), rng.randint(0, 255),
                    random_string(rng, 3).upper(),
                    random_string(rng, 5).upper()))
            # 1..4 special facilities, each with 0..3 forwarding entries.
            sf_types = rng.sample((1, 2, 3, 4), rng.randint(1, 4))
            for sf_type in sf_types:
                facilities.append((
                    s_id, sf_type, 1 if rng.random() < 0.85 else 0,
                    rng.randint(0, 255), rng.randint(0, 255),
                    random_string(rng, 5).upper()))
                for start_time in rng.sample((0, 8, 16),
                                             rng.randint(0, 3)):
                    forwards.append((
                        s_id, sf_type, start_time,
                        start_time + rng.randint(1, 8),
                        "".join(str(rng.randint(0, 9)) for _ in range(15))))
            if len(subscribers) >= 500:
                self._flush(subscribers, access, facilities, forwards)
                subscribers, access, facilities, forwards = [], [], [], []
        self._flush(subscribers, access, facilities, forwards)
        self.params["subscriber_count"] = count

    def _flush(self, subscribers, access, facilities, forwards) -> None:
        if subscribers:
            self.database.bulk_insert("subscriber", subscribers)
        if access:
            self.database.bulk_insert("access_info", access)
        if facilities:
            self.database.bulk_insert("special_facility", facilities)
        if forwards:
            self.database.bulk_insert("call_forwarding", forwards)

    def _derive_params(self) -> None:
        self.params["subscriber_count"] = int(
            self.scalar("SELECT COUNT(*) FROM subscriber") or 0) or 1
