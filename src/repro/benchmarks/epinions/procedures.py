"""Epinions' nine transactions over the user/item/review/trust graph."""

from __future__ import annotations

import random

from ...core.procedure import Procedure, UserAbort
from ...rand import random_string


class _EpinionsProcedure(Procedure):

    def _user(self, rng: random.Random) -> int:
        return rng.randrange(int(self.params["user_count"]))

    def _item(self, rng: random.Random) -> int:
        return rng.randrange(int(self.params["item_count"]))


class GetReviewItemById(_EpinionsProcedure):
    """Item page: the item row and its reviews."""

    name = "GetReviewItemById"
    read_only = True
    default_weight = 10

    def run(self, conn, rng):
        i_id = self._item(rng)
        cur = conn.cursor()
        cur.execute("SELECT title FROM item WHERE i_id = ?", (i_id,))
        cur.fetchall()
        cur.execute(
            "SELECT a_id, u_id, rating FROM review WHERE i_id = ? "
            "ORDER BY rating DESC", (i_id,))
        reviews = cur.fetchall()
        conn.commit()
        return reviews


class GetReviewsByUser(_EpinionsProcedure):
    name = "GetReviewsByUser"
    read_only = True
    default_weight = 10

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute(
            "SELECT a_id, i_id, rating FROM review WHERE u_id = ?",
            (self._user(rng),))
        rows = cur.fetchall()
        conn.commit()
        return rows


class GetAverageRatingByTrustedUser(_EpinionsProcedure):
    """Average rating of an item among reviewers the user trusts."""

    name = "GetAverageRatingByTrustedUser"
    read_only = True
    default_weight = 10

    def run(self, conn, rng):
        u_id = self._user(rng)
        i_id = self._item(rng)
        cur = conn.cursor()
        cur.execute(
            "SELECT AVG(r.rating) FROM review r JOIN trust t "
            "  ON r.u_id = t.target_u_id "
            "WHERE t.source_u_id = ? AND r.i_id = ?", (u_id, i_id))
        avg = cur.fetchone()[0]
        conn.commit()
        return avg


class GetItemAverageRating(_EpinionsProcedure):
    name = "GetItemAverageRating"
    read_only = True
    default_weight = 10

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute("SELECT AVG(rating) FROM review WHERE i_id = ?",
                    (self._item(rng),))
        avg = cur.fetchone()[0]
        conn.commit()
        return avg


class GetItemReviewsByTrustedUser(_EpinionsProcedure):
    name = "GetItemReviewsByTrustedUser"
    read_only = True
    default_weight = 10

    def run(self, conn, rng):
        u_id = self._user(rng)
        i_id = self._item(rng)
        cur = conn.cursor()
        cur.execute(
            "SELECT r.a_id, r.rating, t.trust "
            "FROM review r JOIN trust t ON r.u_id = t.target_u_id "
            "WHERE r.i_id = ? AND t.source_u_id = ?", (i_id, u_id))
        rows = cur.fetchall()
        conn.commit()
        return rows


class UpdateUserName(_EpinionsProcedure):
    name = "UpdateUserName"
    default_weight = 5

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute("UPDATE useracct SET name = ? WHERE u_id = ?",
                    (random_string(rng, 8, 16), self._user(rng)))
        if cur.rowcount == 0:
            raise UserAbort("missing user")
        conn.commit()


class UpdateItemTitle(_EpinionsProcedure):
    name = "UpdateItemTitle"
    default_weight = 5

    def run(self, conn, rng):
        cur = conn.cursor()
        cur.execute("UPDATE item SET title = ? WHERE i_id = ?",
                    (random_string(rng, 8, 32), self._item(rng)))
        if cur.rowcount == 0:
            raise UserAbort("missing item")
        conn.commit()


class UpdateReviewRating(_EpinionsProcedure):
    name = "UpdateReviewRating"
    default_weight = 35

    def run(self, conn, rng):
        i_id = self._item(rng)
        rating = rng.randint(0, 5)
        cur = conn.cursor()
        cur.execute(
            "SELECT a_id FROM review WHERE i_id = ? AND u_id = ?",
            (i_id, self._user(rng)))
        row = cur.fetchone()
        if row is None:
            conn.commit()  # nothing to update: a no-op page interaction
            return
        cur.execute("UPDATE review SET rating = ? WHERE a_id = ?",
                    (rating, row[0]))
        conn.commit()


class UpdateTrustRating(_EpinionsProcedure):
    name = "UpdateTrustRating"
    default_weight = 5

    def run(self, conn, rng):
        source = self._user(rng)
        target = self._user(rng)
        cur = conn.cursor()
        cur.execute(
            "UPDATE trust SET trust = ? "
            "WHERE source_u_id = ? AND target_u_id = ?",
            (rng.randint(0, 1), source, target))
        conn.commit()


PROCEDURES = (GetReviewItemById, GetReviewsByUser,
              GetAverageRatingByTrustedUser, GetItemAverageRating,
              GetItemReviewsByTrustedUser, UpdateUserName, UpdateItemTitle,
              UpdateReviewRating, UpdateTrustRating)
