"""Epinions: consumer-review social network (Web-Oriented, paper Table 1).

The workload walks the who-trusts-whom graph: review lookups filtered by
trusted users dominate, with occasional profile/title/rating updates.
"""

from __future__ import annotations

import itertools
import random

from ...core.benchmark import BenchmarkModule, CLASS_WEB
from ...rand import ZipfGenerator, random_string
from .procedures import PROCEDURES
from .schema import (DDL, ITEMS_PER_SF, REVIEWS_PER_ITEM, TRUST_PER_USER,
                     USERS_PER_SF)


class EpinionsBenchmark(BenchmarkModule):
    """Social review site with Zipf-skewed item popularity."""

    name = "epinions"
    domain = "Social Networking"
    benchmark_class = CLASS_WEB
    procedures = PROCEDURES

    def ddl(self):
        return DDL

    def load_data(self, rng: random.Random) -> None:
        users = max(2, int(USERS_PER_SF * self.scale_factor))
        items = max(2, int(ITEMS_PER_SF * self.scale_factor))
        self.database.bulk_insert("useracct", [
            (u, random_string(rng, 8, 16)) for u in range(users)])
        self.database.bulk_insert("item", [
            (i, random_string(rng, 8, 32)) for i in range(items)])

        # Reviews: popular items accumulate more reviews (Zipf over items);
        # each (item, user) pair reviews at most once.
        review_id = itertools.count()
        item_zipf = ZipfGenerator(items, theta=0.8)
        reviews = []
        seen: set[tuple[int, int]] = set()
        for _ in range(items * REVIEWS_PER_ITEM):
            i_id = item_zipf.next(rng)
            u_id = rng.randrange(users)
            if (i_id, u_id) in seen:
                continue
            seen.add((i_id, u_id))
            reviews.append((next(review_id), u_id, i_id,
                            rng.randint(0, 5), rng.randint(0, 100)))
            if len(reviews) >= 2000:
                self.database.bulk_insert("review", reviews)
                reviews = []
        if reviews:
            self.database.bulk_insert("review", reviews)

        trust_rows = []
        seen_trust: set[tuple[int, int]] = set()
        for source in range(users):
            for _ in range(rng.randint(0, TRUST_PER_USER)):
                target = rng.randrange(users)
                if target == source or (source, target) in seen_trust:
                    continue
                seen_trust.add((source, target))
                trust_rows.append((source, target, rng.randint(0, 1), 0.0))
            if len(trust_rows) >= 2000:
                self.database.bulk_insert("trust", trust_rows)
                trust_rows = []
        if trust_rows:
            self.database.bulk_insert("trust", trust_rows)

        self.params["user_count"] = users
        self.params["item_count"] = items

    def _derive_params(self) -> None:
        self.params["user_count"] = int(
            self.scalar("SELECT COUNT(*) FROM useracct") or 0) or 2
        self.params["item_count"] = int(
            self.scalar("SELECT COUNT(*) FROM item") or 0) or 2
