"""Epinions schema: users, items, reviews, and the who-trusts-whom graph."""

USERS_PER_SF = 200
ITEMS_PER_SF = 100
REVIEWS_PER_ITEM = 10
TRUST_PER_USER = 10

DDL = [
    """
    CREATE TABLE useracct (
        u_id BIGINT PRIMARY KEY,
        name VARCHAR(128) NOT NULL
    )
    """,
    """
    CREATE TABLE item (
        i_id  BIGINT PRIMARY KEY,
        title VARCHAR(128) NOT NULL
    )
    """,
    """
    CREATE TABLE review (
        a_id   BIGINT PRIMARY KEY,
        u_id   BIGINT NOT NULL,
        i_id   BIGINT NOT NULL,
        rating INT NOT NULL,
        rank   INT NOT NULL
    )
    """,
    "CREATE INDEX idx_review_user ON review (u_id)",
    "CREATE INDEX idx_review_item ON review (i_id)",
    "CREATE INDEX idx_review_item_user ON review (i_id, u_id)",
    """
    CREATE TABLE trust (
        source_u_id   BIGINT NOT NULL,
        target_u_id   BIGINT NOT NULL,
        trust         INT NOT NULL,
        creation_date TIMESTAMP NOT NULL,
        PRIMARY KEY (source_u_id, target_u_id)
    )
    """,
    "CREATE INDEX idx_trust_source ON trust (source_u_id)",
]
