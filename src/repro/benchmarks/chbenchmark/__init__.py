"""CH-benCHmark: mixed OLTP + OLAP over the TPC-C schema (Table 1).

Extends TPC-C with the TPC-H-inspired SUPPLIER/NATION/REGION tables and an
analytical query stream that runs concurrently with the five transactional
procedures.  The default mixture keeps ~90% transactional weight and ~10%
analytical, so the benchmark stresses the engine's ability to serve scans
under update traffic.
"""

from __future__ import annotations

import random

from ...core.benchmark import CLASS_TRANSACTIONAL
from ...rand import random_string
from ..tpcc import TpccBenchmark
from ..tpcc.procedures import PROCEDURES as TPCC_PROCEDURES
from .queries import QUERIES

SUPPLIERS = 100
NATIONS = [
    (0, "UNITED STATES", 0), (1, "CANADA", 0), (2, "BRAZIL", 0),
    (3, "GERMANY", 1), (4, "FRANCE", 1), (5, "UNITED KINGDOM", 1),
    (6, "CHINA", 2), (7, "JAPAN", 2), (8, "INDIA", 2),
]
REGIONS = [(0, "AMERICA"), (1, "EUROPE"), (2, "ASIA")]

EXTRA_DDL = [
    """
    CREATE TABLE region (
        r_id   INT PRIMARY KEY,
        r_name VARCHAR(25) NOT NULL
    )
    """,
    """
    CREATE TABLE nation (
        n_id   INT PRIMARY KEY,
        n_name VARCHAR(25) NOT NULL,
        n_r_id INT NOT NULL
    )
    """,
    """
    CREATE TABLE supplier (
        su_id      INT PRIMARY KEY,
        su_name    VARCHAR(25) NOT NULL,
        su_n_id    INT NOT NULL,
        su_acctbal FLOAT NOT NULL
    )
    """,
]


class ChBenchmark(TpccBenchmark):
    """TPC-C transactions plus an analytical query stream."""

    name = "chbenchmark"
    domain = "Mixture of OLTP and OLAP"
    benchmark_class = CLASS_TRANSACTIONAL
    procedures = tuple(TPCC_PROCEDURES) + tuple(QUERIES)

    def ddl(self):
        return list(super().ddl()) + EXTRA_DDL

    def load_data(self, rng: random.Random) -> None:
        super().load_data(rng)
        self.database.bulk_insert("region", REGIONS)
        self.database.bulk_insert("nation", NATIONS)
        self.database.bulk_insert("supplier", [
            (su, f"Supplier#{su:09d}", su % len(NATIONS),
             rng.uniform(-999.99, 9999.99))
            for su in range(SUPPLIERS)])
        self.params["supplier_count"] = SUPPLIERS

    def _derive_params(self) -> None:
        super()._derive_params()
        self.params["supplier_count"] = int(
            self.scalar("SELECT COUNT(*) FROM supplier") or 0) or 1
