"""CH-benCHmark analytical queries, adapted to the engine's SQL subset.

The CH-benCHmark layers TPC-H-style analytical queries over the live TPC-C
schema.  Five representative queries are implemented (Q1, Q4, Q6, Q12, Q14
in the CH numbering); each runs read-only against whatever state the
concurrent transactional stream has produced — the defining property of the
"mixed OLTP and OLAP" workload class.
"""

from __future__ import annotations

import random

from ...core.procedure import Procedure


class _ChQuery(Procedure):
    read_only = True


class Query1(_ChQuery):
    """Pricing summary per order-line number (CH Q1)."""

    name = "Query1"
    default_weight = 2

    def run(self, conn, rng: random.Random):
        cur = conn.cursor()
        cur.execute(
            "SELECT ol_number, SUM(ol_quantity) AS sum_qty, "
            "SUM(ol_amount) AS sum_amount, AVG(ol_quantity) AS avg_qty, "
            "AVG(ol_amount) AS avg_amount, COUNT(*) AS count_order "
            "FROM order_line WHERE ol_delivery_d IS NOT NULL "
            "GROUP BY ol_number ORDER BY ol_number")
        rows = cur.fetchall()
        conn.commit()
        return rows


class Query4(_ChQuery):
    """Order-priority checking: delivered orders per line count (CH Q4)."""

    name = "Query4"
    default_weight = 2

    def run(self, conn, rng: random.Random):
        cur = conn.cursor()
        cur.execute(
            "SELECT o_ol_cnt, COUNT(*) FROM oorder "
            "WHERE o_carrier_id IS NOT NULL "
            "GROUP BY o_ol_cnt ORDER BY o_ol_cnt")
        rows = cur.fetchall()
        conn.commit()
        return rows


class Query6(_ChQuery):
    """Forecast revenue change (CH Q6)."""

    name = "Query6"
    default_weight = 2

    def run(self, conn, rng: random.Random):
        cur = conn.cursor()
        cur.execute(
            "SELECT SUM(ol_amount) AS revenue FROM order_line "
            "WHERE ol_delivery_d IS NOT NULL "
            "AND ol_quantity BETWEEN 1 AND 100000")
        revenue = cur.fetchone()[0]
        conn.commit()
        return revenue


class Query12(_ChQuery):
    """Shipping-mode / priority split with CASE aggregation (CH Q12)."""

    name = "Query12"
    default_weight = 2

    def run(self, conn, rng: random.Random):
        cur = conn.cursor()
        cur.execute(
            "SELECT o.o_ol_cnt, "
            "SUM(CASE WHEN o.o_carrier_id = 1 OR o.o_carrier_id = 2 "
            "    THEN 1 ELSE 0 END) AS high_line, "
            "SUM(CASE WHEN o.o_carrier_id <> 1 AND o.o_carrier_id <> 2 "
            "    THEN 1 ELSE 0 END) AS low_line "
            "FROM oorder o JOIN order_line ol "
            "  ON ol.ol_w_id = o.o_w_id AND ol.ol_d_id = o.o_d_id "
            " AND ol.ol_o_id = o.o_id "
            "WHERE o.o_carrier_id IS NOT NULL "
            "  AND ol.ol_delivery_d IS NOT NULL "
            "GROUP BY o.o_ol_cnt ORDER BY o.o_ol_cnt")
        rows = cur.fetchall()
        conn.commit()
        return rows


class Query14(_ChQuery):
    """Promotion effect: revenue share of promotional items (CH Q14)."""

    name = "Query14"
    default_weight = 2

    def run(self, conn, rng: random.Random):
        cur = conn.cursor()
        cur.execute(
            "SELECT 100.0 * SUM(CASE WHEN i.i_data LIKE '%ORIGINAL%' "
            "THEN ol.ol_amount ELSE 0 END) / (1.0 + SUM(ol.ol_amount)) "
            "FROM order_line ol JOIN item i ON i.i_id = ol.ol_i_id "
            "WHERE ol.ol_delivery_d IS NOT NULL")
        share = cur.fetchone()[0]
        conn.commit()
        return share


QUERIES = (Query1, Query4, Query6, Query12, Query14)
