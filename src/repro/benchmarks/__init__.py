"""The 15 built-in benchmarks (paper Table 1) and their registry.

    >>> from repro.benchmarks import create_benchmark
    >>> from repro.engine import Database
    >>> bench = create_benchmark("tpcc", Database(), scale_factor=1)
    >>> bench.load()
"""

from __future__ import annotations

from typing import Optional, Type

from ..engine.database import Database
from ..errors import BenchmarkError
from ..core.benchmark import BenchmarkModule
from .auctionmark import AuctionMarkBenchmark
from .chbenchmark import ChBenchmark
from .epinions import EpinionsBenchmark
from .jpab import JpabBenchmark
from .linkbench import LinkBenchBenchmark
from .resourcestresser import ResourceStresserBenchmark
from .seats import SeatsBenchmark
from .sibench import SiBenchmark
from .smallbank import SmallBankBenchmark
from .tatp import TatpBenchmark
from .tpcc import TpccBenchmark
from .twitter import TwitterBenchmark
from .voter import VoterBenchmark
from .wikipedia import WikipediaBenchmark
from .ycsb import YcsbBenchmark

#: Registry in paper Table 1 order (Transactional, Web-Oriented, Feature).
REGISTRY: dict[str, Type[BenchmarkModule]] = {
    cls.name: cls for cls in (
        AuctionMarkBenchmark, ChBenchmark, SeatsBenchmark,
        SmallBankBenchmark, TatpBenchmark, TpccBenchmark, VoterBenchmark,
        EpinionsBenchmark, LinkBenchBenchmark, TwitterBenchmark,
        WikipediaBenchmark,
        ResourceStresserBenchmark, YcsbBenchmark, JpabBenchmark,
        SiBenchmark,
    )
}


def benchmark_names() -> list[str]:
    """Registry keys in Table 1 order."""
    return list(REGISTRY)


def create_benchmark(name: str, database: Database,
                     scale_factor: float = 1.0,
                     seed: Optional[int] = None,
                     **kwargs) -> BenchmarkModule:
    """Instantiate (but do not load) a benchmark by registry name."""
    try:
        cls = REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(REGISTRY)
        raise BenchmarkError(
            f"unknown benchmark {name!r}; available: {known}") from None
    return cls(database, scale_factor=scale_factor, seed=seed, **kwargs)


def table1() -> list[dict[str, str]]:
    """The rows of paper Table 1: class, benchmark, application domain."""
    return [
        {"class": cls.benchmark_class, "benchmark": cls.name,
         "domain": cls.domain}
        for cls in REGISTRY.values()
    ]


__all__ = ["REGISTRY", "benchmark_names", "create_benchmark", "table1",
           "BenchmarkModule"]
