"""Random-distribution utilities shared by loaders and workload generators.

OLTP-Bench's benchmarks lean on a small set of distributions:

* TPC-C's ``NURand`` non-uniform random numbers and last-name syllables;
* Zipfian / scrambled-Zipfian item popularity (YCSB, Twitter, Epinions);
* latest-biased and hotspot access patterns (YCSB);
* random alpha-numeric strings for payload columns.

Everything takes an explicit ``random.Random`` so experiments are seedable
end to end.
"""

from __future__ import annotations

import hashlib
import math
import random
import string
from bisect import bisect_right
from typing import Sequence

ALPHANUMERIC = string.ascii_letters + string.digits

#: TPC-C 4.3.2.3 last-name syllables.
TPCC_SYLLABLES = (
    "BAR", "OUGHT", "ABLE", "PRI", "PRES",
    "ESE", "ANTI", "CALLY", "ATION", "EING",
)


def random_string(rng: random.Random, min_len: int, max_len: int | None = None,
                  alphabet: str = ALPHANUMERIC) -> str:
    """Random string with length uniform in ``[min_len, max_len]``."""
    if max_len is None:
        max_len = min_len
    length = rng.randint(min_len, max_len)
    return "".join(rng.choices(alphabet, k=length))


def random_numeric_string(rng: random.Random, length: int) -> str:
    return "".join(rng.choices(string.digits, k=length))


def nu_rand(rng: random.Random, a: int, x: int, y: int, c: int = 0) -> int:
    """TPC-C NURand(A, x, y) non-uniform random integer in ``[x, y]``."""
    return (((rng.randint(0, a) | rng.randint(x, y)) + c) % (y - x + 1)) + x


def tpcc_last_name(num: int) -> str:
    """TPC-C customer last name from a three-digit syllable index."""
    return (TPCC_SYLLABLES[(num // 100) % 10]
            + TPCC_SYLLABLES[(num // 10) % 10]
            + TPCC_SYLLABLES[num % 10])


class ZipfGenerator:
    """Zipf-distributed integers over ``[0, n)``.

    Uses the rejection-inversion-free YCSB algorithm (Gray et al., "Quickly
    Generating Billion-Record Synthetic Databases"): constant-time sampling
    after an O(n)-free closed-form setup.
    """

    def __init__(self, n: int, theta: float = 0.99) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        denominator = 1 - self._zeta2 / self._zetan
        if denominator == 0:  # n <= 2: the closed form degenerates
            self._eta = 0.0
        else:
            self._eta = ((1 - (2.0 / n) ** (1 - theta)) / denominator)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact for small n; Euler–Maclaurin style integral approximation for
        # large n keeps loader setup fast at big scale factors.
        if n <= 10000:
            return sum(1.0 / (i ** theta) for i in range(1, n + 1))
        head = sum(1.0 / (i ** theta) for i in range(1, 10001))
        tail = ((n ** (1 - theta)) - (10000 ** (1 - theta))) / (1 - theta)
        return head + tail

    def next(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return min(1, self.n - 1)
        value = int(self.n * ((self._eta * u - self._eta + 1)
                              ** self._alpha))
        return min(value, self.n - 1)  # guard float rounding at the edge


class ScrambledZipfGenerator:
    """Zipfian popularity spread over the whole key space via hashing.

    YCSB's ``ScrambledZipfianGenerator``: the most popular items are not the
    lowest keys but scattered deterministically, which avoids accidental
    range locality.
    """

    _FNV_OFFSET = 0xCBF29CE484222325
    _FNV_PRIME = 0x100000001B3

    def __init__(self, n: int, theta: float = 0.99) -> None:
        self.n = n
        self._zipf = ZipfGenerator(n, theta)

    @classmethod
    def _fnv_hash(cls, value: int) -> int:
        h = cls._FNV_OFFSET
        for _ in range(8):
            h = ((h ^ (value & 0xFF)) * cls._FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
            value >>= 8
        return h

    def next(self, rng: random.Random) -> int:
        return self._fnv_hash(self._zipf.next(rng)) % self.n


class LatestGenerator:
    """YCSB "latest" distribution: recent insertions are most popular."""

    def __init__(self, n: int, theta: float = 0.99) -> None:
        self._zipf = ZipfGenerator(n, theta)
        self.n = n

    def set_max(self, n: int) -> None:
        if n != self.n and n > 0:
            self.n = n
            self._zipf = ZipfGenerator(n, self._zipf.theta)

    def next(self, rng: random.Random) -> int:
        return self.n - 1 - self._zipf.next(rng)


class HotspotGenerator:
    """A ``hot_fraction`` of operations target ``hot_set_fraction`` of keys."""

    def __init__(self, n: int, hot_set_fraction: float = 0.2,
                 hot_op_fraction: float = 0.8) -> None:
        if not 0 < hot_set_fraction <= 1:
            raise ValueError("hot_set_fraction must be in (0, 1]")
        if not 0 <= hot_op_fraction <= 1:
            raise ValueError("hot_op_fraction must be in [0, 1]")
        self.n = n
        self.hot_count = max(1, int(n * hot_set_fraction))
        self.hot_op_fraction = hot_op_fraction

    def next(self, rng: random.Random) -> int:
        if rng.random() < self.hot_op_fraction:
            return rng.randrange(self.hot_count)
        if self.hot_count >= self.n:
            return rng.randrange(self.n)
        return rng.randrange(self.hot_count, self.n)


class DiscreteDistribution:
    """Weighted sampling over arbitrary values with O(log n) draws.

    This backs transaction-mixture sampling: weights are OLTP-Bench style
    percentages (they need not sum to exactly 100; they are normalised).
    """

    def __init__(self, values: Sequence[object], weights: Sequence[float]) -> None:
        if len(values) != len(weights):
            raise ValueError("values and weights must have equal length")
        if not values:
            raise ValueError("empty distribution")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self.values = list(values)
        self.weights = [float(w) for w in weights]
        self._cdf: list[float] = []
        acc = 0.0
        for w in self.weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def sample(self, rng: random.Random) -> object:
        return self.values[bisect_right(self._cdf, rng.random())]

    def probability(self, value: object) -> float:
        total = sum(self.weights)
        try:
            idx = self.values.index(value)
        except ValueError:
            return 0.0
        return self.weights[idx] / total


def exponential_interarrival(rng: random.Random, rate: float) -> float:
    """Exponentially distributed inter-arrival gap for a Poisson process."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    return -math.log(1.0 - rng.random()) / rate


def make_rng(seed: int | None, *salt: object) -> random.Random:
    """Derive an independent, reproducible RNG from a base seed and salt.

    The derivation hashes ``repr((seed, *salt))`` with BLAKE2 rather than
    the built-in ``hash()``: string hashing is randomized per process
    (PYTHONHASHSEED), which would make every salted stream — arrival
    schedules, worker RNGs, fault schedules — unreproducible across
    invocations of the same seed.
    """
    if seed is None:
        return random.Random()
    digest = hashlib.blake2b(repr((seed, *salt)).encode(),
                             digest_size=6).digest()
    return random.Random(int.from_bytes(digest, "big"))
