"""Online latency histogram with fixed log-spaced bins.

The streaming feedback path must answer "p95 latency of NewOrder right
now" without touching the raw sample list, so each transaction type gets
one of these: a fixed array of logarithmically spaced bins plus *exact*
min / max / sum / count.  Recording is O(1); quantile queries are O(bins)
and interpolate linearly inside the bin that holds the requested rank.

Accuracy contract (documented in docs/metrics.md): a reported quantile
lies within one bin of the order statistics bounding its rank, i.e. its
relative error against those observed values is bounded by the bin
growth factor minus one — with the default 32 bins per decade that is
``10 ** (1/32) - 1`` ≈ 7.5 %.  (The batch path interpolates linearly
*between* two sorted samples; when those straddle a sparse-tail gap the
interpolated point itself can sit further away, but the bounding
samples never do.)  ``min``, ``max``, ``avg`` (and therefore throughput
numbers) are exact, not binned.
"""

from __future__ import annotations

import math
from typing import Optional

#: Default bin layout: 1 µs .. 1000 s, 32 bins per decade (288 bins).
DEFAULT_LOWER = 1e-6
DEFAULT_UPPER = 1e3
DEFAULT_BINS_PER_DECADE = 32

#: Percentile points reported by :meth:`LatencyHistogram.percentiles`,
#: mirroring ``repro.core.results.PERCENTILES``.
PERCENTILE_POINTS = (25.0, 50.0, 75.0, 90.0, 95.0, 99.0)


class LatencyHistogram:
    """Log-spaced latency histogram: O(1) record, O(bins) quantiles.

    Values below ``lower`` land in the first bin, values above ``upper``
    in the last; interpolated quantiles are clamped to the exact observed
    ``[min, max]`` so out-of-range values cannot inflate the error.

    Not thread-safe on its own — :class:`~repro.metrics.stream.
    StreamingMetrics` serialises access.
    """

    __slots__ = ("lower", "upper", "bins_per_decade", "_nbins",
                 "_log_lower", "_scale", "count", "sum", "min", "max",
                 "_counts")

    def __init__(self, lower: float = DEFAULT_LOWER,
                 upper: float = DEFAULT_UPPER,
                 bins_per_decade: int = DEFAULT_BINS_PER_DECADE) -> None:
        if not (0 < lower < upper):
            raise ValueError("need 0 < lower < upper")
        if bins_per_decade <= 0:
            raise ValueError("bins_per_decade must be positive")
        self.lower = lower
        self.upper = upper
        self.bins_per_decade = bins_per_decade
        self._log_lower = math.log10(lower)
        self._scale = float(bins_per_decade)
        decades = math.log10(upper) - self._log_lower
        self._nbins = max(1, math.ceil(decades * bins_per_decade))
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._counts = [0] * self._nbins

    # -- layout -------------------------------------------------------------

    @property
    def nbins(self) -> int:
        return self._nbins

    @property
    def relative_error(self) -> float:
        """Worst-case relative quantile error: one bin's growth factor."""
        return 10.0 ** (1.0 / self.bins_per_decade) - 1.0

    def _index(self, value: float) -> int:
        if value <= self.lower:
            return 0
        index = int((math.log10(value) - self._log_lower) * self._scale)
        return min(index, self._nbins - 1)

    def _edges(self, index: int) -> tuple[float, float]:
        lo = 10.0 ** (self._log_lower + index / self._scale)
        hi = 10.0 ** (self._log_lower + (index + 1) / self._scale)
        return lo, hi

    def layout(self) -> dict[str, object]:
        """Self-describing bin layout, surfaced by the metrics API."""
        return {
            "lower": self.lower,
            "upper": self.upper,
            "bins_per_decade": self.bins_per_decade,
            "bins": self._nbins,
            "relative_error": self.relative_error,
        }

    def compatible_with(self, other: "LatencyHistogram") -> bool:
        return (self.lower == other.lower and self.upper == other.upper
                and self.bins_per_decade == other.bins_per_decade)

    # -- recording ----------------------------------------------------------

    def record(self, value: float, index: Optional[int] = None) -> int:
        """Record one value; returns its bin index.

        Callers recording the same value into several histograms with
        identical layouts (``StreamingMetrics``: per-transaction plus
        run-wide) pass the returned ``index`` back in to skip the
        duplicate ``log10`` bin computation on the ingest hot path.
        """
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if index is None:
            index = self._index(value)
        self._counts[index] += 1
        return index

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram in (multi-tenant aggregation)."""
        if not self.compatible_with(other):
            raise ValueError("cannot merge histograms with different bins")
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for index, n in enumerate(other._counts):
            if n:
                self._counts[index] += n

    # -- queries ------------------------------------------------------------

    @property
    def avg(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, pct: float) -> float:
        """Interpolated percentile (``pct`` in [0, 100])."""
        if self.count == 0:
            raise ValueError("empty histogram")
        if self.count == 1 or pct <= 0:
            return self.min
        if pct >= 100:
            return self.max
        # Same rank convention as repro.core.results.percentile: linear
        # interpolation over a virtual sorted array of ``count`` values.
        rank = (pct / 100.0) * (self.count - 1)
        cumulative = 0
        for index, n in enumerate(self._counts):
            if n == 0:
                continue
            if cumulative + n > rank:
                lo, hi = self._edges(index)
                frac = (rank - cumulative + 0.5) / n
                value = lo + frac * (hi - lo)
                return max(self.min, min(self.max, value))
            cumulative += n
        return self.max

    def percentiles(self) -> dict[str, float]:
        """The summary dict the batch path produces, from bins."""
        if self.count == 0:
            return {}
        summary = {"min": self.min, "max": self.max, "avg": self.avg}
        for pct in PERCENTILE_POINTS:
            summary[f"p{pct:g}"] = self.quantile(pct)
        return summary

    def snapshot(self) -> dict[str, object]:
        summary = self.percentiles()
        summary["count"] = self.count
        return summary

    def copy(self) -> "LatencyHistogram":
        clone = LatencyHistogram(self.lower, self.upper,
                                 self.bins_per_decade)
        clone.merge(self)
        return clone

    def __len__(self) -> int:
        return self.count


def make_histogram(template: Optional[LatencyHistogram] = None
                   ) -> LatencyHistogram:
    """A fresh histogram with the template's layout (or the default)."""
    if template is None:
        return LatencyHistogram()
    return LatencyHistogram(template.lower, template.upper,
                            template.bins_per_decade)
