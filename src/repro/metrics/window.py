"""Per-second counters in a fixed ring buffer for sliding windows.

The feedback path's "instantaneous throughput over the last W seconds"
must not depend on run length, so committed/aborted/error counts (plus
per-transaction-type count and latency sums) are folded into one slot per
wall/virtual second.  The ring holds ``history_seconds`` slots; recording
is O(1) and a window query touches exactly ``W`` slots.

Window semantics (documented in docs/metrics.md):

* a sample belongs to second ``math.floor(sample.end)`` — flooring, not
  ``int()`` truncation, so negative virtual times bucket correctly;
* ``window_stats(now, W)`` covers the half-open second range
  ``[floor(now) - W, floor(now))`` — the current, incomplete second is
  excluded so throughput is not systematically under-reported;
* per-second counts are exact (no binning); only quantiles, which come
  from the histograms, carry bin tolerance.
"""

from __future__ import annotations

import math
from typing import Optional


class _Slot:
    __slots__ = ("second", "committed", "aborted", "errors", "latency_sum",
                 "per_txn")

    def __init__(self) -> None:
        self.second: Optional[int] = None
        self.committed = 0
        self.aborted = 0
        self.errors = 0
        self.latency_sum = 0.0
        self.per_txn: dict[str, list] = {}  # name -> [count, latency_sum]

    def reset(self, second: int) -> None:
        self.second = second
        self.committed = 0
        self.aborted = 0
        self.errors = 0
        self.latency_sum = 0.0
        self.per_txn = {}


class ThroughputWindow:
    """Fixed-size ring of per-second committed/aborted/error counters.

    Not thread-safe on its own — :class:`~repro.metrics.stream.
    StreamingMetrics` serialises access.
    """

    def __init__(self, history_seconds: int = 3600) -> None:
        if history_seconds <= 0:
            raise ValueError("history_seconds must be positive")
        self.history_seconds = history_seconds
        self._slots = [_Slot() for _ in range(history_seconds)]
        self._min_second: Optional[int] = None
        self._max_second: Optional[int] = None
        self.dropped_stale = 0  # samples older than the retained horizon

    # -- recording ----------------------------------------------------------

    def record(self, end_time: float, txn_name: str, latency: float,
               status: str) -> None:
        second = math.floor(end_time)
        if self._max_second is not None and \
                second <= self._max_second - self.history_seconds:
            self.dropped_stale += 1
            return
        slot = self._slots[second % self.history_seconds]
        if slot.second != second:
            if slot.second is not None and slot.second > second:
                # An old slot would clobber a newer second's counts.
                self.dropped_stale += 1
                return
            slot.reset(second)
        if self._min_second is None or second < self._min_second:
            self._min_second = second
        if self._max_second is None or second > self._max_second:
            self._max_second = second
        if status == "ok":
            slot.committed += 1
            slot.latency_sum += latency
            entry = slot.per_txn.setdefault(txn_name, [0, 0.0])
            entry[0] += 1
            entry[1] += latency
        elif status == "aborted":
            slot.aborted += 1
        else:
            slot.errors += 1

    # -- queries ------------------------------------------------------------

    def complete(self) -> bool:
        """True while no recorded second has been evicted yet.

        The trace analyzer uses this to decide whether the streaming
        per-second series can stand in for a full sample rescan.
        """
        if self._max_second is None:
            return True
        assert self._min_second is not None
        return (self._max_second - self._min_second) < self.history_seconds

    def window_stats(self, now: float, window: float = 5.0) -> dict:
        """Aggregate over ``[floor(now) - W, floor(now))``."""
        current = math.floor(now)
        seconds = max(1, int(window))
        committed = aborted = errors = 0
        latency_sum = 0.0
        totals: dict[str, list] = {}
        for second in range(current - seconds, current):
            slot = self._slots[second % self.history_seconds]
            if slot.second != second:
                continue
            committed += slot.committed
            aborted += slot.aborted
            errors += slot.errors
            latency_sum += slot.latency_sum
            for name, (count, total) in slot.per_txn.items():
                entry = totals.setdefault(name, [0, 0.0])
                entry[0] += count
                entry[1] += total
        per_txn = {
            name: {
                "throughput": count / seconds,
                "avg_latency": total / count if count else 0.0,
            }
            for name, (count, total) in totals.items()
        }
        return {
            "seconds": seconds,
            "committed": committed,
            "throughput": committed / seconds,
            "aborts_per_sec": aborted / seconds,
            "errors_per_sec": errors / seconds,
            "avg_latency": latency_sum / committed if committed else 0.0,
            "per_txn": per_txn,
        }

    def series(self, start: Optional[int] = None,
               end: Optional[int] = None) -> list[tuple[int, int]]:
        """Sorted (second, committed) pairs over the retained history."""
        if self._max_second is None:
            return []
        assert self._min_second is not None
        lo = self._min_second if start is None else start
        hi = self._max_second + 1 if end is None else end
        lo = max(lo, self._max_second - self.history_seconds + 1)
        out = []
        for second in range(lo, hi):
            slot = self._slots[second % self.history_seconds]
            if slot.second == second and slot.committed:
                out.append((second, slot.committed))
        return out

    def merge(self, other: "ThroughputWindow") -> None:
        """Fold another window in second by second (multi-tenant views)."""
        if other._max_second is None:
            return
        assert other._min_second is not None
        for second in range(other._min_second, other._max_second + 1):
            slot = other._slots[second % other.history_seconds]
            if slot.second == second:
                self._fold_slot(slot)

    def _fold_slot(self, slot: _Slot) -> None:
        assert slot.second is not None
        mine = self._slots[slot.second % self.history_seconds]
        if mine.second != slot.second:
            if mine.second is not None and mine.second > slot.second:
                self.dropped_stale += slot.committed + slot.aborted \
                    + slot.errors
                return
            mine.reset(slot.second)
        if self._min_second is None or slot.second < self._min_second:
            self._min_second = slot.second
        if self._max_second is None or slot.second > self._max_second:
            self._max_second = slot.second
        mine.committed += slot.committed
        mine.aborted += slot.aborted
        mine.errors += slot.errors
        mine.latency_sum += slot.latency_sum
        for name, (count, total) in slot.per_txn.items():
            entry = mine.per_txn.setdefault(name, [0, 0.0])
            entry[0] += count
            entry[1] += total
