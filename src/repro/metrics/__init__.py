"""Streaming metrics for the control-API feedback path.

Each :class:`~repro.core.results.LatencySample` is consumed exactly once
at record time; every feedback query afterwards — sliding-window
throughput, per-transaction-type latency quantiles, requested-vs-
delivered queue accounting — is O(bins)/O(window), never O(samples).
See docs/metrics.md for bin layout and window semantics.
"""

from .histogram import (DEFAULT_BINS_PER_DECADE, DEFAULT_LOWER,
                        DEFAULT_UPPER, LatencyHistogram, PERCENTILE_POINTS,
                        make_histogram)
from .stream import StreamingMetrics, TOTAL_KEY
from .window import ThroughputWindow

__all__ = [
    "DEFAULT_BINS_PER_DECADE", "DEFAULT_LOWER", "DEFAULT_UPPER",
    "LatencyHistogram", "PERCENTILE_POINTS", "make_histogram",
    "StreamingMetrics", "TOTAL_KEY", "ThroughputWindow",
]
