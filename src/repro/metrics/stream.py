"""Streaming aggregation: consume each sample once, answer in O(bins).

:class:`StreamingMetrics` is the tentpole of the control-API feedback
path.  ``Results.record()`` feeds every :class:`LatencySample` through
:meth:`observe` exactly once at record time; after that, *no* feedback
query — sliding-window throughput, per-transaction-type latency
quantiles, abort/error rates — ever rescans the raw sample list.  The
raw list stays in ``Results`` solely for the trace analyzer and the
post-run report.

Three streaming structures, one lock:

* a :class:`~repro.metrics.window.ThroughputWindow` ring of per-second
  committed/aborted/error counters (sliding-window throughput, exact);
* one :class:`~repro.metrics.histogram.LatencyHistogram` per transaction
  type plus a run-wide one (quantiles within bin tolerance, exact
  min/max/avg);
* offered/taken/postponed counters snapshotted from the request queue
  (requested-vs-delivered accounting, paper §2.2.1).
"""

from __future__ import annotations

import threading
from typing import Mapping, Optional

from .histogram import LatencyHistogram, make_histogram
from .window import ThroughputWindow

_OK = "ok"
_ABORTED = "aborted"

#: Key under which the run-wide (all transaction types) histogram is
#: reported by :meth:`StreamingMetrics.snapshot`.
TOTAL_KEY = "total"


class StreamingMetrics:
    """Thread-safe streaming view over one workload's samples."""

    def __init__(self, history_seconds: int = 3600,
                 template: Optional[LatencyHistogram] = None) -> None:
        self._lock = threading.Lock()
        self._template = template or LatencyHistogram()
        self.window = ThroughputWindow(history_seconds)
        self._total = make_histogram(self._template)
        self._per_txn: dict[str, LatencyHistogram] = {}
        self._counts: dict[str, list] = {}  # name -> [ok, aborted, error]
        self._committed = 0
        self._aborted = 0
        self._errors = 0
        self._postponed = 0
        self._queue: dict[str, int] = {}
        self._resilience: dict = {}

    # -- ingest (one call per sample, O(1)) ---------------------------------

    def observe(self, end: float, txn_name: str, latency: float,
                status: str) -> None:
        with self._lock:
            self._observe_one(end, txn_name, latency, status)

    def observe_batch(self, samples) -> None:
        """Fold a worker-local buffer in under one lock acquisition.

        ``samples`` is any iterable of objects with ``end``/``txn_name``/
        ``latency``/``status`` attributes (:class:`LatencySample`); the
        epoch-flush path of the batched driver, so per-sample lock
        traffic disappears from the worker hot loop.
        """
        with self._lock:
            for sample in samples:
                self._observe_one(sample.end, sample.txn_name,
                                  sample.latency, sample.status)

    def _observe_one(self, end: float, txn_name: str, latency: float,
                     status: str) -> None:
        """Ingest one sample; caller holds ``self._lock``."""
        self.window.record(end, txn_name, latency, status)
        entry = self._counts.get(txn_name)
        if entry is None:
            entry = self._counts[txn_name] = [0, 0, 0]
        if status == _OK:
            entry[0] += 1
            self._committed += 1
            histogram = self._per_txn.get(txn_name)
            if histogram is None:
                histogram = self._per_txn[txn_name] = \
                    make_histogram(self._template)
            # Same bin layout (both built from the template): reuse the
            # bin index instead of recomputing the log10 twice.
            self._total.record(latency, histogram.record(latency))
        elif status == _ABORTED:
            entry[1] += 1
            self._aborted += 1
        else:
            entry[2] += 1
            self._errors += 1

    def record_postponed(self, count: int = 1) -> None:
        with self._lock:
            self._postponed += count

    def observe_queue(self, counters: Mapping[str, int]) -> None:
        """Snapshot the request queue's offered/taken/postponed/depth."""
        with self._lock:
            self._queue = dict(counters)

    def observe_resilience(self, payload: Mapping[str, object]) -> None:
        """Snapshot fault-injection / retry / breaker state (side channel).

        Like :meth:`observe_queue`, the authoritative state lives
        elsewhere (the workload's :class:`~repro.faults.FaultInjector`
        and :class:`~repro.core.resilience.Resilience`); the streaming
        view only carries the latest snapshot into the metrics payload.
        """
        with self._lock:
            self._resilience = dict(payload)

    # -- feedback queries (O(bins), never O(samples)) -----------------------

    def committed(self) -> int:
        with self._lock:
            return self._committed

    def postponed(self) -> int:
        with self._lock:
            return self._postponed

    def instantaneous(self, now: float, window: float = 5.0) -> dict:
        """Sliding-window throughput and per-type average latency.

        Shape-compatible with the legacy ``StatisticsCollector``: the
        current (incomplete) second is excluded.
        """
        with self._lock:
            stats = self.window.window_stats(now, window)
        return {
            "throughput": stats["throughput"],
            "aborts_per_sec": stats["aborts_per_sec"],
            "avg_latency": stats["avg_latency"],
            "per_txn": stats["per_txn"],
        }

    def throughput_series(self, start: Optional[int] = None,
                          end: Optional[int] = None
                          ) -> list[tuple[int, int]]:
        with self._lock:
            return self.window.series(start, end)

    def series_complete(self) -> bool:
        with self._lock:
            return self.window.complete()

    def latency_percentiles(self, txn_name: Optional[str] = None
                            ) -> dict[str, float]:
        """Binned quantiles for one type (or the whole run)."""
        with self._lock:
            histogram = (self._total if txn_name is None
                         else self._per_txn.get(txn_name))
            if histogram is None:
                return {}
            return histogram.percentiles()

    def txn_counts(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {name: {"committed": ok, "aborted": aborted,
                           "errors": errors}
                    for name, (ok, aborted, errors)
                    in sorted(self._counts.items())}

    def snapshot(self, now: float, window: float = 5.0,
                 queue: Optional[Mapping[str, int]] = None,
                 resilience: Optional[Mapping[str, object]] = None) -> dict:
        """The full metrics payload served by ``GET .../metrics``."""
        if queue is not None:
            self.observe_queue(queue)
        if resilience is not None:
            self.observe_resilience(resilience)
        with self._lock:
            stats = self.window.window_stats(now, window)
            latency = {TOTAL_KEY: self._total.snapshot()}
            for name, histogram in sorted(self._per_txn.items()):
                latency[name] = histogram.snapshot()
            per_txn_counts = {
                name: {"committed": ok, "aborted": aborted,
                       "errors": errors}
                for name, (ok, aborted, errors)
                in sorted(self._counts.items())}
            return {
                "window": {
                    "seconds": stats["seconds"],
                    "throughput": stats["throughput"],
                    "aborts_per_sec": stats["aborts_per_sec"],
                    "errors_per_sec": stats["errors_per_sec"],
                    "avg_latency": stats["avg_latency"],
                    "per_txn": stats["per_txn"],
                },
                "totals": {
                    "committed": self._committed,
                    "aborted": self._aborted,
                    "errors": self._errors,
                    "postponed": self._postponed,
                    "per_txn": per_txn_counts,
                },
                "latency": latency,
                "queue": dict(self._queue),
                "resilience": dict(self._resilience),
                "bins": self._template.layout(),
            }

    def merge(self, other: "StreamingMetrics") -> None:
        """Fold another tenant's streaming state in, without samples."""
        with other._lock:
            window_copy = other.window
            total_copy = other._total
            per_txn_copy = dict(other._per_txn)
            counts_copy = {k: list(v) for k, v in other._counts.items()}
            committed, aborted = other._committed, other._aborted
            errors, postponed = other._errors, other._postponed
        with self._lock:
            self.window.merge(window_copy)
            self._total.merge(total_copy)
            for name, histogram in per_txn_copy.items():
                mine = self._per_txn.get(name)
                if mine is None:
                    mine = self._per_txn[name] = make_histogram(histogram)
                mine.merge(histogram)
            for name, (ok, ab, err) in counts_copy.items():
                entry = self._counts.setdefault(name, [0, 0, 0])
                entry[0] += ok
                entry[1] += ab
                entry[2] += err
            self._committed += committed
            self._aborted += aborted
            self._errors += errors
            self._postponed += postponed
