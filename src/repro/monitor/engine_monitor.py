"""Engine-counter sampler: the simulated server's dstat."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..engine.database import Database


@dataclass(frozen=True)
class MonitorSample:
    """Per-interval activity deltas of one database instance."""

    time: float
    interval: float
    rows_read: int
    rows_written: int
    statements: int
    commits: int
    aborts: int
    lock_waits: int
    lock_wait_time: float
    deadlocks: int
    active_locks: int
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_evictions: int = 0
    plan_cache_invalidations: int = 0

    @property
    def rows_read_per_sec(self) -> float:
        return self.rows_read / self.interval if self.interval else 0.0

    @property
    def commits_per_sec(self) -> float:
        return self.commits / self.interval if self.interval else 0.0

    def as_row(self) -> dict[str, float]:
        return {
            "time": self.time,
            "rows_read": self.rows_read,
            "rows_written": self.rows_written,
            "statements": self.statements,
            "commits": self.commits,
            "aborts": self.aborts,
            "lock_waits": self.lock_waits,
            "lock_wait_time": self.lock_wait_time,
            "deadlocks": self.deadlocks,
            "active_locks": self.active_locks,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "plan_cache_evictions": self.plan_cache_evictions,
            "plan_cache_invalidations": self.plan_cache_invalidations,
        }


class EngineMonitor:
    """Samples a Database's counters; call :meth:`sample` each interval.

    The monitor is clock-agnostic: the caller supplies timestamps, so the
    same code serves threaded runs (a timer thread) and simulated runs
    (events on the SimClock).
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self._last_time: Optional[float] = None
        self._last: Optional[dict[str, float]] = None
        self.samples: list[MonitorSample] = []

    def _snapshot(self) -> dict[str, float]:
        counters = self.database.counters
        locks = self.database.lock_manager.stats
        txn = self.database.txn_manager
        plans = self.database.plan_cache
        return {
            "rows_read": counters.rows_read,
            "rows_written": (counters.rows_inserted + counters.rows_updated
                             + counters.rows_deleted),
            "statements": counters.statements,
            "commits": txn.committed,
            "aborts": txn.aborted,
            "lock_waits": locks.waits,
            "lock_wait_time": locks.wait_time,
            "deadlocks": locks.deadlocks,
            "plan_cache_hits": plans.hits,
            "plan_cache_misses": plans.misses,
            "plan_cache_evictions": plans.evictions,
            "plan_cache_invalidations": plans.invalidations,
        }

    def sample(self, now: float) -> Optional[MonitorSample]:
        """Record the delta since the previous call; None on the first."""
        current = self._snapshot()
        previous, previous_time = self._last, self._last_time
        self._last, self._last_time = current, now
        if previous is None or previous_time is None:
            return None
        interval = max(1e-9, now - previous_time)
        sample = MonitorSample(
            time=now,
            interval=interval,
            rows_read=int(current["rows_read"] - previous["rows_read"]),
            rows_written=int(current["rows_written"]
                             - previous["rows_written"]),
            statements=int(current["statements"] - previous["statements"]),
            commits=int(current["commits"] - previous["commits"]),
            aborts=int(current["aborts"] - previous["aborts"]),
            lock_waits=int(current["lock_waits"] - previous["lock_waits"]),
            lock_wait_time=current["lock_wait_time"]
            - previous["lock_wait_time"],
            deadlocks=int(current["deadlocks"] - previous["deadlocks"]),
            active_locks=self.database.lock_manager.active_lock_count(),
            plan_cache_hits=int(current["plan_cache_hits"]
                                - previous["plan_cache_hits"]),
            plan_cache_misses=int(current["plan_cache_misses"]
                                  - previous["plan_cache_misses"]),
            plan_cache_evictions=int(current["plan_cache_evictions"]
                                     - previous["plan_cache_evictions"]),
            plan_cache_invalidations=int(
                current["plan_cache_invalidations"]
                - previous["plan_cache_invalidations"]),
        )
        self.samples.append(sample)
        return sample

    def schedule_on(self, executor, interval: float = 1.0,
                    until: float = 0.0) -> None:
        """Arrange periodic sampling on a SimulatedExecutor's clock."""
        clock = executor.clock

        def tick(when: float) -> None:
            self.sample(when)
            if not until or when + interval <= until:
                clock.call_at(when + interval, lambda: tick(when + interval))

        clock.call_at(clock.now(), lambda: tick(clock.now()))

    def saturation_signal(self, window: int = 5) -> float:
        """Lock-wait time per second over the recent window.

        Rising values warn the player the DBMS is approaching a
        contention wall (the §4.2 "predict potential drops" signal).
        """
        recent = self.samples[-window:]
        if not recent:
            return 0.0
        span = sum(s.interval for s in recent)
        return sum(s.lock_wait_time for s in recent) / max(span, 1e-9)
