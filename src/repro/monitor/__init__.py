"""Server-side resource monitoring (paper §2.1 / Fig. 1, "dstat" [7]).

"On the server side, we use standard server monitoring tools that are
launched in parallel to OLTP-Bench and provide system performance metrics
in real time as they are collected on the host."

Two samplers are provided:

* :class:`EngineMonitor` — per-interval deltas of engine counters (rows
  read/written, lock waits, deadlocks, commits/aborts).  This is the
  signal the demo's performance view uses to warn players they are close
  to saturation (§4.2);
* :class:`HostMonitor` — best-effort /proc sampling of the real host (CPU
  jiffies, memory), matching what dstat reports on a Linux box.
"""

from .engine_monitor import EngineMonitor, MonitorSample
from .host import HostMonitor

__all__ = ["EngineMonitor", "MonitorSample", "HostMonitor"]
