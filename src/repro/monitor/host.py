"""Best-effort host sampling from /proc, the dstat counterpart.

Works on Linux; on other platforms every field degrades to ``None`` rather
than raising, so monitoring never takes a run down.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class HostSample:
    time: float
    cpu_busy_fraction: Optional[float]
    mem_used_kb: Optional[int]
    load_1min: Optional[float]


def _read_cpu_jiffies() -> Optional[tuple[int, int]]:
    """Return (busy, total) jiffies from /proc/stat, or None."""
    try:
        with open("/proc/stat") as handle:
            first = handle.readline().split()
    except OSError:
        return None
    if not first or first[0] != "cpu":
        return None
    values = [int(v) for v in first[1:]]
    total = sum(values)
    idle = values[3] + (values[4] if len(values) > 4 else 0)
    return total - idle, total


def _read_mem_used_kb() -> Optional[int]:
    try:
        with open("/proc/meminfo") as handle:
            info = {}
            for line in handle:
                key, _, rest = line.partition(":")
                info[key] = int(rest.split()[0])
    except (OSError, ValueError, IndexError):
        return None
    if "MemTotal" in info and "MemAvailable" in info:
        return info["MemTotal"] - info["MemAvailable"]
    return None


def _read_load() -> Optional[float]:
    try:
        return os.getloadavg()[0]
    except (OSError, AttributeError):
        return None


class HostMonitor:
    """Delta-based CPU/memory sampler over /proc."""

    def __init__(self) -> None:
        self._last_jiffies: Optional[tuple[int, int]] = None
        self.samples: list[HostSample] = []

    def sample(self, now: float) -> HostSample:
        jiffies = _read_cpu_jiffies()
        busy_fraction: Optional[float] = None
        if jiffies is not None and self._last_jiffies is not None:
            busy_delta = jiffies[0] - self._last_jiffies[0]
            total_delta = jiffies[1] - self._last_jiffies[1]
            if total_delta > 0:
                busy_fraction = busy_delta / total_delta
        if jiffies is not None:
            self._last_jiffies = jiffies
        sample = HostSample(
            time=now,
            cpu_busy_fraction=busy_fraction,
            mem_used_kb=_read_mem_used_kb(),
            load_1min=_read_load(),
        )
        self.samples.append(sample)
        return sample

    @property
    def available(self) -> bool:
        return _read_cpu_jiffies() is not None
