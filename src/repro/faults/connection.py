"""A DB-API connection proxy that fires injected faults mid-transaction.

:class:`FaultingConnection` wraps a real
:class:`repro.engine.dbapi.Connection`.  The executor's retry loop arms
it with one :class:`~repro.faults.injector.FaultPlan` per transaction
attempt; the wrapper then counts statement boundaries and fires the
fault *instead of* the planned statement (or at commit, when the
transaction is shorter than the planned index) — exactly where a real
engine abort, lock timeout, or connection drop would surface.  Firing
rolls the underlying transaction back first, so engine locks are
released the way a server-side abort releases them.

A fired disconnect leaves the connection *dropped*: every subsequent
operation raises :class:`~repro.errors.InjectedDisconnect` until the
retry loop acknowledges the drop with :meth:`reconnect`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import (InjectedAbort, InjectedDisconnect, InjectedLockTimeout)
from .injector import FaultPlan, KIND_ABORT, KIND_DISCONNECT, KIND_LOCK_TIMEOUT

#: Plan kinds the connection wrapper fires; latency spikes are handled by
#: the retry loop itself (they are waits, not errors).
CONNECTION_FAULT_KINDS = (KIND_ABORT, KIND_LOCK_TIMEOUT, KIND_DISCONNECT)


class FaultingConnection:
    """Transparent proxy over a Connection with statement-boundary faults."""

    def __init__(self, conn) -> None:
        self._conn = conn
        self._plan: Optional[FaultPlan] = None
        self._statements = 0
        self._dropped = False

    # -- arming (called by the retry loop, one plan per attempt) ------------

    def arm(self, plan: Optional[FaultPlan]) -> None:
        if plan is not None and plan.kind not in CONNECTION_FAULT_KINDS:
            raise ValueError(f"connection cannot fire {plan.kind!r} faults")
        self._plan = plan
        self._statements = 0

    @property
    def dropped(self) -> bool:
        return self._dropped

    def reconnect(self) -> None:
        """Acknowledge a fired disconnect and restore the session."""
        self._dropped = False
        self._plan = None

    # -- fault firing ---------------------------------------------------------

    def _fire(self, plan: FaultPlan) -> None:
        self._plan = None
        # A server-side failure aborts the open transaction: release the
        # engine's locks before surfacing the error to the worker.
        self._conn.rollback()
        if plan.kind == KIND_DISCONNECT:
            self._dropped = True
            raise InjectedDisconnect(
                f"injected connection drop during {plan.txn_name} "
                f"(attempt #{plan.index})")
        if plan.kind == KIND_LOCK_TIMEOUT:
            raise InjectedLockTimeout(
                f"injected lock timeout during {plan.txn_name} "
                f"(attempt #{plan.index})")
        raise InjectedAbort(
            f"injected transient abort during {plan.txn_name} "
            f"(attempt #{plan.index})")

    def _check_dropped(self) -> None:
        if self._dropped:
            raise InjectedDisconnect(
                "connection is dropped; reconnect before reusing it")

    def _statement_boundary(self) -> None:
        self._check_dropped()
        plan = self._plan
        if plan is not None and self._statements >= plan.at_statement:
            self._fire(plan)
        self._statements += 1

    # -- PEP 249 surface -----------------------------------------------------

    def cursor(self) -> "FaultingCursor":
        self._check_dropped()
        return FaultingCursor(self._conn.cursor(), self)

    def commit(self) -> None:
        self._check_dropped()
        plan = self._plan
        if plan is not None:
            # The transaction had fewer statements than the planned fire
            # index; a planned fault must still fire, so it fires here.
            self._fire(plan)
        self._conn.commit()

    def rollback(self) -> None:
        # Allowed even when dropped: the retry loop's failure handler
        # always rolls back, and the underlying transaction is already
        # dead by then (rollback of an inactive transaction is a no-op).
        self._conn.rollback()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "FaultingConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._conn.__exit__(exc_type, exc, tb)

    # Checked once per transaction attempt: a direct delegation skips
    # the double getattr of the ``__getattr__`` fallback below.
    @property
    def in_transaction(self):
        return self._conn.in_transaction

    # Everything else (last_txn_stats, database, isolation, autocommit,
    # ...) reads straight through to the wrapped connection.
    def __getattr__(self, name: str):
        return getattr(self._conn, name)


class FaultingCursor:
    """Cursor proxy that reports statement boundaries to its connection."""

    def __init__(self, cursor, owner: FaultingConnection) -> None:
        self._cursor = cursor
        self._owner = owner

    def execute(self, sql: str, params: Sequence[object] = ()
                ) -> "FaultingCursor":
        self._owner._statement_boundary()
        self._cursor.execute(sql, params)
        return self

    def executemany(self, sql: str,
                    seq_of_params: Sequence[Sequence[object]]
                    ) -> "FaultingCursor":
        self._owner._statement_boundary()
        self._cursor.executemany(sql, seq_of_params)
        return self

    def __iter__(self):
        return iter(self._cursor)

    def __getattr__(self, name: str):
        return getattr(self._cursor, name)
